"""Tests for the infection Markov chain (Eqs. 1–3)."""

import numpy as np
import pytest

from repro.analysis import InfectionMarkovChain, infection_probability


class TestEquation1:
    def test_closed_form(self):
        # p = F/(n-1) (1-eps)(1-tau)
        p = infection_probability(126, 3, loss_rate=0.05, crash_rate=0.01)
        assert p == pytest.approx((3 / 125) * 0.95 * 0.99)

    def test_independent_of_view_size(self):
        # Eq. 1's central point: l cancels out — there is no l parameter.
        p1 = infection_probability(100, 4)
        p2 = infection_probability(100, 4)
        assert p1 == p2

    def test_monotone_in_fanout(self):
        assert infection_probability(100, 4) > infection_probability(100, 3)

    def test_decreasing_in_system_size(self):
        assert infection_probability(100, 3) > infection_probability(200, 3)

    def test_losses_reduce_p(self):
        assert infection_probability(100, 3, loss_rate=0.0, crash_rate=0.0) > \
            infection_probability(100, 3, loss_rate=0.2, crash_rate=0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            infection_probability(1, 3)
        with pytest.raises(ValueError):
            infection_probability(10, 0)
        with pytest.raises(ValueError):
            infection_probability(10, 3, loss_rate=1.0)
        with pytest.raises(ValueError):
            infection_probability(10, 3, crash_rate=-0.1)


class TestMarkovChain:
    def test_initial_distribution(self):
        chain = InfectionMarkovChain(50, 3)
        dist = chain.initial_distribution()
        assert dist[1] == 1.0
        assert dist.sum() == pytest.approx(1.0)

    def test_distributions_remain_normalized(self):
        chain = InfectionMarkovChain(50, 3)
        history = chain.round_distributions(8)
        for row in history:
            assert row.sum() == pytest.approx(1.0, abs=1e-9)

    def test_infection_monotone_in_expectation(self):
        chain = InfectionMarkovChain(80, 3)
        curve = chain.expected_curve(10)
        assert all(b >= a for a, b in zip(curve, curve[1:]))

    def test_everyone_infected_eventually(self):
        chain = InfectionMarkovChain(60, 3)
        curve = chain.expected_curve(15)
        assert curve[-1] == pytest.approx(60, rel=1e-3)

    def test_transition_probability_rows_sum_to_one(self):
        chain = InfectionMarkovChain(20, 3)
        for i in (1, 5, 19):
            total = sum(chain.transition_probability(i, j) for j in range(21))
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_no_backward_transitions(self):
        chain = InfectionMarkovChain(20, 3)
        assert chain.transition_probability(5, 4) == 0.0

    def test_absorbing_full_infection(self):
        chain = InfectionMarkovChain(20, 3)
        assert chain.transition_probability(20, 20) == pytest.approx(1.0)

    def test_higher_fanout_fewer_rounds(self):
        # Fig. 2: increasing F decreases rounds-to-full-infection.
        rounds = [
            InfectionMarkovChain(125, F).rounds_to_fraction(0.99)
            for F in (3, 4, 5, 6)
        ]
        assert rounds == sorted(rounds, reverse=True)
        assert rounds[0] > rounds[-1]

    def test_rounds_grow_slowly_with_n(self):
        # Fig. 3(b): logarithmic growth — doubling n adds ~1 round or less.
        r125 = InfectionMarkovChain(125, 3).rounds_to_fraction(0.99)
        r250 = InfectionMarkovChain(250, 3).rounds_to_fraction(0.99)
        r500 = InfectionMarkovChain(500, 3).rounds_to_fraction(0.99)
        assert r125 <= r250 <= r500
        assert r500 - r125 <= 3

    def test_atomicity_probability_increases(self):
        chain = InfectionMarkovChain(40, 3)
        assert chain.atomicity_probability(12) > chain.atomicity_probability(6)

    def test_rounds_to_fraction_validation(self):
        chain = InfectionMarkovChain(20, 3)
        with pytest.raises(ValueError):
            chain.rounds_to_fraction(0.0)

    def test_round_distributions_validation(self):
        with pytest.raises(ValueError):
            InfectionMarkovChain(20, 3).round_distributions(-1)

    def test_step_preserves_extinction(self):
        chain = InfectionMarkovChain(10, 3)
        dist = np.zeros(11)
        dist[0] = 1.0
        stepped = chain.step(dist)
        assert stepped[0] == pytest.approx(1.0)
