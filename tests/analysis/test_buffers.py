"""Tests for the buffer-bound reliability model."""

import pytest

from repro.analysis.buffers import (
    id_survival_rounds,
    predicted_reliability,
    predicted_reliability_curve,
    required_buffer_size,
)


class TestSurvival:
    def test_linear_in_buffer(self):
        assert id_survival_rounds(60, 10.0) == 6.0
        assert id_survival_rounds(120, 10.0) == 12.0

    def test_validation(self):
        with pytest.raises(ValueError):
            id_survival_rounds(-1, 10.0)
        with pytest.raises(ValueError):
            id_survival_rounds(60, 0.0)


class TestPredictedReliability:
    def test_monotone_in_buffer_size(self):
        values = [
            predicted_reliability(125, 3, size, publish_rate=10.0)
            for size in (5, 10, 20, 40, 60, 120)
        ]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_fig6b_shape(self):
        # Starved buffers: poor reliability; generous: near 1.
        starved = predicted_reliability(125, 3, 5, publish_rate=10.0)
        generous = predicted_reliability(125, 3, 120, publish_rate=10.0)
        assert starved < 0.5
        assert generous > 0.95

    def test_monotone_in_load(self):
        light = predicted_reliability(125, 3, 40, publish_rate=5.0)
        heavy = predicted_reliability(125, 3, 40, publish_rate=20.0)
        assert heavy < light

    def test_unbounded_buffer_gives_full_reliability(self):
        assert predicted_reliability(
            125, 3, 10_000, publish_rate=1.0
        ) == pytest.approx(1.0, abs=1e-6)

    def test_curve_helper(self):
        curve = predicted_reliability_curve(125, 3, [10, 60], 10.0)
        assert [size for size, _ in curve] == [10, 60]
        assert curve[0][1] < curve[1][1]


class TestRequiredBufferSize:
    def test_sizing_consistent_with_prediction(self):
        size = required_buffer_size(125, 3, publish_rate=10.0,
                                    target_reliability=0.95)
        achieved = predicted_reliability(125, 3, size, publish_rate=10.0)
        assert achieved >= 0.95

    def test_scales_with_load(self):
        light = required_buffer_size(125, 3, publish_rate=5.0)
        heavy = required_buffer_size(125, 3, publish_rate=20.0)
        assert heavy > light
        assert heavy == pytest.approx(4 * light, rel=0.3)

    def test_higher_fanout_needs_smaller_buffer(self):
        slow = required_buffer_size(125, 3, publish_rate=10.0)
        fast = required_buffer_size(125, 6, publish_rate=10.0)
        assert fast <= slow

    @pytest.mark.slow
    def test_unreachable_target(self):
        # F=1 at 49% loss crawls: 99.9% coverage is beyond the analysis
        # horizon, so no finite buffer recommendation is possible.
        with pytest.raises(ValueError, match="unreachable"):
            required_buffer_size(1000, 1, publish_rate=10.0,
                                 loss_rate=0.49, target_reliability=0.999)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            required_buffer_size(125, 3, publish_rate=10.0,
                                 target_reliability=0.0)
