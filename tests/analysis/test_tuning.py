"""Tests for the parameter-tuning tool (Sec. 7)."""

import pytest

from repro.analysis.tuning import (
    TuningReport,
    recommend_config,
    recommend_fanout,
    recommend_view_size,
)
from repro.core import LpbcastConfig


class TestRecommendFanout:
    def test_paper_setting_yields_small_fanout(self):
        # n=125 reaches 99% in < 8 rounds already at F=3 (Fig. 2).
        assert recommend_fanout(125, max_rounds=8.0) <= 3

    def test_tighter_budget_needs_larger_fanout(self):
        relaxed = recommend_fanout(1000, max_rounds=8.0)
        tight = recommend_fanout(1000, max_rounds=4.0)
        assert tight > relaxed

    def test_result_meets_budget(self):
        from repro.analysis import expected_rounds_to_fraction
        fanout = recommend_fanout(500, max_rounds=6.0)
        rounds = expected_rounds_to_fraction(500, fanout)
        assert rounds <= 6.0

    def test_minimality(self):
        from repro.analysis import expected_rounds_to_fraction
        fanout = recommend_fanout(500, max_rounds=6.0)
        if fanout > 1:
            rounds = expected_rounds_to_fraction(500, fanout - 1)
            assert rounds is None or rounds > 6.0

    def test_impossible_budget_raises(self):
        with pytest.raises(ValueError, match="no fanout"):
            recommend_fanout(10_000, max_rounds=1.0, fanout_cap=4)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            recommend_fanout(100, max_rounds=0.0)


class TestRecommendViewSize:
    def test_at_least_fanout(self):
        l = recommend_view_size(125, fanout=5, lifetime_rounds=1e6)
        assert l >= 5

    def test_longer_lifetime_never_smaller_view(self):
        short = recommend_view_size(50, fanout=3, lifetime_rounds=1e3)
        long = recommend_view_size(50, fanout=3, lifetime_rounds=1e15)
        assert long >= short

    def test_meets_horizon(self):
        from repro.analysis import rounds_until_partition
        l = recommend_view_size(50, fanout=3, lifetime_rounds=1e12,
                                partition_probability=0.01)
        assert rounds_until_partition(50, l, 0.01) >= 1e12

    def test_validation(self):
        with pytest.raises(ValueError):
            recommend_view_size(50, 3, lifetime_rounds=0.0)
        with pytest.raises(ValueError):
            recommend_view_size(50, 3, partition_probability=1.0)


class TestRecommendConfig:
    def test_returns_valid_config(self):
        report = recommend_config(500)
        assert isinstance(report, TuningReport)
        assert isinstance(report.config, LpbcastConfig)
        assert report.config.fanout == report.fanout
        assert report.config.view_max == report.view_size
        assert report.fanout <= report.view_size

    def test_guarantees_recorded(self):
        report = recommend_config(500, max_rounds=8.0, lifetime_rounds=1e9)
        assert report.expected_rounds_to_target <= 8.0
        assert report.partition_horizon_rounds >= 1e9

    def test_base_config_preserved_for_other_fields(self):
        base = LpbcastConfig(event_ids_max=99)
        report = recommend_config(125, base=base)
        assert report.config.event_ids_max == 99

    def test_str_mentions_parameters(self):
        text = str(recommend_config(125))
        assert "F=" in text and "l=" in text

    def test_view_slack_floor_applied(self):
        # The practical floor l >= 2F compensates the Fig. 5(b) correlation
        # slowdown for minimal views.
        report = recommend_config(125, view_slack_factor=2.0)
        assert report.view_size >= 2 * report.fanout

    def test_view_slack_factor_scales_floor(self):
        loose = recommend_config(125, view_slack_factor=1.0)
        tight = recommend_config(125, view_slack_factor=4.0)
        assert tight.view_size >= 4 * tight.fanout
        assert tight.view_size >= loose.view_size

    def test_view_slack_validation(self):
        with pytest.raises(ValueError):
            recommend_config(125, view_slack_factor=0.5)


class TestViewSizeFloor:
    def test_floor_respected(self):
        l = recommend_view_size(125, fanout=3, floor=10)
        assert l >= 10

    def test_zero_floor_backwards_compatible(self):
        assert recommend_view_size(125, fanout=3) >= 3
