"""Monte-Carlo validation of the Eq. 4 partition bound."""

import random

import pytest

from repro.analysis import empirical_partition_rate, sample_partition
from repro.analysis.montecarlo import _is_partitioned


class TestPartitionDetector:
    def test_connected_chain(self):
        views = {0: [1], 1: [2], 2: []}
        assert not _is_partitioned(views)

    def test_two_islands(self):
        views = {0: [1], 1: [0], 2: [3], 3: [2]}
        assert _is_partitioned(views)

    def test_direction_agnostic(self):
        # One edge in either direction joins components (paper's two-sided
        # obliviousness requirement).
        views = {0: [1], 1: [], 2: [1], 3: [2]}
        assert not _is_partitioned(views)


class TestSampling:
    def test_sample_partition_deterministic_under_seed(self):
        a = [sample_partition(8, 1, random.Random(5)) for _ in range(10)]
        b = [sample_partition(8, 1, random.Random(5)) for _ in range(10)]
        # Same rng object consumed the same way would differ; fresh seeds per
        # call must agree on the first draw.
        assert a[0] == b[0]

    def test_large_view_never_partitions(self):
        rng = random.Random(0)
        assert not any(
            sample_partition(10, 8, rng) for _ in range(200)
        )


class TestBoundValidation:
    def test_order_of_magnitude_at_observable_scale(self):
        # n=10, l=1 partitions often enough to measure; the empirical rate
        # and the analytical per-round bound agree within a small factor.
        empirical, bound = empirical_partition_rate(
            10, 1, trials=4000, rng=random.Random(2)
        )
        assert bound > 0.0
        assert bound / 5 < empirical < bound * 2

    def test_rate_collapses_with_larger_views(self):
        rate_l1, _ = empirical_partition_rate(10, 1, trials=3000,
                                              rng=random.Random(3))
        rate_l2, _ = empirical_partition_rate(10, 2, trials=3000,
                                              rng=random.Random(3))
        assert rate_l2 < rate_l1 / 20

    def test_validation(self):
        with pytest.raises(ValueError):
            empirical_partition_rate(10, 1, trials=0)
