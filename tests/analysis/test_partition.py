"""Tests for the partitioning analysis (Eqs. 4–5)."""

import math

import pytest

from repro.analysis import (
    log_comb,
    log_psi,
    partition_probability_per_round,
    phi,
    psi,
    psi_curve,
    rounds_until_partition,
)


class TestLogComb:
    def test_known_values(self):
        assert log_comb(5, 2) == pytest.approx(math.log(10))
        assert log_comb(10, 0) == pytest.approx(0.0)
        assert log_comb(10, 10) == pytest.approx(0.0)

    def test_out_of_range_is_minus_inf(self):
        assert log_comb(5, 6) == -math.inf
        assert log_comb(5, -1) == -math.inf
        assert log_comb(-1, 0) == -math.inf


class TestPsi:
    def test_hand_computed_value(self):
        # psi(4, 50, 3) = C(50,4) * [C(3,3)/C(49,3)]^4 * [C(45,3)/C(49,3)]^46
        expected = (
            math.comb(50, 4)
            * (math.comb(3, 3) / math.comb(49, 3)) ** 4
            * (math.comb(45, 3) / math.comb(49, 3)) ** 46
        )
        assert psi(4, 50, 3) == pytest.approx(expected, rel=1e-9)

    def test_impossible_small_partition(self):
        # A partition of size i <= l cannot fill its members' views.
        assert psi(3, 50, 3) == 0.0
        assert log_psi(3, 50, 3) == -math.inf

    def test_impossible_large_complement(self):
        # If the complement is too small to fill *its* views outside: i > n-l-1.
        assert psi(48, 50, 3) == 0.0

    def test_probability_range(self):
        for i in range(4, 26):
            value = psi(i, 50, 3)
            assert 0.0 <= value <= 1.0

    def test_monotone_decreasing_in_n(self):
        # Fig. 4: larger systems partition less.
        assert psi(10, 50, 3) > psi(10, 75, 3) > psi(10, 125, 3)

    def test_monotone_decreasing_in_l(self):
        assert psi(10, 50, 3) > psi(10, 50, 5) > psi(10, 50, 8)

    def test_magnitudes_are_tiny(self):
        # Around the paper's Fig. 4 settings the values are astronomically
        # small — partitioning is practically impossible.
        assert psi(4, 50, 3) < 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            psi(4, 1, 3)

    def test_curve_default_sizes(self):
        curve = psi_curve(50, 3)
        sizes = [i for i, _ in curve]
        assert sizes[0] == 4
        assert sizes[-1] == 25


class TestPerRoundAndPhi:
    def test_per_round_sums_curve(self):
        total = partition_probability_per_round(50, 3)
        manual = sum(v for _, v in psi_curve(50, 3))
        assert total == pytest.approx(manual)

    def test_phi_bounds(self):
        assert phi(50, 3, 0) == pytest.approx(1.0)
        assert 0.0 <= phi(50, 3, 1e15) <= 1.0

    def test_phi_decreasing_in_rounds(self):
        assert phi(50, 3, 1e16) < phi(50, 3, 1e15)

    def test_phi_linearized_close_for_small_r(self):
        exact = phi(50, 3, 1e10, exact=True)
        approx = phi(50, 3, 1e10, exact=False)
        assert exact == pytest.approx(approx, abs=1e-6)

    def test_phi_validation(self):
        with pytest.raises(ValueError):
            phi(50, 3, -1)


class TestRoundsUntilPartition:
    def test_astronomical_for_paper_setting(self):
        # Sec. 4.4 reports ~1e12 rounds for (n=50, l=3, prob=0.9); the exact
        # Eq.-4 evaluation gives an even larger horizon (~1e17) — either way,
        # partitioning effectively never happens.
        rounds = rounds_until_partition(50, 3, probability=0.9)
        assert rounds > 1e12

    def test_monotone_in_probability(self):
        assert rounds_until_partition(50, 3, 0.5) < rounds_until_partition(50, 3, 0.9)

    def test_larger_system_survives_longer(self):
        assert rounds_until_partition(75, 3, 0.9) > rounds_until_partition(50, 3, 0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            rounds_until_partition(50, 3, probability=1.0)
