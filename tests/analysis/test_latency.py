"""Tests for the per-process latency analysis."""

import pytest

from repro.analysis import LatencyAnalysis


class TestLatencyAnalysis:
    def test_cumulative_starts_at_zero(self):
        analysis = LatencyAnalysis(125, 3)
        assert analysis.infected_by(0) == 0.0
        assert analysis.infected_by(-5) == 0.0

    def test_cumulative_monotone_to_one(self):
        analysis = LatencyAnalysis(125, 3, horizon=20)
        values = [analysis.infected_by(r) for r in range(21)]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(1.0, abs=1e-6)

    def test_beyond_horizon_clamps(self):
        analysis = LatencyAnalysis(60, 3, horizon=15)
        assert analysis.infected_by(100) == analysis.infected_by(15)

    def test_pmf_sums_to_coverage(self):
        analysis = LatencyAnalysis(125, 3, horizon=20)
        assert sum(analysis.pmf()) == pytest.approx(
            analysis.infected_by(20), abs=1e-9
        )

    def test_expected_latency_in_sane_range(self):
        # n=125, F=3: the epidemic saturates in ~7 rounds; a random process
        # is infected around rounds 3-5 on average.
        analysis = LatencyAnalysis(125, 3)
        assert 3.0 <= analysis.expected_latency() <= 5.5

    def test_higher_fanout_lowers_latency(self):
        slow = LatencyAnalysis(125, 3).expected_latency()
        fast = LatencyAnalysis(125, 6).expected_latency()
        assert fast < slow

    def test_quantiles_monotone(self):
        analysis = LatencyAnalysis(125, 3)
        q50 = analysis.latency_quantile(0.5)
        q99 = analysis.latency_quantile(0.99)
        assert q50 <= q99

    def test_quantile_unreachable_returns_none(self):
        # Sub-critical epidemic: essentially nobody infected in 3 rounds.
        analysis = LatencyAnalysis(1000, 1, loss_rate=0.49, horizon=3)
        assert analysis.latency_quantile(0.99) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyAnalysis(125, 3, horizon=0)
        with pytest.raises(ValueError):
            LatencyAnalysis(125, 3).latency_quantile(0.0)
