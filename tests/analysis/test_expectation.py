"""Tests for the Appendix A expected-infection recursion."""

import pytest

from repro.analysis import (
    InfectionMarkovChain,
    expected_infected_curve,
    expected_infected_curve_rounded,
    expected_rounds_to_fraction,
    infection_probability,
)


class TestRecursion:
    def test_starts_at_one(self):
        curve = expected_infected_curve(100, 0.03, 5)
        assert curve[0] == 1.0

    def test_monotone_and_bounded(self):
        curve = expected_infected_curve(100, 0.03, 30)
        assert all(b >= a for a, b in zip(curve, curve[1:]))
        assert all(v <= 100 for v in curve)

    def test_reaches_saturation(self):
        curve = expected_infected_curve(100, 0.03, 40)
        assert curve[-1] == pytest.approx(100, rel=1e-3)

    def test_matches_markov_expectation_closely(self):
        # The recursion approximates E[s_r]; early rounds should agree well
        # (the recursion treats E[q^s] as q^{E[s]}, exact while variance is
        # small relative to curvature).
        n, F = 125, 3
        p = infection_probability(n, F)
        recursion = expected_infected_curve(n, p, 8)
        markov = InfectionMarkovChain(n, F).expected_curve(8)
        for r in range(4):
            assert recursion[r] == pytest.approx(markov[r], rel=0.15)

    def test_rounded_variant_is_integer(self):
        curve = expected_infected_curve_rounded(100, 0.03, 10)
        assert all(isinstance(v, int) for v in curve)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_infected_curve(0, 0.03, 5)
        with pytest.raises(ValueError):
            expected_infected_curve(10, 0.0, 5)
        with pytest.raises(ValueError):
            expected_infected_curve(10, 0.03, -1)


class TestRoundsToFraction:
    def test_paper_range(self):
        # Fig. 3(b): roughly 5-7 rounds across n = 100..1000 at F = 3.
        for n in (125, 500, 1000):
            rounds = expected_rounds_to_fraction(n, 3)
            assert 4.5 <= rounds <= 8.0

    def test_logarithmic_growth(self):
        r1 = expected_rounds_to_fraction(125, 3)
        r2 = expected_rounds_to_fraction(250, 3)
        r3 = expected_rounds_to_fraction(500, 3)
        assert r1 < r2 < r3
        assert r3 - r1 < 2.0  # doubling twice adds < 2 rounds

    def test_fractional_interpolation(self):
        rounds = expected_rounds_to_fraction(125, 3)
        assert rounds != int(rounds)  # generically non-integer

    def test_zero_rounds_for_trivial_fraction(self):
        assert expected_rounds_to_fraction(125, 3, fraction=0.001) == 0.0

    def test_subcritical_returns_none(self):
        # With essentially total loss the epidemic stalls.
        assert expected_rounds_to_fraction(
            1000, 1, loss_rate=0.999, crash_rate=0.0, max_rounds=50
        ) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_rounds_to_fraction(125, 3, fraction=1.5)
