"""Tests for the JSONL/Prometheus exporters and the schema validators."""

import json

import pytest

from repro.telemetry import (
    SchemaError,
    Telemetry,
    format_counters,
    format_profile,
    prometheus_name,
    profile_summary,
    to_jsonl,
    to_prometheus,
    validate_export_files,
    validate_jsonl,
    validate_prometheus,
    validate_record,
)


def populated_registry() -> Telemetry:
    t = Telemetry()
    t.tracing = True
    t.inc("sim.sends", 4, round=1, kind="GossipMessage")
    t.inc("sim.sends", 2, round=2, kind="RetransmitRequest")
    t.set_gauge("sim.alive", 19.0)
    t.observe("time.round", 0.5)
    t.observe("time.round", 1.5)
    t.emit("send", 1.0, pid=0, peer=3, message="GossipMessage")
    t.emit("round.end", 1.0)
    return t


class TestJsonl:
    def test_round_trip_validates(self):
        text = to_jsonl(populated_registry())
        assert validate_jsonl(text) == 1 + 2 + 1 + 1 + 2  # meta+c+g+h+trace

    def test_meta_record_is_first_and_counts_match(self):
        records = [json.loads(line)
                   for line in to_jsonl(populated_registry()).splitlines()]
        meta = records[0]
        assert meta["type"] == "meta"
        assert meta["counters"] == 2
        assert meta["trace_events"] == 2
        assert meta["trace_dropped"] == 0

    def test_export_of_equal_registries_is_byte_identical(self):
        assert to_jsonl(populated_registry()) == to_jsonl(populated_registry())

    def test_labels_are_stringified(self):
        records = [json.loads(line)
                   for line in to_jsonl(populated_registry()).splitlines()]
        counter = next(r for r in records if r["type"] == "counter")
        assert counter["labels"]["round"] in ("1", "2")  # str, not int

    def test_validate_rejects_bad_meta_counts(self):
        text = to_jsonl(populated_registry())
        lines = text.splitlines()
        with pytest.raises(SchemaError):
            validate_jsonl("\n".join(lines[:1]))  # meta claims records

    def test_validate_rejects_missing_meta(self):
        with pytest.raises(SchemaError):
            validate_jsonl('{"type":"counter","name":"x","labels":{},"value":1}')

    def test_validate_rejects_malformed_records(self):
        for bad in (
            {"type": "counter", "name": "", "labels": {}, "value": 1},
            {"type": "counter", "name": "x", "labels": {}, "value": -1},
            {"type": "counter", "name": "x", "labels": {"round": 1},
             "value": 1},
            {"type": "trace", "kind": "send", "at": "soon", "pid": None,
             "peer": None, "data": {}},
            {"type": "bogus"},
        ):
            with pytest.raises(SchemaError):
                validate_record(bad)


class TestPrometheus:
    def test_export_validates(self):
        text = to_prometheus(populated_registry())
        assert validate_prometheus(text) > 0

    def test_name_sanitization(self):
        assert prometheus_name("sim.sends") == "sim_sends"
        assert prometheus_name("9lives") == "_9lives"

    def test_histograms_flattened_to_summary(self):
        text = to_prometheus(populated_registry())
        assert "# TYPE time_round summary" in text
        assert "time_round_count 2" in text
        assert "time_round_sum 2.0" in text

    def test_trace_aggregates_present_even_without_metrics(self):
        text = to_prometheus(Telemetry())
        assert "telemetry_trace_events 0.0" in text
        assert validate_prometheus(text) > 0

    def test_validate_rejects_garbage(self):
        with pytest.raises(SchemaError):
            validate_prometheus("this is not prometheus\n")
        with pytest.raises(SchemaError):
            validate_prometheus("")

    def test_validate_export_files_returns_counts(self):
        t = populated_registry()
        counts = validate_export_files(to_jsonl(t), to_prometheus(t))
        assert counts["jsonl_records"] == 7
        assert counts["prometheus_samples"] > 0


class TestSummaries:
    def test_profile_summary_rows(self):
        rows = profile_summary(populated_registry())
        assert len(rows) == 1
        row = rows[0]
        assert row["name"] == "time.round"
        assert row["calls"] == 2
        assert row["mean_s"] == pytest.approx(1.0)

    def test_profile_summary_ignores_non_time_hists(self):
        t = Telemetry()
        t.observe("latency", 1.0)
        assert profile_summary(t) == []
        assert format_profile(t) == "no timing data recorded"

    def test_format_counters_lists_totals(self):
        text = format_counters(populated_registry())
        assert "sim.sends" in text
        assert "6" in text
        assert format_counters(Telemetry()) == "no counters recorded"
