"""Tests for the telemetry registry, trace buffer and shard-merge path."""

import pytest

from repro.telemetry import Telemetry, TraceBuffer, TraceEvent


class TestCounters:
    def test_labelled_series_are_distinct(self):
        t = Telemetry()
        t.inc("sim.sends", 2, round=1, kind="GossipMessage")
        t.inc("sim.sends", 3, round=2, kind="GossipMessage")
        assert t.counter_value("sim.sends", round=1, kind="GossipMessage") == 2
        assert t.counter_value("sim.sends", round=2, kind="GossipMessage") == 3
        assert t.counter_value("sim.sends", round=9, kind="GossipMessage") == 0

    def test_counter_total_sums_over_labels(self):
        t = Telemetry()
        t.inc("sim.sends", 2, round=1, kind="A")
        t.inc("sim.sends", 3, round=1, kind="B")
        t.inc("sim.sends", 5, round=2, kind="A")
        assert t.counter_total("sim.sends") == 10
        assert t.counter_total("sim.sends", round=1) == 5
        assert t.counter_total("sim.sends", kind="A") == 7

    def test_label_values(self):
        t = Telemetry()
        t.inc("sim.sends", 1, round=3)
        t.inc("sim.sends", 1, round=1)
        t.inc("sim.sends", 1, round=3)
        assert t.label_values("sim.sends", "round") == [1, 3]

    def test_gauge_is_last_write(self):
        t = Telemetry()
        t.set_gauge("sim.alive", 10.0)
        t.set_gauge("sim.alive", 7.0)
        assert t.gauge_value("sim.alive") == 7.0
        assert t.gauge_value("missing") is None

    def test_histogram_stats(self):
        t = Telemetry()
        for v in (1.0, 3.0, 2.0):
            t.observe("time.round", v)
        count, total, minimum, maximum = t.histogram_stats("time.round")
        assert (count, total, minimum, maximum) == (3, 6.0, 1.0, 3.0)
        assert t.histogram_stats("missing") is None

    def test_time_context_manager_observes_elapsed(self):
        t = Telemetry()
        with t.time("time.tick"):
            pass
        count, total, minimum, maximum = t.histogram_stats("time.tick")
        assert count == 1
        assert 0.0 <= minimum <= total

    def test_thread_safe_registry_counts(self):
        t = Telemetry(thread_safe=True)
        t.inc("udp.datagrams_sent", 1, pid=1)
        t.observe("time.codec", 0.1, op="encode")
        t.set_gauge("g", 1.0)
        assert t.counter_value("udp.datagrams_sent", pid=1) == 1


class TestTracing:
    def test_emit_is_gated_by_tracing_flag(self):
        t = Telemetry()
        t.emit("send", 1.0, pid=1, peer=2)
        assert len(t.trace) == 0
        t.tracing = True
        t.emit("send", 1.0, pid=1, peer=2)
        assert len(t.trace) == 1

    def test_force_bypasses_gate(self):
        t = Telemetry()
        t.emit("invariant.violation", 3.0, pid=1, force=True,
               invariant="buffer-bounds")
        assert t.trace.of_kind("invariant.violation")[0].data["invariant"] \
            == "buffer-bounds"

    def test_buffer_drops_new_events_past_capacity(self):
        buffer = TraceBuffer(capacity=2)
        for i in range(5):
            buffer.append(TraceEvent(kind="send", at=float(i)))
        assert len(buffer) == 2
        assert buffer.dropped == 3
        assert [e.at for e in buffer] == [0.0, 1.0]  # head kept, tail dropped

    def test_buffer_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)

    def test_event_to_dict_is_schema_shaped(self):
        event = TraceEvent(kind="receive", at=2.0, pid=3, peer=4,
                           data={"message": "GossipMessage"})
        d = event.to_dict()
        assert d["type"] == "trace"
        assert d["kind"] == "receive"
        assert d["data"] == {"message": "GossipMessage"}


class TestShardMerge:
    def test_drain_clears_and_absorb_sums(self):
        worker = Telemetry()
        worker.inc("sim.sends", 4, round=1)
        worker.observe("time.tick", 0.5)
        delta = worker.drain_delta()
        assert worker.counter_total("sim.sends") == 0  # drained

        main = Telemetry()
        main.inc("sim.sends", 1, round=1)
        main.absorb_counters(delta)
        assert main.counter_value("sim.sends", round=1) == 5
        assert main.histogram_stats("time.tick")[0] == 1

    def test_absorb_is_order_independent(self):
        def worker_delta(value):
            w = Telemetry()
            w.inc("sim.sends", value, round=1)
            return w.drain_delta()

        a = Telemetry()
        a.absorb_counters(worker_delta(2))
        a.absorb_counters(worker_delta(3))
        b = Telemetry()
        b.absorb_counters(worker_delta(3))
        b.absorb_counters(worker_delta(2))
        assert a.snapshot()["counters"] == b.snapshot()["counters"]

    def test_tagged_trace_merges_in_canonical_order(self):
        worker_a = Telemetry()
        worker_a.tracing = True
        worker_a.trace_tag = (1, 5)
        worker_a.emit("send", 1.0, pid=5)
        worker_b = Telemetry()
        worker_b.tracing = True
        worker_b.trace_tag = (1, 2)
        worker_b.emit("send", 1.0, pid=2)

        main = Telemetry()
        staged = []
        staged.extend(main.absorb_counters(worker_a.drain_delta()))
        staged.extend(main.absorb_counters(worker_b.drain_delta()))
        main.append_trace_ordered(staged)
        assert [e.pid for e in main.trace] == [2, 5]  # sorted by (phase, idx)

    def test_drain_carries_dropped_count(self):
        worker = Telemetry(trace_capacity=1)
        worker.tracing = True
        worker.emit("send", 1.0)
        worker.emit("send", 2.0)
        main = Telemetry()
        main.absorb_counters(worker.drain_delta())
        assert main.trace.dropped == 1
