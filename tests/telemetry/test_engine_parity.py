"""Serial vs sharded telemetry identity — the undercount regression tests.

The old ``BandwidthMeter.instrument`` monkey-patched bound methods, which
pickling silently discarded on :class:`ShardedRoundSimulation`: sharded runs
reported (near-)zero traffic while serial runs reported the truth.  The
telemetry layer routes all accounting through shard-local registries merged
by summation, so these tests pin the contract: same seed and config, the
serial and sharded engines must report *identical* counter totals — and the
back-compat meter API must read correct, equal numbers from both.
"""

import random

import pytest

from repro.core import LpbcastConfig
from repro.faults import FaultPlan
from repro.metrics.bandwidth import BandwidthMeter
from repro.metrics.delivery import DeliveryLog
from repro.sim import NetworkModel, build_lpbcast_nodes, create_simulation
from repro.telemetry import counter_fingerprint

N = 24
ROUNDS = 10
SEED = 7
PUBLISHES = 4


def run_engine(engine, *, tracing=False, faults=False, with_meter=False,
               loss=0.0, shards=2):
    """One fixed scenario on the requested engine; returns (sim, meter).

    Callers own ``sim`` cleanup — sharded sims are closed here because the
    telemetry registry survives ``close()``.
    """
    cfg = LpbcastConfig(fanout=3, view_max=8)
    nodes = build_lpbcast_nodes(N, cfg, seed=SEED)
    network = None
    if loss:
        network = NetworkModel(loss_rate=loss, rng=random.Random(SEED + 1))
    extra = {"shards": shards} if engine == "sharded" else {}
    sim = create_simulation(engine, network=network, seed=SEED, **extra)
    sim.add_nodes(nodes)
    sim.telemetry.tracing = tracing
    meter = None
    if with_meter:
        meter = BandwidthMeter()
        for node in nodes:
            meter.instrument(node)
        sim.add_round_hook(meter.on_round)
    if faults:
        sim.use_fault_plan(
            FaultPlan().drop(0.05).duplicate(0.05).delay(0.03, delay=2)
        )

    def publish(round_no, s):
        if round_no <= PUBLISHES:
            s.nodes[nodes[round_no % N].pid].lpb_cast(
                f"evt-{round_no}", float(round_no)
            )

    sim.add_round_hook(publish)
    try:
        sim.run(ROUNDS)
    finally:
        close = getattr(sim, "close", None)
        if close is not None:
            close()
    return sim, meter


def counter_state(sim):
    """Every counter series — the deterministic part of the registry
    (timing histograms legitimately differ between runs)."""
    return sim.telemetry.snapshot()["counters"]


def trace_multiset(sim):
    """Order-insensitive view of the trace stream (sharded merge orders
    coordinator events before worker batches within a round)."""
    return sorted(
        (e.kind, e.at, e.pid, e.peer, tuple(sorted(e.data.items())))
        for e in sim.telemetry.trace
    )


class TestCounterParity:
    def test_serial_and_sharded_counters_identical(self):
        serial, _ = run_engine("serial", loss=0.05)
        sharded, _ = run_engine("sharded", loss=0.05)
        state = counter_state(serial)
        assert state == counter_state(sharded)
        assert state  # non-vacuous: the scenario produced traffic
        assert serial.telemetry.counter_total("sim.sends") > 0

    def test_parity_holds_under_faults(self):
        serial, _ = run_engine("serial", loss=0.05, faults=True)
        sharded, _ = run_engine("sharded", loss=0.05, faults=True)
        assert counter_state(serial) == counter_state(sharded)
        assert serial.telemetry.counter_total("faults.dropped") > 0

    def test_trace_streams_carry_the_same_events(self):
        serial, _ = run_engine("serial", tracing=True, faults=True)
        sharded, _ = run_engine("sharded", tracing=True, faults=True)
        assert trace_multiset(serial) == trace_multiset(sharded)
        counts = serial.telemetry.trace.counts()
        assert counts["round.start"] == ROUNDS
        assert counts["send"] > 0
        assert counts["receive"] > 0

    def test_tracing_does_not_perturb_counters(self):
        off, _ = run_engine("serial", tracing=False, faults=True)
        on, _ = run_engine("serial", tracing=True, faults=True)
        assert counter_state(off) == counter_state(on)

    def test_sharded_profile_includes_shard_sync(self):
        sharded, _ = run_engine("sharded")
        stats = sharded.telemetry.histogram_stats("time.shard.sync")
        assert stats is not None and stats[0] > 0


class TestMeterUndercountRegression:
    def test_sharded_meter_reports_serial_totals(self):
        """The headline bugfix: the old API's numbers no longer vanish when
        the engine pickles nodes into shard workers."""
        _, serial_meter = run_engine("serial", with_meter=True)
        _, sharded_meter = run_engine("sharded", with_meter=True)
        assert serial_meter.total_messages() > 0
        assert sharded_meter.total_messages() == serial_meter.total_messages()
        assert sharded_meter.total_elements() == serial_meter.total_elements()
        assert sharded_meter.messages_by_kind() == \
            serial_meter.messages_by_kind()
        assert sharded_meter.per_sender_totals() == \
            serial_meter.per_sender_totals()

    def test_round_traffic_matches_per_round(self):
        _, serial_meter = run_engine("serial", with_meter=True)
        _, sharded_meter = run_engine("sharded", with_meter=True)
        assert serial_meter.rounds() == sharded_meter.rounds()
        for r in serial_meter.rounds():
            a, b = serial_meter.round_traffic(r), sharded_meter.round_traffic(r)
            assert (a.messages, a.elements, a.unsized, a.by_kind) == \
                (b.messages, b.elements, b.unsized, b.by_kind)

    def test_steady_state_traffic_is_n_times_fanout(self):
        """Sanity-anchor the absolute numbers, not just equality: with every
        node alive and gossiping, each round carries n*fanout messages."""
        _, meter = run_engine("sharded", with_meter=True)
        assert meter.round_traffic(ROUNDS - 1).messages == N * 3


class TestAsyncRunnerComparability:
    """The async runtime is *not* bit-comparable with the round engines
    (independent timer phases consume different randomness), but with no
    faults and no loss the aggregate accounting is exact on both clocks:
    every node fires its timer precisely once per gossip period, so a run
    of R rounds carries n*F*R gossip messages and a broadcast reaches
    every process.  These totals anchor the async engine to the same
    telemetry contract where the round->time mapping makes them
    comparable."""

    def _run(self, engine):
        cfg = LpbcastConfig(fanout=3, view_max=8)
        nodes = build_lpbcast_nodes(N, cfg, seed=SEED)
        extra = {"shards": 2} if engine == "sharded" else {}
        sim = create_simulation(engine, seed=SEED, **extra)
        sim.add_nodes(nodes)
        log = DeliveryLog().attach(nodes)
        if engine == "async":
            # Mid-period publish: round 1's timers all fire after it.
            sim.call_at(0.5 * cfg.gossip_period,
                        lambda: sim.nodes[nodes[0].pid].lpb_cast("evt-1",
                                                                 sim.now))
            sim.run_rounds(ROUNDS, round_duration=cfg.gossip_period)
        else:
            def publish(round_no, s):
                if round_no == 1:
                    s.nodes[nodes[0].pid].lpb_cast("evt-1", float(round_no))

            sim.add_round_hook(publish)
            try:
                sim.run(ROUNDS)
            finally:
                close = getattr(sim, "close", None)
                if close is not None:
                    close()
        return sim, log

    def test_gossip_volume_matches_serial(self):
        serial, _ = self._run("serial")
        async_sim, _ = self._run("async")
        expected = N * 3 * ROUNDS
        assert serial.telemetry.counter_total(
            "sim.sends", kind="GossipMessage") == expected
        assert async_sim.telemetry.counter_total(
            "sim.sends", kind="GossipMessage") == expected

    def test_broadcast_reaches_everyone_on_both_clocks(self):
        # The DeliveryLog is the ground truth both engines share; the
        # sim.delivered counter buckets by a different clock on each and is
        # deliberately not compared here.
        _, serial_log = self._run("serial")
        _, async_log = self._run("async")
        assert serial_log.total_deliveries == N
        assert async_log.total_deliveries == N


# -- golden counter record ---------------------------------------------------
# A fixed-seed n=500 run with loss, faults and retransmissions enabled —
# large enough to exercise every hot path (alive-list maintenance, the
# record_sends fast path, buffer/view truncation, the sharded payload
# dedup).  The sha256 below fingerprints the canonical counter state of the
# seed revision; both engines must reproduce it exactly.  If an intentional
# protocol change shifts it, regenerate with::
#
#     PYTHONPATH=src python - <<'EOF'
#     from tests.telemetry.test_engine_parity import golden_run, golden_sha256
#     print(golden_sha256(golden_run("serial")))
#     EOF

GOLDEN_N = 500
GOLDEN_ROUNDS = 12
GOLDEN_SEED = 20260806
GOLDEN_PUBLISHES = 5
GOLDEN_SHA256 = \
    "4c6cdecb7d09f6758a1bc3c12530dc42380ef9302a9964328b70aac0865978ac"


def golden_run(engine, shards=2):
    cfg = LpbcastConfig(fanout=3, view_max=15, retransmissions=True,
                        digest_implies_delivery=False)
    nodes = build_lpbcast_nodes(GOLDEN_N, cfg, seed=GOLDEN_SEED)
    network = NetworkModel(loss_rate=0.05, rng=random.Random(GOLDEN_SEED + 1))
    extra = {"shards": shards} if engine == "sharded" else {}
    sim = create_simulation(engine, network=network, seed=GOLDEN_SEED,
                            **extra)
    sim.add_nodes(nodes)
    sim.use_fault_plan(
        FaultPlan().drop(0.05).duplicate(0.05).delay(0.03, delay=2)
    )

    def publish(round_no, s):
        if round_no <= GOLDEN_PUBLISHES:
            s.nodes[nodes[round_no % GOLDEN_N].pid].lpb_cast(
                f"evt-{round_no}", float(round_no)
            )

    sim.add_round_hook(publish)
    try:
        sim.run(GOLDEN_ROUNDS)
    finally:
        close = getattr(sim, "close", None)
        if close is not None:
            close()
    return sim


def golden_sha256(sim):
    """Canonical fingerprint of the counter state — the shared helper the
    DST oracle also uses, so the golden hash and the fuzzer's differential
    check can never drift apart."""
    return counter_fingerprint(sim.telemetry)


class TestGoldenCounterRecord:
    @pytest.mark.slow
    def test_engines_reproduce_the_golden_record(self):
        serial = golden_run("serial")
        sharded = golden_run("sharded")
        assert counter_state(serial) == counter_state(sharded)
        assert golden_sha256(serial) == GOLDEN_SHA256
        assert golden_sha256(sharded) == GOLDEN_SHA256
        # Non-vacuity: the scenario drove every accounting path it claims to.
        telemetry = serial.telemetry
        assert telemetry.counter_total("sim.sends") > 0
        assert telemetry.counter_total("faults.dropped") > 0
        assert telemetry.counter_total(
            "sim.sends", kind="RetransmitRequest") > 0


# -- causal-mode golden counter record ---------------------------------------
# The same bit-identity contract over the causal-delivery path: a fixed-seed
# lossy run with hold-back gates, dependency solicitation and two concurrent
# publishers per round (ordering pressure, so notifications really are held
# back).  The sharded side crosses shards through the binary wire format, so
# the hash also pins the causal record codec (tags 0x10/0x11) end to end.
# Regenerate after an intentional protocol change with::
#
#     PYTHONPATH=src python - <<'EOF'
#     from tests.telemetry.test_engine_parity import (causal_golden_run,
#                                                     golden_sha256)
#     print(golden_sha256(causal_golden_run("serial")))
#     EOF

CAUSAL_GOLDEN_N = 120
CAUSAL_GOLDEN_ROUNDS = 12
CAUSAL_GOLDEN_SEED = 20260808
CAUSAL_GOLDEN_PUBLISHES = 5
CAUSAL_GOLDEN_SHA256 = \
    "11adf4367ba2b9a3d1655cabc9f7d9d97c1837f518bea34a755ffd5711d58fd4"


def causal_golden_run(engine, shards=2):
    cfg = LpbcastConfig(fanout=3, view_max=15, retransmissions=True,
                        digest_implies_delivery=False,
                        causal_delivery=True, causal_holdback_max=32)
    nodes = build_lpbcast_nodes(CAUSAL_GOLDEN_N, cfg,
                                seed=CAUSAL_GOLDEN_SEED)
    network = NetworkModel(loss_rate=0.08,
                           rng=random.Random(CAUSAL_GOLDEN_SEED + 1))
    extra = ({"shards": shards, "wire_format": "binary"}
             if engine == "sharded" else {})
    sim = create_simulation(engine, network=network,
                            seed=CAUSAL_GOLDEN_SEED, **extra)
    sim.add_nodes(nodes)

    def publish(round_no, s):
        if round_no <= CAUSAL_GOLDEN_PUBLISHES:
            for k in range(2):
                pid = nodes[(2 * round_no + k) % CAUSAL_GOLDEN_N].pid
                s.nodes[pid].lpb_cast(f"evt-{round_no}-{k}", float(round_no))

    sim.add_round_hook(publish)
    try:
        sim.run(CAUSAL_GOLDEN_ROUNDS)
    finally:
        close = getattr(sim, "close", None)
        if close is not None:
            close()
    return sim


class TestCausalGoldenCounterRecord:
    @pytest.mark.slow
    def test_engines_reproduce_the_causal_golden_record(self):
        serial = causal_golden_run("serial")
        sharded = causal_golden_run("sharded")
        assert counter_state(serial) == counter_state(sharded)
        assert golden_sha256(serial) == CAUSAL_GOLDEN_SHA256
        assert golden_sha256(sharded) == CAUSAL_GOLDEN_SHA256
        # Non-vacuity: loss actually forced hold-back and dependency
        # solicitation, so the hash covers the causal paths it claims to.
        telemetry = serial.telemetry
        assert telemetry.counter_total("sim.sends") > 0
        assert telemetry.counter_total(
            "sim.sends", kind="RetransmitRequest") > 0
        assert sum(node.causal.held_back_total
                   for node in serial.nodes.values()) > 0
        assert sum(node.stats.causal_deps_solicited
                   for node in serial.nodes.values()) > 0
