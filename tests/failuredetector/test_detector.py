"""Tests for the heartbeat failure detector."""

import random

import pytest

from repro.failuredetector import HeartbeatFailureDetector


def make_fd(owner=0, suspect=5.0, forget=20.0, sample=5, seed=0):
    return HeartbeatFailureDetector(
        owner, suspect_timeout=suspect, forget_timeout=forget,
        sample_size=sample, rng=random.Random(seed),
    )


class TestHeartbeats:
    def test_own_counter_advances(self):
        fd = make_fd()
        fd.tick(0.0)
        fd.tick(1.0)
        assert fd.counter_of(0) == 2

    def test_payload_always_includes_self(self):
        fd = make_fd(owner=7)
        fd.tick(0.0)
        payload = dict(fd.payload())
        assert payload[7] == 1

    def test_payload_sample_bounded(self):
        fd = make_fd(sample=3)
        fd.merge([(pid, 1) for pid in range(1, 20)], now=0.0)
        assert len(fd.payload()) <= 3

    def test_merge_keeps_maximum(self):
        fd = make_fd()
        fd.merge([(5, 3)], now=0.0)
        fd.merge([(5, 2)], now=1.0)  # stale: ignored
        assert fd.counter_of(5) == 3

    def test_merge_ignores_own_id(self):
        fd = make_fd(owner=0)
        fd.merge([(0, 99)], now=0.0)
        assert fd.counter_of(0) == 0

    def test_advance_refreshes_timestamp(self):
        fd = make_fd(suspect=5.0)
        fd.merge([(5, 1)], now=0.0)
        fd.merge([(5, 2)], now=4.0)
        assert not fd.is_suspected(5, now=8.0)  # advanced at t=4


class TestSuspicion:
    def test_silent_process_suspected(self):
        fd = make_fd(suspect=5.0)
        fd.merge([(5, 1)], now=0.0)
        assert not fd.is_suspected(5, now=4.9)
        assert fd.is_suspected(5, now=5.0)
        assert fd.suspects(5.0) == [5]

    def test_unknown_process_not_suspected(self):
        fd = make_fd()
        assert not fd.is_suspected(42, now=100.0)

    def test_stale_counters_do_not_refresh(self):
        fd = make_fd(suspect=5.0)
        fd.merge([(5, 3)], now=0.0)
        fd.merge([(5, 3)], now=4.0)  # same counter: no advance
        assert fd.is_suspected(5, now=5.0)

    def test_observe_alive_refreshes(self):
        fd = make_fd(suspect=5.0)
        fd.merge([(5, 1)], now=0.0)
        fd.observe_alive(5, now=4.0)
        assert not fd.is_suspected(5, now=8.0)

    def test_expire_forgets(self):
        fd = make_fd(suspect=5.0, forget=10.0)
        fd.merge([(5, 1)], now=0.0)
        assert fd.expire(now=9.0) == []
        assert fd.expire(now=10.0) == [5]
        assert 5 not in fd.known()
        assert not fd.is_suspected(5, now=11.0)  # no verdict once forgotten


class TestRecovery:
    """Regression: a process that goes silent and comes back must shed its
    suspect status — recovery is the whole point of crash-with-recovery."""

    def test_suspect_cleared_when_heard_again(self):
        fd = make_fd(suspect=5.0, forget=20.0)
        fd.merge([(5, 1)], now=0.0)
        assert fd.is_suspected(5, now=6.0)  # silent past suspect_timeout
        fd.merge([(5, 2)], now=7.0)         # the process recovered
        assert not fd.is_suspected(5, now=7.0)
        assert fd.suspects(11.0) == []      # and the clock restarted at 7

    def test_observe_alive_also_clears_suspicion(self):
        fd = make_fd(suspect=5.0, forget=20.0)
        fd.merge([(5, 1)], now=0.0)
        assert fd.is_suspected(5, now=6.0)
        fd.observe_alive(5, now=6.0)        # direct message, no new counter
        assert not fd.is_suspected(5, now=10.0)

    def test_forgotten_process_restarts_fresh(self):
        fd = make_fd(suspect=5.0, forget=10.0)
        fd.merge([(5, 7)], now=0.0)
        assert fd.expire(now=10.0) == [5]   # silent past forget_timeout
        # A recovered process restarts its counter from scratch; the stale
        # pre-crash counter (7) must not shadow the fresh one (1).
        fd.merge([(5, 1)], now=11.0)
        assert fd.counter_of(5) == 1
        assert not fd.is_suspected(5, now=12.0)
        fd.merge([(5, 2)], now=13.0)
        assert fd.counter_of(5) == 2


class TestValidation:
    def test_timeout_ordering(self):
        with pytest.raises(ValueError):
            HeartbeatFailureDetector(0, suspect_timeout=5.0, forget_timeout=5.0)

    def test_positive_timeouts(self):
        with pytest.raises(ValueError):
            HeartbeatFailureDetector(0, suspect_timeout=0.0)

    def test_sample_size(self):
        with pytest.raises(ValueError):
            HeartbeatFailureDetector(0, sample_size=0)
