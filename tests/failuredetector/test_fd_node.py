"""Tests for lpbcast with piggybacked failure detection."""

import random

from repro.core import LpbcastConfig
from repro.failuredetector import FdLpbcastNode
from repro.metrics import DeliveryLog
from repro.sim import NetworkModel, RoundSimulation
from repro.sim.rng import SeedSequence
from repro.sim.topology import uniform_random_views


def build_fd_system(n=30, seed=0, suspect=4.0, view_max=8):
    cfg = LpbcastConfig(fanout=3, view_max=view_max)
    seeds = SeedSequence(seed)
    pids = list(range(n))
    views = uniform_random_views(pids, view_max, seeds.rng("views"))
    nodes = [
        FdLpbcastNode(pid, cfg, seeds.rng("node", pid),
                      initial_view=views[pid],
                      suspect_timeout=suspect, forget_timeout=4 * suspect)
        for pid in pids
    ]
    sim = RoundSimulation(
        NetworkModel(loss_rate=0.05, rng=random.Random(seed + 70)), seed=seed
    )
    sim.add_nodes(nodes)
    return sim, nodes


class TestPiggybacking:
    def test_gossips_carry_heartbeats(self):
        sim, nodes = build_fd_system(n=10)
        out = nodes[0].on_tick(now=1.0)
        assert out
        assert all(o.message.heartbeats for o in out)
        payload = dict(out[0].message.heartbeats)
        assert payload[nodes[0].pid] == 1

    def test_heartbeat_knowledge_spreads(self):
        sim, nodes = build_fd_system(n=20)
        sim.run(6)
        # After a few rounds every node should know heartbeats for many
        # processes it never talked to directly.
        known_counts = [len(n.detector.known()) for n in nodes]
        assert sum(known_counts) / len(known_counts) > 10


class TestCrashDetection:
    def test_crashed_node_purged_from_views(self):
        sim, nodes = build_fd_system(n=30, suspect=4.0)
        victim = nodes[5].pid
        sim.run(3)  # victim is alive and known
        known_before = sum(1 for n in nodes if victim in n.view)
        assert known_before > 0
        sim.crash(victim)
        sim.run(14)  # silence exceeds the suspect timeout everywhere
        known_after = sum(
            1 for n in nodes if n.pid != victim and victim in n.view
        )
        assert known_after == 0
        assert sum(n.suspected_purged for n in nodes) > 0

    def test_live_nodes_keep_full_views(self):
        # A generous timeout (relative to heartbeat propagation lag) avoids
        # false suspicion; views stay full.
        sim, nodes = build_fd_system(n=20, suspect=8.0)
        sim.run(20)
        assert all(len(n.view) == 8 for n in nodes)
        assert sum(n.suspected_purged for n in nodes) == 0

    def test_dissemination_unaffected(self):
        sim, nodes = build_fd_system(n=25)
        log = DeliveryLog().attach(nodes)
        event = nodes[0].lpb_cast("x", now=0.0)
        sim.run(10)
        assert log.delivery_count(event.event_id) == 25

    def test_poisoned_pids_age_out_of_views_and_subs(self):
        """Under a poison_view plan, fabricated pids enter circulation but
        never gossip — failure detection must purge them from views *and*
        subs once they exceed the suspect timeout, within the invariant
        monitor's grace window."""
        from repro.faults import FaultPlan, InvariantMonitor

        sim, nodes = build_fd_system(n=16, seed=5, suspect=4.0)
        liar = nodes[15].pid
        plan = FaultPlan().poison_view(liar, rate=1.0, count=2,
                                       start=1, stop=6)
        sim.use_fault_plan(plan)
        monitor = InvariantMonitor(mode="collect").attach(sim)
        sim.run(5)  # poison window: ghosts circulate
        ghosts = plan.poisoned_pids()
        seen = sum(1 for n in nodes for g in ghosts
                   if g in n.view or g in n.subs.snapshot())
        assert seen > 0, "the poison fault never landed"
        sim.run(20)  # window closed at 6; detection ages the ghosts out
        for node in nodes:
            for ghost in ghosts:
                assert ghost not in node.view, (node.pid, ghost)
                assert ghost not in node.subs.snapshot(), (node.pid, ghost)
        hygiene = [v for v in monitor.violations
                   if v.invariant == "view-hygiene"]
        assert not hygiene, monitor.report()

    def test_poison_does_not_resurrect_crashed_nodes(self):
        """A crashed-silent process and a fabricated ghost look the same to
        the detector (no heartbeats); poisoning traffic must not re-plant
        the crashed pid in anyone's view."""
        from repro.faults import FaultPlan

        sim, nodes = build_fd_system(n=16, seed=6, suspect=4.0)
        victim = nodes[3].pid
        liar = nodes[15].pid
        sim.use_fault_plan(
            FaultPlan()
            .crash(victim, at=2)
            .poison_view(liar, rate=1.0, count=2, start=1, stop=8))
        sim.run(25)
        assert not sim.alive(victim)
        survivors = [n for n in nodes
                     if n.pid != victim and sim.alive(n.pid)]
        assert survivors
        assert all(victim not in n.view for n in survivors)
        assert all(victim not in n.subs.snapshot() for n in survivors)

    def test_suspected_process_recovers_via_gossip(self):
        # A partition-like silence: node 5 is cut off, suspected, then the
        # cut heals and its own gossiping re-establishes it.
        cfg = LpbcastConfig(fanout=3, view_max=8)
        seeds = SeedSequence(3)
        pids = list(range(12))
        views = uniform_random_views(pids, 8, seeds.rng("views"))
        nodes = [
            FdLpbcastNode(pid, cfg, seeds.rng("node", pid),
                          initial_view=views[pid],
                          suspect_timeout=3.0, forget_timeout=30.0)
            for pid in pids
        ]
        blocked = {"active": True}
        net = NetworkModel(
            loss_rate=0.0, rng=random.Random(4),
            link_filter=lambda s, d: not (
                blocked["active"] and (s == 5 or d == 5)
            ),
        )
        sim = RoundSimulation(network=net, seed=3)
        sim.add_nodes(nodes)
        sim.run(8)  # 5 is silent: suspected and purged
        assert all(5 not in n.view for n in nodes if n.pid != 5)
        blocked["active"] = False
        sim.run(12)  # 5 gossips again; its self-advertisement spreads
        knowers = sum(1 for n in nodes if n.pid != 5 and 5 in n.view)
        assert knowers > 0
