"""Unit tests for the compact binary message codec."""

import math

import pytest

from repro.core.codec import CodecError, wire_size
from repro.core.events import Notification, Unsubscription
from repro.core.ids import EventId
from repro.core.message import (
    GossipMessage,
    RetransmitRequest,
    RetransmitResponse,
    SubscriptionAck,
    SubscriptionRequest,
)
from repro.loggers.messages import (
    LogUpload,
    LogUploadAck,
    RecoveryRequest,
    RecoveryResponse,
)
from repro.pbcast import PbcastData, PbcastDigest, PbcastSolicit
from repro.pubsub.peer import TopicEnvelope
from repro.wire import (
    WireEncodeError,
    decode_binary,
    encode_binary,
    wire_bytes_of,
)

NOTE = Notification(EventId(3, 7), "payload", 12.5)
# A notification carrying causal dependency metadata: gossip and
# retransmit responses holding one switch to the causal tags (0x10/0x11).
CAUSAL_NOTE = Notification(EventId(3, 8), "causal", 13.0,
                           deps=(EventId(1, 4), EventId(2, 2)))

SAMPLES = [
    GossipMessage(sender=0),
    GossipMessage(
        sender=41,
        subs=(3, 1, 9),
        unsubs=(Unsubscription(2, 0.25),),
        events=(NOTE, Notification(EventId(8, 1), None, 0.0)),
        event_ids=(EventId(1, 5), EventId(1, 6), EventId(1, 7),
                   EventId(2, 1)),
        heartbeats=((4, 100), (5, 3)),
    ),
    SubscriptionRequest(12),
    SubscriptionAck(7, (9, 2, 15)),
    RetransmitRequest(3, (EventId(4, 2), EventId(4, 3))),
    RetransmitResponse(5, (NOTE,)),
    PbcastData(6, NOTE, 2),
    PbcastDigest(8, (EventId(1, 1),), (2, 3), (Unsubscription(9, 1.5),)),
    PbcastSolicit(10, (EventId(2, 2), EventId(5, 1))),
    LogUpload(11, NOTE),
    LogUploadAck(12, EventId(6, 9)),
    RecoveryRequest(13, (EventId(1, 4), EventId(2, 8))),
    RecoveryResponse(14, (NOTE,), False),
    TopicEnvelope("alerts", GossipMessage(sender=2, subs=(1,))),
    GossipMessage(sender=42, events=(CAUSAL_NOTE, NOTE),
                  event_ids=(EventId(3, 8),)),
    RetransmitResponse(6, (CAUSAL_NOTE,)),
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "message", SAMPLES, ids=[type(m).__name__ for m in SAMPLES]
    )
    def test_every_message_type(self, message):
        assert decode_binary(encode_binary(message)) == message

    def test_unordered_event_ids_preserve_order(self):
        # The run-length digest encoding must not canonicalize ordering:
        # a shuffled id list decodes in exactly the order it was encoded.
        ids = (EventId(5, 3), EventId(1, 9), EventId(5, 2), EventId(1, 1))
        message = RetransmitRequest(0, ids)
        assert decode_binary(encode_binary(message)).event_ids == ids

    def test_negative_and_large_integers(self):
        message = GossipMessage(sender=2**40,
                                event_ids=(EventId(-5, 2**33),))
        assert decode_binary(encode_binary(message)) == message

    def test_float_timestamps_exact(self):
        created = 0.1 + 0.2  # not exactly representable in decimal
        message = LogUpload(1, Notification(EventId(1, 1), None, created))
        decoded = decode_binary(encode_binary(message))
        assert decoded.notification.created_at == created

    def test_nested_envelope(self):
        message = TopicEnvelope("t", TopicEnvelope("u", NOTE and
                                                   SubscriptionRequest(1)))
        assert decode_binary(encode_binary(message)) == message


class TestEncodeErrors:
    def test_unknown_type_rejected(self):
        with pytest.raises(WireEncodeError):
            encode_binary(("not", "a", "message"))

    def test_non_string_topic_rejected(self):
        with pytest.raises(CodecError):
            encode_binary(TopicEnvelope(42, GossipMessage(sender=1)))

    def test_wire_encode_error_is_codec_error(self):
        assert issubclass(WireEncodeError, CodecError)

    def test_strict_rejects_tuple_payload(self):
        message = LogUpload(1, Notification(EventId(1, 1), (1, 2), 0.0))
        with pytest.raises(WireEncodeError):
            encode_binary(message, strict_payloads=True)
        # Non-strict mode ships it as JSON (the tuple becomes a list, the
        # same lossy embedding the JSON wire format applies).
        decoded = decode_binary(encode_binary(message))
        assert decoded.notification.payload == [1, 2]

    def test_deps_refused_on_records_without_causal_form(self):
        # A deps-carrying notification inside a record type that has no
        # causal binary layout must be refused (so the shard/frame layers
        # fall back losslessly), never silently stripped.
        with pytest.raises(WireEncodeError, match="causal"):
            encode_binary(LogUpload(1, CAUSAL_NOTE))
        with pytest.raises(WireEncodeError, match="causal"):
            encode_binary(RecoveryResponse(2, (CAUSAL_NOTE,), True))
        with pytest.raises(WireEncodeError, match="causal"):
            encode_binary(PbcastData(3, CAUSAL_NOTE, 1))

    def test_strict_rejects_nan_payload(self):
        message = LogUpload(1, Notification(EventId(1, 1), float("nan"), 0.0))
        with pytest.raises(WireEncodeError):
            encode_binary(message, strict_payloads=True)

    def test_strict_rejects_non_string_dict_keys(self):
        message = LogUpload(1, Notification(EventId(1, 1), {1: "x"}, 0.0))
        with pytest.raises(WireEncodeError):
            encode_binary(message, strict_payloads=True)

    def test_strict_accepts_stable_payloads(self):
        payload = {"k": [1, 2.5, "s", None, True]}
        message = LogUpload(1, Notification(EventId(1, 1), payload, 0.0))
        decoded = decode_binary(encode_binary(message, strict_payloads=True))
        assert decoded.notification.payload == payload


class TestDecodeErrors:
    def test_empty_input(self):
        with pytest.raises(CodecError):
            decode_binary(b"")

    def test_unknown_tag(self):
        with pytest.raises(CodecError):
            decode_binary(b"\xff\x00")

    def test_trailing_bytes(self):
        blob = encode_binary(SubscriptionRequest(1)) + b"\x00"
        with pytest.raises(CodecError):
            decode_binary(blob)

    @pytest.mark.parametrize(
        "message", SAMPLES, ids=[type(m).__name__ for m in SAMPLES]
    )
    def test_every_truncation_raises_codec_error(self, message):
        blob = encode_binary(message)
        for cut in range(len(blob)):
            with pytest.raises(CodecError):
                decode_binary(blob[:cut])


class TestSizing:
    def test_wire_bytes_of_matches_encoding(self):
        for message in SAMPLES:
            assert wire_bytes_of(message) == len(encode_binary(message))

    def test_wire_bytes_of_unencodable_is_minus_one(self):
        assert wire_bytes_of(object()) == -1

    def test_codec_wire_size_supports_both_formats(self):
        message = SAMPLES[1]
        assert wire_size(message, fmt="binary") == wire_bytes_of(message)
        assert wire_size(message, fmt="json") > wire_size(message,
                                                          fmt="binary")
        with pytest.raises(ValueError):
            wire_size(message, fmt="morse")

    def test_grouped_digest_is_about_one_byte_per_id(self):
        ids = tuple(EventId(7, seq) for seq in range(1, 101))
        blob = encode_binary(RetransmitRequest(0, ids))
        assert len(blob) < 2 * len(ids)  # ~1 byte/id plus a small header
