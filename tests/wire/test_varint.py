"""Unit tests for the varint primitives under the binary codec."""

import pytest

from repro.core.codec import CodecError
from repro.wire.varint import (
    MAX_VARINT_BYTES,
    VarintRangeError,
    read_svarint,
    read_uvarint,
    unzigzag,
    uvarint_len,
    write_svarint,
    write_uvarint,
    zigzag,
)


def uenc(value: int) -> bytes:
    buf = bytearray()
    write_uvarint(buf, value)
    return bytes(buf)


class TestUnsigned:
    def test_known_encodings(self):
        assert uenc(0) == b"\x00"
        assert uenc(1) == b"\x01"
        assert uenc(127) == b"\x7f"
        assert uenc(128) == b"\x80\x01"
        assert uenc(300) == b"\xac\x02"

    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**21,
                                       2**35, 2**63, 2**69])
    def test_round_trip(self, value):
        encoded = uenc(value)
        assert len(encoded) == uvarint_len(value)
        decoded, pos = read_uvarint(encoded, 0)
        assert decoded == value
        assert pos == len(encoded)

    def test_negative_rejected_on_encode(self):
        with pytest.raises(VarintRangeError):
            uenc(-1)

    def test_oversized_rejected_on_encode(self):
        with pytest.raises(VarintRangeError):
            uenc(1 << (7 * MAX_VARINT_BYTES))

    def test_truncated_input_raises_codec_error(self):
        with pytest.raises(CodecError):
            read_uvarint(b"\x80", 0)
        with pytest.raises(CodecError):
            read_uvarint(b"", 0)

    def test_overlong_input_raises_codec_error(self):
        # Eleven continuation bytes: more than any encoder emits — an
        # adversarial stream must not drive an unbounded shift loop.
        with pytest.raises(CodecError):
            read_uvarint(b"\x80" * (MAX_VARINT_BYTES + 1) + b"\x01", 0)


class TestSigned:
    def test_zigzag_mapping(self):
        assert [zigzag(v) for v in (0, -1, 1, -2, 2)] == [0, 1, 2, 3, 4]
        for value in (0, -1, 1, -2, 2, 12345, -12345):
            assert unzigzag(zigzag(value)) == value

    @pytest.mark.parametrize("value", [0, -1, 1, -64, 63, 10**12, -(10**12)])
    def test_round_trip(self, value):
        buf = bytearray()
        write_svarint(buf, value)
        decoded, pos = read_svarint(bytes(buf), 0)
        assert decoded == value
        assert pos == len(buf)
