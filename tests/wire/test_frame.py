"""Unit tests for the frame layer: batching, version dispatch, splitting."""

import pytest

from repro.core.codec import CodecError
from repro.core.events import Notification
from repro.core.ids import EventId
from repro.core.message import GossipMessage, SubscriptionRequest
from repro.pubsub.peer import TopicEnvelope
from repro.wire import (
    FRAME_BINARY,
    FRAME_JSON,
    decode_frame,
    encode_frame,
    pack_datagrams,
    split_oversize,
)


def make_gossip(sender=1, n_events=3, payload="x" * 40):
    return GossipMessage(
        sender=sender,
        events=tuple(Notification(EventId(sender, seq), payload, float(seq))
                     for seq in range(1, n_events + 1)),
        event_ids=tuple(EventId(2, seq) for seq in range(1, 6)),
    )


class TestFrameRoundTrip:
    @pytest.mark.parametrize("fmt", ["binary", "json"])
    def test_multi_message_frame(self, fmt):
        messages = [make_gossip(), SubscriptionRequest(9),
                    TopicEnvelope("t", make_gossip(sender=2))]
        frame = encode_frame(7, messages, fmt=fmt)
        sender, decoded = decode_frame(frame)
        assert sender == 7
        assert decoded == messages

    def test_version_byte_identifies_format(self):
        assert encode_frame(1, [make_gossip()], fmt="binary")[0] \
            == FRAME_BINARY
        assert encode_frame(1, [make_gossip()], fmt="json")[0] == FRAME_JSON

    def test_version_bytes_disjoint_from_legacy_text(self):
        # Legacy datagrams are "pid|json" — their first byte is an ASCII
        # digit.  The version bytes must never collide with that range.
        assert not (0x30 <= FRAME_JSON <= 0x39)
        assert not (0x30 <= FRAME_BINARY <= 0x39)

    def test_empty_frame(self):
        sender, decoded = decode_frame(encode_frame(3, []))
        assert sender == 3
        assert decoded == []

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            encode_frame(1, [], fmt="xml")


class TestFrameDecodeErrors:
    def test_empty_input(self):
        with pytest.raises(CodecError):
            decode_frame(b"")

    def test_wrong_version_byte(self):
        frame = bytearray(encode_frame(1, [SubscriptionRequest(2)]))
        frame[0] = 0x7E
        with pytest.raises(CodecError):
            decode_frame(bytes(frame))

    def test_truncation_always_codec_error(self):
        frame = encode_frame(5, [make_gossip(), SubscriptionRequest(2)])
        for cut in range(len(frame)):
            with pytest.raises(CodecError):
                decode_frame(frame[:cut])

    def test_trailing_bytes_rejected(self):
        frame = encode_frame(5, [SubscriptionRequest(2)]) + b"\x00"
        with pytest.raises(CodecError):
            decode_frame(frame)

    def test_absurd_count_rejected_before_allocation(self):
        # version + sender + count claiming 2^40 messages in a tiny input.
        from repro.wire.varint import write_svarint, write_uvarint
        frame = bytearray([FRAME_BINARY])
        write_svarint(frame, 1)
        write_uvarint(frame, 2**40)
        with pytest.raises(CodecError):
            decode_frame(bytes(frame))


class TestSplitOversize:
    def test_split_covers_every_element_once(self):
        gossip = make_gossip(n_events=49, payload="y" * 30)

        def fits(part):
            from repro.wire import encode_binary
            blob = encode_binary(part)
            return (FRAME_BINARY, blob) if len(blob) <= 400 else None

        parts = split_oversize(gossip, fits)
        assert parts is not None and len(parts) > 1
        events = [e for part, _v, _b in parts for e in part.events]
        assert tuple(events) == gossip.events
        ids = [i for part, _v, _b in parts for i in part.event_ids]
        assert tuple(ids) == gossip.event_ids

    def test_envelope_wrapped_gossip_splits(self):
        wrapped = TopicEnvelope("t", make_gossip(n_events=20, payload="z" * 50))

        def fits(part):
            from repro.wire import encode_binary
            blob = encode_binary(part)
            return (FRAME_BINARY, blob) if len(blob) <= 300 else None

        parts = split_oversize(wrapped, fits)
        assert parts is not None
        assert all(isinstance(p, TopicEnvelope) and p.topic == "t"
                   for p, _v, _b in parts)

    def test_single_huge_element_unsplittable(self):
        gossip = GossipMessage(
            sender=1,
            events=(Notification(EventId(1, 1), "q" * 1000, 0.0),),
        )
        assert split_oversize(gossip, lambda part: None) is None

    def test_non_gossip_unsplittable(self):
        assert split_oversize(SubscriptionRequest(1), lambda p: None) is None


class TestPackDatagrams:
    def test_batches_into_few_frames(self):
        messages = [make_gossip(sender=s) for s in range(10)]
        plan = pack_datagrams(1, messages, max_bytes=65_000)
        assert len(plan.datagrams) == 1
        _sender, decoded = decode_frame(plan.datagrams[0])
        assert decoded == messages

    def test_respects_cap(self):
        messages = [make_gossip(sender=s) for s in range(30)]
        plan = pack_datagrams(1, messages, max_bytes=600)
        assert len(plan.datagrams) > 1
        recovered = []
        for datagram in plan.datagrams:
            assert len(datagram) <= 600
            recovered.extend(decode_frame(datagram)[1])
        assert recovered == messages

    def test_oversize_gossip_split_not_dropped(self):
        big = make_gossip(n_events=60, payload="w" * 40)
        plan = pack_datagrams(1, [big], max_bytes=700)
        assert plan.oversize == []
        assert len(plan.splits) == 1
        original, size, n_parts = plan.splits[0]
        assert original is big and size > 700 and n_parts > 1
        events = [e for d in plan.datagrams
                  for m in decode_frame(d)[1] for e in m.events]
        assert tuple(events) == big.events

    def test_unsplittable_reported_oversize(self):
        huge = GossipMessage(
            sender=1,
            events=(Notification(EventId(1, 1), "v" * 2000, 0.0),),
        )
        plan = pack_datagrams(1, [huge], max_bytes=500)
        assert plan.datagrams == []
        assert len(plan.oversize) == 1
        assert plan.oversize[0][0] is huge

    def test_mixed_formats_separate_frames(self):
        # A message with no binary form rides in its own JSON frame while
        # the rest stay binary.
        class Custom:
            def __eq__(self, other):
                return isinstance(other, Custom)
        # Custom types fail binary *and* JSON codecs; use a JSON-stable
        # case instead: force fmt="json" for one call and check homogeneity.
        messages = [make_gossip(sender=s) for s in range(3)]
        plan = pack_datagrams(1, messages, fmt="json")
        assert all(d[0] == FRAME_JSON for d in plan.datagrams)
        plan = pack_datagrams(1, messages, fmt="binary")
        assert all(d[0] == FRAME_BINARY for d in plan.datagrams)
