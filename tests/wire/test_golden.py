"""Golden byte-vector fixtures: the binary format's compatibility contract.

A failure here means the wire format changed.  That is a compatibility
break for any peer or shard speaking the old format — bump the frame
version byte and add new vectors rather than editing the pinned hex.
"""

from repro.wire import GOLDEN_VECTORS, check_golden_vectors
from repro.wire.binary import decode_binary, encode_binary


class TestGoldenVectors:
    def test_all_vectors_hold(self):
        assert check_golden_vectors() == len(GOLDEN_VECTORS)

    def test_vectors_cover_encode_and_decode(self):
        for message, expected_hex in GOLDEN_VECTORS:
            assert encode_binary(message).hex() == expected_hex
            assert decode_binary(bytes.fromhex(expected_hex)) == message

    def test_vector_set_is_nontrivial(self):
        kinds = {type(m).__name__ for m, _ in GOLDEN_VECTORS}
        assert {"GossipMessage", "PbcastDigest", "TopicEnvelope"} <= kinds

    def test_double_echo_records_are_pinned(self):
        # The Echo/Ready vectors also pin the payload_digest derivation:
        # the embedded digests are payload_digest("hello") and
        # payload_digest({"a": 1}).
        from repro.core.node import payload_digest

        kinds = {type(m).__name__ for m, _ in GOLDEN_VECTORS}
        assert {"EchoMessage", "ReadyMessage"} <= kinds
        digests = {m.digest for m, _ in GOLDEN_VECTORS
                   if type(m).__name__ in ("EchoMessage", "ReadyMessage")}
        assert payload_digest("hello") in digests
        assert payload_digest({"a": 1}) in digests
