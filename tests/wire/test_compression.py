"""Acceptance: binary gossips are at least 2x smaller than JSON.

The corpus is real protocol traffic: every message emitted during a
fixed-seed n=500 serial run, captured at the engine's own accounting point
(``record_sends``), so the sizes reflect genuine digest/view/event mixes
rather than synthetic shapes.
"""

from repro.core import LpbcastConfig
from repro.core.message import GossipMessage
from repro.sim import build_lpbcast_nodes, create_simulation
from repro.telemetry import Telemetry
from repro.wire import encode_binary


class _CapturingTelemetry(Telemetry):
    """Telemetry that additionally keeps the emitted message objects."""

    def __init__(self) -> None:
        super().__init__()
        self.messages = []

    def record_sends(self, round_no, src, outgoings):
        self.messages.extend(out.message for out in outgoings)
        super().record_sends(round_no, src, outgoings)


def build_corpus(n=500, rounds=6, seed=2026):
    sim = create_simulation("serial", seed=seed)
    capture = _CapturingTelemetry()
    sim.telemetry = capture
    nodes = build_lpbcast_nodes(
        n, LpbcastConfig(fanout=4, view_max=12), seed=seed
    )
    sim.add_nodes(nodes)
    for round_no in range(1, 4):
        sim.nodes[round_no].lpb_cast(f"event-{round_no}", float(round_no))
    sim.run(rounds)
    return capture.messages


class TestCompressionRatio:
    def test_binary_at_least_2x_smaller_on_n500_corpus(self):
        from repro.core.codec import to_json

        corpus = build_corpus()
        gossips = [m for m in corpus if isinstance(m, GossipMessage)]
        assert len(gossips) > 1000, "corpus too small to be meaningful"
        json_bytes = sum(len(to_json(m).encode("utf-8")) for m in gossips)
        binary_bytes = sum(len(encode_binary(m)) for m in gossips)
        ratio = json_bytes / binary_bytes
        assert ratio >= 2.0, (
            f"binary gossips only {ratio:.2f}x smaller than JSON "
            f"({binary_bytes} vs {json_bytes} bytes over {len(gossips)} "
            f"gossips); the acceptance floor is 2x"
        )

    def test_whole_corpus_round_trips(self):
        from repro.wire import decode_binary

        for message in build_corpus(n=120, rounds=4):
            assert decode_binary(encode_binary(message)) == message
