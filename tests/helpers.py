"""Shared builders for the test suite."""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core import GossipMessage, LpbcastConfig, LpbcastNode
from repro.core.events import Notification, Unsubscription
from repro.core.ids import EventId
from repro.metrics import DeliveryLog
from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes


def make_node(
    pid: int = 0,
    seed: int = 0,
    view: tuple = (),
    **config_overrides,
) -> LpbcastNode:
    """A single node with a seeded rng and explicit initial view."""
    config = LpbcastConfig(**config_overrides) if config_overrides else LpbcastConfig()
    return LpbcastNode(pid, config, random.Random(seed), initial_view=view)


def gossip(
    sender: int = 99,
    subs: tuple = (),
    unsubs: tuple = (),
    events: tuple = (),
    event_ids: tuple = (),
) -> GossipMessage:
    return GossipMessage(
        sender, subs=subs, unsubs=unsubs, events=events, event_ids=event_ids
    )


def notification(origin: int = 1, seq: int = 1, payload=None,
                 deps: tuple = ()) -> Notification:
    return Notification(EventId(origin, seq), payload, 0.0, deps)


def unsub(pid: int, timestamp: float = 0.0) -> Unsubscription:
    return Unsubscription(pid, timestamp)


def small_system(
    n: int = 20,
    seed: int = 0,
    loss_rate: float = 0.0,
    config: Optional[LpbcastConfig] = None,
):
    """(sim, nodes, log) triple for integration-style unit tests."""
    cfg = config if config is not None else LpbcastConfig(fanout=3, view_max=8)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    network = NetworkModel(loss_rate=loss_rate, rng=random.Random(seed + 1000))
    sim = RoundSimulation(network, seed=seed)
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    return sim, nodes, log


def run_dissemination(n: int = 30, rounds: int = 12, seed: int = 0,
                      loss_rate: float = 0.0, config=None):
    """Publish one event at node 0 and run; returns (sim, nodes, log, event)."""
    sim, nodes, log = small_system(n, seed=seed, loss_rate=loss_rate, config=config)
    event = nodes[0].lpb_cast("payload", now=0.0)
    sim.run(rounds)
    return sim, nodes, log, event
