"""Tests for the run recorder."""

import io

import pytest

from repro.sim.recorder import RunRecorder

from ..helpers import small_system


def recorded_run(rounds=6, n=15, publish=True):
    sim, nodes, log = small_system(n=n, seed=22)
    recorder = RunRecorder(nodes)
    sim.add_observer(recorder.on_round)
    if publish:
        nodes[0].lpb_cast("x", now=0.0)
    sim.run(rounds)
    return sim, nodes, recorder


class TestRecording:
    def test_one_record_per_round(self):
        _, _, recorder = recorded_run(rounds=6)
        assert len(recorder) == 6
        assert recorder.series("round") == [1, 2, 3, 4, 5, 6]

    def test_delivery_progress_monotone(self):
        _, _, recorder = recorded_run()
        delivered = recorder.series("delivered_total")
        assert all(b >= a for a, b in zip(delivered, delivered[1:]))
        assert recorder.last()["delivered_total"] == 15  # everyone got it

    def test_view_stats_present(self):
        _, _, recorder = recorded_run()
        assert recorder.last()["in_degree_mean"] == pytest.approx(8.0)

    def test_view_stats_optional(self):
        sim, nodes, log = small_system(n=10, seed=23)
        recorder = RunRecorder(nodes, sample_view_stats=False)
        sim.add_observer(recorder.on_round)
        sim.run(2)
        assert "in_degree_mean" not in recorder.last()

    def test_alive_count_tracks_crashes(self):
        sim, nodes, log = small_system(n=10, seed=24)
        recorder = RunRecorder(nodes)
        sim.add_observer(recorder.on_round)
        sim.run(2)
        sim.crash(nodes[0].pid)
        sim.run(2)
        assert recorder.series("alive") == [10, 10, 9, 9]

    def test_last_empty_raises(self):
        with pytest.raises(ValueError):
            RunRecorder([]).last()


class TestExport:
    def test_json_lines_round_trip(self):
        _, _, recorder = recorded_run(rounds=3)
        text = recorder.to_json_lines()
        parsed = RunRecorder.from_json_lines(text)
        assert parsed == recorder.records

    def test_streaming_to_file_object(self):
        sim, nodes, log = small_system(n=10, seed=25)
        buffer = io.StringIO()
        recorder = RunRecorder(nodes, stream=buffer)
        sim.add_observer(recorder.on_round)
        sim.run(3)
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 3
        assert RunRecorder.from_json_lines(buffer.getvalue()) == recorder.records

    def test_buffer_pressure_visible_under_load(self):
        # Starved id buffers pin at their bound and evictions climb —
        # the Fig. 6 mechanism, visible in the operational record.
        from repro.core import LpbcastConfig
        from repro.sim import BroadcastWorkload, RoundSimulation, build_lpbcast_nodes

        cfg = LpbcastConfig(fanout=3, view_max=8, event_ids_max=10,
                            events_max=10)
        nodes = build_lpbcast_nodes(20, cfg, seed=26)
        sim = RoundSimulation(seed=26)
        sim.add_nodes(nodes)
        workload = BroadcastWorkload(nodes[:10], events_per_round=2,
                                     start=1, stop=8)
        sim.add_round_hook(workload.on_round)
        recorder = RunRecorder(nodes)
        sim.add_observer(recorder.on_round)
        sim.run(8)
        assert recorder.last()["event_ids_occupancy"] == pytest.approx(10.0)
        assert recorder.last()["event_ids_evicted_total"] > 0
