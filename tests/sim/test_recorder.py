"""Tests for the run recorder."""

import io

import pytest

from repro.sim.recorder import RunRecorder

from ..helpers import small_system


def recorded_run(rounds=6, n=15, publish=True):
    sim, nodes, log = small_system(n=n, seed=22)
    recorder = RunRecorder(nodes)
    sim.add_observer(recorder.on_round)
    if publish:
        nodes[0].lpb_cast("x", now=0.0)
    sim.run(rounds)
    return sim, nodes, recorder


def engine_run(engine, rounds=6, n=16, seed=31, shards=2):
    """The same recorded scenario on any round engine."""
    import random

    from repro.core import LpbcastConfig
    from repro.sim import NetworkModel, build_lpbcast_nodes, create_simulation

    cfg = LpbcastConfig(fanout=3, view_max=8)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    network = NetworkModel(loss_rate=0.05, rng=random.Random(seed + 1))
    extra = {"shards": shards} if engine == "sharded" else {}
    sim = create_simulation(engine, network=network, seed=seed, **extra)
    sim.add_nodes(nodes)
    recorder = RunRecorder(nodes)
    sim.add_observer(recorder.on_round)

    def publish(round_no, s):
        if round_no <= 3:
            s.nodes[nodes[round_no].pid].lpb_cast(f"evt-{round_no}",
                                                  float(round_no))

    sim.add_round_hook(publish)
    try:
        sim.run(rounds)
    finally:
        close = getattr(sim, "close", None)
        if close is not None:
            close()
    return sim, nodes, recorder


class TestRecording:
    def test_one_record_per_round(self):
        _, _, recorder = recorded_run(rounds=6)
        assert len(recorder) == 6
        assert recorder.series("round") == [1, 2, 3, 4, 5, 6]

    def test_delivery_progress_monotone(self):
        _, _, recorder = recorded_run()
        delivered = recorder.series("delivered_total")
        assert all(b >= a for a, b in zip(delivered, delivered[1:]))
        assert recorder.last()["delivered_total"] == 15  # everyone got it

    def test_view_stats_present(self):
        _, _, recorder = recorded_run()
        assert recorder.last()["in_degree_mean"] == pytest.approx(8.0)

    def test_view_stats_optional(self):
        sim, nodes, log = small_system(n=10, seed=23)
        recorder = RunRecorder(nodes, sample_view_stats=False)
        sim.add_observer(recorder.on_round)
        sim.run(2)
        assert "in_degree_mean" not in recorder.last()

    def test_alive_count_tracks_crashes(self):
        sim, nodes, log = small_system(n=10, seed=24)
        recorder = RunRecorder(nodes)
        sim.add_observer(recorder.on_round)
        sim.run(2)
        sim.crash(nodes[0].pid)
        sim.run(2)
        assert recorder.series("alive") == [10, 10, 9, 9]

    def test_last_empty_raises(self):
        with pytest.raises(ValueError):
            RunRecorder([]).last()


class TestExport:
    def test_json_lines_round_trip(self):
        _, _, recorder = recorded_run(rounds=3)
        text = recorder.to_json_lines()
        parsed = RunRecorder.from_json_lines(text)
        assert parsed == recorder.records

    def test_streaming_to_file_object(self):
        sim, nodes, log = small_system(n=10, seed=25)
        buffer = io.StringIO()
        recorder = RunRecorder(nodes, stream=buffer)
        sim.add_observer(recorder.on_round)
        sim.run(3)
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 3
        assert RunRecorder.from_json_lines(buffer.getvalue()) == recorder.records

    def test_json_lines_identical_serial_vs_sharded(self):
        # The export of a sharded run must be byte-identical to the serial
        # engine's for the same seed (aggregate merge, not node pickles).
        texts = {}
        for engine in ("serial", "sharded"):
            sim, nodes, recorder = engine_run(engine)
            texts[engine] = recorder.to_json_lines()
        assert texts["serial"] == texts["sharded"]

    def test_buffer_pressure_visible_under_load(self):
        # Starved id buffers pin at their bound and evictions climb —
        # the Fig. 6 mechanism, visible in the operational record.
        from repro.core import LpbcastConfig
        from repro.sim import BroadcastWorkload, RoundSimulation, build_lpbcast_nodes

        cfg = LpbcastConfig(fanout=3, view_max=8, event_ids_max=10,
                            events_max=10)
        nodes = build_lpbcast_nodes(20, cfg, seed=26)
        sim = RoundSimulation(seed=26)
        sim.add_nodes(nodes)
        workload = BroadcastWorkload(nodes[:10], events_per_round=2,
                                     start=1, stop=8)
        sim.add_round_hook(workload.on_round)
        recorder = RunRecorder(nodes)
        sim.add_observer(recorder.on_round)
        sim.run(8)
        assert recorder.last()["event_ids_occupancy"] == pytest.approx(10.0)
        assert recorder.last()["event_ids_evicted_total"] > 0


class TestAllEngines:
    def test_sharded_records_equal_serial(self):
        # Same seed, same scenario: the sharded engine's per-round records
        # must match the serial engine's exactly (including float view
        # statistics — both derive them from the same merged integers).
        _, _, serial = engine_run("serial")
        _, _, sharded = engine_run("sharded")
        assert serial.records == sharded.records
        assert serial.last()["delivered_total"] > 0
        assert "in_degree_mean" in serial.last()

    def test_sharded_crash_mid_run_still_matches(self):
        import random

        from repro.core import LpbcastConfig
        from repro.sim import (NetworkModel, build_lpbcast_nodes,
                               create_simulation)

        records = {}
        for engine in ("serial", "sharded"):
            cfg = LpbcastConfig(fanout=3, view_max=8)
            nodes = build_lpbcast_nodes(12, cfg, seed=33)
            extra = {"shards": 2} if engine == "sharded" else {}
            sim = create_simulation(engine, seed=33, **extra)
            sim.add_nodes(nodes)
            recorder = RunRecorder(nodes)
            sim.add_observer(recorder.on_round)
            nodes[0].lpb_cast("x", now=0.0)
            try:
                sim.run(2)
                sim.crash(nodes[3].pid)
                sim.crash(nodes[7].pid)
                sim.run(2)
            finally:
                close = getattr(sim, "close", None)
                if close is not None:
                    close()
            records[engine] = recorder.records
        assert records["serial"] == records["sharded"]
        assert records["serial"][-1]["alive"] == 10

    def test_async_runtime_snapshot(self):
        # The discrete-event runtime exposes the same aggregate feed, so
        # the recorder can snapshot it directly (workloads poll it).
        from repro.core import LpbcastConfig
        from repro.sim import AsyncGossipRuntime, build_lpbcast_nodes

        cfg = LpbcastConfig(fanout=3, view_max=8, gossip_period=1.0)
        nodes = build_lpbcast_nodes(12, cfg, seed=34)
        runtime = AsyncGossipRuntime(seed=34)
        runtime.add_nodes(nodes)
        nodes[0].lpb_cast("x", now=0.0)
        runtime.run_until(6.0)
        recorder = RunRecorder(nodes)
        record = recorder.snapshot(runtime, round_number=6)
        assert record["alive"] == 12
        assert record["delivered_total"] > 0
        assert record["in_degree_mean"] > 0

    def test_crash_all_nodes_edge(self):
        # alive == []: totals and occupancies report zero, view statistics
        # are omitted (no graph), and nothing raises on either engine.
        for engine in ("serial", "sharded"):
            import random

            from repro.core import LpbcastConfig
            from repro.sim import build_lpbcast_nodes, create_simulation

            cfg = LpbcastConfig(fanout=3, view_max=8)
            nodes = build_lpbcast_nodes(8, cfg, seed=35)
            extra = {"shards": 2} if engine == "sharded" else {}
            sim = create_simulation(engine, seed=35, **extra)
            sim.add_nodes(nodes)
            recorder = RunRecorder(nodes)
            sim.add_observer(recorder.on_round)
            try:
                sim.run(1)
                for node in nodes:
                    sim.crash(node.pid)
                sim.run(1)
            finally:
                close = getattr(sim, "close", None)
                if close is not None:
                    close()
            last = recorder.last()
            assert last["alive"] == 0
            assert last["events_occupancy"] == 0.0
            assert last["event_ids_occupancy"] == 0.0
            assert "in_degree_mean" not in last
