"""Tests for publication workloads."""

import random

import pytest

from repro.core import LpbcastConfig
from repro.sim import (
    AsyncGossipRuntime,
    BroadcastWorkload,
    PoissonWorkload,
    RoundSimulation,
    build_lpbcast_nodes,
)


class TestBroadcastWorkload:
    def make(self, n=10, rate=2, start=1, stop=None):
        nodes = build_lpbcast_nodes(n, LpbcastConfig(view_max=5), seed=0)
        sim = RoundSimulation(seed=0)
        sim.add_nodes(nodes)
        workload = BroadcastWorkload(nodes, events_per_round=rate,
                                     start=start, stop=stop)
        sim.add_round_hook(workload.on_round)
        return sim, nodes, workload

    def test_publishes_at_rate(self):
        sim, nodes, workload = self.make(n=5, rate=3)
        sim.run(4)
        assert len(workload) == 5 * 3 * 4

    def test_window_respected(self):
        sim, nodes, workload = self.make(n=5, rate=1, start=2, stop=4)
        sim.run(6)
        rounds = {r.published_at for r in workload.records}
        assert rounds == {2.0, 3.0}

    def test_crashed_publisher_skipped(self):
        sim, nodes, workload = self.make(n=5, rate=1)
        sim.crash(nodes[0].pid)
        sim.run(2)
        publishers = {r.publisher for r in workload.records}
        assert nodes[0].pid not in publishers

    def test_records_have_unique_ids(self):
        sim, nodes, workload = self.make(n=5, rate=2)
        sim.run(3)
        ids = workload.published_ids()
        assert len(ids) == len(set(ids))

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            BroadcastWorkload([], events_per_round=-1)

    def test_custom_publish_fn(self):
        calls = []

        def publisher(node, now):
            calls.append((node.pid, now))
            return node.lpb_cast("custom", now)

        nodes = build_lpbcast_nodes(3, LpbcastConfig(view_max=3), seed=0)
        sim = RoundSimulation(seed=0)
        sim.add_nodes(nodes)
        workload = BroadcastWorkload(nodes, events_per_round=1,
                                     publish_fn=publisher)
        sim.add_round_hook(workload.on_round)
        sim.run(1)
        assert len(calls) == 3


class TestAsyncIntegration:
    def test_on_tick_publishes_per_publisher_tick(self):
        nodes = build_lpbcast_nodes(5, LpbcastConfig(view_max=4), seed=1)
        runtime = AsyncGossipRuntime(seed=1)
        runtime.add_nodes(nodes)
        workload = BroadcastWorkload(nodes[:2], events_per_round=1, start=0)
        runtime.on_tick_complete(workload.on_tick)
        runtime.run_until(5.0)
        publishers = {r.publisher for r in workload.records}
        assert publishers == {nodes[0].pid, nodes[1].pid}
        assert len(workload) >= 8  # ~5 ticks x 2 publishers


class TestPoissonWorkload:
    def test_rate_roughly_matches(self):
        nodes = build_lpbcast_nodes(4, LpbcastConfig(view_max=3), seed=2)
        runtime = AsyncGossipRuntime(seed=2)
        runtime.add_nodes(nodes)
        workload = PoissonWorkload(runtime, nodes, rate=2.0, until=50.0,
                                   rng=random.Random(5))
        runtime.run_until(50.0)
        expected = 4 * 2.0 * 50.0
        assert 0.7 * expected < len(workload) < 1.3 * expected

    def test_crashed_publisher_stops(self):
        nodes = build_lpbcast_nodes(2, LpbcastConfig(view_max=1, fanout=1), seed=2)
        runtime = AsyncGossipRuntime(seed=2)
        runtime.add_nodes(nodes)
        workload = PoissonWorkload(runtime, [nodes[0]], rate=1.0, until=20.0,
                                   rng=random.Random(5))
        runtime.crash_at(nodes[0].pid, 10.0)
        runtime.run_until(20.0)
        assert all(r.published_at <= 10.0 for r in workload.records)

    def test_invalid_rate(self):
        nodes = build_lpbcast_nodes(2, LpbcastConfig(view_max=1, fanout=1), seed=2)
        runtime = AsyncGossipRuntime(seed=2)
        with pytest.raises(ValueError):
            PoissonWorkload(runtime, nodes, rate=0.0, until=5.0)
