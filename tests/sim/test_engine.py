"""Tests for the discrete-event kernel."""

import pytest

from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fifo(self):
        sim = Simulator()
        fired = []
        for label in "abc":
            sim.schedule(1.0, lambda l=label: fired.append(l))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_schedule_during_execution(self):
        sim = Simulator()
        fired = []
        def chain():
            fired.append(sim.now)
            if sim.now < 3:
                sim.schedule(1.0, chain)
        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_cannot_schedule_into_past(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_lazy(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        assert sim.pending() == 1  # entry remains until popped
        sim.run()
        assert sim.pending() == 0


class TestRunUntil:
    def test_runs_only_due_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run_until(2.0)
        assert fired == [1]
        assert sim.now == 2.0

    def test_boundary_event_included(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run_until(2.0)
        assert fired == [2]

    def test_deadline_in_past_rejected(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(ValueError):
            sim.run_until(1.0)

    def test_idle(self):
        sim = Simulator()
        assert sim.idle()
        sim.schedule(1.0, lambda: None)
        assert not sim.idle()

    def test_run_max_events(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        assert sim.run(max_events=3) == 3
        assert sim.pending() == 2

    def test_events_executed_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 1
