"""Tests for the asynchronous discrete-event runtime (Sec. 5.2 substitute)."""

import random

import pytest

from repro.core import LpbcastConfig
from repro.core.message import Outgoing
from repro.metrics import DeliveryLog
from repro.sim import (
    AsyncGossipRuntime,
    NetworkModel,
    build_lpbcast_nodes,
    constant_latency,
)


class Ticker:
    """Counts its own ticks; sends nothing."""

    def __init__(self, pid, period=1.0):
        self.pid = pid
        self.config = type("Cfg", (), {"gossip_period": period})()
        self.ticks = []

    def on_tick(self, now):
        self.ticks.append(now)
        return []

    def handle_message(self, sender, message, now):
        return []


class Sender(Ticker):
    def __init__(self, pid, peer, period=1.0):
        super().__init__(pid, period)
        self.peer = peer
        self.received = []

    def on_tick(self, now):
        super().on_tick(now)
        return [Outgoing(self.peer, ("msg", now))]

    def handle_message(self, sender, message, now):
        self.received.append((sender, message, now))
        return []


class TestTimers:
    def test_ticks_at_own_period(self):
        runtime = AsyncGossipRuntime(seed=1)
        node = Ticker(0, period=2.0)
        runtime.add_node(node)
        runtime.run_until(10.0)
        assert 4 <= len(node.ticks) <= 6
        gaps = [b - a for a, b in zip(node.ticks, node.ticks[1:])]
        assert all(abs(g - 2.0) < 1e-9 for g in gaps)

    def test_phases_not_synchronized(self):
        runtime = AsyncGossipRuntime(seed=1)
        nodes = [Ticker(i) for i in range(10)]
        for node in nodes:
            runtime.add_node(node)
        runtime.run_until(1.0)
        first_ticks = {round(n.ticks[0], 6) for n in nodes if n.ticks}
        assert len(first_ticks) > 5  # distinct random phases

    def test_duplicate_pid_rejected(self):
        runtime = AsyncGossipRuntime(seed=1)
        runtime.add_node(Ticker(0))
        with pytest.raises(ValueError):
            runtime.add_node(Ticker(0))

    def test_default_period_for_configless_node(self):
        runtime = AsyncGossipRuntime(seed=1, default_period=0.5)

        class Bare:
            pid = 7
            def on_tick(self, now): return []
            def handle_message(self, s, m, now): return []

        runtime.add_node(Bare())
        runtime.run_until(5.0)
        assert runtime.sim.events_executed >= 9


class TestDelivery:
    def test_latency_applied(self):
        net = NetworkModel(loss_rate=0.0, rng=random.Random(0),
                           latency=constant_latency(0.25))
        runtime = AsyncGossipRuntime(network=net, seed=1)
        a, b = Sender(0, 1), Sender(1, 0)
        runtime.add_node(a)
        runtime.add_node(b)
        runtime.run_until(5.0)
        for sender, (tag, sent_at), received_at in a.received:
            assert abs((received_at - sent_at) - 0.25) < 1e-9

    def test_loss_suppresses_delivery(self):
        net = NetworkModel(loss_rate=1.0, rng=random.Random(0))
        runtime = AsyncGossipRuntime(network=net, seed=1)
        a, b = Sender(0, 1), Sender(1, 0)
        runtime.add_node(a)
        runtime.add_node(b)
        runtime.run_until(5.0)
        assert a.received == [] and b.received == []

    def test_crash_silences(self):
        runtime = AsyncGossipRuntime(seed=1)
        a, b = Sender(0, 1), Sender(1, 0)
        runtime.add_node(a)
        runtime.add_node(b)
        runtime.crash_at(1, 0.0)
        runtime.run_until(5.0)
        assert a.received == []  # b never ticked
        assert not runtime.alive(1)

    def test_call_at(self):
        runtime = AsyncGossipRuntime(seed=1)
        fired = []
        runtime.call_at(2.0, lambda: fired.append(runtime.now))
        runtime.run_until(5.0)
        assert fired == [2.0]

    def test_tick_listener(self):
        runtime = AsyncGossipRuntime(seed=1)
        node = Ticker(0)
        runtime.add_node(node)
        ticks = []
        runtime.on_tick_complete(lambda pid, now: ticks.append(pid))
        runtime.run_until(3.0)
        assert ticks.count(0) == len(node.ticks)


class TestEndToEnd:
    def test_lpbcast_disseminates_under_async_runtime(self):
        cfg = LpbcastConfig(fanout=3, view_max=10)
        nodes = build_lpbcast_nodes(30, cfg, seed=3)
        net = NetworkModel(loss_rate=0.05, rng=random.Random(9),
                           latency=constant_latency(0.1))
        runtime = AsyncGossipRuntime(network=net, seed=3)
        runtime.add_nodes(nodes)
        log = DeliveryLog().attach(nodes)
        runtime.call_at(1.0, lambda: nodes[0].lpb_cast("x", now=runtime.now))
        runtime.run_until(15.0)
        event_ids = log.known_events()
        assert len(event_ids) == 1
        assert log.delivery_count(event_ids[0]) == 30
