"""Tests for initial-membership construction."""

import random

import pytest

from repro.core import LpbcastConfig
from repro.sim import build_lpbcast_nodes, uniform_random_views


class TestUniformRandomViews:
    def test_size_and_self_exclusion(self):
        views = uniform_random_views(range(20), 5, random.Random(0))
        for pid, view in views.items():
            assert len(view) == 5
            assert pid not in view
            assert len(set(view)) == 5

    def test_small_population_capped(self):
        views = uniform_random_views(range(3), 10, random.Random(0))
        assert all(len(v) == 2 for v in views.values())

    def test_approximately_uniform_in_degree(self):
        views = uniform_random_views(range(100), 10, random.Random(0))
        in_degree = {pid: 0 for pid in range(100)}
        for view in views.values():
            for target in view:
                in_degree[target] += 1
        mean = sum(in_degree.values()) / 100
        assert mean == pytest.approx(10.0)
        assert max(in_degree.values()) < 30


class TestBuildLpbcastNodes:
    def test_count_and_pids(self):
        nodes = build_lpbcast_nodes(10, seed=0)
        assert [n.pid for n in nodes] == list(range(10))

    def test_views_filled_to_bound(self):
        cfg = LpbcastConfig(view_max=7)
        nodes = build_lpbcast_nodes(30, cfg, seed=0)
        assert all(len(n.view) == 7 for n in nodes)

    def test_first_pid_offset(self):
        nodes = build_lpbcast_nodes(5, seed=0, first_pid=100)
        assert [n.pid for n in nodes] == list(range(100, 105))

    def test_reproducible(self):
        a = build_lpbcast_nodes(10, seed=3)
        b = build_lpbcast_nodes(10, seed=3)
        assert all(
            set(x.view.snapshot()) == set(y.view.snapshot())
            for x, y in zip(a, b)
        )

    def test_seed_changes_views(self):
        cfg = LpbcastConfig(view_max=4)
        a = build_lpbcast_nodes(10, cfg, seed=3)
        b = build_lpbcast_nodes(10, cfg, seed=4)
        assert any(
            set(x.view.snapshot()) != set(y.view.snapshot())
            for x, y in zip(a, b)
        )

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            build_lpbcast_nodes(0)

    def test_node_factory_hook(self):
        captured = []

        def factory(pid, cfg, rng, initial_view):
            from repro.core import LpbcastNode
            captured.append(pid)
            return LpbcastNode(pid, cfg, rng, initial_view=initial_view)

        build_lpbcast_nodes(3, seed=0, node_factory=factory)
        assert captured == [0, 1, 2]
