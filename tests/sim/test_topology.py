"""Tests for initial-membership construction."""

import random

import pytest

from repro.core import LpbcastConfig
from repro.sim import build_lpbcast_nodes, uniform_random_views


class TestUniformRandomViews:
    def test_size_and_self_exclusion(self):
        views = uniform_random_views(range(20), 5, random.Random(0))
        for pid, view in views.items():
            assert len(view) == 5
            assert pid not in view
            assert len(set(view)) == 5

    def test_small_population_capped(self):
        views = uniform_random_views(range(3), 10, random.Random(0))
        assert all(len(v) == 2 for v in views.values())

    def test_approximately_uniform_in_degree(self):
        views = uniform_random_views(range(100), 10, random.Random(0))
        in_degree = {pid: 0 for pid in range(100)}
        for view in views.values():
            for target in view:
                in_degree[target] += 1
        mean = sum(in_degree.values()) / 100
        assert mean == pytest.approx(10.0)
        assert max(in_degree.values()) < 30


class TestUniformRandomViewsEdgeCases:
    def test_single_process_gets_empty_view(self):
        views = uniform_random_views([0], 5, random.Random(0))
        assert views == {0: []}

    def test_zero_view_size(self):
        views = uniform_random_views(range(10), 0, random.Random(0))
        assert all(view == [] for view in views.values())

    def test_same_rng_seed_reproduces_views(self):
        a = uniform_random_views(range(50), 8, random.Random(42))
        b = uniform_random_views(range(50), 8, random.Random(42))
        assert a == b

    def test_views_stay_within_population(self):
        pids = [3, 7, 11, 20, 99]
        views = uniform_random_views(pids, 3, random.Random(1))
        population = set(pids)
        for pid, view in views.items():
            assert set(view) <= population - {pid}


class TestBuildLpbcastNodes:
    def test_count_and_pids(self):
        nodes = build_lpbcast_nodes(10, seed=0)
        assert [n.pid for n in nodes] == list(range(10))

    def test_views_filled_to_bound(self):
        cfg = LpbcastConfig(view_max=7)
        nodes = build_lpbcast_nodes(30, cfg, seed=0)
        assert all(len(n.view) == 7 for n in nodes)

    def test_first_pid_offset(self):
        nodes = build_lpbcast_nodes(5, seed=0, first_pid=100)
        assert [n.pid for n in nodes] == list(range(100, 105))

    def test_reproducible(self):
        a = build_lpbcast_nodes(10, seed=3)
        b = build_lpbcast_nodes(10, seed=3)
        assert all(
            set(x.view.snapshot()) == set(y.view.snapshot())
            for x, y in zip(a, b)
        )

    def test_seed_changes_views(self):
        cfg = LpbcastConfig(view_max=4)
        a = build_lpbcast_nodes(10, cfg, seed=3)
        b = build_lpbcast_nodes(10, cfg, seed=4)
        assert any(
            set(x.view.snapshot()) != set(y.view.snapshot())
            for x, y in zip(a, b)
        )

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            build_lpbcast_nodes(0)

    def test_node_factory_hook(self):
        captured = []

        def factory(pid, cfg, rng, initial_view):
            from repro.core import LpbcastNode
            captured.append(pid)
            return LpbcastNode(pid, cfg, rng, initial_view=initial_view)

        build_lpbcast_nodes(3, seed=0, node_factory=factory)
        assert captured == [0, 1, 2]

    def test_single_node_has_empty_view(self):
        (node,) = build_lpbcast_nodes(1, seed=0)
        assert len(node.view) == 0

    def test_views_reference_only_built_pids(self):
        nodes = build_lpbcast_nodes(12, seed=0, first_pid=50)
        pids = {n.pid for n in nodes}
        for node in nodes:
            assert set(node.view.snapshot()) <= pids - {node.pid}

    def test_node_rng_streams_differ(self):
        # Each node draws from its own derived stream: identical first
        # draws across all nodes would mean the streams collapsed.
        nodes = build_lpbcast_nodes(20, seed=0)
        first_draws = {node.rng.random() for node in nodes}
        assert len(first_draws) > 1

    def test_default_config_applied(self):
        nodes = build_lpbcast_nodes(5, seed=0)
        default = LpbcastConfig()
        assert all(n.config.view_max == default.view_max for n in nodes)
