"""Tests for the sharded multi-process round engine.

The headline property is *bit-for-bit equivalence*: for the same root seed,
the sharded engine must reproduce the serial engine's delivery trace,
per-round accounting and final node statistics exactly — under loss,
crashes, churn and mid-run publication.  The remaining tests cover the
engine surface (proxies, tethering, collect, error modes, the factory).
"""

import pickle
import random

import pytest

from repro.core import LpbcastConfig, LpbcastNode
from repro.core.message import Outgoing
from repro.metrics import DeliveryLog
from repro.wire import unpack_messages
from repro.sim import (
    BroadcastWorkload,
    CrashPlan,
    NetworkModel,
    NodeProxy,
    RoundSimulation,
    ShardedRoundSimulation,
    build_lpbcast_nodes,
    create_simulation,
)

CFG = LpbcastConfig(fanout=3, view_max=8, events_max=25, event_ids_max=50)


class Echo:
    """Minimal protocol node: forwards a counter to a fixed peer each tick."""

    def __init__(self, pid, peer):
        self.pid = pid
        self.peer = peer
        self.received = []
        self.sent = 0

    def on_tick(self, now):
        self.sent += 1
        return [Outgoing(self.peer, ("tick", self.pid, now))]

    def handle_message(self, sender, message, now):
        self.received.append((sender, message))
        return []


def lpbcast_run(engine, shards=None, n=40, rounds=10, seed=11, churn=True):
    """One full scenario (loss + crash plan + workload + churn); returns
    everything two engines must agree on."""
    network = NetworkModel(loss_rate=0.05, rng=random.Random(99))
    sim = create_simulation(engine, network=network, seed=seed, shards=shards)
    nodes = build_lpbcast_nodes(n, CFG, seed=seed)
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    workload = BroadcastWorkload([node.pid for node in nodes[:4]],
                                 events_per_round=2, start=1, stop=rounds - 2)
    sim.add_round_hook(workload.on_round)
    plan = CrashPlan(range(1, n + 1), crash_rate=0.05, horizon=rounds / 2,
                     rng=random.Random(5))
    sim.use_crash_plan(plan)

    if churn:
        def churn_hook(round_number, s):
            if round_number == 4:
                newcomer = LpbcastNode(pid=9999, config=CFG,
                                       rng=random.Random(4242))
                s.add_node(newcomer)
                s.inject(9999, newcomer.start_join(1, float(round_number)))
            if round_number == rounds - 3 and s.alive(2):
                s.nodes[2].try_unsubscribe(float(round_number))

        sim.add_round_hook(churn_hook)

    per_round = []
    sim.add_observer(lambda r, s: per_round.append((
        r, s.messages_delivered, s.messages_to_crashed,
        s.messages_to_unknown, s.network.messages_offered,
        s.network.messages_dropped,
    )))
    sim.run(rounds)
    if isinstance(sim, ShardedRoundSimulation):
        sim.collect()
    stats = {
        pid: (node.stats.delivered, node.stats.gossips_sent,
              node.stats.duplicates, node.stats.events_dropped,
              node.stats.event_ids_evicted)
        for pid, node in sim.nodes.items()
    }
    trace = sorted(
        (pid, event_id, at)
        for (pid, event_id), at in log._first_delivery_time.items()
    )
    return stats, trace, per_round, sorted(sim.crashed), len(workload.records)


class TestEquivalence:
    def test_bit_identical_delivery_trace_and_stats(self):
        serial = lpbcast_run("serial")
        sharded = lpbcast_run("sharded", shards=3)
        stats_s, trace_s, rounds_s, crashed_s, published_s = serial
        stats_p, trace_p, rounds_p, crashed_p, published_p = sharded
        assert trace_p == trace_s          # every (pid, event, time) triple
        assert stats_p == stats_s          # final per-node statistics
        assert rounds_p == rounds_s        # per-round delivery/loss counters
        assert crashed_p == crashed_s
        assert published_p == published_s

    def test_shard_count_does_not_change_the_run(self):
        one = lpbcast_run("sharded", shards=1, churn=False, rounds=6)
        four = lpbcast_run("sharded", shards=4, churn=False, rounds=6)
        assert one == four

    def test_different_seeds_differ(self):
        a = lpbcast_run("sharded", shards=2, churn=False, rounds=6, seed=1)
        b = lpbcast_run("sharded", shards=2, churn=False, rounds=6, seed=2)
        assert a[1] != b[1]


class TestSurface:
    def test_echo_roundtrip_and_collect(self):
        sim = ShardedRoundSimulation(shards=2)
        sim.add_nodes([Echo(1, 2), Echo(2, 1)])
        sim.run(3)
        nodes = sim.collect()
        assert nodes[1].sent == 3
        assert len(nodes[2].received) == 3
        assert not isinstance(sim.nodes[1], NodeProxy)  # real again

    def test_run_until(self):
        with ShardedRoundSimulation(shards=2) as sim:
            sim.add_nodes([Echo(1, 2), Echo(2, 1)])
            assert sim.run_until(lambda s: s.round >= 4, max_rounds=10) == 4

    def test_inject_prestart_delivered(self):
        sim = ShardedRoundSimulation(shards=2)
        sim.add_nodes([Echo(1, 2), Echo(2, 1)])
        sim.inject(1, [Outgoing(2, "hello")])
        sim.run_round()
        nodes = sim.collect()
        assert (1, "hello") in nodes[2].received

    def test_detached_original_node_is_tethered(self):
        sim = ShardedRoundSimulation(shards=2)
        nodes = build_lpbcast_nodes(4, CFG, seed=0)
        sim.add_nodes(nodes)
        sim.run_round()  # starts the engine, ships the nodes
        with pytest.raises(RuntimeError, match="lives in a shard"):
            nodes[0].lpb_cast("late", now=1.0)
        sim.close()

    def test_proxy_blocks_engine_driven_entry_points(self):
        sim = ShardedRoundSimulation(shards=2)
        sim.add_nodes(build_lpbcast_nodes(4, CFG, seed=0))
        sim.run_round()
        proxy = sim.nodes[1]
        assert isinstance(proxy, NodeProxy)
        with pytest.raises(RuntimeError):
            proxy.on_tick(2.0)
        with pytest.raises(RuntimeError):
            proxy.handle_message(2, object(), 2.0)
        sim.close()

    def test_proxy_reads_refresh(self):
        sim = ShardedRoundSimulation(shards=2)
        sim.add_nodes(build_lpbcast_nodes(6, CFG, seed=3))
        sim.nodes[1].lpb_cast("x", now=0.0)  # pre-start: real node
        sim.run(2)
        before = sim.nodes[1].stats.gossips_sent  # stale replica
        sim.refresh_nodes()
        after = sim.nodes[1].stats.gossips_sent
        assert after >= before
        assert after >= 1
        sim.close()

    def test_collect_reattaches_listeners(self):
        sim = ShardedRoundSimulation(shards=2)
        nodes = build_lpbcast_nodes(6, CFG, seed=3)
        sim.add_nodes(nodes)
        log = DeliveryLog().attach(nodes)
        nodes[0].lpb_cast("x", now=0.0)
        sim.run(3)
        collected = sim.collect()
        assert log.on_delivery in collected[0]._listeners
        # post-collect deliveries reach the same log again
        n_before = log.total_deliveries
        collected[0].lpb_cast("y", now=4.0)
        assert log.total_deliveries == n_before + 1

    def test_mid_run_listener_attach(self):
        sim = ShardedRoundSimulation(shards=2)
        nodes = build_lpbcast_nodes(6, CFG, seed=3)
        sim.add_nodes(nodes)
        sim.run_round()
        seen = []
        sim.nodes[1].add_delivery_listener(
            lambda pid, notification, now: seen.append(notification.event_id))
        sim.nodes[2].lpb_cast("x", now=1.0)
        sim.run(4)
        sim.close()
        assert seen  # gossip reached pid 1 and the late listener saw it

    def test_run_round_after_collect_raises(self):
        sim = ShardedRoundSimulation(shards=2)
        sim.add_nodes([Echo(1, 2), Echo(2, 1)])
        sim.run_round()
        sim.collect()
        with pytest.raises(RuntimeError):
            sim.run_round()

    def test_add_node_mid_run_duplicate_rejected(self):
        sim = ShardedRoundSimulation(shards=2)
        sim.add_nodes([Echo(1, 2), Echo(2, 1)])
        sim.run_round()
        with pytest.raises(ValueError):
            sim.add_node(Echo(1, 2))
        sim.close()


class TestErrors:
    class Faulty(Echo):
        def on_tick(self, now):
            raise RuntimeError("boom")

    def test_raise_mode_propagates(self):
        sim = ShardedRoundSimulation(shards=2)
        sim.add_nodes([self.Faulty(1, 2), Echo(2, 1)])
        with pytest.raises(RuntimeError, match="boom"):
            sim.run_round()
        sim.close()

    def test_crash_mode_fail_stops_the_node(self):
        sim = ShardedRoundSimulation(shards=2, on_node_error="crash")
        sim.add_nodes([self.Faulty(1, 2), Echo(2, 1)])
        sim.run(2)
        assert not sim.alive(1)
        assert sim.alive(2)
        assert sim.node_errors and sim.node_errors[0][0] == 1
        sim.close()


class TestFactory:
    def test_serial_engine(self):
        sim = create_simulation("serial", seed=3)
        assert type(sim) is RoundSimulation

    def test_sharded_engine(self):
        sim = create_simulation("sharded", seed=3, shards=2)
        assert isinstance(sim, ShardedRoundSimulation)
        assert sim.shards == 2

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            create_simulation("quantum")

    def test_nonpositive_shards_rejected(self):
        with pytest.raises(ValueError):
            ShardedRoundSimulation(shards=0)

    def test_columnar_engine_registered(self):
        from repro.sim.columnar_runner import ColumnarRoundSimulation
        from repro.sim.parallel_runner import ENGINES

        assert "columnar" in ENGINES
        sim = create_simulation("columnar", seed=3)
        assert isinstance(sim, ColumnarRoundSimulation)

    def test_unknown_kwarg_rejected_for_every_engine(self):
        from repro.sim.parallel_runner import ENGINES

        for engine in ENGINES:
            with pytest.raises(ValueError,
                               match="unknown create_simulation kwarg"):
                create_simulation(engine, fanout=3)

    def test_non_default_kwarg_names_the_engines_that_accept_it(self):
        # shards=4 on the serial engine must fail loudly, not silently run
        # single-process — and the message must point at the sharded engine.
        with pytest.raises(ValueError, match=r"does not accept.*sharded"):
            create_simulation("serial", shards=4)
        with pytest.raises(ValueError, match="does not accept"):
            create_simulation("columnar", on_node_error="crash")

    def test_default_values_are_legal_everywhere(self):
        # Passing a default cannot change behaviour, so generic call sites
        # may forward the full kwarg set without per-engine plumbing.
        sim = create_simulation("serial", shards=None, wire_format="binary")
        assert type(sim) is RoundSimulation

    def test_registry_accepts_only_known_kwargs(self):
        from repro.sim.parallel_runner import ENGINE_REGISTRY, FACTORY_DEFAULTS

        for spec in ENGINE_REGISTRY.values():
            assert spec.accepts <= set(FACTORY_DEFAULTS), spec.name


class TestFetchDedup:
    """The cross-shard payload sync serializes each unique message once.

    A gossip fanned out to F destinations is one message object behind F
    outbox handles; ``do_fetch`` groups unique payloads by their
    destination-shard signature and every shard in a signature receives the
    *same* blob bytes — encoded once, forwarded untouched.
    """

    def _state_with_fanout(self):
        from repro.sim.parallel_runner import _ShardState

        state = _ShardState(0)
        gossip = ("gossip", tuple(range(40)))
        control = ("control",)
        handles = {
            "g1": state._stash(1, Outgoing(101, gossip)),
            "g2": state._stash(1, Outgoing(102, gossip)),
            "g3": state._stash(1, Outgoing(201, gossip)),
            "c": state._stash(2, Outgoing(103, control)),
        }
        return state, gossip, control, handles

    def test_shared_payload_ships_one_blob_to_both_shards(self):
        state, gossip, control, h = self._state_with_fanout()
        served = state.do_fetch({1: [h["g1"], h["g2"], h["c"]],
                                 2: [h["g3"]]})
        entries1, blobs1 = served[1]
        entries2, blobs2 = served[2]
        shared = set(blobs1) & set(blobs2)
        assert len(shared) == 1  # the gossip's group spans both shards
        group = shared.pop()
        assert blobs1[group] is blobs2[group]  # identical bytes, not a copy
        # Two unique messages in total -> exactly two encoded groups.
        assert len({id(b) for b in (*blobs1.values(), *blobs2.values())}) == 2
        by_handle = {handle: (g, i) for handle, g, i in entries1}
        assert set(by_handle) == {h["g1"], h["g2"], h["c"]}
        assert by_handle[h["g1"]] == by_handle[h["g2"]]  # one payload slot

    def test_roundtrip_reconstructs_every_payload(self):
        state, gossip, control, h = self._state_with_fanout()
        served = state.do_fetch({1: [h["g1"], h["g2"], h["c"]],
                                 2: [h["g3"]]})
        for dst_shard, wanted in ((1, {h["g1"]: gossip, h["g2"]: gossip,
                                       h["c"]: control}),
                                  (2, {h["g3"]: gossip})):
            entries, blobs = served[dst_shard]
            loaded = {g: unpack_messages(blob) for g, blob in blobs.items()}
            got = {handle: loaded[g][i] for handle, g, i in entries}
            assert got == wanted


class TestCrossShardWireFormat:
    """The cross-shard batch format: compact binary with a pickle fallback
    that preserves the engine's bit-identity contract."""

    def _fetch_blob(self, message, wire_format="binary"):
        from repro.sim.parallel_runner import _ShardState

        state = _ShardState(0, wire_format=wire_format)
        handle = state._stash(1, Outgoing(2, message))
        served = state.do_fetch({1: [handle]})
        _entries, blobs = served[1]
        return next(iter(blobs.values()))

    def test_protocol_messages_travel_binary(self):
        from repro.core.message import GossipMessage
        from repro.wire import unpack_messages
        from repro.wire.shard import BLOB_BINARY

        message = GossipMessage(sender=1, subs=(2, 3))
        blob = self._fetch_blob(message)
        assert blob[0] == BLOB_BINARY
        assert unpack_messages(blob) == [message]

    def test_unstable_payload_falls_back_to_pickle(self):
        from repro.core.events import Notification
        from repro.core.ids import EventId
        from repro.core.message import GossipMessage
        from repro.wire import unpack_messages
        from repro.wire.shard import BLOB_PICKLE

        # A tuple payload would come back as a list from the JSON
        # embedding; the strict binary path must refuse it and the whole
        # batch must ship as pickle so the decoded object stays equal.
        message = GossipMessage(
            sender=1,
            events=(Notification(EventId(1, 1), ("tu", "ple"), 0.0),),
        )
        blob = self._fetch_blob(message)
        assert blob[0] == BLOB_PICKLE
        decoded = unpack_messages(blob)
        assert decoded == [message]
        assert decoded[0].events[0].payload == ("tu", "ple")

    def test_pickle_format_forced_by_knob(self):
        from repro.core.message import GossipMessage
        from repro.wire.shard import BLOB_PICKLE

        blob = self._fetch_blob(GossipMessage(sender=1),
                                wire_format="pickle")
        assert blob[0] == BLOB_PICKLE

    def test_unknown_wire_format_rejected(self):
        with pytest.raises(ValueError, match="wire_format"):
            ShardedRoundSimulation(shards=2, wire_format="xml")

    def test_sharded_run_with_tuple_payloads_matches_serial(self):
        # End-to-end: a workload whose payloads defeat the binary codec
        # still produces bit-identical counter records via the fallback.
        from repro.telemetry import counter_records

        outcomes = {}
        for engine, kwargs in (("serial", {}),
                               ("sharded", {"shards": 3})):
            nodes = build_lpbcast_nodes(12, CFG, seed=31)
            sim = create_simulation(engine, seed=31, **kwargs)
            sim.add_nodes(nodes)
            sim.nodes[nodes[0].pid].lpb_cast(("tuple", "payload"), 0.0)
            sim.nodes[nodes[1].pid].lpb_cast("plain string", 0.0)
            sim.run(8)
            outcomes[engine] = counter_records(sim.telemetry)
            if hasattr(sim, "close"):
                sim.close()
        assert outcomes["serial"] == outcomes["sharded"]
