"""Tests for the canned scenario builders."""

import pytest

from repro.core import LpbcastConfig
from repro.sim.scenarios import (
    correlated_crashes,
    flaky_wan,
    flash_crowd,
    mass_departure,
    steady_state,
)


class TestSteadyState:
    def test_broadcast_completes(self):
        scenario = steady_state(n=40, seed=1)
        event = scenario.nodes[0].lpb_cast("x", now=0.0)
        scenario.run(10)
        assert scenario.log.delivery_count(event.event_id) == 40

    def test_custom_config_used(self):
        cfg = LpbcastConfig(fanout=4, view_max=9)
        scenario = steady_state(n=20, config=cfg, seed=1)
        assert all(node.config.fanout == 4 for node in scenario.nodes)


class TestFlashCrowd:
    def test_all_joiners_integrate(self):
        scenario = flash_crowd(n=40, joiners=15, seed=2).run(15)
        for pid in scenario.extras["joiner_pids"]:
            assert scenario.sim.nodes[pid].joined

    def test_joiners_receive_post_join_broadcasts(self):
        scenario = flash_crowd(n=40, joiners=10, seed=3).run(12)
        event = scenario.nodes[5].lpb_cast("late", now=12.0)
        scenario.run(12)
        joiners_covered = sum(
            1 for pid in scenario.extras["joiner_pids"]
            if scenario.log.delivered(pid, event.event_id)
        )
        assert joiners_covered == 10

    def test_original_members_learn_joiners(self):
        scenario = flash_crowd(n=40, joiners=10, seed=4).run(25)
        joiner_pids = set(scenario.extras["joiner_pids"])
        knowers = sum(
            1 for node in scenario.nodes
            if joiner_pids & set(node.view.snapshot())
        )
        assert knowers > 20


class TestMassDeparture:
    def test_leavers_marked(self):
        scenario = mass_departure(n=40, leavers=12, seed=5).run(20)
        for pid in scenario.extras["leaver_pids"]:
            assert scenario.sim.nodes[pid].unsubscribed

    def test_survivors_still_broadcast(self):
        scenario = mass_departure(n=40, leavers=12, seed=6).run(20)
        survivors = [n for n in scenario.nodes if not n.unsubscribed]
        event = survivors[0].lpb_cast("post-exodus", now=20.0)
        scenario.run(12)
        covered = sum(
            1 for n in survivors
            if scenario.log.delivered(n.pid, event.event_id)
        )
        assert covered == len(survivors)

    def test_validation(self):
        with pytest.raises(ValueError):
            mass_departure(n=10, leavers=10)


class TestCorrelatedCrashes:
    def test_victims_silenced(self):
        scenario = correlated_crashes(n=40, crash_fraction=0.25, seed=7).run(6)
        for pid in scenario.extras["victims"]:
            assert not scenario.sim.alive(pid)
        assert len(scenario.extras["victims"]) == 10

    def test_survivors_fully_covered_despite_rack_failure(self):
        scenario = correlated_crashes(n=40, crash_fraction=0.25, seed=8)
        event = scenario.nodes[0].lpb_cast("x", now=0.0)
        # Publisher must survive for the test to be meaningful.
        if scenario.nodes[0].pid in scenario.extras["victims"]:
            pytest.skip("publisher among victims for this seed")
        scenario.run(14)
        survivors = scenario.alive_nodes()
        covered = sum(
            1 for n in survivors
            if scenario.log.delivered(n.pid, event.event_id)
        )
        assert covered == len(survivors)

    def test_validation(self):
        with pytest.raises(ValueError):
            correlated_crashes(crash_fraction=0.0)


class TestScenarioDeterminism:
    def test_same_seed_same_outcome(self):
        counts = []
        for _ in range(2):
            scenario = steady_state(n=30, seed=11)
            event = scenario.nodes[0].lpb_cast("x", now=0.0)
            scenario.run(8)
            counts.append(scenario.log.delivery_count(event.event_id))
        assert counts[0] == counts[1]

    def test_different_seed_different_topology(self):
        a = steady_state(n=30, seed=1)
        b = steady_state(n=30, seed=2)
        assert any(
            set(x.view.snapshot()) != set(y.view.snapshot())
            for x, y in zip(a.nodes, b.nodes)
        )


class TestScenarioEdgeCases:
    def test_flash_crowd_joiner_pids_disjoint_from_members(self):
        scenario = flash_crowd(n=30, joiners=5, seed=1)
        members = {node.pid for node in scenario.nodes}
        assert not members & set(scenario.extras["joiner_pids"])

    def test_mass_departure_accepts_all_but_one(self):
        scenario = mass_departure(n=10, leavers=9, seed=1).run(5)
        assert len(scenario.extras["leaver_pids"]) == 9

    def test_correlated_crashes_rejects_full_fraction(self):
        with pytest.raises(ValueError):
            correlated_crashes(crash_fraction=1.0)

    def test_alive_nodes_shrinks_after_crashes(self):
        scenario = correlated_crashes(n=40, crash_fraction=0.25, seed=7)
        assert len(scenario.alive_nodes()) == 40
        scenario.run(6)
        assert len(scenario.alive_nodes()) == 30

    def test_churn_script_exposed(self):
        assert "churn" in flash_crowd(n=20, joiners=2, seed=1).extras
        assert "churn" in mass_departure(n=20, leavers=2, seed=1).extras


class TestFlakyWan:
    def test_crash_plan_attached(self):
        scenario = flaky_wan(n=40, seed=9)
        assert len(scenario.extras["crash_plan"]) == 2  # 5% of 40

    def test_zero_crash_rate_yields_empty_plan(self):
        scenario = flaky_wan(n=40, crash_rate=0.0, seed=9)
        assert len(scenario.extras["crash_plan"]) == 0

    def test_broadcast_survives_heavy_loss(self):
        scenario = flaky_wan(n=40, loss_rate=0.3, seed=10)
        event = scenario.nodes[0].lpb_cast("x", now=0.0)
        scenario.run(15)
        survivors = scenario.alive_nodes()
        covered = sum(
            1 for n in survivors
            if scenario.log.delivered(n.pid, event.event_id)
        )
        assert covered >= 0.95 * len(survivors)
