"""Tests for churn scripting (joins, leaves, crashes)."""

import random

import pytest

from repro.core import LpbcastConfig, LpbcastNode
from repro.sim import ChurnScript, RoundSimulation, build_lpbcast_nodes


def factory(config):
    def make(pid):
        return LpbcastNode(pid, config, random.Random(pid))
    return make


def make_system(n=10):
    cfg = LpbcastConfig(fanout=2, view_max=5)
    nodes = build_lpbcast_nodes(n, cfg, seed=0)
    sim = RoundSimulation(seed=0)
    sim.add_nodes(nodes)
    return cfg, nodes, sim


class TestJoins:
    def test_join_adds_node_and_contacts(self):
        cfg, nodes, sim = make_system()
        script = ChurnScript(node_factory=factory(cfg))
        script.join(2, pid=100, contact=0)
        sim.add_round_hook(script.on_round)
        sim.run(5)
        assert 100 in sim.nodes
        assert script.joined == [100]
        joiner = sim.nodes[100]
        assert joiner.joined          # received gossip
        assert len(joiner.view) > 0

    def test_joiner_spreads_into_views(self):
        cfg, nodes, sim = make_system()
        script = ChurnScript(node_factory=factory(cfg))
        script.join(1, pid=100, contact=0)
        sim.add_round_hook(script.on_round)
        sim.run(12)
        knowers = sum(1 for n in nodes if 100 in n.view)
        assert knowers >= 2

    def test_join_without_factory_raises(self):
        cfg, nodes, sim = make_system()
        script = ChurnScript()
        script.join(1, pid=100, contact=0)
        sim.add_round_hook(script.on_round)
        with pytest.raises(RuntimeError):
            sim.run_round()


class TestLeaves:
    def test_leave_marks_unsubscribed(self):
        cfg, nodes, sim = make_system()
        script = ChurnScript()
        script.leave(2, nodes[3].pid)
        sim.add_round_hook(script.on_round)
        sim.run(4)
        assert nodes[3].unsubscribed
        assert script.left == [nodes[3].pid]

    def test_leaver_drains_from_views(self):
        cfg, nodes, sim = make_system(n=12)
        script = ChurnScript()
        script.leave(2, nodes[3].pid)
        sim.add_round_hook(script.on_round)
        before = sum(1 for n in nodes if nodes[3].pid in n.view)
        sim.run(15)
        after = sum(1 for n in nodes if nodes[3].pid in n.view)
        assert after < before

    def test_leave_of_unknown_pid_ignored(self):
        cfg, nodes, sim = make_system()
        script = ChurnScript()
        script.leave(1, 999)
        sim.add_round_hook(script.on_round)
        sim.run(2)
        assert script.left == []


class TestCrashes:
    def test_crash_silences_node(self):
        cfg, nodes, sim = make_system()
        script = ChurnScript()
        script.crash(2, nodes[5].pid)
        sim.add_round_hook(script.on_round)
        sim.run(4)
        assert not sim.alive(nodes[5].pid)
        assert script.crashed == [nodes[5].pid]

    def test_fluent_chaining(self):
        script = ChurnScript().join(1, 100, 0).leave(2, 3).crash(3, 4)
        assert script._joins and script._leaves and script._crashes
