"""Multi-core columnar engine: worker-count determinism and validation.

The shared-memory mode's contract is that honoured output is a pure
function of the scenario — the worker count partitions the *work*, never
the *result*.  These tests pin the honoured fingerprint across
workers=1/2/4 on a fuzzed scenario (and against the serial reference),
delivery listeners under the multi-core path, the shared-memory segment
lifecycle, and every surface where an explicit worker count is validated
(engine registry, DST harness, oracle, CLI).
"""

import os

import pytest

from repro.cli import build_parser, main
from repro.core import LpbcastConfig
from repro.dst.harness import apply_scenario
from repro.dst.oracle import check_scenario
from repro.dst.spec import ScenarioSpec, generate_spec
from repro.faults.plan import FaultPlan
from repro.metrics.delivery import DeliveryLog
from repro.sim import (
    ColumnarRoundSimulation,
    NetworkModel,
    build_lpbcast_nodes,
    create_simulation,
    derive_rng,
)
from repro.sim.columnar_runner import honoured_fingerprint, honoured_records
from repro.telemetry import counter_records

numpy = pytest.importorskip("numpy")


def run_columnar(workers, *, n=30, rounds=10, seed=23, loss=0.05,
                 plan=None, publishes=3):
    """A faulted columnar run at the given worker count, mirroring the
    DST harness wiring (same node build, network stream, publish draws)."""
    cfg = LpbcastConfig(fanout=3, view_max=8)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    network = NetworkModel(loss_rate=loss,
                           rng=derive_rng(seed, "dst-network"))
    sim = ColumnarRoundSimulation(network=network, seed=seed,
                                  workers=workers)
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(sim.nodes.values())
    if plan is not None:
        sim.use_fault_plan(plan)
    pub_rng = derive_rng(seed, "dst-publish")
    pids = [node.pid for node in nodes]

    def hook(round_no, s):
        if round_no > publishes:
            return
        paused = getattr(s, "_fault_paused", frozenset())
        ready = [p for p in pids if s.alive(p) and p not in paused]
        if not ready:
            return
        pid = ready[pub_rng.randrange(len(ready))]
        s.nodes[pid].lpb_cast(f"evt-{round_no}", float(round_no))

    sim.add_round_hook(hook)
    try:
        sim.run(rounds)
        return counter_records(sim.telemetry), log, sim.alive_count()
    finally:
        sim.close()


def faulted_plan():
    return (FaultPlan()
            .drop(rate=0.15, start=2, stop=7)
            .partition([0, 1, 2], [3, 4, 5], start=3, heal=6)
            .crash(4, at=2, recover_at=5)
            .crash(7, at=4)
            .pause(9, at=3, duration=3))


class TestWorkerCountDeterminism:
    def test_fuzzed_scenario_fingerprint_identical_across_workers(self):
        # The headline contract: one fuzzed scenario, byte-identical
        # honoured fingerprint at every worker count, equal to serial's.
        spec = generate_spec(20260808, max_n=48, max_rounds=14)
        fingerprints = {
            w: apply_scenario(spec, "columnar", workers=w).fingerprint
            for w in (1, 2, 4)
        }
        assert len(set(fingerprints.values())) == 1, fingerprints
        serial = apply_scenario(spec, "serial")
        assert honoured_fingerprint(serial.records) == fingerprints[1]

    def test_faulted_run_matches_single_core_and_serial(self):
        plan = faulted_plan()
        single, _, alive_1 = run_columnar(1, plan=plan)
        multi, _, alive_2 = run_columnar(2, plan=plan)
        assert honoured_records(single) == honoured_records(multi)
        assert alive_1 == alive_2

    def test_delivery_listeners_fire_once_with_workers(self):
        sim = ColumnarRoundSimulation.build(40, LpbcastConfig(view_max=8),
                                            seed=9, workers=2)
        try:
            log = DeliveryLog().attach(sim.nodes.values())
            sim.nodes[0].lpb_cast("x", 0.0)
            sim.run(10)
            assert log.total_deliveries == 40
            assert log.redeliveries == 0
            (event_id,) = log.known_events()
            assert log.delivery_count(event_id) == 40
        finally:
            sim.close()


class TestShmLifecycle:
    def test_close_releases_shared_memory_segments(self):
        shm_dir = "/dev/shm"
        if not os.path.isdir(shm_dir):  # pragma: no cover - linux-only env
            pytest.skip("no /dev/shm to observe")
        before = set(os.listdir(shm_dir))
        sim = ColumnarRoundSimulation.build(200, LpbcastConfig(view_max=8),
                                            seed=3, workers=2)
        sim.nodes[0].lpb_cast("x", 0.0)
        sim.run(4)
        sim.close()
        leaked = {name for name in set(os.listdir(shm_dir)) - before
                  if name.startswith("psm_")}
        assert not leaked, f"leaked shm segments: {leaked}"

    def test_close_is_idempotent_and_state_survives(self):
        sim = ColumnarRoundSimulation.build(100, LpbcastConfig(view_max=8),
                                            seed=4, workers=2)
        sim.nodes[0].lpb_cast("x", 0.0)
        sim.run(6)
        ratio = sim.delivery_ratio(0)
        sim.close()
        sim.close()
        # Engine state was copied out of the segments before release.
        assert sim.delivery_ratio(0) == ratio
        assert sim.alive_count() == 100

    def test_context_manager_closes(self):
        with ColumnarRoundSimulation.build(60, LpbcastConfig(view_max=8),
                                           seed=5, workers=2) as sim:
            sim.nodes[0].lpb_cast("x", 0.0)
            sim.run(4)
        assert sim._shm is None


class TestWorkersValidation:
    def test_registry_rejects_workers_for_object_engines(self):
        with pytest.raises(ValueError, match="does not accept"):
            create_simulation("serial", workers=2)
        with pytest.raises(ValueError, match="does not accept"):
            create_simulation("sharded", shards=2, workers=2)

    @pytest.mark.parametrize("bad", [0, -1, True, 2.0, "2"])
    def test_workers_must_be_a_positive_int(self, bad):
        with pytest.raises((TypeError, ValueError)):
            ColumnarRoundSimulation(seed=1, workers=bad)

    def test_python_backend_rejects_multicore(self):
        with pytest.raises(ValueError, match="numpy backend"):
            ColumnarRoundSimulation(seed=1, backend="python", workers=2)

    def test_harness_rejects_workers_for_non_columnar_engines(self):
        spec = ScenarioSpec(seed=1, n=12, rounds=4, publishes=2)
        with pytest.raises(ValueError, match="'columnar' engine only"):
            apply_scenario(spec, "serial", workers=2)
        with pytest.raises(ValueError, match="shards= for 'sharded'"):
            apply_scenario(spec, "sharded", workers=4)

    def test_oracle_rejects_workers_without_a_columnar_run(self):
        spec = ScenarioSpec(seed=1, n=12, rounds=4, publishes=2)
        with pytest.raises(ValueError, match="add 'columnar' to engines="):
            check_scenario(spec, engines=("serial", "sharded"), workers=2)

    def test_oracle_unknown_engine_error_names_the_real_knobs(self):
        # "workers" is a knob, not an engine — the error must say so.
        spec = ScenarioSpec(seed=1, n=12, rounds=4, publishes=2)
        with pytest.raises(ValueError, match="workers= tunes the columnar"):
            check_scenario(spec, engines=("serial", "workers"))

    def test_oracle_runs_columnar_differential_with_workers(self):
        spec = ScenarioSpec(seed=6, n=24, rounds=8, publishes=3)
        report = check_scenario(spec, engines=("serial", "columnar"),
                                workers=2)
        assert report.ok, report.failures
        assert "columnar" in report.engines_run
        assert report.fingerprints["columnar"] == honoured_fingerprint(
            apply_scenario(spec, "serial").records)


class TestCliWorkers:
    def test_fuzz_parser_accepts_explicit_workers(self):
        args = build_parser().parse_args(
            ["fuzz", "--columnar", "--workers", "3"])
        assert args.workers == 3

    def test_fuzz_workers_default_is_single_core(self):
        args = build_parser().parse_args(["fuzz", "--columnar"])
        assert args.workers == 1

    def test_fuzz_rejects_non_positive_workers(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["fuzz", "--columnar", "--workers", "0"])

    def test_fuzz_workers_without_columnar_is_an_option_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["fuzz", "--workers", "2", "--count", "1"])
        err = capsys.readouterr().err
        assert "requires --columnar" in err

    def test_fuzz_columnar_campaign_runs_with_workers(self, capsys):
        assert main(["fuzz", "--columnar", "--workers", "2",
                     "--count", "2", "--seed", "2026", "--quiet"]) == 0
        assert "all scenarios passed" in capsys.readouterr().out
