"""Tests for the synchronous round runner (Sec. 5.1 setting)."""

import random

import pytest

from repro.core import LpbcastConfig
from repro.core.message import Outgoing
from repro.sim import CrashPlan, NetworkModel, RoundSimulation, build_lpbcast_nodes

from ..helpers import small_system


class Echo:
    """Minimal protocol node: forwards a counter to a fixed peer each tick."""

    def __init__(self, pid, peer):
        self.pid = pid
        self.peer = peer
        self.received = []
        self.sent = 0

    def on_tick(self, now):
        self.sent += 1
        return [Outgoing(self.peer, ("tick", self.pid, now))]

    def handle_message(self, sender, message, now):
        self.received.append((sender, message))
        return []


class TestBasics:
    def test_round_counter(self):
        sim = RoundSimulation()
        sim.run(3)
        assert sim.round == 3

    def test_duplicate_pid_rejected(self):
        sim = RoundSimulation()
        sim.add_node(Echo(1, 2))
        with pytest.raises(ValueError):
            sim.add_node(Echo(1, 2))

    def test_messages_delivered_same_round(self):
        sim = RoundSimulation()
        a, b = Echo(1, 2), Echo(2, 1)
        sim.add_nodes([a, b])
        sim.run_round()
        assert len(a.received) == 1
        assert len(b.received) == 1

    def test_message_to_unknown_destination_dropped(self):
        sim = RoundSimulation()
        a = Echo(1, 99)
        sim.add_node(a)
        sim.run_round()
        assert sim.messages_to_unknown == 1
        assert sim.messages_to_crashed == 0  # 99 never existed: not a crash

    def test_loss_applied(self):
        net = NetworkModel(loss_rate=1.0, rng=random.Random(0))
        sim = RoundSimulation(network=net)
        a, b = Echo(1, 2), Echo(2, 1)
        sim.add_nodes([a, b])
        sim.run(3)
        assert a.received == [] and b.received == []


class TestAdmissionAccounting:
    def test_message_to_crashed_destination_counted_as_crashed(self):
        sim = RoundSimulation()
        sim.add_nodes([Echo(1, 2), Echo(2, 1)])
        sim.crash(2)
        sim.run_round()
        assert sim.messages_to_crashed == 1   # 1 -> 2 (crashed, known)
        assert sim.messages_to_unknown == 0
        assert sim.messages_delivered == 0

    def test_crashed_sender_consumes_no_network_draws(self):
        # A message "from" a crashed process was never sent: it must not
        # count against any destination counter nor touch the loss model.
        sim = RoundSimulation()
        sim.add_nodes([Echo(1, 2), Echo(2, 1)])
        sim.inject(1, [Outgoing(2, "late")])
        sim.crash(1)
        sim.run_round()  # only 2 -> 1 survives admission
        assert sim.messages_to_crashed == 1   # 2 -> 1 hits the crashed node
        assert sim.network.messages_offered == 0
        assert sim.messages_delivered == 0

    def test_unknown_and_crashed_counted_separately(self):
        sim = RoundSimulation()

        class Fanning(Echo):
            def on_tick(self, now):
                return [Outgoing(2, "a"), Outgoing(99, "b")]

        sim.add_nodes([Fanning(1, 2), Echo(2, 1)])
        sim.crash(2)
        sim.run_round()
        assert sim.messages_to_crashed == 1   # 1 -> 2
        assert sim.messages_to_unknown == 1   # 1 -> 99 (never existed)


class TestCrashes:
    def test_crashed_node_does_not_tick_or_receive(self):
        sim = RoundSimulation()
        a, b = Echo(1, 2), Echo(2, 1)
        sim.add_nodes([a, b])
        sim.crash(2)
        sim.run(2)
        assert b.sent == 0
        assert b.received == []
        assert a.received == []  # 2 is silent

    def test_crash_plan_applied(self):
        sim = RoundSimulation()
        nodes = [Echo(i, (i + 1) % 4) for i in range(4)]
        sim.add_nodes(nodes)
        plan = CrashPlan(range(4), crash_rate=0.25, horizon=1.0,
                         rng=random.Random(3))
        assert len(plan) == 1
        sim.use_crash_plan(plan)
        sim.run(3)
        victim = plan.victims()[0]
        assert not sim.alive(victim)
        assert nodes[victim].sent == 0

    def test_alive_nodes(self):
        sim = RoundSimulation()
        sim.add_nodes([Echo(1, 2), Echo(2, 1)])
        sim.crash(1)
        assert [n.pid for n in sim.alive_nodes()] == [2]


class TestHooksAndObservers:
    def test_hook_runs_before_ticks(self):
        order = []
        sim = RoundSimulation()

        class Probe(Echo):
            def on_tick(self, now):
                order.append("tick")
                return []

        sim.add_node(Probe(1, 1))
        sim.add_round_hook(lambda r, s: order.append("hook"))
        sim.run_round()
        assert order == ["hook", "tick"]

    def test_observer_runs_after_delivery(self):
        sim = RoundSimulation()
        a, b = Echo(1, 2), Echo(2, 1)
        sim.add_nodes([a, b])
        seen = []
        sim.add_observer(lambda r, s: seen.append(len(a.received)))
        sim.run_round()
        assert seen == [1]

    def test_inject_delivers_next_round(self):
        sim = RoundSimulation()
        a, b = Echo(1, 2), Echo(2, 1)
        sim.add_nodes([a, b])
        sim.inject(1, [Outgoing(2, "hello")])
        sim.run_round()
        assert (1, "hello") in b.received


class TestReplies:
    def test_replies_delivered_within_round(self):
        class PingPong:
            def __init__(self, pid, peer):
                self.pid = pid
                self.peer = peer
                self.pings = 0
                self.pongs = 0

            def on_tick(self, now):
                if self.pid == 1:
                    return [Outgoing(self.peer, "ping")]
                return []

            def handle_message(self, sender, message, now):
                if message == "ping":
                    self.pings += 1
                    return [Outgoing(sender, "pong")]
                self.pongs += 1
                return []

        sim = RoundSimulation()
        a, b = PingPong(1, 2), PingPong(2, 1)
        sim.add_nodes([a, b])
        sim.run_round()
        assert b.pings == 1
        assert a.pongs == 1

    def test_runaway_reply_chain_carries_over(self):
        class Chatter:
            def __init__(self, pid, peer):
                self.pid = pid
                self.peer = peer
                self.count = 0

            def on_tick(self, now):
                if self.pid == 1 and now == 1.0:
                    return [Outgoing(self.peer, "x")]
                return []

            def handle_message(self, sender, message, now):
                self.count += 1
                return [Outgoing(sender, "x")]  # infinite chatter

        sim = RoundSimulation(max_reply_generations=3)
        a, b = Chatter(1, 2), Chatter(2, 1)
        sim.add_nodes([a, b])
        sim.run_round()
        first_round = a.count + b.count
        assert first_round <= 4  # bounded within the round
        sim.run_round()
        assert a.count + b.count > first_round  # carryover continues


class TestRunUntil:
    def test_returns_round_when_predicate_holds(self):
        sim = RoundSimulation()
        result = sim.run_until(lambda s: s.round >= 4, max_rounds=10)
        assert result == 4

    def test_raises_when_never_satisfied(self):
        sim = RoundSimulation()
        with pytest.raises(RuntimeError):
            sim.run_until(lambda s: False, max_rounds=3)

    def test_runs_zero_rounds_when_already_satisfied(self):
        sim = RoundSimulation()
        assert sim.run_until(lambda s: True, max_rounds=5) == 0
        assert sim.round == 0

    def test_exact_round_count_and_one_evaluation_per_boundary(self):
        sim = RoundSimulation()
        seen = []

        def predicate(s):
            seen.append(s.round)
            return s.round >= 3

        # Satisfied exactly when the budget runs out: must return, not raise,
        # and the predicate is checked once per round boundary — no
        # re-evaluation after the loop.
        assert sim.run_until(predicate, max_rounds=3) == 3
        assert sim.round == 3
        assert seen == [0, 1, 2, 3]


class TestDeterminism:
    def run_once(self, seed):
        sim, nodes, log = small_system(n=30, seed=seed, loss_rate=0.05)
        event = nodes[0].lpb_cast("x", now=0.0)
        sim.run(8)
        return tuple(
            sorted(
                (pid, log.delivery_time(pid, event.event_id))
                for pid in log.deliverers_of(event.event_id)
            )
        )

    def test_same_seed_same_outcome(self):
        assert self.run_once(5) == self.run_once(5)

    def test_different_seed_different_outcome(self):
        outcomes = {self.run_once(seed) for seed in range(5)}
        assert len(outcomes) > 1


class TestAliveCountInvalidation:
    """Regressions for stale alive-list invalidation across
    crash -> recover -> add_node interleavings (the ``alive_count()`` /
    ``alive_nodes()`` split observed when ``sim.crashed`` was mutated
    directly)."""

    def build(self, n=6, seed=11):
        sim = RoundSimulation(seed=seed)
        sim.add_nodes(build_lpbcast_nodes(n, seed=seed))
        return sim

    def test_direct_crashed_discard_invalidates_cache(self):
        sim = self.build()
        sim.crash(0)
        assert len(sim.alive_nodes()) == 5  # materialise the cache
        sim.crashed.discard(0)  # historical revival path: raw set mutation
        assert sim.alive_count() == 6
        assert len(sim.alive_nodes()) == 6

    def test_direct_crashed_add_invalidates_cache(self):
        sim = self.build()
        assert len(sim.alive_nodes()) == 6
        sim.crashed.add(3)
        assert sim.alive_count() == 5
        assert len(sim.alive_nodes()) == 5

    def test_bulk_set_operations_invalidate_cache(self):
        sim = self.build()
        sim.alive_nodes()
        sim.crashed.update({0, 1})
        assert sim.alive_count() == len(sim.alive_nodes()) == 4
        sim.crashed |= {2}
        assert sim.alive_count() == len(sim.alive_nodes()) == 3
        sim.crashed.difference_update({0})
        assert sim.alive_count() == len(sim.alive_nodes()) == 4
        sim.crashed.clear()
        assert sim.alive_count() == len(sim.alive_nodes()) == 6

    def test_public_recover(self):
        sim = self.build()
        sim.crash(2)
        sim.alive_nodes()
        assert sim.recover(2) is True
        assert sim.recover(2) is False      # already alive
        assert sim.recover(99) is False     # unknown pid
        assert sim.alive_count() == len(sim.alive_nodes()) == 6

    def test_in_round_hook_revival_ticks_same_round(self):
        sim = self.build()
        sim.crash(3)

        def revive(round_no, s):
            s.recover(3)

        sim.add_round_hook(revive)
        sim.run(1)
        agg = sim.node_aggregates()
        assert sim.alive_count() == agg.count == 6
        # The revived node ticked this round: every alive node gossiped.
        assert sim.nodes[3].stats.gossips_sent == 1

    def test_crash_recover_add_node_within_one_round(self):
        sim = self.build()
        extra = build_lpbcast_nodes(1, seed=77, first_pid=100)[0]

        def churn(round_no, s):
            if round_no == 1:
                s.crash(0)
                s.crash(1)
                s.recover(1)
                s.add_node(extra)

        sim.add_round_hook(churn)
        sim.run(1)
        assert sim.alive_count() == 6  # 6 - crashed(0) - crashed(1) + rec(1) + added
        assert len(sim.alive_nodes()) == 6
        assert sim.node_aggregates().count == 6
        sim.run(1)
        assert sim.alive_count() == len(sim.alive_nodes()) == 6

    def test_plan_recovery_of_manually_crashed_node_stays_consistent(self):
        from repro.faults.plan import FaultPlan

        sim = self.build()
        plan = FaultPlan()
        plan.crash(2, at=1, recover_at=3)
        sim.use_fault_plan(plan)
        sim.run(1)
        assert sim.alive_count() == len(sim.alive_nodes()) == 5
        sim.run(2)  # recovery applies at round 3
        assert sim.alive_count() == len(sim.alive_nodes()) == 6
