"""Tests for the network and failure models."""

import random

import pytest

from repro.sim import (
    CrashPlan,
    NetworkModel,
    constant_latency,
    exponential_latency,
    partition_filter,
    uniform_latency,
)


class TestNetworkModel:
    def test_no_loss(self):
        net = NetworkModel(loss_rate=0.0, rng=random.Random(0))
        assert all(net.deliverable(0, 1) for _ in range(100))

    def test_total_loss(self):
        net = NetworkModel(loss_rate=1.0, rng=random.Random(0))
        assert not any(net.deliverable(0, 1) for _ in range(100))

    def test_loss_rate_statistics(self):
        net = NetworkModel(loss_rate=0.2, rng=random.Random(0))
        delivered = sum(net.deliverable(0, 1) for _ in range(10_000))
        assert 0.75 < delivered / 10_000 < 0.85
        assert abs(net.observed_loss_rate() - 0.2) < 0.02

    def test_invalid_loss_rate(self):
        with pytest.raises(ValueError):
            NetworkModel(loss_rate=1.5)

    def test_link_filter_cuts_deterministically(self):
        net = NetworkModel(
            loss_rate=0.0,
            rng=random.Random(0),
            link_filter=lambda s, d: not (s == 0 and d == 1),
        )
        assert not net.deliverable(0, 1)
        assert net.deliverable(1, 0)
        assert net.messages_cut == 1

    def test_counters(self):
        net = NetworkModel(loss_rate=0.0, rng=random.Random(0))
        net.deliverable(0, 1)
        assert net.messages_offered == 1
        assert net.messages_dropped == 0


class TestLatencyModels:
    def test_constant(self):
        model = constant_latency(0.25)
        assert model(random.Random(0)) == 0.25

    def test_constant_negative_rejected(self):
        with pytest.raises(ValueError):
            constant_latency(-1.0)

    def test_uniform_in_range(self):
        model = uniform_latency(0.1, 0.5)
        rng = random.Random(0)
        for _ in range(100):
            assert 0.1 <= model(rng) <= 0.5

    def test_uniform_invalid_range(self):
        with pytest.raises(ValueError):
            uniform_latency(0.5, 0.1)

    def test_exponential_capped(self):
        model = exponential_latency(mean=1.0, cap=0.5)
        rng = random.Random(0)
        assert all(model(rng) <= 0.5 for _ in range(100))

    def test_exponential_mean(self):
        model = exponential_latency(mean=2.0)
        rng = random.Random(0)
        values = [model(rng) for _ in range(20_000)]
        assert abs(sum(values) / len(values) - 2.0) < 0.1

    def test_exponential_invalid_mean(self):
        with pytest.raises(ValueError):
            exponential_latency(0.0)


class TestPartitionFilter:
    def test_within_group_allowed(self):
        allowed = partition_filter([[0, 1], [2, 3]])
        assert allowed(0, 1)
        assert allowed(2, 3)

    def test_across_groups_cut(self):
        allowed = partition_filter([[0, 1], [2, 3]])
        assert not allowed(0, 2)
        assert not allowed(3, 1)

    def test_unlisted_processes_unrestricted(self):
        allowed = partition_filter([[0, 1]])
        assert allowed(0, 9)
        assert allowed(9, 0)


class TestCrashPlan:
    def test_victim_count_respects_tau(self):
        plan = CrashPlan(range(100), crash_rate=0.05, horizon=10.0,
                         rng=random.Random(0))
        assert len(plan) == 5

    def test_zero_rate_no_crashes(self):
        plan = CrashPlan(range(100), crash_rate=0.0, rng=random.Random(0))
        assert len(plan) == 0
        assert plan.victims() == []

    def test_events_sorted_and_within_horizon(self):
        plan = CrashPlan(range(200), crash_rate=0.1, horizon=7.0,
                         rng=random.Random(0))
        times = [ev.at for ev in plan.events]
        assert times == sorted(times)
        assert all(0.0 <= t <= 7.0 for t in times)

    def test_crashes_before(self):
        plan = CrashPlan(range(200), crash_rate=0.1, horizon=10.0,
                         rng=random.Random(0))
        early = plan.crashes_before(5.0)
        assert all(ev.at <= 5.0 for ev in early)

    def test_crashes_before_consumes_each_event_once(self):
        plan = CrashPlan(range(200), crash_rate=0.1, horizon=10.0,
                         rng=random.Random(0))
        total = len(plan)
        first = plan.crashes_before(5.0)
        assert first  # seed 0 schedules events in the first half
        # Asking again for the same horizon re-offers nothing: the cursor
        # consumed those events, so a runner never re-crashes old victims.
        assert plan.crashes_before(5.0) == []
        rest = plan.crashes_before(10.0)
        assert len(first) + len(rest) == total
        assert first + rest == plan.events  # handed out in schedule order

    def test_consumption_leaves_plan_description_intact(self):
        plan = CrashPlan(range(100), crash_rate=0.2, horizon=10.0,
                         rng=random.Random(1))
        victims = plan.victims()
        plan.crashes_before(10.0)
        assert len(plan) == len(victims)
        assert plan.victims() == victims

    def test_incremental_horizons_partition_the_schedule(self):
        plan = CrashPlan(range(300), crash_rate=0.1, horizon=9.0,
                         rng=random.Random(2))
        seen = []
        for now in range(1, 10):
            batch = plan.crashes_before(float(now))
            assert all(ev.at <= now for ev in batch)
            seen.extend(batch)
        assert seen == plan.events

    def test_victims_distinct(self):
        plan = CrashPlan(range(100), crash_rate=0.2, rng=random.Random(0))
        victims = plan.victims()
        assert len(victims) == len(set(victims))

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            CrashPlan(range(10), crash_rate=1.0)
        with pytest.raises(ValueError):
            CrashPlan(range(10), crash_rate=0.1, horizon=0.0)
