"""Property tests for the bit-packed boolean columns.

Every helper is checked against the naive boolean-array model it
replaces, on both halves of the module: numpy ``uint64`` words and
python-int bitsets.  The two halves share one layout (node ``i`` at bit
``i & 63`` of word ``i >> 6``), so a cross-backend round-trip is also
pinned: packing the same flags must describe the same set bits.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import bitset

flag_lists = st.lists(st.booleans(), min_size=0, max_size=300)


def _words_to_int(words: np.ndarray) -> int:
    """Numpy words → the equivalent python-int bitset."""
    value = 0
    for index, word in enumerate(words.tolist()):
        value |= word << (64 * index)
    return value


class TestWordsFor:
    def test_boundaries(self):
        assert bitset.words_for(0) == 0
        assert bitset.words_for(1) == 1
        assert bitset.words_for(64) == 1
        assert bitset.words_for(65) == 2
        assert bitset.words_for(1_000_000) == 15_625


class TestNumpyWords:
    @given(flag_lists)
    @settings(max_examples=200, deadline=None)
    def test_pack_unpack_round_trip(self, flags):
        arr = np.array(flags, dtype=bool)
        words = bitset.pack_bools(arr)
        assert words.dtype == np.uint64
        assert words.size == bitset.words_for(arr.size)
        assert np.array_equal(bitset.unpack_bools(words, arr.size), arr)

    @given(flag_lists)
    @settings(max_examples=200, deadline=None)
    def test_popcount_matches_sum(self, flags):
        arr = np.array(flags, dtype=bool)
        words = bitset.pack_bools(arr)
        assert bitset.popcount_words(words) == int(arr.sum())

    @given(st.lists(flag_lists.map(lambda f: f[:64]), min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_popcount_rows_matches_per_row_sum(self, rows):
        width = max((len(r) for r in rows), default=0)
        mat = np.zeros((len(rows), width), dtype=bool)
        for i, row in enumerate(rows):
            mat[i, : len(row)] = row
        packed = np.vstack([bitset.pack_bools(mat[i]) for i in range(len(rows))]) \
            if width else np.zeros((len(rows), 0), dtype=np.uint64)
        got = bitset.popcount_rows(packed)
        assert got.tolist() == mat.sum(axis=1).tolist()

    def test_popcount_lut_fallback_agrees(self, monkeypatch):
        rng = np.random.default_rng(9)
        arr = rng.random(5000) < 0.3
        words = bitset.pack_bools(arr)
        expect = int(arr.sum())
        assert bitset.popcount_words(words) == expect
        monkeypatch.setattr(bitset, "_HAVE_BITWISE_COUNT", False)
        assert bitset.popcount_words(words) == expect
        mat = words.reshape(1, -1)
        assert bitset.popcount_rows(mat).tolist() == [expect]

    @given(flag_lists)
    @settings(max_examples=200, deadline=None)
    def test_bit_indices_match_flatnonzero(self, flags):
        arr = np.array(flags, dtype=bool)
        words = bitset.pack_bools(arr)
        assert bitset.bit_indices(words, arr.size).tolist() == \
            np.flatnonzero(arr).tolist()

    @given(st.integers(min_value=1, max_value=300), st.data())
    @settings(max_examples=100, deadline=None)
    def test_mask_from_indices(self, n, data):
        indices = data.draw(st.lists(
            st.integers(min_value=0, max_value=n - 1), max_size=50))
        words = bitset.mask_from_indices(np.array(indices, dtype=np.int64), n)
        expect = np.zeros(n, dtype=bool)
        expect[indices] = True
        assert np.array_equal(bitset.unpack_bools(words, n), expect)

    @given(st.integers(min_value=1, max_value=300), st.data())
    @settings(max_examples=100, deadline=None)
    def test_gather_bits(self, n, data):
        flags = data.draw(st.lists(
            st.booleans(), min_size=n, max_size=n))
        queries = data.draw(st.lists(
            st.integers(min_value=0, max_value=n - 1), max_size=60))
        arr = np.array(flags, dtype=bool)
        words = bitset.pack_bools(arr)
        idx = np.array(queries, dtype=np.int64)
        assert bitset.gather_bits(words, idx).tolist() == arr[idx].tolist()

    def test_zero_words(self):
        words = bitset.zero_words(130)
        assert words.size == 3
        assert bitset.popcount_words(words) == 0


class TestPythonInts:
    @given(flag_lists)
    @settings(max_examples=200, deadline=None)
    def test_pack_unpack_round_trip(self, flags):
        value = bitset.int_pack(flags)
        assert bitset.int_unpack(value, len(flags)) == list(flags)

    @given(flag_lists)
    @settings(max_examples=200, deadline=None)
    def test_popcount_matches_sum(self, flags):
        assert bitset.int_popcount(bitset.int_pack(flags)) == sum(flags)

    @given(flag_lists)
    @settings(max_examples=200, deadline=None)
    def test_indices_match_enumerate(self, flags):
        value = bitset.int_pack(flags)
        assert bitset.int_indices(value, len(flags)) == \
            [i for i, f in enumerate(flags) if f]

    def test_full_mask(self):
        assert bitset.int_full_mask(0) == 0
        assert bitset.int_full_mask(3) == 0b111
        assert bitset.int_popcount(bitset.int_full_mask(100)) == 100


class TestCrossBackend:
    @given(flag_lists)
    @settings(max_examples=200, deadline=None)
    def test_same_layout(self, flags):
        words = bitset.pack_bools(np.array(flags, dtype=bool))
        assert _words_to_int(words) == bitset.int_pack(flags)
