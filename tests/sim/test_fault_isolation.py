"""Tests for the runner's fault-isolation mode (on_node_error="crash")."""

import pytest

from repro.core.message import Outgoing
from repro.sim import RoundSimulation

from ..helpers import small_system


class Bomb:
    """A node that raises after a configurable number of interactions."""

    def __init__(self, pid, peer, explode_on_tick=None, explode_on_msg=None):
        self.pid = pid
        self.peer = peer
        self.ticks = 0
        self.explode_on_tick = explode_on_tick
        self.explode_on_msg = explode_on_msg

    def on_tick(self, now):
        self.ticks += 1
        if self.explode_on_tick is not None and self.ticks >= self.explode_on_tick:
            raise RuntimeError(f"tick bomb in {self.pid}")
        return [Outgoing(self.peer, "ping")]

    def handle_message(self, sender, message, now):
        if self.explode_on_msg:
            raise RuntimeError(f"message bomb in {self.pid}")
        return []


class TestRaiseMode:
    def test_default_propagates(self):
        sim = RoundSimulation()
        sim.add_node(Bomb(1, 2, explode_on_tick=1))
        with pytest.raises(RuntimeError, match="tick bomb"):
            sim.run_round()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            RoundSimulation(on_node_error="ignore")


class TestCrashMode:
    def test_tick_failure_crashes_node_only(self):
        sim = RoundSimulation(on_node_error="crash")
        bomb = Bomb(1, 2, explode_on_tick=2)
        healthy = Bomb(2, 1)
        sim.add_nodes([bomb, healthy])
        sim.run(4)
        assert not sim.alive(1)
        assert sim.alive(2)
        assert healthy.ticks == 4
        assert len(sim.node_errors) == 1
        pid, where, exc = sim.node_errors[0]
        assert pid == 1 and where == "on_tick"

    def test_handler_failure_crashes_receiver(self):
        sim = RoundSimulation(on_node_error="crash")
        bomb = Bomb(1, 2, explode_on_msg=True)
        sender = Bomb(2, 1)
        sim.add_nodes([bomb, sender])
        sim.run(2)
        assert not sim.alive(1)
        assert sim.node_errors[0][1] == "handle_message"

    def test_system_survives_a_faulty_member(self):
        sim, nodes, log = small_system(n=20, seed=9)
        sim.on_node_error = "crash"
        # Sabotage one node's handler.
        victim = nodes[7]
        def broken(sender, message, now):
            raise ValueError("corrupted state")
        victim.handle_message = broken
        event = nodes[0].lpb_cast("x", now=0.0)
        sim.run(10)
        assert not sim.alive(victim.pid)
        survivors = [n for n in nodes if sim.alive(n.pid)]
        covered = sum(
            1 for n in survivors if log.delivered(n.pid, event.event_id)
        )
        assert covered == len(survivors)
