"""Tests for deterministic random-stream derivation."""

from repro.sim import SeedSequence, derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "node", 3) == derive_seed(42, "node", 3)

    def test_label_sensitivity(self):
        assert derive_seed(42, "node", 3) != derive_seed(42, "node", 4)
        assert derive_seed(42, "node") != derive_seed(42, "network")

    def test_root_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_64_bit_range(self):
        seed = derive_seed(0, "anything")
        assert 0 <= seed < 2**64


class TestDeriveRng:
    def test_streams_reproducible(self):
        a = derive_rng(7, "node", 1)
        b = derive_rng(7, "node", 1)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_independent(self):
        a = derive_rng(7, "node", 1)
        b = derive_rng(7, "node", 2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestSeedSequence:
    def test_rng_and_seed_agree(self):
        seq = SeedSequence(9)
        assert seq.seed("x") == derive_seed(9, "x")

    def test_spawn_namespaces(self):
        seq = SeedSequence(9)
        child = seq.spawn("sub")
        assert child.seed("x") != seq.seed("x")
        assert child.seed("x") == SeedSequence(seq.seed("sub")).seed("x")
