"""Tests for structured event tracing."""

import random

import pytest

from repro.core import LpbcastConfig
from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes
from repro.sim.trace import (
    CUT,
    DELIVER,
    DROP,
    PUBLISH,
    ROUND,
    TraceRecord,
    Tracer,
)


class TestTracerBasics:
    def test_emit_and_query(self):
        tracer = Tracer()
        tracer.emit(PUBLISH, 1.0, pid=3)
        tracer.emit(DELIVER, 2.0, pid=4)
        assert len(tracer) == 2
        assert [r.pid for r in tracer.of_kind(DELIVER)] == [4]
        assert tracer.counts() == {PUBLISH: 1, DELIVER: 1}

    def test_capacity_truncates(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.emit(ROUND, float(i))
        assert len(tracer) == 2
        assert tracer.truncated == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_for_process_matches_either_side(self):
        tracer = Tracer()
        tracer.emit(DROP, 0.0, pid=1, peer=2)
        assert len(tracer.for_process(1)) == 1
        assert len(tracer.for_process(2)) == 1
        assert tracer.for_process(3) == []


class TestTracerWiring:
    def build(self, loss=0.0, seed=0):
        cfg = LpbcastConfig(fanout=3, view_max=6)
        nodes = build_lpbcast_nodes(15, cfg, seed=seed)
        network = NetworkModel(loss_rate=loss, rng=random.Random(seed + 1))
        sim = RoundSimulation(network=network, seed=seed)
        sim.add_nodes(nodes)
        tracer = Tracer()
        tracer.attach_deliveries(nodes)
        tracer.attach_network(network)
        sim.add_observer(tracer.on_round)
        return sim, nodes, tracer

    def test_deliveries_traced(self):
        sim, nodes, tracer = self.build()
        event = nodes[0].lpb_cast("x", now=0.0)
        tracer.trace_publish(nodes[0].pid, event, 0.0)
        sim.run(8)
        deliveries = tracer.for_event(event.event_id)
        delivered_pids = {r.pid for r in deliveries if r.kind == DELIVER}
        assert delivered_pids == {n.pid for n in nodes}

    def test_delivery_order_starts_at_publisher(self):
        sim, nodes, tracer = self.build()
        event = nodes[0].lpb_cast("x", now=0.0)
        sim.run(8)
        order = tracer.delivery_order(event.event_id)
        assert order[0] == nodes[0].pid
        assert len(order) == 15

    def test_drops_traced_under_loss(self):
        sim, nodes, tracer = self.build(loss=0.3)
        sim.run(5)
        assert len(tracer.of_kind(DROP)) > 0
        assert tracer.of_kind(CUT) == []

    def test_cuts_traced_with_link_filter(self):
        cfg = LpbcastConfig(fanout=2, view_max=5)
        nodes = build_lpbcast_nodes(10, cfg, seed=2)
        network = NetworkModel(
            loss_rate=0.0, rng=random.Random(3),
            link_filter=lambda s, d: d != nodes[0].pid,
        )
        sim = RoundSimulation(network=network, seed=2)
        sim.add_nodes(nodes)
        tracer = Tracer().attach_network(network)
        sim.run(4)
        cuts = tracer.of_kind(CUT)
        assert cuts
        assert all(r.peer == nodes[0].pid for r in cuts)

    def test_round_markers(self):
        sim, nodes, tracer = self.build()
        sim.run(5)
        rounds = tracer.of_kind(ROUND)
        assert [r.at for r in rounds] == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert all("alive=15" in r.detail for r in rounds)


class TestTraceRecord:
    def test_frozen(self):
        record = TraceRecord(kind=DELIVER, at=1.0, pid=2)
        with pytest.raises(Exception):
            record.pid = 5
