"""ColumnarRoundSimulation: honoured parity, backends, aggregates, scale.

The columnar engine's correctness story has two halves, and both are pinned
here: the **honoured** counter subset must match the serial engine
byte-for-byte (schedule-deterministic series), and everything else is a
**declared divergence** — which must stay declared, i.e. the full record
sets really do differ, so nobody quietly starts trusting an unhonoured
series for cross-engine comparison.
"""

import pytest

from repro.core import LpbcastConfig
from repro.faults.plan import FaultPlan
from repro.metrics.delivery import DeliveryLog
from repro.sim import (
    ColumnarRoundSimulation,
    NetworkModel,
    build_lpbcast_nodes,
    create_simulation,
    derive_rng,
)
from repro.sim.columnar_runner import (
    HONOURED_COUNTERS,
    honoured_fingerprint,
    honoured_records,
    is_honoured_record,
)
from repro.telemetry import counter_records

try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])


def fault_plan():
    """Crash + recovery + pause + partition + drop window, all honoured or
    delivery-shaping fault classes the columnar engine supports."""
    return (FaultPlan()
            .drop(rate=0.2, start=3, stop=9)
            .partition([0, 1, 2, 3], [4, 5, 6, 7], start=4, heal=8)
            .crash(2, at=2, recover_at=6)
            .crash(9, at=5)
            .pause(11, at=3, duration=4))


def run_engine(engine, *, backend="auto", n=30, rounds=12, seed=17,
               loss=0.05, plan=None, publishes=4):
    cfg = LpbcastConfig(fanout=3, view_max=8)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    network = NetworkModel(loss_rate=loss, rng=derive_rng(seed, "dst-network"))
    if engine == "columnar":
        sim = ColumnarRoundSimulation(network=network, seed=seed,
                                      backend=backend)
    else:
        extra = {"shards": 2} if engine == "sharded" else {}
        sim = create_simulation(engine, network=network, seed=seed, **extra)
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(sim.nodes.values())
    if plan is not None:
        sim.use_fault_plan(plan)
    pub_rng = derive_rng(seed, "dst-publish")
    pids = [node.pid for node in nodes]

    def hook(round_no, s):
        if round_no > publishes:
            return
        paused = getattr(s, "_fault_paused", frozenset())
        ready = [p for p in pids if s.alive(p) and p not in paused]
        if not ready:
            return
        pid = ready[pub_rng.randrange(len(ready))]
        s.nodes[pid].lpb_cast(f"evt-{round_no}", float(round_no))

    sim.add_round_hook(hook)
    try:
        sim.run(rounds)
        records = counter_records(sim.telemetry)
        aggregates = sim.node_aggregates()
        return records, log, sim.alive_count(), aggregates
    finally:
        close = getattr(sim, "close", None)
        if close is not None:
            close()


class TestHonouredParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fault_free_scenario_matches_serial(self, backend):
        serial, _, _, _ = run_engine("serial", plan=None, loss=0.0)
        columnar, _, _, _ = run_engine("columnar", backend=backend,
                                       plan=None, loss=0.0)
        assert honoured_records(serial) == honoured_records(columnar)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fault_plan_scenario_matches_serial(self, backend):
        serial, _, s_alive, _ = run_engine("serial", plan=fault_plan())
        columnar, _, c_alive, _ = run_engine("columnar", backend=backend,
                                             plan=fault_plan())
        assert honoured_records(serial) == honoured_records(columnar)
        assert s_alive == c_alive

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs both backends")
    def test_backends_agree_on_honoured_fingerprint(self):
        # The honoured series consume no randomness, so repro artifacts
        # recorded on a numpy machine replay on a stdlib-only one.
        np_records, _, _, _ = run_engine("columnar", backend="numpy",
                                         plan=fault_plan())
        py_records, _, _, _ = run_engine("columnar", backend="python",
                                         plan=fault_plan())
        assert (honoured_fingerprint(np_records)
                == honoured_fingerprint(py_records))


class TestDeclaredDivergences:
    def test_honoured_filter_shape(self):
        assert HONOURED_COUNTERS == {
            "sim.rounds", "faults.crashes_applied",
            "faults.recoveries_applied", "faults.pause_rounds",
        }
        gossip = ("sim.sends",
                  (("kind", repr("GossipMessage")), ("round", repr(3))), 7)
        sub = ("sim.sends",
               (("kind", repr("SubscriptionRequest")), ("round", repr(3))), 1)
        assert is_honoured_record(gossip)
        assert not is_honoured_record(sub)
        assert is_honoured_record(("sim.rounds", (), 12))
        assert not is_honoured_record(("sim.delivered", (), 40))
        assert not is_honoured_record(("net.sent", (), 40))

    def test_divergences_stay_declared(self):
        # The columnar engine is NOT bit-identical outside the honoured
        # subset — this pin fails if the two engines ever agree on the full
        # record set, at which point the declared-divergence documentation
        # (docs/experiments-guide.md) and this contract should be revisited.
        serial, _, _, _ = run_engine("serial", plan=fault_plan())
        columnar, _, _, _ = run_engine("columnar", plan=fault_plan())
        assert honoured_records(serial) == honoured_records(columnar)
        assert serial != columnar

    def test_byzantine_plans_rejected(self):
        sim = ColumnarRoundSimulation(seed=1)
        sim.add_nodes(build_lpbcast_nodes(8, LpbcastConfig(view_max=4),
                                          seed=1))
        with pytest.raises(ValueError, match="Byzantine"):
            sim.use_fault_plan(FaultPlan().equivocate(1, rate=0.5))

    def test_causal_configs_rejected(self):
        # Declared divergence: the columnar engine keeps no per-notification
        # metadata, so the causal hold-back queue cannot be honoured.
        cfg = LpbcastConfig(view_max=4, causal_delivery=True,
                            digest_implies_delivery=False)
        sim = ColumnarRoundSimulation(seed=1)
        sim.add_nodes(build_lpbcast_nodes(8, cfg, seed=1))
        with pytest.raises(ValueError, match="causal"):
            sim.run_round()


class TestEngineBasics:
    def test_build_draws_distinct_views_without_self(self):
        cfg = LpbcastConfig(fanout=3, view_max=6)
        sim = ColumnarRoundSimulation.build(50, cfg, seed=3)
        for pid in range(50):
            view = sim.nodes[pid].view
            assert len(view) == 6
            assert len(set(view)) == 6
            assert pid not in view

    def test_build_small_system_views_cap_at_n_minus_one(self):
        cfg = LpbcastConfig(fanout=3, view_max=25)
        sim = ColumnarRoundSimulation.build(5, cfg, seed=3)
        assert len(sim.nodes[0].view) == 4

    def test_membership_freezes_after_first_round(self):
        sim = ColumnarRoundSimulation(seed=4)
        sim.add_nodes(build_lpbcast_nodes(6, LpbcastConfig(view_max=4),
                                          seed=4))
        sim.run_round()
        extra = build_lpbcast_nodes(1, LpbcastConfig(view_max=4), seed=5,
                                    first_pid=100)[0]
        with pytest.raises(RuntimeError, match="frozen"):
            sim.add_node(extra)

    def test_crash_recover_alive_count(self):
        sim = ColumnarRoundSimulation.build(10, LpbcastConfig(view_max=4),
                                            seed=6)
        assert sim.alive_count() == 10
        sim.crash(3)
        assert not sim.alive(3)
        assert sim.alive_count() == 9
        assert sim.recover(3)
        assert not sim.recover(3)  # already alive
        assert sim.alive_count() == 10

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ColumnarRoundSimulation(backend="fortran")

    def test_dissemination_reaches_everyone(self):
        sim = ColumnarRoundSimulation.build(200, LpbcastConfig(), seed=8)
        sim.nodes[0].lpb_cast("x", 0.0)
        sim.run(8)
        assert sim.delivery_ratio(0) == 1.0

    def test_delivery_listeners_fire_once_per_delivery(self):
        sim = ColumnarRoundSimulation.build(40, LpbcastConfig(view_max=8),
                                            seed=9)
        log = DeliveryLog().attach(sim.nodes.values())
        sim.nodes[0].lpb_cast("x", 0.0)
        sim.run(10)
        assert log.total_deliveries == 40
        assert log.redeliveries == 0
        (event_id,) = log.known_events()
        assert log.delivery_count(event_id) == 40

    def test_run_until_predicate(self):
        sim = ColumnarRoundSimulation.build(60, LpbcastConfig(view_max=8),
                                            seed=10)
        sim.nodes[0].lpb_cast("x", 0.0)
        stopped = sim.run_until(lambda s: s.delivery_ratio(0) >= 1.0,
                                max_rounds=30)
        assert 0 < stopped <= 30
        assert sim.round == stopped


class TestAggregatesMatrix:
    """node_aggregates across all four engines on one fixed-seed scenario.

    serial == sharded exactly (the PR 4 contract); async and columnar agree
    on the schedule-deterministic slice — process count and published sum
    for both, plus the per-tick ``gossips_sent`` sum for columnar (one tick
    per alive unpaused process per round on both round-based engines).
    """

    def _matrix(self, plan):
        out = {}
        for engine in ("serial", "sharded", "columnar"):
            *_, agg = run_engine(engine, n=24, rounds=8, plan=plan)
            out[engine] = agg
        # The async runtime shares the spec vocabulary via the DST harness.
        from repro.dst.harness import apply_scenario
        from repro.dst.spec import ScenarioSpec

        spec = ScenarioSpec(seed=17, n=24, rounds=8, publishes=4)
        outcome = apply_scenario(spec, "async")
        out["async_alive"] = outcome.alive
        return out

    def test_fault_free_matrix(self):
        m = self._matrix(None)
        serial, sharded, columnar = m["serial"], m["sharded"], m["columnar"]
        assert serial.count == sharded.count == columnar.count == 24
        assert serial.stat_sums == sharded.stat_sums
        assert serial.occupancy_sums == sharded.occupancy_sums
        assert serial.in_degree == sharded.in_degree
        assert (serial.stat_sums["published"]
                == columnar.stat_sums["published"] == 4)
        assert (serial.stat_sums["gossips_sent"]
                == columnar.stat_sums["gossips_sent"])
        assert m["async_alive"] == 24

    def test_crash_heavy_matrix(self):
        # A third of the system fail-stops mid-run; the alive populations
        # (and therefore every schedule-deterministic sum) must agree.
        plan = FaultPlan()
        for pid in range(8):
            plan.crash(pid, at=3 + (pid % 3))
        m = self._matrix(plan)
        serial, sharded, columnar = m["serial"], m["sharded"], m["columnar"]
        assert serial.count == sharded.count == columnar.count == 16
        assert serial.stat_sums == sharded.stat_sums
        assert (serial.stat_sums["published"]
                == columnar.stat_sums["published"])
        assert (serial.stat_sums["gossips_sent"]
                == columnar.stat_sums["gossips_sent"])


@pytest.mark.slow
class TestScale:
    def test_mega_scale_run_within_budget(self):
        import time

        cfg = LpbcastConfig(fanout=3, view_max=25)
        begin = time.perf_counter()
        sim = ColumnarRoundSimulation.build(100_000, cfg, seed=1)
        sim.nodes[0].lpb_cast("mega", 0.0)
        sim.run(20)
        elapsed = time.perf_counter() - begin
        assert sim.round == 20
        assert sim.delivery_ratio(0) > 0.999
        assert elapsed < 60.0, f"n=100k x 20 rounds took {elapsed:.1f}s"
