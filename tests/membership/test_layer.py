"""Tests for the separable membership layer (Sec. 6.2)."""

import random

from repro.core.events import Unsubscription
from repro.membership import PartialViewMembership, TotalMembership


def make_layer(owner=0, view=(), weighted=False, **kw):
    defaults = dict(view_max=5, subs_max=5, unsubs_max=5, unsub_ttl=10.0)
    defaults.update(kw)
    return PartialViewMembership(
        owner=owner, rng=random.Random(0), weighted=weighted,
        initial_view=view, **defaults
    )


class TestPartialViewMembership:
    def test_initial_view_truncated_to_bound(self):
        layer = make_layer(view=tuple(range(1, 20)))
        assert len(layer.view) == 5

    def test_apply_subscriptions(self):
        layer = make_layer(view=(1,))
        layer.apply_membership((2, 3), (), now=0.0)
        assert 2 in layer.view and 3 in layer.view
        assert 2 in layer.subs and 3 in layer.subs

    def test_apply_unsubscriptions(self):
        layer = make_layer(view=(1, 2))
        layer.apply_membership((), (Unsubscription(2, 0.5),), now=1.0)
        assert 2 not in layer.view
        assert 2 in layer.unsubs

    def test_owner_never_enters_view(self):
        layer = make_layer(owner=9)
        layer.apply_membership((9, 2), (), now=0.0)
        assert 9 not in layer.view
        assert 2 in layer.view

    def test_payload_includes_self(self):
        layer = make_layer(owner=9, view=(1,))
        subs, unsubs = layer.membership_payload(now=0.0)
        assert 9 in subs

    def test_payload_excludes_self_after_unsubscribe(self):
        layer = make_layer(owner=9, view=(1,))
        assert layer.local_unsubscribe(now=0.0, refusal_threshold=3)
        subs, unsubs = layer.membership_payload(now=0.0)
        assert 9 not in subs
        assert any(u.pid == 9 for u in unsubs)

    def test_payload_no_duplicates(self):
        layer = make_layer(owner=9, view=(1,))
        layer.subs.add(9)  # pathological: self in subs buffer
        subs, _ = layer.membership_payload(now=0.0)
        assert len(subs) == len(set(subs))

    def test_local_unsubscribe_refused_when_saturated(self):
        layer = make_layer(unsubs_max=10)
        for pid in range(20, 24):
            layer.unsubs.add(Unsubscription(pid, 0.0))
        assert not layer.local_unsubscribe(now=1.0, refusal_threshold=3)
        assert not layer.unsubscribed

    def test_local_unsubscribe_idempotent(self):
        layer = make_layer()
        assert layer.local_unsubscribe(now=0.0, refusal_threshold=3)
        assert layer.local_unsubscribe(now=1.0, refusal_threshold=3)

    def test_purge_drops_obsolete_unsubs(self):
        layer = make_layer(unsub_ttl=5.0)
        layer.unsubs.add(Unsubscription(3, 0.0))
        layer.purge(now=10.0)
        assert 3 not in layer.unsubs

    def test_view_overflow_recycles_into_subs(self):
        layer = make_layer(view=(1, 2, 3, 4, 5), subs_max=20)
        layer.apply_membership((6, 7), (), now=0.0)
        assert len(layer.view) == 5
        outside = {1, 2, 3, 4, 5, 6, 7} - set(layer.view)
        assert outside <= set(layer.subs)

    def test_weighted_awareness(self):
        layer = make_layer(view=(1, 2), weighted=True)
        layer.apply_membership((1,), (), now=0.0)
        assert layer.view.weight_of(1) == 1

    def test_gossip_targets_from_view(self):
        layer = make_layer(view=(1, 2, 3))
        targets = layer.gossip_targets(2)
        assert len(targets) == 2
        assert set(targets) <= {1, 2, 3}

    def test_add_remove_contains_len(self):
        layer = make_layer()
        assert layer.add(4)
        assert 4 in layer
        assert len(layer) == 1
        assert layer.remove(4)
        assert 4 not in layer


class TestTotalMembership:
    def test_knows_everyone_but_self(self):
        total = TotalMembership(0, members=range(5), rng=random.Random(0))
        assert set(total.known_processes()) == {1, 2, 3, 4}

    def test_gossip_targets_sampled(self):
        total = TotalMembership(0, members=range(10), rng=random.Random(0))
        targets = total.gossip_targets(3)
        assert len(targets) == 3
        assert 0 not in targets

    def test_apply_membership_updates(self):
        total = TotalMembership(0, members=(1, 2), rng=random.Random(0))
        total.apply_membership((3,), (Unsubscription(1, 0.0),), now=0.0)
        assert 3 in total
        assert 1 not in total

    def test_empty_payload(self):
        total = TotalMembership(0, members=(1, 2), rng=random.Random(0))
        assert total.membership_payload(now=0.0) == ((), ())

    def test_add_remove(self):
        total = TotalMembership(0, rng=random.Random(0))
        assert total.add(5)
        assert not total.add(5)
        assert not total.add(0)  # self
        assert total.remove(5)
        assert not total.remove(5)
