"""Tests for prioritary processes (Sec. 4.4)."""

import random

import pytest

from repro.membership import PartialViewMembership, PriorityProcessSet


def make_layer(owner=0, view=()):
    return PartialViewMembership(
        owner=owner, view_max=5, subs_max=5, unsubs_max=5, unsub_ttl=10.0,
        rng=random.Random(0), initial_view=view,
    )


class TestPriorityProcessSet:
    def test_requires_at_least_one(self):
        with pytest.raises(ValueError):
            PriorityProcessSet(())

    def test_deduplicates(self):
        priority = PriorityProcessSet((1, 1, 2))
        assert priority.pids == (1, 2)
        assert len(priority) == 2

    def test_bootstrap_contact_is_member(self):
        priority = PriorityProcessSet((1, 2, 3))
        contact = priority.bootstrap_contact(random.Random(0))
        assert contact in priority

    def test_normalize_injects_into_view(self):
        priority = PriorityProcessSet((100, 101))
        layer = make_layer(view=(1, 2))
        added = priority.normalize(layer)
        assert added == 2
        assert 100 in layer.view and 101 in layer.view

    def test_normalize_skips_owner(self):
        priority = PriorityProcessSet((0, 100))
        layer = make_layer(owner=0)
        added = priority.normalize(layer)
        assert added == 1
        assert 0 not in layer.view

    def test_normalize_respects_budget(self):
        priority = PriorityProcessSet((100, 101, 102))
        layer = make_layer()
        assert priority.normalize(layer, max_injected=1) == 1

    def test_normalize_keeps_view_bounded(self):
        priority = PriorityProcessSet(tuple(range(100, 110)))
        layer = make_layer(view=(1, 2, 3, 4, 5))
        priority.normalize(layer)
        assert len(layer.view) <= 5

    def test_normalize_idempotent_when_known(self):
        priority = PriorityProcessSet((100,))
        layer = make_layer(view=(100,))
        assert priority.normalize(layer) == 0

    def test_normalize_all(self):
        priority = PriorityProcessSet((100,))
        layers = [make_layer(owner=i) for i in range(3)]
        assert priority.normalize_all(layers) == 3

    def test_iteration(self):
        priority = PriorityProcessSet((5, 6))
        assert list(priority) == [5, 6]
