"""Tests for the pub/sub peer."""

import random

import pytest

from repro.core import LpbcastConfig
from repro.pubsub import PubSubPeer, TopicEnvelope, build_pubsub_peers
from repro.sim import NetworkModel, RoundSimulation


class TestSubscription:
    def test_subscribe_creates_topic_node(self):
        peer = PubSubPeer(0)
        peer.subscribe("stocks", initial_view=(1, 2))
        assert peer.topics() == ["stocks"]
        assert len(peer.topic_node("stocks").view) == 2

    def test_double_subscribe_keeps_node(self):
        peer = PubSubPeer(0)
        peer.subscribe("stocks", initial_view=(1,))
        node = peer.topic_node("stocks")
        peer.subscribe("stocks")
        assert peer.topic_node("stocks") is node

    def test_subscribe_via_contact_emits_join(self):
        peer = PubSubPeer(0)
        out = peer.subscribe("stocks", contact=7)
        assert len(out) == 1
        assert isinstance(out[0].message, TopicEnvelope)
        assert out[0].message.topic == "stocks"
        assert out[0].destination == 7

    def test_invalid_topic_rejected(self):
        with pytest.raises(ValueError):
            PubSubPeer(0).subscribe("bad topic!")

    def test_unsubscribe_unknown_topic_true(self):
        assert PubSubPeer(0).unsubscribe("never-joined")


class TestPublish:
    def test_publish_requires_subscription(self):
        with pytest.raises(KeyError):
            PubSubPeer(0).publish("stocks", "x")

    def test_publish_returns_notification(self):
        peer = PubSubPeer(0)
        peer.subscribe("stocks", initial_view=(1,))
        n = peer.publish("stocks", {"price": 10})
        assert n.payload == {"price": 10}
        assert n.event_id.origin == 0

    def test_listener_fires_on_own_publish(self):
        peer = PubSubPeer(0)
        seen = []
        peer.subscribe("stocks", listener=lambda t, n, now: seen.append((t, n)),
                       initial_view=(1,))
        peer.publish("stocks", "x")
        assert seen[0][0] == "stocks"


class TestRouting:
    def test_messages_wrapped_per_topic(self):
        peer = PubSubPeer(0)
        peer.subscribe("a", initial_view=(1, 2, 3))
        peer.subscribe("b", initial_view=(4, 5, 6))
        out = peer.on_tick(1.0)
        topics = {o.message.topic for o in out}
        assert topics == {"a", "b"}

    def test_unknown_topic_message_tolerated(self):
        peer = PubSubPeer(0)
        envelope = TopicEnvelope("ghost", object())
        assert peer.handle_message(1, envelope, now=0.0) == []
        assert peer.unknown_topic_messages == 1

    def test_non_envelope_rejected(self):
        with pytest.raises(TypeError):
            PubSubPeer(0).handle_message(1, "raw", now=0.0)


class TestEndToEnd:
    def test_topic_isolation(self):
        topics = {
            "a": list(range(0, 10)),
            "b": list(range(5, 15)),
        }
        peers = build_pubsub_peers(15, topics, LpbcastConfig(fanout=3, view_max=6),
                                   seed=1)
        sim = RoundSimulation(NetworkModel(loss_rate=0.0,
                                           rng=random.Random(0)), seed=1)
        sim.add_nodes(peers)
        event = peers[0].publish("a", "hello", now=0.0)
        sim.run(10)
        a_delivered = sum(
            1 for pid in topics["a"]
            if peers[pid].topic_node("a").has_delivered(event.event_id)
        )
        assert a_delivered == 10
        # Peers only in topic b never saw it.
        for pid in range(10, 15):
            assert "a" not in peers[pid].topics()

    def test_join_through_contact_end_to_end(self):
        topics = {"a": list(range(0, 10))}
        peers = build_pubsub_peers(11, topics, LpbcastConfig(fanout=3, view_max=6),
                                   seed=2)
        sim = RoundSimulation(seed=2)
        sim.add_nodes(peers)
        out = peers[10].subscribe("a", contact=0)
        sim.inject(10, out)
        sim.run(8)
        assert peers[10].topic_node("a").joined
        event = peers[3].publish("a", "post-join", now=8.0)
        sim.run(8)
        assert peers[10].topic_node("a").has_delivered(event.event_id)

    def test_resubscribe_after_unsubscribe(self):
        topics = {"a": list(range(0, 10))}
        peers = build_pubsub_peers(10, topics,
                                   LpbcastConfig(fanout=3, view_max=6,
                                                 unsub_ttl=4.0), seed=5)
        sim = RoundSimulation(seed=5)
        sim.add_nodes(peers)
        sim.run(2)
        assert peers[4].unsubscribe("a", now=2.0)
        sim.run(10)  # unsubscription spreads and then expires (ttl=4)
        # Re-subscribing replaces the departed instance with a fresh one
        # that joins through the contact.
        out = peers[4].subscribe("a", contact=0, now=12.0)
        assert len(out) == 1  # fresh join handshake
        sim.inject(4, out)
        sim.run(10)
        node = peers[4].topic_node("a")
        assert not node.unsubscribed
        assert node.joined
        event = peers[4].publish("a", "back again", now=22.0)
        sim.run(8)
        covered = sum(
            1 for pid in range(10)
            if peers[pid].topic_node("a").has_delivered(event.event_id)
        )
        assert covered >= 9

    def test_listener_on_multiple_topics(self):
        topics = {"a": [0, 1, 2], "b": [0, 1, 2]}
        peers = build_pubsub_peers(3, topics,
                                   LpbcastConfig(fanout=2, view_max=2), seed=6)
        sim = RoundSimulation(seed=6)
        sim.add_nodes(peers)
        seen = []
        listener = lambda topic, n, now: seen.append(topic)
        peers[2].subscribe("a", listener=listener)
        peers[2].subscribe("b", listener=listener)
        peers[0].publish("a", 1, now=0.0)
        peers[1].publish("b", 2, now=0.0)
        sim.run(6)
        assert set(seen) == {"a", "b"}

    def test_unsubscribe_drains(self):
        topics = {"a": list(range(0, 12))}
        peers = build_pubsub_peers(12, topics, LpbcastConfig(fanout=3, view_max=6),
                                   seed=3)
        sim = RoundSimulation(seed=3)
        sim.add_nodes(peers)
        sim.run(2)
        assert peers[4].unsubscribe("a", now=2.0)
        sim.run(15)
        knowers = sum(
            1 for pid in range(12) if pid != 4
            and 4 in peers[pid].topic_node("a").view
        )
        assert knowers <= 3  # mostly drained from views
