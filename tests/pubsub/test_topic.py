"""Tests for topic-name validation."""

import pytest

from repro.pubsub import validate_topic


class TestValidateTopic:
    @pytest.mark.parametrize("name", [
        "stocks", "stocks/nasdaq", "a.b-c_d", "T1", "0numeric",
    ])
    def test_valid_names(self, name):
        assert validate_topic(name) == name

    @pytest.mark.parametrize("name", [
        "", "/leading-slash", ".dot-first", "spa ce", "ex!cl", "-dash",
    ])
    def test_invalid_names(self, name):
        with pytest.raises(ValueError):
            validate_topic(name)

    def test_too_long(self):
        with pytest.raises(ValueError):
            validate_topic("x" * 256)

    def test_non_string(self):
        with pytest.raises(TypeError):
            validate_topic(42)
