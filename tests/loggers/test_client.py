"""Tests for the logged client and the end-to-end strong guarantee."""

import random

import pytest

from repro.core import LpbcastConfig
from repro.core.ids import EventId
from repro.loggers import (
    LoggedLpbcastNode,
    LogUpload,
    LogUploadAck,
    RecoveryRequest,
    RecoveryResponse,
    build_logged_system,
)
from repro.sim import NetworkModel, RoundSimulation

from ..helpers import notification


def make_client(pid=0, loggers=(900,), **overrides):
    cfg = LpbcastConfig(digest_implies_delivery=False, **overrides)
    return LoggedLpbcastNode(pid, cfg, random.Random(pid),
                             initial_view=(1, 2, 3), loggers=loggers)


class TestUploads:
    def test_publish_uploads_to_all_loggers(self):
        client = make_client(loggers=(900, 901))
        n, uploads = client.publish_logged("x", now=0.0)
        assert len(uploads) == 2
        assert {u.destination for u in uploads} == {900, 901}
        assert all(isinstance(u.message, LogUpload) for u in uploads)

    def test_unacked_uploads_retried_each_tick(self):
        client = make_client()
        n, _ = client.publish_logged("x", now=0.0)
        out = client.on_tick(now=1.0)
        uploads = [o for o in out if isinstance(o.message, LogUpload)]
        assert len(uploads) == 1

    def test_ack_stops_retries(self):
        client = make_client()
        n, _ = client.publish_logged("x", now=0.0)
        client.handle_message(900, LogUploadAck(900, n.event_id), now=0.5)
        out = client.on_tick(now=1.0)
        assert not any(isinstance(o.message, LogUpload) for o in out)


class TestRecovery:
    def test_recovery_request_every_period(self):
        client = make_client()
        requests = 0
        for tick in range(1, 7):
            out = client.on_tick(now=float(tick))
            requests += sum(
                1 for o in out if isinstance(o.message, RecoveryRequest)
            )
        assert requests == 2  # period 3, ticks 3 and 6

    def test_frontier_reflects_contiguous_deliveries(self):
        client = make_client()
        from ..helpers import gossip
        client.on_gossip(gossip(events=(notification(5, 1),
                                        notification(5, 2))), now=0.0)
        assert client.frontier() == (EventId(5, 2),)

    def test_recovery_response_delivers_missing(self):
        client = make_client()
        missing = notification(5, 1, "recovered")
        client.handle_message(
            900, RecoveryResponse(900, (missing,)), now=1.0
        )
        assert client.has_contiguously_delivered(missing.event_id)
        assert client.recovered_events == 1

    def test_recovery_response_skips_known(self):
        client = make_client()
        from ..helpers import gossip
        n = notification(5, 1)
        client.on_gossip(gossip(events=(n,)), now=0.0)
        client.handle_message(900, RecoveryResponse(900, (n,)), now=1.0)
        assert client.recovered_events == 0

    def test_invalid_recovery_period(self):
        with pytest.raises(ValueError):
            LoggedLpbcastNode(0, recovery_period=0)


class TestStrongGuarantee:
    def run_system(self, with_loggers: bool, seed=3):
        """Harsh conditions: 25% loss, starved buffers, no digest shortcut."""
        cfg = LpbcastConfig(
            fanout=3, view_max=10, events_max=3, event_ids_max=6,
            digest_implies_delivery=False,
        )
        clients, loggers = build_logged_system(
            30, logger_count=2, config=cfg, seed=seed
        )
        nodes = clients + (loggers if with_loggers else [])
        if not with_loggers:
            for client in clients:
                client.loggers = ()
        sim = RoundSimulation(
            NetworkModel(loss_rate=0.25, rng=random.Random(seed + 9)),
            seed=seed,
        )
        sim.add_nodes(nodes)
        published = []
        for client in clients[:6]:
            n, uploads = client.publish_logged({"from": client.pid}, now=0.0)
            published.append(n)
            if with_loggers:
                sim.inject(client.pid, uploads)
        sim.run(40)
        missing = sum(
            1
            for n in published
            for client in clients
            if not client.has_contiguously_delivered(n.event_id)
        )
        return missing, len(published) * len(clients)

    def test_without_loggers_events_are_lost(self):
        missing, total = self.run_system(with_loggers=False)
        assert missing > 0  # probabilistic-only delivery leaves gaps

    def test_with_loggers_everyone_delivers_everything(self):
        missing, total = self.run_system(with_loggers=True)
        assert missing == 0

    def test_builder_validation(self):
        with pytest.raises(ValueError):
            build_logged_system(0)
        with pytest.raises(ValueError):
            build_logged_system(5, logger_count=0)

    def test_builder_wiring(self):
        clients, loggers = build_logged_system(5, logger_count=2, seed=0)
        assert len(clients) == 5 and len(loggers) == 2
        logger_pids = {lg.pid for lg in loggers}
        assert all(set(c.loggers) == logger_pids for c in clients)
