"""Tests for the logger process (rpbcast-style, Sec. 7)."""

import random

import pytest

from repro.core.ids import EventId
from repro.loggers import (
    LOGGER_CONFIG,
    LoggerNode,
    LogUpload,
    LogUploadAck,
    RecoveryRequest,
    RecoveryResponse,
)

from ..helpers import gossip, notification


def make_logger(pid=900, view=(1, 2, 3), **kw):
    return LoggerNode(pid, rng=random.Random(pid), initial_view=view, **kw)


class TestArchiving:
    def test_gossiped_notification_archived(self):
        logger = make_logger()
        n = notification(5, 1, "payload")
        logger.on_gossip(gossip(sender=5, events=(n,)), now=1.0)
        assert logger.has_logged(n.event_id)
        assert logger.logged_count() == 1

    def test_upload_archives_and_acks(self):
        logger = make_logger()
        n = notification(5, 1, "payload")
        out = logger.on_upload(LogUpload(5, n), now=1.0)
        assert logger.has_logged(n.event_id)
        assert len(out) == 1
        ack = out[0].message
        assert isinstance(ack, LogUploadAck)
        assert ack.event_id == n.event_id
        assert out[0].destination == 5

    def test_duplicate_upload_still_acked(self):
        logger = make_logger()
        n = notification(5, 1)
        logger.on_upload(LogUpload(5, n), now=1.0)
        out = logger.on_upload(LogUpload(5, n), now=2.0)
        assert len(out) == 1
        assert logger.logged_count() == 1
        assert logger.uploads_received == 2

    def test_logger_config_uses_real_payload_mode(self):
        assert LOGGER_CONFIG.retransmissions
        assert not LOGGER_CONFIG.digest_implies_delivery


class TestRecoveryService:
    def fill(self, logger, origin=5, count=4):
        for seq in range(1, count + 1):
            logger.on_upload(LogUpload(origin, notification(origin, seq)), 0.0)

    def test_empty_frontier_gets_everything(self):
        logger = make_logger()
        self.fill(logger, count=3)
        out = logger.on_recovery_request(RecoveryRequest(7, ()), now=1.0)
        response = out[0].message
        assert isinstance(response, RecoveryResponse)
        assert len(response.events) == 3
        assert response.complete

    def test_frontier_filters_known_prefix(self):
        logger = make_logger()
        self.fill(logger, origin=5, count=4)
        request = RecoveryRequest(7, (EventId(5, 2),))
        response = logger.on_recovery_request(request, now=1.0)[0].message
        assert sorted(n.event_id.seq for n in response.events) == [3, 4]

    def test_up_to_date_requester_gets_empty_complete_response(self):
        logger = make_logger()
        self.fill(logger, origin=5, count=2)
        request = RecoveryRequest(7, (EventId(5, 2),))
        response = logger.on_recovery_request(request, now=1.0)[0].message
        assert response.events == ()
        assert response.complete

    def test_batch_limit_truncates(self):
        logger = make_logger(recovery_batch_max=2)
        self.fill(logger, count=5)
        response = logger.on_recovery_request(RecoveryRequest(7, ()), 1.0)[0].message
        assert len(response.events) == 2
        assert not response.complete

    def test_multiple_origins_served(self):
        logger = make_logger()
        self.fill(logger, origin=5, count=2)
        self.fill(logger, origin=6, count=2)
        response = logger.on_recovery_request(RecoveryRequest(7, ()), 1.0)[0].message
        origins = {n.event_id.origin for n in response.events}
        assert origins == {5, 6}

    def test_invalid_batch_limit(self):
        with pytest.raises(ValueError):
            make_logger(recovery_batch_max=0)

    def test_regular_gossip_still_handled(self):
        logger = make_logger()
        out = logger.handle_message(1, gossip(sender=1, subs=(42,)), now=1.0)
        assert 42 in logger.view
        assert isinstance(out, list)
