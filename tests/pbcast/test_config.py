"""Tests for PbcastConfig validation."""

import pytest

from repro.pbcast import FIRST_PHASE_MULTICAST, FIRST_PHASE_NONE, PbcastConfig


class TestDefaults:
    def test_paper_fanout(self):
        # Fig. 7: "a higher fanout is required ... (F = 5 here vs F = 3)".
        assert PbcastConfig().fanout == 5

    def test_limits_are_bounded(self):
        cfg = PbcastConfig()
        assert cfg.repetition_limit >= 1
        assert cfg.hop_limit >= 1

    def test_first_phase_default(self):
        assert PbcastConfig().first_phase == FIRST_PHASE_MULTICAST


class TestValidation:
    def test_fanout_positive(self):
        with pytest.raises(ValueError):
            PbcastConfig(fanout=0)

    def test_repetition_limit_positive(self):
        with pytest.raises(ValueError):
            PbcastConfig(repetition_limit=0)

    def test_hop_limit_positive(self):
        with pytest.raises(ValueError):
            PbcastConfig(hop_limit=0)

    def test_first_phase_values(self):
        with pytest.raises(ValueError):
            PbcastConfig(first_phase="broadcast")
        assert PbcastConfig(first_phase=FIRST_PHASE_NONE).first_phase == "none"

    def test_view_max_vs_fanout(self):
        with pytest.raises(ValueError):
            PbcastConfig(fanout=5, view_max=3)

    @pytest.mark.parametrize("field", ["message_buffer_max", "event_ids_max", "solicit_max"])
    def test_non_negative_bounds(self, field):
        with pytest.raises(ValueError):
            PbcastConfig(**{field: -1})

    def test_gossip_period_positive(self):
        with pytest.raises(ValueError):
            PbcastConfig(gossip_period=0)

    def test_with_overrides(self):
        cfg = PbcastConfig().with_overrides(fanout=6, view_max=20)
        assert cfg.fanout == 6
