"""Tests for the pbcast node: two phases, hop and repetition limits."""

import random

import pytest

from repro.core.ids import EventId
from repro.pbcast import (
    FIRST_PHASE_NONE,
    PbcastConfig,
    PbcastData,
    PbcastDigest,
    PbcastNode,
    PbcastSolicit,
    build_pbcast_nodes,
)

from ..helpers import notification


def make_pbcast(pid=0, view=(1, 2, 3, 4, 5), **overrides):
    cfg = PbcastConfig(**overrides) if overrides else PbcastConfig()
    return PbcastNode(pid, cfg, random.Random(pid), initial_view=view)


class TestFirstPhase:
    def test_multicast_targets_everyone(self):
        node = make_pbcast()
        node.set_multicast_oracle(lambda: range(10))
        notification_, out = node.publish("x", now=0.0)
        assert len(out) == 9  # everyone but self
        assert all(isinstance(o.message, PbcastData) for o in out)
        assert all(o.message.hops == 0 for o in out)

    def test_first_phase_none_sends_nothing(self):
        node = make_pbcast(first_phase=FIRST_PHASE_NONE)
        _, out = node.publish("x", now=0.0)
        assert out == []

    def test_publisher_delivers_locally(self):
        node = make_pbcast()
        n, _ = node.publish("x", now=0.0)
        assert node.has_delivered(n.event_id)

    def test_oracle_fallback_is_membership(self):
        node = make_pbcast(view=(1, 2))
        assert set(node.first_phase_targets()) == {1, 2}


class TestDigestGossip:
    def test_tick_gossips_digest_to_fanout(self):
        node = make_pbcast(view=tuple(range(1, 16)))
        node.multicast("x", now=0.0)
        out = node.on_tick(now=1.0)
        assert len(out) == 5
        assert all(isinstance(o.message, PbcastDigest) for o in out)
        assert all(len(o.message.ids) == 1 for o in out)

    def test_digest_piggybacks_membership(self):
        node = make_pbcast(pid=7)
        out = node.on_tick(now=1.0)
        assert all(7 in o.message.subs for o in out)

    def test_repetition_limit_expires_ids(self):
        node = make_pbcast(repetition_limit=2)
        node.multicast("x", now=0.0)
        for tick in (1.0, 2.0):
            out = node.on_tick(now=tick)
            assert all(o.message.ids for o in out), f"tick {tick}"
        out = node.on_tick(now=3.0)
        assert all(o.message.ids == () for o in out)

    def test_digest_receiver_solicits_missing(self):
        receiver = make_pbcast(pid=1)
        eid = EventId(9, 1)
        out = receiver.on_digest(PbcastDigest(5, ids=(eid,)), now=1.0)
        assert len(out) == 1
        assert out[0].destination == 5
        assert isinstance(out[0].message, PbcastSolicit)
        assert out[0].message.ids == (eid,)

    def test_digest_receiver_ignores_known(self):
        receiver = make_pbcast(pid=1)
        n = notification(9, 1)
        receiver.on_data(PbcastData(9, n), now=0.5)
        out = receiver.on_digest(PbcastDigest(5, ids=(n.event_id,)), now=1.0)
        assert out == []

    def test_solicit_cap(self):
        receiver = make_pbcast(pid=1, solicit_max=3)
        ids = tuple(EventId(9, s) for s in range(1, 10))
        out = receiver.on_digest(PbcastDigest(5, ids=ids), now=1.0)
        assert len(out[0].message.ids) == 3

    def test_digest_merges_membership(self):
        receiver = make_pbcast(pid=1, view_max=10)
        digest = PbcastDigest(5, ids=(), subs=(42,))
        receiver.on_digest(digest, now=1.0)
        assert 42 in receiver.membership.known_processes()


class TestRetransmission:
    def test_solicit_served_with_incremented_hops(self):
        holder = make_pbcast(pid=5)
        n = notification(9, 1)
        holder.on_data(PbcastData(9, n, hops=1), now=0.5)
        out = holder.on_solicit(PbcastSolicit(1, (n.event_id,)), now=1.0)
        assert len(out) == 1
        assert out[0].message.hops == 2

    def test_hop_limit_refuses(self):
        holder = make_pbcast(pid=5, hop_limit=2)
        n = notification(9, 1)
        holder.on_data(PbcastData(9, n, hops=2), now=0.5)
        out = holder.on_solicit(PbcastSolicit(1, (n.event_id,)), now=1.0)
        assert out == []
        assert holder.stats.hop_limit_refusals == 1

    def test_unknown_id_not_served(self):
        holder = make_pbcast(pid=5)
        out = holder.on_solicit(PbcastSolicit(1, (EventId(1, 1),)), now=1.0)
        assert out == []

    def test_message_buffer_bounded(self):
        holder = make_pbcast(pid=5, message_buffer_max=2)
        for seq in range(1, 5):
            holder.on_data(PbcastData(9, notification(9, seq)), now=0.5)
        out = holder.on_solicit(PbcastSolicit(1, (EventId(9, 1),)), now=1.0)
        assert out == []  # dropped from the bounded store

    def test_duplicate_data_counted(self):
        node = make_pbcast(pid=1)
        n = notification(9, 1)
        node.on_data(PbcastData(9, n), now=0.5)
        node.on_data(PbcastData(9, n), now=0.6)
        assert node.stats.duplicates == 1
        assert node.stats.delivered == 1

    def test_event_ids_bounded(self):
        node = make_pbcast(pid=1, event_ids_max=2)
        for seq in range(1, 5):
            node.on_data(PbcastData(9, notification(9, seq)), now=0.5)
        assert not node.has_delivered(EventId(9, 1))
        assert node.has_delivered(EventId(9, 4))


class TestDispatchAndBuilders:
    def test_unknown_message_raises(self):
        with pytest.raises(TypeError):
            make_pbcast().handle_message(1, object(), now=0.0)

    def test_delivery_listener(self):
        node = make_pbcast(pid=1)
        seen = []
        node.add_delivery_listener(lambda pid, n, now: seen.append(n))
        n = notification(9, 1)
        node.on_data(PbcastData(9, n), now=0.5)
        assert seen == [n]

    def test_build_total_membership(self):
        nodes = build_pbcast_nodes(10, membership="total", seed=1)
        assert len(nodes) == 10
        assert len(nodes[0].membership.known_processes()) == 9

    def test_build_partial_membership(self):
        cfg = PbcastConfig(view_max=6)
        nodes = build_pbcast_nodes(20, cfg, membership="partial", seed=1)
        assert all(len(n.membership.known_processes()) == 6 for n in nodes)

    def test_build_oracle_knows_everyone(self):
        nodes = build_pbcast_nodes(10, membership="partial", seed=1)
        assert len(nodes[3].first_phase_targets()) == 9

    def test_build_rejects_bad_membership(self):
        with pytest.raises(ValueError):
            build_pbcast_nodes(5, membership="global")

    def test_with_total_view_classmethod(self):
        node = PbcastNode.with_total_view(0, range(5), rng=random.Random(0))
        assert len(node.membership.known_processes()) == 4
