"""Shared test configuration.

Pins Hypothesis behaviour so property tests are reproducible across
machines and CI runs:

- ``dev`` (default): standard randomized exploration with a local example
  database, good for finding new counterexamples while hacking.
- ``ci``: fully derandomized — the same examples every run and no deadline
  flakiness on loaded runners (derandomize implies no example database;
  Hypothesis rejects the combination).

Select with ``HYPOTHESIS_PROFILE=ci pytest`` (the CI workflow exports it).
"""

from __future__ import annotations

import os

from hypothesis import settings
from hypothesis.database import DirectoryBasedExampleDatabase

_EXAMPLE_DB = os.path.join(os.path.dirname(__file__), ".hypothesis-examples")

settings.register_profile(
    "dev",
    database=DirectoryBasedExampleDatabase(_EXAMPLE_DB),
    deadline=None,
)

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    print_blob=True,
)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
