"""Smoke tests for the experiment library (cheap configurations).

The benchmark harness runs these at paper scale; here we only verify that
each figure function produces well-formed series at reduced scale, so a
plain `pytest tests/` run covers the module without the bench runtime.
"""

from repro.experiments import (
    fig2_series,
    fig3a_series,
    fig3b_series,
    fig4_series,
    fig5b_series,
    fig7a_series,
    lpbcast_infection_curve,
    measurement_reliability,
    pbcast_infection_curve,
)


class TestAnalyticalFigures:
    def test_fig2_shape(self):
        series = fig2_series(rounds=8)
        assert set(series) == {"F=3", "F=4", "F=5", "F=6"}
        assert all(len(curve) == 9 for curve in series.values())
        assert all(curve[0] == 1.0 for curve in series.values())

    def test_fig3a_keys(self):
        series = fig3a_series(rounds=6)
        assert f"n=125" in series and f"n=1000" in series

    def test_fig3b_aligned(self):
        sizes, rounds = fig3b_series()
        assert len(sizes) == len(rounds)
        assert all(r is not None for r in rounds)

    def test_fig4_points(self):
        curves = fig4_series()
        for name, points in curves.items():
            assert all(0.0 <= p <= 1.0 for _, p in points)


class TestSimulatedFigures:
    def test_infection_curve_monotone(self):
        curve = lpbcast_infection_curve(30, l=8, seed=1, rounds=8)
        assert curve[0] == 1
        assert all(b >= a for a, b in zip(curve, curve[1:]))

    def test_fig5b_small(self):
        series = fig5b_series(seeds=[0], rounds=6)
        assert set(series) == {"l=10", "l=15", "l=20"}

    def test_fig7a_small(self):
        series = fig7a_series(seeds=[0], rounds=6)
        assert len(series) == 3

    def test_pbcast_curve(self):
        curve = pbcast_infection_curve(30, "partial", l=8, seed=1, rounds=8)
        assert curve[0] == 1
        assert curve[-1] >= 25

    def test_measurement_reliability_range(self):
        value = measurement_reliability(
            n=30, l=8, publishers=5, rate=1, horizon=15.0, seed=1
        )
        assert 0.0 <= value <= 1.0
        assert value > 0.8
