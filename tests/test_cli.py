"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.n == 125
        assert args.fanout == 3

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9z"])


class TestCommands:
    def test_demo_succeeds_and_prints_curve(self, capsys):
        assert main(["demo", "-n", "30", "--view", "8", "--rounds", "10"]) == 0
        out = capsys.readouterr().out
        assert "lpbcast demo" in out
        assert "infected" in out

    def test_demo_exit_code_on_incomplete_infection(self, capsys):
        # One round cannot infect 30 processes.
        assert main(["demo", "-n", "30", "--view", "8", "--rounds", "1"]) == 1

    def test_analyze(self, capsys):
        assert main(["analyze", "125"]) == 0
        out = capsys.readouterr().out
        assert "p (Eq. 1)" in out
        assert "0.0228" in out

    def test_tune(self, capsys):
        assert main(["tune", "250"]) == 0
        out = capsys.readouterr().out
        assert "fanout F" in out
        assert "view size l" in out

    def test_tune_with_publish_rate(self, capsys):
        assert main(["tune", "250", "--publish-rate", "10"]) == 0
        assert "|eventIds|m" in capsys.readouterr().out

    def test_figure_2(self, capsys):
        assert main(["figure", "2"]) == 0
        out = capsys.readouterr().out
        assert "F=3" in out and "F=6" in out

    def test_figure_3b(self, capsys):
        assert main(["figure", "3b"]) == 0
        assert "rounds to 99%" in capsys.readouterr().out

    def test_figure_4(self, capsys):
        assert main(["figure", "4"]) == 0
        assert "n=125" in capsys.readouterr().out

    def test_figure_5b_with_one_seed(self, capsys):
        assert main(["figure", "5b", "--seeds", "1"]) == 0
        assert "l=10" in capsys.readouterr().out

    def test_figure_7a_with_one_seed(self, capsys):
        assert main(["figure", "7a", "--seeds", "1"]) == 0
        assert "lpbcast" in capsys.readouterr().out

    def test_latency(self, capsys):
        assert main(["latency", "125"]) == 0
        out = capsys.readouterr().out
        assert "E[delivery round" in out
        assert "99%" in out

    def test_validate_partition(self, capsys):
        assert main(["validate-partition", "8", "--view", "1",
                     "--trials", "500"]) == 0
        out = capsys.readouterr().out
        assert "empirical partition rate" in out

    def test_chaos_soak_runs_and_reports(self, capsys):
        assert main(["chaos", "--scenarios", "2", "-n", "20",
                     "--rounds", "15", "--seed", "5",
                     "--preset", "steady_state"]) == 0
        out = capsys.readouterr().out
        assert "chaos soak: 2 scenario(s)" in out
        assert "invariants=OK" in out
        assert "0 with invariant violations" in out

    def test_chaos_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--preset", "nonsense"])


class TestTraceCommand:
    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.n == 30
        assert args.rounds == 10
        assert args.engine == "serial"
        assert not args.no_tracing

    def test_trace_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--engine", "quantum"])

    def test_trace_rejects_shards_on_serial_engine(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "-n", "12", "--rounds", "4",
                  "--engine", "serial", "--shards", "2"])
        assert excinfo.value.code == 2
        assert "does not accept" in capsys.readouterr().err

    def test_trace_prints_counters_profile_and_events(self, capsys):
        assert main(["trace", "-n", "12", "--rounds", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "telemetry trace:" in out
        assert "sim.sends" in out
        assert "time.round" in out
        assert "round.start" in out

    def test_trace_exports_validate(self, capsys, tmp_path):
        jsonl = tmp_path / "trace.jsonl"
        prom = tmp_path / "trace.prom"
        assert main(["trace", "-n", "12", "--rounds", "4", "--seed", "3",
                     "--jsonl", str(jsonl), "--prom", str(prom),
                     "--validate"]) == 0
        out = capsys.readouterr().out
        assert "schema OK" in out
        assert jsonl.read_text().startswith('{"')
        assert "# TYPE" in prom.read_text()

    def test_trace_sharded_matches_serial_output_counters(self, capsys):
        outputs = {}
        for engine in ("serial", "sharded"):
            # --shards only rides along with the sharded engine: the strict
            # factory rejects it elsewhere instead of silently ignoring it.
            extra = ["--shards", "2"] if engine == "sharded" else []
            assert main(["trace", "-n", "12", "--rounds", "4", "--seed", "3",
                         "--engine", engine, *extra]) == 0
            out = capsys.readouterr().out
            start = out.index("-- counter totals --")
            end = out.index("-- timing profile --")
            outputs[engine] = out[start:end]
        assert outputs["serial"] == outputs["sharded"]
