"""Churn on the asynchronous runtime: joins and leaves mid-run."""

import random

from repro.core import LpbcastConfig, LpbcastNode
from repro.loggers import build_logged_system
from repro.metrics import DeliveryLog
from repro.pubsub import build_pubsub_peers
from repro.sim import (
    AsyncGossipRuntime,
    NetworkModel,
    build_lpbcast_nodes,
    constant_latency,
)


def build_runtime(n=20, seed=4, loss=0.05):
    cfg = LpbcastConfig(fanout=3, view_max=8)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    net = NetworkModel(loss_rate=loss, rng=random.Random(seed + 41),
                       latency=constant_latency(0.1))
    runtime = AsyncGossipRuntime(network=net, seed=seed)
    runtime.add_nodes(nodes)
    return cfg, nodes, runtime


class TestAsyncJoin:
    def test_mid_run_join_integrates(self):
        cfg, nodes, runtime = build_runtime()
        joiner = LpbcastNode(100, cfg, random.Random(100))
        runtime.join_at(joiner, contact=nodes[0].pid, at=3.0)
        runtime.run_until(20.0)
        assert joiner.joined
        assert len(joiner.view) > 0

    def test_joiner_receives_later_events(self):
        cfg, nodes, runtime = build_runtime()
        joiner = LpbcastNode(100, cfg, random.Random(100))
        log = DeliveryLog().attach([joiner])
        runtime.join_at(joiner, contact=nodes[0].pid, at=2.0)
        holder = {}
        runtime.call_at(
            10.0, lambda: holder.update(
                event=nodes[3].lpb_cast("late", now=runtime.now)
            )
        )
        runtime.run_until(30.0)
        assert log.delivered(100, holder["event"].event_id)

    def test_join_request_retries_through_loss(self):
        cfg, nodes, runtime = build_runtime(loss=0.5, seed=6)
        joiner = LpbcastNode(
            100, cfg.with_overrides(join_timeout=2.0), random.Random(100)
        )
        runtime.join_at(joiner, contact=nodes[0].pid, at=1.0)
        runtime.run_until(40.0)
        assert joiner.stats.join_requests_sent >= 1
        assert joiner.joined


class TestAsyncLeave:
    def test_mid_run_leave_drains_views(self):
        cfg, nodes, runtime = build_runtime(n=25, seed=7)
        leaver = nodes[4]
        runtime.leave_at(leaver.pid, at=3.0)
        runtime.run_until(35.0)
        assert leaver.unsubscribed
        knowers = sum(
            1 for n in nodes if n.pid != leaver.pid and leaver.pid in n.view
        )
        assert knowers <= 3


class TestAsyncComposites:
    def test_pubsub_over_async_runtime(self):
        topics = {"a": list(range(12))}
        peers = build_pubsub_peers(12, topics,
                                   LpbcastConfig(fanout=3, view_max=6), seed=8)
        net = NetworkModel(loss_rate=0.05, rng=random.Random(9),
                           latency=constant_latency(0.1))
        runtime = AsyncGossipRuntime(network=net, seed=8)
        runtime.add_nodes(peers)
        holder = {}
        runtime.call_at(
            1.0, lambda: holder.update(
                event=peers[0].publish("a", "async", now=runtime.now)
            )
        )
        runtime.run_until(15.0)
        covered = sum(
            1 for pid in range(12)
            if peers[pid].topic_node("a").has_delivered(holder["event"].event_id)
        )
        assert covered == 12

    def test_loggers_over_async_runtime(self):
        cfg = LpbcastConfig(fanout=3, view_max=8, events_max=3,
                            event_ids_max=6, digest_implies_delivery=False)
        clients, loggers = build_logged_system(15, logger_count=1,
                                               config=cfg, seed=10)
        net = NetworkModel(loss_rate=0.2, rng=random.Random(11),
                           latency=constant_latency(0.1))
        runtime = AsyncGossipRuntime(network=net, seed=10)
        runtime.add_nodes(clients + loggers)
        holder = {}

        def publish():
            notification, uploads = clients[0].publish_logged(
                "x", now=runtime.now
            )
            holder["event"] = notification
            runtime.send(clients[0].pid, uploads)

        runtime.call_at(1.0, publish)
        runtime.run_until(60.0)
        missing = sum(
            1 for c in clients
            if not c.has_contiguously_delivered(holder["event"].event_id)
        )
        assert missing == 0
