"""Fault injection: crashes, forced partitions, and priority recovery."""

import random

from repro.core import LpbcastConfig, LpbcastNode
from repro.membership import PriorityProcessSet, periodic_normalizer
from repro.metrics import (
    DeliveryLog,
    find_partitions,
    is_partitioned,
)
from repro.sim import (
    CrashPlan,
    NetworkModel,
    RoundSimulation,
    build_lpbcast_nodes,
    partition_filter,
)


class TestCrashes:
    def test_dissemination_survives_tau_crashes(self):
        cfg = LpbcastConfig(fanout=3, view_max=15)
        nodes = build_lpbcast_nodes(100, cfg, seed=4)
        sim = RoundSimulation(
            NetworkModel(loss_rate=0.05, rng=random.Random(11)), seed=4
        )
        sim.add_nodes(nodes)
        plan = CrashPlan(range(100), crash_rate=0.05, horizon=6.0,
                         rng=random.Random(12))
        sim.use_crash_plan(plan)
        log = DeliveryLog().attach(nodes)
        event = nodes[0].lpb_cast("x", now=0.0)
        sim.run(14)
        survivors = [pid for pid in range(100) if sim.alive(pid)]
        delivered = sum(
            1 for pid in survivors if log.delivered(pid, event.event_id)
        )
        assert delivered == len(survivors)

    def test_crashed_publisher_before_first_gossip_loses_event(self):
        cfg = LpbcastConfig(fanout=3, view_max=10)
        nodes = build_lpbcast_nodes(30, cfg, seed=5)
        sim = RoundSimulation(seed=5)
        sim.add_nodes(nodes)
        log = DeliveryLog().attach(nodes)
        event = nodes[0].lpb_cast("x", now=0.0)
        sim.crash(nodes[0].pid)  # before it ever gossiped
        sim.run(10)
        assert log.delivery_count(event.event_id) == 1  # only the publisher

    def test_crashed_nodes_drain_from_views_slowly(self):
        # Crashes are silent (no unsubscription): the victim's id lingers in
        # views — the paper's motivation for redundant knowledge.
        cfg = LpbcastConfig(fanout=3, view_max=10)
        nodes = build_lpbcast_nodes(40, cfg, seed=6)
        sim = RoundSimulation(seed=6)
        sim.add_nodes(nodes)
        victim = nodes[7].pid
        sim.crash(victim)
        sim.run(6)
        knowers = sum(1 for n in nodes if n.pid != victim and victim in n.view)
        assert knowers > 0  # still known: no false global failure detection


class TestForcedPartition:
    def test_link_cut_blocks_dissemination(self):
        cfg = LpbcastConfig(fanout=3, view_max=10)
        nodes = build_lpbcast_nodes(40, cfg, seed=7)
        groups = [list(range(0, 20)), list(range(20, 40))]
        net = NetworkModel(
            loss_rate=0.0,
            rng=random.Random(1),
            link_filter=partition_filter(groups),
        )
        sim = RoundSimulation(network=net, seed=7)
        sim.add_nodes(nodes)
        log = DeliveryLog().attach(nodes)
        event = nodes[0].lpb_cast("x", now=0.0)
        sim.run(10)
        side_a = sum(1 for pid in range(0, 20) if log.delivered(pid, event.event_id))
        side_b = sum(1 for pid in range(20, 40) if log.delivered(pid, event.event_id))
        assert side_a == 20
        assert side_b == 0

    def test_membership_views_converge_to_partition(self):
        # Under a long-lived link cut, views fill with same-side processes
        # only (cross-side entries stop being refreshed but also stop being
        # advertised; eventually sides know mostly themselves).
        cfg = LpbcastConfig(fanout=3, view_max=8)
        nodes = build_lpbcast_nodes(30, cfg, seed=8)
        groups = [list(range(0, 15)), list(range(15, 30))]
        net = NetworkModel(loss_rate=0.0, rng=random.Random(2),
                           link_filter=partition_filter(groups))
        sim = RoundSimulation(network=net, seed=8)
        sim.add_nodes(nodes)
        sim.run(40)
        cross_entries = sum(
            1
            for n in nodes
            for target in n.view
            if (n.pid < 15) != (target < 15)
        )
        total_entries = sum(len(n.view) for n in nodes)
        # Cross-partition knowledge cannot grow; it should not dominate.
        assert cross_entries < total_entries * 0.5


class TestPriorityNormalization:
    def build_islands(self, cfg, seed=9):
        """Two view-isolated islands of 10 nodes each."""
        seeds = random.Random(seed)
        nodes = []
        for pid in range(20):
            island = range(0, 10) if pid < 10 else range(10, 20)
            view = [p for p in island if p != pid]
            nodes.append(
                LpbcastNode(pid, cfg, random.Random(seed * 100 + pid),
                            initial_view=seeds.sample(view, 5))
            )
        return nodes

    def test_islands_are_partitioned(self):
        cfg = LpbcastConfig(fanout=3, view_max=5)
        nodes = self.build_islands(cfg)
        assert is_partitioned(nodes)
        assert len(find_partitions(nodes)) == 2

    def test_normalization_heals_partition(self):
        cfg = LpbcastConfig(fanout=3, view_max=5)
        nodes = self.build_islands(cfg)
        priority = PriorityProcessSet((0, 10))  # one anchor per island
        sim = RoundSimulation(seed=9)
        sim.add_nodes(nodes)
        sim.add_round_hook(periodic_normalizer(priority, nodes, period=2))
        sim.run(12)
        assert not is_partitioned(nodes)
        # And dissemination now crosses the former cut.
        log = DeliveryLog().attach(nodes)
        event = nodes[0].lpb_cast("bridge", now=12.0)
        sim.run(12)
        assert log.delivery_count(event.event_id) == 20

    def test_partition_never_heals_without_normalization(self):
        cfg = LpbcastConfig(fanout=3, view_max=5)
        nodes = self.build_islands(cfg)
        sim = RoundSimulation(seed=9)
        sim.add_nodes(nodes)
        sim.run(20)
        # "A priori, it is not possible to recover from such a partition."
        assert is_partitioned(nodes)
