"""Scale test: the full paper range (n = 1000) in a single process.

The paper's analysis spans n = 100..1000 (Fig. 3); this test runs the top
of that range end-to-end and checks both dissemination and the logarithmic
latency claim empirically.
"""

import random

import pytest

from repro.core import LpbcastConfig
from repro.metrics import DeliveryLog, InfectionObserver, in_degree_stats
from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes

pytestmark = pytest.mark.slow


def run_large(n, rounds=12, seed=1):
    cfg = LpbcastConfig(fanout=3, view_max=25)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    sim = RoundSimulation(
        NetworkModel(loss_rate=0.05, rng=random.Random(seed + 55)), seed=seed
    )
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    event = nodes[0].lpb_cast("x", now=0.0)
    observer = InfectionObserver(log, event.event_id)
    sim.add_observer(observer.on_round)
    sim.run(rounds)
    return nodes, log, event, observer


class TestThousandProcesses:
    def test_dissemination_at_n1000(self):
        nodes, log, event, observer = run_large(1000)
        assert log.delivery_count(event.event_id) >= 995

    def test_views_healthy_at_scale(self):
        nodes, log, event, observer = run_large(1000, rounds=6)
        stats = in_degree_stats(nodes)
        assert stats.mean == 25.0
        assert stats.isolated == 0

    def test_latency_grows_logarithmically(self):
        # Fig. 3(b) empirically: 8x the system size costs ~1-2 extra rounds.
        def rounds_to_99(n):
            _, _, _, observer = run_large(n, rounds=14, seed=2)
            return observer.rounds_to_fraction(0.99, population=n)

        small = rounds_to_99(125)
        large = rounds_to_99(1000)
        assert small is not None and large is not None
        assert large - small <= 3
