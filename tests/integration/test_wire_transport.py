"""End-to-end runs with every message passed through the wire codec.

Proves the protocols are codec-clean: serializing each message to JSON and
back at the delivery boundary (what a real UDP/TCP transport would do)
changes nothing about protocol behaviour.
"""

import random

from repro.core import LpbcastConfig
from repro.core.codec import from_json, to_json
from repro.loggers import build_logged_system
from repro.metrics import DeliveryLog
from repro.pbcast import FIRST_PHASE_NONE, PbcastConfig, build_pbcast_nodes
from repro.pubsub import build_pubsub_peers
from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes


def codec_boundary(node):
    """Wrap a node so every incoming message crosses the serialization
    boundary, as it would on a real transport."""
    original = node.handle_message

    def wrapped(sender, message, now):
        return original(sender, from_json(to_json(message)), now)

    node.handle_message = wrapped
    return node


class TestSerializedTransport:
    def test_lpbcast_identical_through_codec(self):
        def run(serialize: bool):
            cfg = LpbcastConfig(fanout=3, view_max=8)
            nodes = build_lpbcast_nodes(25, cfg, seed=6)
            if serialize:
                for node in nodes:
                    codec_boundary(node)
            sim = RoundSimulation(
                NetworkModel(loss_rate=0.05, rng=random.Random(8)), seed=6
            )
            sim.add_nodes(nodes)
            log = DeliveryLog().attach(nodes)
            event = nodes[0].lpb_cast({"k": 1}, now=0.0)
            sim.run(10)
            return sorted(
                (pid, log.delivery_time(pid, event.event_id))
                for pid in log.deliverers_of(event.event_id)
            )

        assert run(serialize=False) == run(serialize=True)

    def test_pbcast_through_codec(self):
        cfg = PbcastConfig(fanout=4, view_max=8, first_phase=FIRST_PHASE_NONE)
        nodes = build_pbcast_nodes(25, cfg, seed=7, membership="partial")
        for node in nodes:
            codec_boundary(node)
        sim = RoundSimulation(
            NetworkModel(loss_rate=0.05, rng=random.Random(9)), seed=7
        )
        sim.add_nodes(nodes)
        log = DeliveryLog().attach(nodes)
        event, first = nodes[0].publish("x", now=0.0)
        sim.inject(nodes[0].pid, first)
        sim.run(10)
        assert log.delivery_count(event.event_id) >= 24

    def test_pubsub_through_codec(self):
        topics = {"a": list(range(15))}
        peers = build_pubsub_peers(15, topics,
                                   LpbcastConfig(fanout=3, view_max=6), seed=8)
        for peer in peers:
            codec_boundary(peer)
        sim = RoundSimulation(seed=8)
        sim.add_nodes(peers)
        event = peers[0].publish("a", {"price": 10.5}, now=0.0)
        sim.run(8)
        delivered = sum(
            1 for pid in range(15)
            if peers[pid].topic_node("a").has_delivered(event.event_id)
        )
        assert delivered == 15

    def test_logger_extension_through_codec(self):
        cfg = LpbcastConfig(fanout=3, view_max=8,
                            digest_implies_delivery=False)
        clients, loggers = build_logged_system(15, logger_count=1,
                                               config=cfg, seed=9)
        for node in clients + loggers:
            codec_boundary(node)
        sim = RoundSimulation(
            NetworkModel(loss_rate=0.1, rng=random.Random(10)), seed=9
        )
        sim.add_nodes(clients + loggers)
        notification, uploads = clients[0].publish_logged("x", now=0.0)
        sim.inject(clients[0].pid, uploads)
        sim.run(25)
        assert all(
            c.has_contiguously_delivered(notification.event_id)
            for c in clients
        )
