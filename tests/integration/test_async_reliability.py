"""Reliability measurements on the asynchronous runtime (Sec. 5.2 substitute)."""

import random

from repro.core import LpbcastConfig
from repro.metrics import DeliveryLog, measure_reliability
from repro.sim import (
    AsyncGossipRuntime,
    BroadcastWorkload,
    NetworkModel,
    build_lpbcast_nodes,
    uniform_latency,
)


def run_measurement(n=40, l=10, event_ids_max=60, events_max=60,
                    rate=1, publish_window=(1, 6), horizon=25.0, seed=0):
    cfg = LpbcastConfig(
        fanout=3, view_max=l,
        event_ids_max=event_ids_max, events_max=events_max,
    )
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    net = NetworkModel(loss_rate=0.05, rng=random.Random(seed + 3),
                       latency=uniform_latency(0.05, 0.4))
    runtime = AsyncGossipRuntime(network=net, seed=seed)
    runtime.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    workload = BroadcastWorkload(
        nodes[:10], events_per_round=rate,
        start=publish_window[0], stop=publish_window[1],
    )
    runtime.on_tick_complete(workload.on_tick)
    runtime.run_until(horizon)
    report = measure_reliability(
        log, workload.published_ids(), [node.pid for node in nodes]
    )
    return report


class TestAsyncReliability:
    def test_light_load_high_reliability(self):
        report = run_measurement(rate=1)
        assert report.reliability > 0.95

    def test_reliability_reported_over_all_pairs(self):
        report = run_measurement(rate=1)
        assert report.pairs_total == report.events * report.processes

    def test_tiny_id_buffer_degrades_reliability(self):
        # Fig. 6(b) mechanism: once ids are purged everywhere before global
        # infection, the epidemic stops spreading that event.
        generous = run_measurement(event_ids_max=100, events_max=100,
                                   rate=4, seed=2)
        starved = run_measurement(event_ids_max=4, events_max=4,
                                  rate=4, seed=2)
        assert starved.reliability < generous.reliability

    def test_unsynchronized_ticks_still_disseminate(self):
        report = run_measurement(rate=2, seed=5)
        assert report.reliability > 0.9
