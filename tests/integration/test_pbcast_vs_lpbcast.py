"""The Sec. 6.2 comparison: lpbcast vs pbcast with partial/total views."""

import random

from repro.core import LpbcastConfig
from repro.metrics import DeliveryLog, InfectionObserver, mean_curves
from repro.pbcast import FIRST_PHASE_NONE, PbcastConfig, build_pbcast_nodes
from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes


def run_lpbcast(n, seed, fanout=5, l=15, rounds=8):
    cfg = LpbcastConfig(fanout=fanout, view_max=l)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    sim = RoundSimulation(
        NetworkModel(loss_rate=0.05, rng=random.Random(seed + 31)), seed=seed
    )
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    event = nodes[0].lpb_cast("x", now=0.0)
    observer = InfectionObserver(log, event.event_id)
    sim.add_observer(observer.on_round)
    sim.run(rounds)
    return observer.curve(rounds)


def run_pbcast(n, seed, membership, fanout=5, l=15, rounds=8,
               first_phase=FIRST_PHASE_NONE):
    cfg = PbcastConfig(fanout=fanout, view_max=l, first_phase=first_phase)
    nodes = build_pbcast_nodes(n, cfg, seed=seed, membership=membership)
    sim = RoundSimulation(
        NetworkModel(loss_rate=0.05, rng=random.Random(seed + 31)), seed=seed
    )
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    event, first = nodes[0].publish("x", now=0.0)
    sim.inject(nodes[0].pid, first)
    observer = InfectionObserver(log, event.event_id)
    sim.add_observer(observer.on_round)
    sim.run(rounds)
    return observer.curve(rounds)


class TestFig7aOrdering:
    def test_all_protocols_infect_almost_everyone(self):
        # lpbcast's unlimited repetitions give atomic coverage here; pbcast's
        # bounded repetitions can strand the odd straggler (that is what
        # "bimodal" delivery means), so it gets a 98% bar.
        for seed in range(2):
            assert run_lpbcast(125, seed)[-1] == 125
            assert run_pbcast(125, seed, "partial")[-1] >= 123
            assert run_pbcast(125, seed, "total")[-1] >= 123

    def test_partial_view_preserves_pbcast_behaviour(self):
        # Fig. 7(a): pbcast-with-partial-view tracks pbcast-with-total-view.
        seeds = range(5)
        partial = mean_curves([run_pbcast(125, s, "partial") for s in seeds])
        total = mean_curves([run_pbcast(125, s, "total") for s in seeds])
        for r in range(2, 7):
            assert abs(partial[r] - total[r]) < 20

    def test_lpbcast_at_least_as_fast_mid_epidemic(self):
        # "The advantage of our lpbcast over pbcast ... hops and repetitions
        # are not limited" — compare area under the infection curve.
        seeds = range(5)
        lpb = mean_curves([run_lpbcast(125, s) for s in seeds])
        pb = mean_curves([run_pbcast(125, s, "partial") for s in seeds])
        assert sum(lpb[:7]) >= sum(pb[:7]) - 10


class TestFirstPhase:
    def test_multicast_first_phase_gives_instant_mass_infection(self):
        curve = run_pbcast(60, seed=1, membership="total",
                           first_phase="multicast", rounds=6)
        # ~95% infected at the end of round 1 (ε = 0.05 losses).
        assert curve[1] >= 0.85 * 60
        assert curve[-1] == 60

    def test_gossip_phase_repairs_first_phase_losses(self):
        for seed in range(3):
            curve = run_pbcast(60, seed=seed, membership="partial",
                               first_phase="multicast", rounds=6)
            assert curve[1] < 60      # losses happened
            assert curve[-1] == 60    # anti-entropy repaired them
