"""Full membership lifecycle under churn."""

import random

from repro.core import LpbcastConfig, LpbcastNode
from repro.metrics import DeliveryLog
from repro.sim import ChurnScript, NetworkModel, RoundSimulation, build_lpbcast_nodes


def build(n=30, seed=0, loss=0.0, cfg=None):
    cfg = cfg or LpbcastConfig(fanout=3, view_max=8)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    sim = RoundSimulation(
        NetworkModel(loss_rate=loss, rng=random.Random(seed + 50)), seed=seed
    )
    sim.add_nodes(nodes)
    return cfg, nodes, sim


class TestJoinLifecycle:
    def test_joiner_eventually_receives_events(self):
        cfg, nodes, sim = build()
        script = ChurnScript(
            node_factory=lambda pid: LpbcastNode(pid, cfg, random.Random(pid))
        )
        script.join(2, pid=100, contact=0)
        sim.add_round_hook(script.on_round)
        sim.run(8)  # joiner integrates
        log = DeliveryLog().attach([sim.nodes[100]])
        event = nodes[5].lpb_cast("after-join", now=8.0)
        sim.run(10)
        assert log.delivered(100, event.event_id)

    def test_joiner_becomes_known_by_many(self):
        cfg, nodes, sim = build()
        script = ChurnScript(
            node_factory=lambda pid: LpbcastNode(pid, cfg, random.Random(pid))
        )
        script.join(1, pid=100, contact=0)
        sim.add_round_hook(script.on_round)
        sim.run(25)
        knowers = sum(1 for n in nodes if 100 in n.view)
        # Expected in-degree ~ l after full integration; accept a majority
        # of that to keep the test robust.
        assert knowers >= 3

    def test_join_retry_under_total_loss_then_recovery(self):
        cfg, nodes, sim = build()
        joiner = LpbcastNode(100, cfg.with_overrides(join_timeout=2.0),
                             random.Random(100))
        sim.add_node(joiner)
        # First request lost: inject nothing, let the timeout fire.
        joiner.start_join(contact=0, now=0.0)
        sim.run(5)
        assert joiner.stats.join_requests_sent >= 2  # retried via on_tick
        assert joiner.joined  # the retry went through the simulation

    def test_many_concurrent_joins(self):
        cfg, nodes, sim = build()
        script = ChurnScript(
            node_factory=lambda pid: LpbcastNode(pid, cfg, random.Random(pid))
        )
        for i in range(5):
            script.join(2, pid=200 + i, contact=i)
        sim.add_round_hook(script.on_round)
        sim.run(15)
        assert all(sim.nodes[200 + i].joined for i in range(5))


class TestLeaveLifecycle:
    def test_leaver_disappears_from_most_views(self):
        cfg, nodes, sim = build(n=40)
        leaver = nodes[3]
        sim.run(3)
        assert leaver.try_unsubscribe(now=3.0)
        sim.run(18)
        knowers = sum(
            1 for n in nodes if n.pid != leaver.pid and leaver.pid in n.view
        )
        assert knowers <= 4  # gradual removal converged

    def test_unsubscription_obsolescence_allows_rejoin(self):
        cfg, nodes, sim = build(cfg=LpbcastConfig(fanout=3, view_max=8,
                                                  unsub_ttl=6.0))
        leaver = nodes[3]
        sim.run(2)
        leaver.try_unsubscribe(now=2.0)
        sim.run(20)  # unsubscription spreads, then expires everywhere
        alive_unsub_buffers = sum(
            1 for n in nodes if leaver.pid in n.unsubs
        )
        assert alive_unsub_buffers == 0  # ttl purged everywhere

    def test_mass_leave_keeps_survivors_connected(self):
        cfg, nodes, sim = build(n=40)
        script = ChurnScript()
        for i in range(10):
            script.leave(3 + i, nodes[i].pid)
        sim.add_round_hook(script.on_round)
        sim.run(25)
        survivors = [n for n in nodes if not n.unsubscribed]
        log = DeliveryLog().attach(survivors)
        event = survivors[0].lpb_cast("still-alive", now=25.0)
        sim.run(12)
        delivered = sum(
            1 for n in survivors if log.delivered(n.pid, event.event_id)
        )
        assert delivered == len(survivors)
