"""Feature-composition integration tests.

Each optional mechanism is tested in isolation elsewhere; these runs switch
several on at once and check the composite still behaves: weighted views +
weighted events + membership boost; FIFO gating over retransmissions;
compact digests under the async runtime; pbcast with multicast first phase
and partial membership under churned networks.
"""

import random

from repro.core import FifoDeliveryGate, LpbcastConfig
from repro.metrics import DeliveryLog, in_degree_stats, measure_reliability
from repro.pbcast import PbcastConfig, build_pbcast_nodes
from repro.sim import (
    AsyncGossipRuntime,
    BroadcastWorkload,
    NetworkModel,
    RoundSimulation,
    build_lpbcast_nodes,
    constant_latency,
)


class TestEverythingOnLpbcast:
    def test_all_sec61_optimizations_together(self):
        cfg = LpbcastConfig(
            fanout=3, view_max=10,
            weighted_views=True, weighted_events=True,
            membership_boost=1,
        )
        nodes = build_lpbcast_nodes(60, cfg, seed=14)
        sim = RoundSimulation(
            NetworkModel(loss_rate=0.05, rng=random.Random(15)), seed=14
        )
        sim.add_nodes(nodes)
        log = DeliveryLog().attach(nodes)
        event = nodes[0].lpb_cast("x", now=0.0)
        sim.run(12)
        assert log.delivery_count(event.event_id) == 60
        stats = in_degree_stats(nodes)
        assert stats.mean == 10.0
        assert stats.isolated == 0

    def test_fifo_gate_over_anti_entropy(self):
        cfg = LpbcastConfig(
            fanout=3, view_max=10,
            retransmissions=True, push_back=True,
            digest_implies_delivery=False,
        )
        nodes = build_lpbcast_nodes(25, cfg, seed=16)
        sim = RoundSimulation(
            NetworkModel(loss_rate=0.2, rng=random.Random(17)), seed=16
        )
        sim.add_nodes(nodes)
        orders = {}
        for node in nodes[1:]:
            gate = FifoDeliveryGate()
            order = []
            gate.add_listener(
                lambda pid, n, now, order=order: order.append(n.event_id.seq)
            )
            node.add_delivery_listener(gate.on_delivery)
            orders[node.pid] = order
        for r in range(6):
            nodes[0].lpb_cast(f"m{r}", now=float(r))
            sim.run_round()
        sim.run(14)
        complete = sum(
            1 for order in orders.values() if order == [1, 2, 3, 4, 5, 6]
        )
        # Anti-entropy repairs the payloads; FIFO gates order them.
        assert complete >= 0.9 * len(orders)

    def test_compact_digests_under_async_runtime(self):
        cfg = LpbcastConfig(fanout=3, view_max=8, compact_event_ids=True,
                            event_ids_max=64)
        nodes = build_lpbcast_nodes(20, cfg, seed=18)
        net = NetworkModel(loss_rate=0.05, rng=random.Random(19),
                           latency=constant_latency(0.1))
        runtime = AsyncGossipRuntime(network=net, seed=18)
        runtime.add_nodes(nodes)
        log = DeliveryLog().attach(nodes)
        workload = BroadcastWorkload(nodes[:5], events_per_round=1,
                                     start=1, stop=6)
        runtime.on_tick_complete(workload.on_tick)
        runtime.run_until(25.0)
        report = measure_reliability(
            log, workload.published_ids(), [n.pid for n in nodes]
        )
        assert report.reliability > 0.95


class TestPbcastComposite:
    def test_multicast_first_phase_with_partial_views_and_crashes(self):
        cfg = PbcastConfig(fanout=5, view_max=10, first_phase="multicast")
        nodes = build_pbcast_nodes(40, cfg, seed=20, membership="partial")
        sim = RoundSimulation(
            NetworkModel(loss_rate=0.15, rng=random.Random(21)), seed=20
        )
        sim.add_nodes(nodes)
        log = DeliveryLog().attach(nodes)
        for victim in (nodes[9].pid, nodes[17].pid):
            sim.crash(victim)
        event, first = nodes[0].publish("x", now=0.0)
        sim.inject(nodes[0].pid, first)
        sim.run(10)
        survivors = [n.pid for n in nodes if sim.alive(n.pid)]
        covered = sum(1 for pid in survivors if log.delivered(pid, event.event_id))
        assert covered >= 0.95 * len(survivors)
