"""Long-run view-uniformity: the membership stays close to the analysis
assumption (Sec. 4.1 uniform views) as the protocol churns the views."""

import random

import pytest

from repro.core import LpbcastConfig
from repro.metrics import in_degree_stats, view_uniformity_chi2
from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes


def run_system(rounds, n=80, l=10, seed=0, **overrides):
    cfg = LpbcastConfig(fanout=3, view_max=l, **overrides)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    sim = RoundSimulation(
        NetworkModel(loss_rate=0.05, rng=random.Random(seed + 27)), seed=seed
    )
    sim.add_nodes(nodes)
    sim.run(rounds)
    return nodes


class TestUniformityOverTime:
    def test_mean_in_degree_conserved(self):
        # Every view stays full (l entries), so mean in-degree == l always.
        for rounds in (0, 10, 40):
            nodes = run_system(rounds)
            assert in_degree_stats(nodes).mean == 10.0

    def test_no_process_becomes_hub_or_orphan(self):
        nodes = run_system(40)
        stats = in_degree_stats(nodes)
        # Binomial(79, 10/79): mean 10, std ~3 — beyond 6 std would signal
        # systematic skew.
        assert stats.maximum < 10 + 6 * 3.2
        assert stats.minimum > 0

    def test_chi2_does_not_blow_up_over_time(self):
        early = view_uniformity_chi2(run_system(5), view_size=10)
        late = view_uniformity_chi2(run_system(40), view_size=10)
        # The protocol's views are correlated (Sec. 6.1), so chi2 exceeds a
        # fresh uniform draw's — but it must stabilize, not diverge.
        assert late < max(4 * early, 200)

    def test_views_keep_churning(self):
        # "these views are not constant, but continue evolving" (Sec. 4.1):
        # compare views at round 20 and round 40 of the same run.
        cfg = LpbcastConfig(fanout=3, view_max=10)
        nodes = build_lpbcast_nodes(80, cfg, seed=3)
        sim = RoundSimulation(
            NetworkModel(loss_rate=0.05, rng=random.Random(30)), seed=3
        )
        sim.add_nodes(nodes)
        sim.run(20)
        mid = {n.pid: set(n.view.snapshot()) for n in nodes}
        sim.run(20)
        changed = sum(
            1 for n in nodes if set(n.view.snapshot()) != mid[n.pid]
        )
        assert changed > 60

    @pytest.mark.slow
    def test_membership_boost_tightens_in_degree_spread(self):
        plain_stds = []
        boosted_stds = []
        for seed in range(3):
            plain_stds.append(
                in_degree_stats(run_system(30, seed=seed)).std
            )
            boosted_stds.append(
                in_degree_stats(
                    run_system(30, seed=seed, membership_boost=2)
                ).std
            )
        plain = sum(plain_stds) / len(plain_stds)
        boosted = sum(boosted_stds) / len(boosted_stds)
        # Sec. 6.1: more membership gossip brings views closer to ideal;
        # at minimum it must not make the spread worse.
        assert boosted <= plain * 1.15
