"""End-to-end dissemination: simulation matches the paper's analysis."""

import random

import pytest

from repro.analysis import InfectionMarkovChain
from repro.core import LpbcastConfig
from repro.metrics import DeliveryLog, InfectionObserver, in_degree_stats
from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes


def run_infection(n, l, fanout=3, loss=0.05, seed=0, rounds=12):
    cfg = LpbcastConfig(fanout=fanout, view_max=l)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    sim = RoundSimulation(
        NetworkModel(loss_rate=loss, rng=random.Random(seed + 777)), seed=seed
    )
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    event = nodes[0].lpb_cast("x", now=0.0)
    observer = InfectionObserver(log, event.event_id)
    sim.add_observer(observer.on_round)
    sim.run(rounds)
    return observer.curve(rounds), nodes


class TestFullInfection:
    def test_everyone_infected_n125(self):
        curve, _ = run_infection(125, l=25)
        assert curve[-1] == 125

    def test_everyone_infected_despite_losses(self):
        curve, _ = run_infection(60, l=12, loss=0.2, rounds=16)
        assert curve[-1] == 60

    def test_epidemic_grows_then_saturates(self):
        curve, _ = run_infection(125, l=25)
        growth = [b - a for a, b in zip(curve, curve[1:])]
        peak = growth.index(max(growth))
        assert 1 <= peak <= 6
        assert curve[-1] == curve[-2]  # saturated


class TestAnalysisCorrelation:
    @pytest.mark.slow
    @pytest.mark.parametrize("n", [125, 250])
    def test_simulation_tracks_markov_expectation(self, n):
        # Fig. 5(a): "a very good correlation" between analysis and sim.
        chain = InfectionMarkovChain(n, 3)
        expected = chain.expected_curve(10)
        curves = []
        for seed in range(5):
            curve, _ = run_infection(n, l=25, seed=seed, rounds=10)
            curves.append(curve)
        mean = [sum(c[r] for c in curves) / len(curves) for r in range(11)]
        # Compare at mid-epidemic rounds; allow generous tolerance (five runs).
        for r in range(3, 9):
            assert mean[r] == pytest.approx(expected[r], rel=0.35, abs=8)

    @pytest.mark.slow
    def test_view_size_has_weak_impact(self):
        # Fig. 5(b): l affects latency only slightly.  Compare rounds to
        # infect 99% (the paper's measure; rounds-to-100% is a noisy
        # last-straggler statistic).
        def rounds_to_99(l):
            totals = []
            for seed in range(5):
                curve, _ = run_infection(125, l=l, seed=seed, rounds=15)
                totals.append(next(r for r, v in enumerate(curve) if v >= 124))
            return sum(totals) / len(totals)

        slow = rounds_to_99(10)
        fast = rounds_to_99(25)
        assert abs(slow - fast) <= 1.5  # weak dependence


class TestViewMaintenance:
    def test_views_stay_full_and_uniformish(self):
        curve, nodes = run_infection(125, l=20, rounds=15)
        stats = in_degree_stats(nodes)
        assert stats.mean == pytest.approx(20.0, rel=0.01)
        assert stats.isolated == 0
        assert all(len(n.view) == 20 for n in nodes)

    def test_views_evolve_over_time(self):
        cfg = LpbcastConfig(fanout=3, view_max=10)
        nodes = build_lpbcast_nodes(60, cfg, seed=1)
        sim = RoundSimulation(seed=1)
        sim.add_nodes(nodes)
        before = {n.pid: set(n.view.snapshot()) for n in nodes}
        sim.run(10)
        changed = sum(
            1 for n in nodes if set(n.view.snapshot()) != before[n.pid]
        )
        assert changed > 30  # continuous randomized evolution
