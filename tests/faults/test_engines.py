"""Fault plans wired into the engines: behavior and cross-engine identity."""

from repro.core import LpbcastConfig
from repro.faults import FaultPlan
from repro.metrics import DeliveryLog
from repro.sim import (
    NetworkModel,
    RoundSimulation,
    build_lpbcast_nodes,
)
from repro.sim.async_runner import AsyncGossipRuntime
from repro.sim.parallel_runner import ShardedRoundSimulation
from repro.sim.rng import SeedSequence

from ..helpers import small_system


class TestSerialEngineFaults:
    def test_full_partition_halts_dissemination_until_heal(self):
        sim, nodes, log = small_system(n=20, seed=1)
        side_a = [n.pid for n in nodes[:10]]
        side_b = [n.pid for n in nodes[10:]]
        sim.use_fault_plan(
            FaultPlan().partition(side_a, side_b, start=1, heal=8)
        )
        event = nodes[0].lpb_cast("cut", 0.0)
        sim.run(6)
        # While the cut holds, nothing published on side A reaches side B.
        assert all(not log.delivered(pid, event.event_id) for pid in side_b)
        sim.run(10)  # heal at round 8, then the epidemic crosses
        assert log.delivery_count(event.event_id) == 20

    def test_asymmetric_partition_lets_one_direction_through(self):
        sim, nodes, log = small_system(n=16, seed=2)
        side_a = [n.pid for n in nodes[:8]]
        side_b = [n.pid for n in nodes[8:]]
        sim.use_fault_plan(
            FaultPlan().partition(side_a, side_b, start=1, heal=50,
                                  direction="b-to-a")
        )
        from_a = nodes[0].lpb_cast("a-side", 0.0)
        sim.run(12)
        # A→B crossings are open, so an A event still infects B...
        assert any(log.delivered(pid, from_a.event_id) for pid in side_b)

    def test_crash_with_recovery_rejoins_and_delivers_again(self):
        sim, nodes, log = small_system(n=20, seed=3)
        victim = nodes[5].pid
        sim.use_fault_plan(FaultPlan().crash(victim, at=2, recover_at=8))
        sim.run(4)
        assert not sim.alive(victim)
        before = nodes[5].stats.join_requests_sent
        sim.run(6)  # recovery at round 8 triggers the Sec. 3.4 handshake
        assert sim.alive(victim)
        assert nodes[5].stats.join_requests_sent > before
        event = nodes[0].lpb_cast("after-recovery", 10.0)
        sim.run(10)
        assert log.delivered(victim, event.event_id)

    def test_paused_node_stops_gossiping_but_still_receives(self):
        sim, nodes, log = small_system(n=12, seed=4)
        slow = nodes[3]
        sim.use_fault_plan(FaultPlan().pause(slow.pid, at=2, duration=4))
        sim.run(1)
        sent_before = slow.stats.gossips_sent
        received_before = slow.stats.gossips_received
        sim.run(4)  # rounds 2-5: paused
        assert slow.stats.gossips_sent == sent_before
        assert slow.stats.gossips_received > received_before
        sim.run(2)  # pause over
        assert slow.stats.gossips_sent > sent_before

    def test_total_drop_silences_the_network(self):
        sim, nodes, log = small_system(n=10, seed=5)
        sim.use_fault_plan(FaultPlan().drop(1.0))
        event = nodes[0].lpb_cast("lost", 0.0)
        sim.run(8)
        assert log.delivery_count(event.event_id) == 1  # publisher only
        assert sim.messages_delivered == 0

    def test_delay_holds_messages_across_rounds(self):
        sim, nodes, log = small_system(n=10, seed=6)
        injector = sim.use_fault_plan(
            FaultPlan().delay(1.0, delay=2, start=1, stop=2)
        )
        nodes[0].lpb_cast("held", 0.0)
        sim.run_round()
        # Every round-1 message is in the hold-back list, none delivered.
        assert injector.stats.delayed > 0
        assert sim.messages_delivered == 0
        assert len(sim._delayed_faults) == injector.stats.delayed
        sim.run(2)  # due at round 3
        assert sim.messages_delivered > 0
        assert not sim._delayed_faults

    def test_duplicates_absorbed_by_protocol(self):
        sim, nodes, log = small_system(n=12, seed=7)
        injector = sim.use_fault_plan(FaultPlan().duplicate(0.5))
        event = nodes[0].lpb_cast("twice", 0.0)
        sim.run(10)
        assert injector.stats.duplicated > 0
        assert log.delivery_count(event.event_id) == 12
        # The log's ground truth: nobody delivered the event twice.
        assert log.redeliveries == 0

    def test_injector_returned_and_plan_replayable(self):
        def run(seed):
            sim, nodes, log = small_system(n=15, seed=seed)
            sim.use_fault_plan(
                FaultPlan().drop(0.2).crash(4, at=3, recover_at=7)
            )
            nodes[0].lpb_cast("x", 0.0)
            sim.run(12)
            return sorted(log._first_delivery_time.items())

        assert run(9) == run(9)


def _engine_fault_trace(engine_cls, seed, n=36, rounds=20, **kw):
    """Run a composed plan and capture every observable outcome."""
    cfg = LpbcastConfig(fanout=3, view_max=8)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    seeds = SeedSequence(seed)
    sim = engine_cls(NetworkModel(loss_rate=0.05, rng=seeds.rng("network")),
                     seed=seed, **kw)
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    sim.use_fault_plan(
        FaultPlan()
        .drop(0.08, start=2, stop=rounds)
        .duplicate(0.04)
        .delay(0.04, delay=2)
        .partition(range(0, n // 4), range(n // 4, n), start=5, heal=12,
                   direction="a-to-b")
        .crash(3, at=4, recover_at=14)
        .crash(9, at=6)
        .pause(11, at=7, duration=3)
    )

    def publish(round_no, s):
        if round_no <= 5:
            s.nodes[round_no % 7].lpb_cast(f"e{round_no}", float(round_no))

    sim.add_round_hook(publish)
    sim.run(rounds)
    if hasattr(sim, "collect"):
        sim.collect()
    return (
        tuple(sorted(log._first_delivery_time.items())),
        log.total_deliveries,
        log.redeliveries,
        sim.messages_delivered,
        sim.messages_to_crashed,
        tuple(sorted(sim.crashed)),
    )


class TestShardedEquivalence:
    def test_composed_plan_bit_identical_across_engines(self):
        serial = _engine_fault_trace(RoundSimulation, seed=42)
        sharded = _engine_fault_trace(ShardedRoundSimulation, seed=42,
                                      shards=3)
        assert serial == sharded

    def test_equivalence_holds_for_other_seeds_and_shard_counts(self):
        for seed, shards in ((7, 2), (19, 4)):
            serial = _engine_fault_trace(RoundSimulation, seed=seed,
                                         n=24, rounds=16)
            sharded = _engine_fault_trace(ShardedRoundSimulation, seed=seed,
                                          n=24, rounds=16, shards=shards)
            assert serial == sharded, f"diverged for seed={seed}"


class TestAsyncRuntimeFaults:
    def _runtime(self, seed, n=16):
        cfg = LpbcastConfig(fanout=3, view_max=8, gossip_period=1.0)
        nodes = build_lpbcast_nodes(n, cfg, seed=seed)
        seeds = SeedSequence(seed)
        runtime = AsyncGossipRuntime(
            NetworkModel(loss_rate=0.0, rng=seeds.rng("network")), seed=seed
        )
        runtime.add_nodes(nodes)
        log = DeliveryLog().attach(nodes)
        return runtime, nodes, log

    def test_crash_and_recovery_follow_the_round_clock(self):
        runtime, nodes, log = self._runtime(seed=1)
        victim = nodes[2]
        runtime.use_fault_plan(
            FaultPlan().crash(victim.pid, at=3, recover_at=8)
        )
        runtime.run_until(4.0)   # rounds 1-4; crash lands at t=2.0
        assert not runtime.alive(victim.pid)
        runtime.run_until(9.0)   # recovery at t=7.0
        assert runtime.alive(victim.pid)
        event = nodes[0].lpb_cast("post", runtime.now)
        runtime.run_until(20.0)
        assert log.delivered(victim.pid, event.event_id)

    def test_paused_process_skips_gossip_but_timer_survives(self):
        runtime, nodes, log = self._runtime(seed=2)
        slow = nodes[4]
        runtime.use_fault_plan(FaultPlan().pause(slow.pid, at=2, duration=3))
        runtime.run_until(1.0)
        sent_before = slow.stats.gossips_sent
        runtime.run_until(4.0)   # rounds 2-4: stalled
        assert slow.stats.gossips_sent == sent_before
        runtime.run_until(8.0)
        assert slow.stats.gossips_sent > sent_before

    def test_total_drop_window_blocks_traffic(self):
        runtime, nodes, log = self._runtime(seed=3, n=10)
        runtime.use_fault_plan(FaultPlan().drop(1.0))
        event = nodes[0].lpb_cast("mute", 0.0)
        runtime.run_until(10.0)
        assert log.delivery_count(event.event_id) == 1
        assert runtime.messages_delivered == 0

    def test_same_seed_replays_identically(self):
        def run():
            runtime, nodes, log = self._runtime(seed=5)
            runtime.use_fault_plan(
                FaultPlan().drop(0.15).duplicate(0.1).delay(0.1, delay=1)
                .crash(3, at=2, recover_at=6)
            )
            nodes[0].lpb_cast("r", 0.0)
            runtime.run_until(15.0)
            return sorted(log._first_delivery_time.items())

        assert run() == run()
