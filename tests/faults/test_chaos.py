"""Chaos soak harness: seeded scenarios, replayability, reporting."""

import pytest

from repro.faults import FaultPlan
from repro.faults.chaos import (
    PRESET_NAMES,
    ChaosResult,
    agreement_violations,
    format_soak_report,
    run_chaos_scenario,
    run_chaos_soak,
)


class TestScenarioRuns:
    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            run_chaos_scenario(preset="thundering_herd")

    def test_single_run_reports_everything(self):
        result = run_chaos_scenario(preset="steady_state", n=24, rounds=30,
                                    seed=3)
        assert result.preset == "steady_state"
        assert result.events_published > 0
        assert result.plan_summary != "no faults"
        assert result.survivors > 0
        assert result.fault_stats["decisions"] > 0
        assert result.ok, format_soak_report([result])
        assert result.reliability is not None
        assert 0.0 <= result.reliability <= 1.0

    def test_same_seed_replays_identically(self):
        a = run_chaos_scenario(preset="flaky_wan", n=24, rounds=30, seed=9)
        b = run_chaos_scenario(preset="flaky_wan", n=24, rounds=30, seed=9)
        assert a.plan_summary == b.plan_summary
        assert a.reliability == b.reliability
        assert a.fault_stats == b.fault_stats
        assert a.events_published == b.events_published

    def test_explicit_plan_overrides_the_random_draw(self):
        plan = FaultPlan().drop(0.05)
        result = run_chaos_scenario(preset="steady_state", n=20, rounds=20,
                                    seed=1, plan=plan)
        assert result.plan_summary == plan.describe()

    def test_two_hundred_round_soak_holds_all_invariants(self):
        """Acceptance: a 200-round chaos run passes the invariant monitor."""
        result = run_chaos_scenario(preset="steady_state", n=30, rounds=200,
                                    seed=0)
        assert result.rounds == 200
        assert result.ok, format_soak_report([result])


class TestSoak:
    def test_soak_cycles_presets_with_derived_seeds(self):
        results = run_chaos_soak(scenarios=5, n=25, rounds=20, seed=4)
        assert [r.preset for r in results] == list(PRESET_NAMES)
        assert len({r.seed for r in results}) == 5
        assert all(r.ok for r in results), format_soak_report(results)

    def test_preset_filter_respected(self):
        results = run_chaos_soak(scenarios=3, n=20, rounds=15, seed=4,
                                 presets=["flash_crowd"])
        assert [r.preset for r in results] == ["flash_crowd"] * 3


class TestByzantineSoak:
    def test_byzantine_knobs_build_double_echo_systems_with_liars(self):
        result = run_chaos_scenario(preset="steady_state", n=24, rounds=25,
                                    seed=5, byzantine_rate=0.6,
                                    byzantine_nodes=2)
        assert "byzantine" not in result.plan_summary  # plan speaks faults
        assert any(tag in result.plan_summary
                   for tag in ("equivocate", "forge", "replay", "poison"))
        struck = (result.fault_stats["equivocated"]
                  + result.fault_stats["forged"]
                  + result.fault_stats["replayed"]
                  + result.fault_stats["poisoned"])
        assert struck > 0, result.fault_stats

    def test_byzantine_soak_meets_the_agreement_slo(self):
        """The ``repro chaos --byzantine-nodes`` SLO: a defended
        (double-echo) soak under liars shows zero agreement violations."""
        results = run_chaos_soak(scenarios=3, n=24, rounds=25, seed=5,
                                 presets=["steady_state", "flaky_wan"],
                                 byzantine_rate=0.6, byzantine_nodes=2)
        assert agreement_violations(results) == [], \
            format_soak_report(results)

    def test_agreement_violations_filters_by_invariant(self):
        from repro.faults.invariants import Violation

        agree = Violation("agreement", 4, 6, 13, "conflict")
        other = Violation("buffer-bounds", 2, 3, 13, "overflow")
        results = [
            ChaosResult(preset="steady_state", seed=13, n=10, rounds=10,
                        plan_summary="p", events_published=1,
                        reliability=None, worst_event_coverage=None,
                        survivors=9, violations=[agree, other]),
            ChaosResult(preset="flaky_wan", seed=14, n=10, rounds=10,
                        plan_summary="p", events_published=1,
                        reliability=None, worst_event_coverage=None,
                        survivors=9, violations=[]),
        ]
        assert agreement_violations(results) == [agree]


class TestReporting:
    def test_report_has_one_line_per_run_and_a_verdict(self):
        results = run_chaos_soak(scenarios=2, n=20, rounds=15, seed=6)
        report = format_soak_report(results)
        lines = report.splitlines()
        assert len(lines) == 3  # two runs + the verdict line
        assert "2 scenario(s)" in lines[-1]
        assert "0 with invariant violations" in lines[-1]

    def test_report_surfaces_failures_with_replay_hints(self):
        from repro.faults.invariants import Violation

        bad = ChaosResult(
            preset="steady_state", seed=13, n=10, rounds=10,
            plan_summary="drop 10%", events_published=3,
            reliability=0.5, worst_event_coverage=0.2, survivors=9,
            violations=[Violation("no-duplicate-delivery", 4, 6, 13, "dup")],
        )
        report = format_soak_report([bad])
        assert "1 with invariant violations" in report
        assert "FAILED steady_state (seed=13)" in report
        assert "replay with seed=13" in report
