"""FaultPlan construction, validation and random composition."""

import random

import pytest

from repro.faults import (
    CrashFault,
    DelayFault,
    DropFault,
    DuplicateFault,
    FaultPlan,
    PartitionFault,
    PauseFault,
)


class TestValidation:
    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            DropFault(rate=0.1, start=5, stop=5)

    def test_window_before_round_one_rejected(self):
        with pytest.raises(ValueError):
            DuplicateFault(rate=0.1, start=0)

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            DropFault(rate=0.0)
        with pytest.raises(ValueError):
            DropFault(rate=1.5)
        DropFault(rate=1.0)  # inclusive upper bound is legal

    def test_delay_must_hold_at_least_one_round(self):
        with pytest.raises(ValueError):
            DelayFault(rate=0.1, delay=0)

    def test_partition_sides_disjoint_and_nonempty(self):
        with pytest.raises(ValueError):
            PartitionFault((1, 2), (2, 3), start=1, heal=5)
        with pytest.raises(ValueError):
            PartitionFault((), (1,), start=1, heal=5)

    def test_partition_direction_checked(self):
        with pytest.raises(ValueError):
            PartitionFault((1,), (2,), start=1, heal=5, direction="sideways")

    def test_recover_must_follow_crash(self):
        with pytest.raises(ValueError):
            CrashFault(pid=1, at=5, recover_at=5)

    def test_cannot_rejoin_through_self(self):
        with pytest.raises(ValueError):
            CrashFault(pid=1, at=2, contact=1)

    def test_pause_duration_positive(self):
        with pytest.raises(ValueError):
            PauseFault(pid=1, at=2, duration=0)

    def test_double_crash_of_same_pid_rejected(self):
        plan = FaultPlan().crash(1, at=2)
        with pytest.raises(ValueError):
            plan.crash(1, at=5)


class TestSemantics:
    def test_drop_scoping(self):
        anywhere = DropFault(rate=0.5)
        link = DropFault(rate=0.5, src=1, dst=2)
        assert anywhere.matches(7, 8)
        assert link.matches(1, 2)
        assert not link.matches(2, 1)
        assert not link.matches(1, 3)

    def test_partition_blocks_by_direction(self):
        sym = PartitionFault((1, 2), (3, 4), start=1, heal=9)
        assert sym.blocks(1, 3) and sym.blocks(3, 1)
        assert not sym.blocks(1, 2) and not sym.blocks(3, 4)
        a2b = PartitionFault((1, 2), (3, 4), start=1, heal=9,
                             direction="a-to-b")
        assert a2b.blocks(1, 3)
        assert not a2b.blocks(3, 1)  # asymmetric: B still reaches A
        assert not a2b.blocks(5, 6)  # outsiders unaffected

    def test_builders_chain_and_count(self):
        plan = (FaultPlan()
                .drop(0.1).duplicate(0.1).delay(0.1, delay=2)
                .partition([1], [2], start=2, heal=4)
                .crash(3, at=2, recover_at=6)
                .pause(4, at=3, duration=2))
        assert plan.fault_count() == 6
        assert not plan.is_empty()
        assert FaultPlan().is_empty()

    def test_describe_mentions_every_fault(self):
        plan = (FaultPlan().drop(0.25, src=1, dst=2)
                .partition([1], [2], start=2, heal=4, direction="b-to-a")
                .crash(3, at=2, recover_at=6).pause(4, at=3, duration=2))
        text = plan.describe()
        assert "drop 25%" in text and "1->2" in text
        assert "partition" in text and "b-to-a" in text
        assert "crash p3@2->recover@6" in text
        assert "pause p4@[3,5)" in text
        assert FaultPlan().describe() == "no faults"


class TestRandomComposition:
    def test_same_seed_same_plan(self):
        pids = list(range(20))
        a = FaultPlan.random(pids, horizon=40, rng=random.Random(5))
        b = FaultPlan.random(pids, horizon=40, rng=random.Random(5))
        assert a.describe() == b.describe()

    def test_different_seeds_differ(self):
        pids = list(range(20))
        seen = {
            FaultPlan.random(pids, horizon=40,
                             rng=random.Random(s)).describe()
            for s in range(8)
        }
        assert len(seen) > 1

    def test_windows_respect_horizon(self):
        pids = list(range(30))
        for s in range(20):
            plan = FaultPlan.random(pids, horizon=25, rng=random.Random(s))
            for c in plan.crashes:
                assert 1 <= c.at < 25
                if c.recover_at is not None:
                    assert c.at < c.recover_at < 25
            for p in plan.partitions:
                assert 1 <= p.start < p.heal <= 25

    def test_minimum_sizes_enforced(self):
        with pytest.raises(ValueError):
            FaultPlan.random([1, 2, 3], horizon=40, rng=random.Random(0))
        with pytest.raises(ValueError):
            FaultPlan.random(list(range(10)), horizon=4, rng=random.Random(0))
