"""FaultPlan construction, validation and random composition."""

import random

import pytest

from repro.faults import (
    POISON_BASE,
    CrashFault,
    DelayFault,
    DropFault,
    DuplicateFault,
    EquivocateFault,
    FaultPlan,
    ForgeDigestFault,
    PartitionFault,
    PauseFault,
    PlanCodecError,
    PoisonViewFault,
    ReplayStaleFault,
)


class TestValidation:
    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            DropFault(rate=0.1, start=5, stop=5)

    def test_window_before_round_one_rejected(self):
        with pytest.raises(ValueError):
            DuplicateFault(rate=0.1, start=0)

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            DropFault(rate=0.0)
        with pytest.raises(ValueError):
            DropFault(rate=1.5)
        DropFault(rate=1.0)  # inclusive upper bound is legal

    def test_delay_must_hold_at_least_one_round(self):
        with pytest.raises(ValueError):
            DelayFault(rate=0.1, delay=0)

    def test_partition_sides_disjoint_and_nonempty(self):
        with pytest.raises(ValueError):
            PartitionFault((1, 2), (2, 3), start=1, heal=5)
        with pytest.raises(ValueError):
            PartitionFault((), (1,), start=1, heal=5)

    def test_partition_direction_checked(self):
        with pytest.raises(ValueError):
            PartitionFault((1,), (2,), start=1, heal=5, direction="sideways")

    def test_recover_must_follow_crash(self):
        with pytest.raises(ValueError):
            CrashFault(pid=1, at=5, recover_at=5)

    def test_cannot_rejoin_through_self(self):
        with pytest.raises(ValueError):
            CrashFault(pid=1, at=2, contact=1)

    def test_pause_duration_positive(self):
        with pytest.raises(ValueError):
            PauseFault(pid=1, at=2, duration=0)

    def test_double_crash_of_same_pid_rejected(self):
        plan = FaultPlan().crash(1, at=2)
        with pytest.raises(ValueError):
            plan.crash(1, at=5)


class TestSemantics:
    def test_drop_scoping(self):
        anywhere = DropFault(rate=0.5)
        link = DropFault(rate=0.5, src=1, dst=2)
        assert anywhere.matches(7, 8)
        assert link.matches(1, 2)
        assert not link.matches(2, 1)
        assert not link.matches(1, 3)

    def test_partition_blocks_by_direction(self):
        sym = PartitionFault((1, 2), (3, 4), start=1, heal=9)
        assert sym.blocks(1, 3) and sym.blocks(3, 1)
        assert not sym.blocks(1, 2) and not sym.blocks(3, 4)
        a2b = PartitionFault((1, 2), (3, 4), start=1, heal=9,
                             direction="a-to-b")
        assert a2b.blocks(1, 3)
        assert not a2b.blocks(3, 1)  # asymmetric: B still reaches A
        assert not a2b.blocks(5, 6)  # outsiders unaffected

    def test_builders_chain_and_count(self):
        plan = (FaultPlan()
                .drop(0.1).duplicate(0.1).delay(0.1, delay=2)
                .partition([1], [2], start=2, heal=4)
                .crash(3, at=2, recover_at=6)
                .pause(4, at=3, duration=2))
        assert plan.fault_count() == 6
        assert not plan.is_empty()
        assert FaultPlan().is_empty()

    def test_describe_mentions_every_fault(self):
        plan = (FaultPlan().drop(0.25, src=1, dst=2)
                .partition([1], [2], start=2, heal=4, direction="b-to-a")
                .crash(3, at=2, recover_at=6).pause(4, at=3, duration=2))
        text = plan.describe()
        assert "drop 25%" in text and "1->2" in text
        assert "partition" in text and "b-to-a" in text
        assert "crash p3@2->recover@6" in text
        assert "pause p4@[3,5)" in text
        assert FaultPlan().describe() == "no faults"


class TestByzantineValidation:
    def test_equivocation_needs_two_variants(self):
        with pytest.raises(ValueError):
            EquivocateFault(pid=1, rate=0.5, variants=1)
        EquivocateFault(pid=1, rate=0.5, variants=2)

    def test_forge_victim_must_differ(self):
        with pytest.raises(ValueError):
            ForgeDigestFault(pid=1, victim=1, rate=0.5)

    def test_replay_lag_positive(self):
        with pytest.raises(ValueError):
            ReplayStaleFault(pid=1, rate=0.5, lag=0)

    def test_poison_count_bounds(self):
        with pytest.raises(ValueError):
            PoisonViewFault(pid=1, rate=0.5, count=0)
        with pytest.raises(ValueError):
            PoisonViewFault(pid=1, rate=0.5, count=101)

    def test_byzantine_windows_and_rates_validated(self):
        with pytest.raises(ValueError):
            EquivocateFault(pid=1, rate=0.5, start=5, stop=5)
        with pytest.raises(ValueError):
            PoisonViewFault(pid=1, rate=1.5)

    def test_fabricated_pids_live_above_poison_base(self):
        fault = PoisonViewFault(pid=7, rate=0.5, count=3)
        assert fault.fabricated == (POISON_BASE + 700, POISON_BASE + 701,
                                    POISON_BASE + 702)

    def test_byzantine_pids_union_all_lying_kinds(self):
        plan = (FaultPlan()
                .equivocate(1, rate=0.5)
                .forge_digest(2, victim=9, rate=0.5)
                .replay_stale(3, rate=0.5)
                .poison_view(4, rate=0.5, count=2))
        assert plan.byzantine_pids() == frozenset({1, 2, 3, 4})
        assert plan.poisoned_pids() == frozenset(
            {POISON_BASE + 400, POISON_BASE + 401})

    def test_describe_mentions_byzantine_faults(self):
        plan = (FaultPlan()
                .equivocate(1, rate=0.8, variants=3, start=2, stop=9)
                .forge_digest(2, victim=9, rate=0.5)
                .replay_stale(3, rate=0.5, lag=2)
                .poison_view(4, rate=0.5, count=2))
        text = plan.describe()
        assert "equivocate p1 80%x3" in text
        assert "forge p2->v9" in text
        assert "replay p3+2" in text
        assert "poison p4x2" in text


def _full_plan() -> FaultPlan:
    """One of every builder — the serialization round-trip fixture."""
    return (FaultPlan()
            .drop(0.1, start=2, stop=20, src=1, dst=2)
            .duplicate(0.05, start=1, stop=15)
            .delay(0.04, delay=2, start=3, stop=12)
            .partition([1, 2], [3, 4], start=5, heal=9, direction="a-to-b")
            .crash(5, at=4, recover_at=11, contact=6)
            .pause(7, at=6, duration=3)
            .equivocate(8, rate=0.7, start=2, stop=10, variants=3)
            .forge_digest(9, victim=1, rate=0.5, start=3, stop=8)
            .replay_stale(10, rate=0.4, lag=2, start=1, stop=9)
            .poison_view(11, rate=0.6, count=2, start=2, stop=7))


class TestSerialization:
    def test_round_trip_covers_every_builder(self):
        plan = _full_plan()
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt.to_dict() == plan.to_dict()
        assert rebuilt.describe() == plan.describe()
        assert rebuilt.fault_count() == plan.fault_count() == 10

    def test_round_trip_survives_json(self):
        import json

        plan = _full_plan()
        rebuilt = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert rebuilt.to_dict() == plan.to_dict()

    def test_empty_plan_round_trips(self):
        assert FaultPlan.from_dict(FaultPlan().to_dict()).is_empty()

    def test_unknown_fault_kind_rejected(self):
        data = _full_plan().to_dict()
        data["time-travel"] = [[1, 2, 3]]
        with pytest.raises(PlanCodecError, match="time-travel"):
            FaultPlan.from_dict(data)

    def test_non_dict_rejected(self):
        with pytest.raises(PlanCodecError, match="dict"):
            FaultPlan.from_dict([1, 2, 3])

    def test_from_dict_revalidates_windows(self):
        data = FaultPlan().equivocate(1, rate=0.5).to_dict()
        data["equivocations"][0][4] = 1  # variants below the minimum
        with pytest.raises(ValueError):
            FaultPlan.from_dict(data)

    def test_bad_byzantine_entry_names_kind_and_index(self):
        # A hand-edited artifact with a malformed liar entry must fail as a
        # codec error naming the offending kind and element, not as a bare
        # unpacking TypeError that points nowhere.
        data = FaultPlan().equivocate(1, rate=0.5).to_dict()
        data["equivocations"][0] = [1, 0.5]  # arity 2, needs 5
        with pytest.raises(PlanCodecError,
                           match=r"'equivocations' entry #0"):
            FaultPlan.from_dict(data)

    def test_bad_entry_reports_index_past_good_entries(self):
        data = (FaultPlan()
                .poison_view(3, rate=0.4, count=2)
                .poison_view(4, rate=0.4, count=2)
                .to_dict())
        data["poisons"][1] = ["not-a-pid"]
        with pytest.raises(PlanCodecError, match=r"'poisons' entry #1"):
            FaultPlan.from_dict(data)

    def test_bad_entry_chains_the_validation_error(self):
        data = FaultPlan().forge_digest(1, 2, rate=0.5).to_dict()
        data["forges"][0][2] = 1.5  # rate out of [0, 1]
        with pytest.raises(PlanCodecError, match=r"'forges' entry #0"):
            FaultPlan.from_dict(data)


class TestRandomComposition:
    def test_same_seed_same_plan(self):
        pids = list(range(20))
        a = FaultPlan.random(pids, horizon=40, rng=random.Random(5))
        b = FaultPlan.random(pids, horizon=40, rng=random.Random(5))
        assert a.describe() == b.describe()

    def test_different_seeds_differ(self):
        pids = list(range(20))
        seen = {
            FaultPlan.random(pids, horizon=40,
                             rng=random.Random(s)).describe()
            for s in range(8)
        }
        assert len(seen) > 1

    def test_windows_respect_horizon(self):
        pids = list(range(30))
        for s in range(20):
            plan = FaultPlan.random(pids, horizon=25, rng=random.Random(s))
            for c in plan.crashes:
                assert 1 <= c.at < 25
                if c.recover_at is not None:
                    assert c.at < c.recover_at < 25
            for p in plan.partitions:
                assert 1 <= p.start < p.heal <= 25

    def test_minimum_sizes_enforced(self):
        with pytest.raises(ValueError):
            FaultPlan.random([1, 2, 3], horizon=40, rng=random.Random(0))
        with pytest.raises(ValueError):
            FaultPlan.random(list(range(10)), horizon=4, rng=random.Random(0))

    def test_byzantine_knobs_add_liars(self):
        pids = list(range(20))
        for s in range(6):
            plan = FaultPlan.random(pids, horizon=30, rng=random.Random(s),
                                    byzantine_rate=0.5, byzantine_nodes=2)
            liars = plan.byzantine_pids()
            assert 1 <= len(liars) <= 2
            assert liars <= set(pids)
            # Liars never overlap the crash victims: a crashed process
            # cannot lie.
            assert not liars & {c.pid for c in plan.crashes}

    def test_byzantine_knobs_off_leave_plain_draws_untouched(self):
        pids = list(range(20))
        plain = FaultPlan.random(pids, horizon=30, rng=random.Random(3))
        with_knob = FaultPlan.random(pids, horizon=30, rng=random.Random(3),
                                     byzantine_rate=0.5, byzantine_nodes=1)
        assert plain.byzantine_pids() == frozenset()
        # The Byzantine draws come strictly after the crash-stop draws, so
        # the crash-stop part of the plan is bit-identical either way.
        plain_dict = plain.to_dict()
        knob_dict = with_knob.to_dict()
        for kind in ("drops", "duplicates", "delays", "partitions",
                     "crashes", "pauses"):
            assert plain_dict[kind] == knob_dict[kind]

    def test_byzantine_rate_validated(self):
        with pytest.raises(ValueError, match="byzantine_rate"):
            FaultPlan.random(list(range(10)), horizon=20,
                             rng=random.Random(0), byzantine_nodes=1,
                             byzantine_rate=0.0)
