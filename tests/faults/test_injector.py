"""FaultInjector: deterministic verdicts, round actions, stats."""

import random

from repro.faults import FaultInjector, FaultPlan


def make_injector(plan, seed=0):
    return FaultInjector(plan, random.Random(seed))


class TestDeterminism:
    def test_same_seed_same_verdict_stream(self):
        plan = (FaultPlan().drop(0.3).duplicate(0.2).delay(0.2, delay=2)
                .partition([1, 2], [3, 4], start=3, heal=6))
        pairs = [(s, d) for s in range(5) for d in range(5) if s != d]

        def stream(seed):
            injector = make_injector(plan, seed)
            out = []
            for r in range(1, 9):
                injector.round_start(r)
                for src, dst in pairs:
                    v = injector.decide(src, dst)
                    out.append((v.action, v.copies, v.delay))
            return out

        assert stream(7) == stream(7)
        assert stream(7) != stream(8)

    def test_partition_verdict_consumes_no_draws(self):
        # A blocked crossing must not advance the stream: verdicts for
        # unrelated traffic afterwards are unchanged whether or not the
        # partition check fired first.
        base = FaultPlan().drop(0.5)
        cut = FaultPlan().partition([1], [2], start=1, heal=99).drop(0.5)
        a, b = make_injector(base, 3), make_injector(cut, 3)
        a.round_start(1), b.round_start(1)
        assert b.decide(1, 2).action == "drop"  # partition, no rng draw
        for _ in range(50):
            va, vb = a.decide(5, 6), b.decide(5, 6)
            assert (va.action, va.copies) == (vb.action, vb.copies)


class TestVerdicts:
    def test_windows_bound_every_fault(self):
        plan = FaultPlan().drop(1.0, start=3, stop=5)
        injector = make_injector(plan)
        outcomes = {}
        for r in (2, 3, 4, 5):
            injector.round_start(r)
            outcomes[r] = injector.decide(1, 2).action
        assert outcomes == {2: "deliver", 3: "drop", 4: "drop", 5: "deliver"}

    def test_scoped_drop_spares_other_links(self):
        injector = make_injector(FaultPlan().drop(1.0, src=1, dst=2))
        injector.round_start(1)
        assert injector.decide(1, 2).action == "drop"
        assert injector.decide(2, 1).action == "deliver"

    def test_duplicate_and_delay_payloads(self):
        injector = make_injector(FaultPlan().duplicate(1.0))
        injector.round_start(1)
        assert injector.decide(1, 2).copies == 2
        injector = make_injector(FaultPlan().delay(1.0, delay=3))
        injector.round_start(1)
        v = injector.decide(1, 2)
        assert v.action == "delay" and v.delay == 3

    def test_stats_count_struck_faults(self):
        plan = FaultPlan().drop(1.0).partition([1], [2], start=1, heal=9)
        injector = make_injector(plan)
        injector.round_start(1)
        injector.decide(1, 2)   # partition
        injector.decide(3, 4)   # drop
        assert injector.stats.partition_blocked == 1
        assert injector.stats.dropped == 1
        assert injector.stats.decisions == 2


class TestRoundActions:
    def test_crash_recover_pause_schedule(self):
        plan = (FaultPlan().crash(1, at=2, recover_at=5)
                .pause(3, at=2, duration=2))
        injector = make_injector(plan)
        r2 = injector.round_start(2)
        assert [c.pid for c in r2.crashes] == [1]
        assert r2.paused == frozenset({3})
        r3 = injector.round_start(3)
        assert not r3.crashes and r3.paused == frozenset({3})
        r4 = injector.round_start(4)
        assert r4.paused == frozenset()
        r5 = injector.round_start(5)
        assert [c.pid for c in r5.recoveries] == [1]
        assert injector.stats.crashes_applied == 1
        assert injector.stats.recoveries_applied == 1

    def test_is_paused_window(self):
        injector = make_injector(FaultPlan().pause(7, at=3, duration=2))
        assert not injector.is_paused(7, 2)
        assert injector.is_paused(7, 3)
        assert injector.is_paused(7, 4)
        assert not injector.is_paused(7, 5)
        assert not injector.is_paused(8, 3)

    def test_pick_contact_deterministic_and_safe(self):
        injector = make_injector(FaultPlan(), seed=4)
        assert injector.pick_contact([]) is None
        choices = [make_injector(FaultPlan(), seed=4).pick_contact(list(range(10)))
                   for _ in range(3)]
        assert len(set(choices)) == 1

    def test_active_faults_lists_open_windows(self):
        plan = (FaultPlan().drop(0.1, start=2, stop=4)
                .partition([1], [2], start=3, heal=5))
        injector = make_injector(plan)
        assert injector.active_faults(1) == []
        assert any("drop" in f for f in injector.active_faults(2))
        at3 = injector.active_faults(3)
        assert any("partition" in f for f in at3)
