"""InvariantMonitor: clean runs pass, broken nodes are caught replayably."""

import random
import types

import pytest

from repro.core import LpbcastConfig, LpbcastNode
from repro.core.events import Unsubscription
from repro.core.ids import EventId
from repro.faults import (
    FaultPlan,
    InvariantMonitor,
    InvariantViolation,
    Violation,
)
from repro.metrics import DeliveryLog
from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes

from ..helpers import small_system


class DoubleDeliverNode(LpbcastNode):
    """Broken on purpose: notifies the application twice per LPB-DELIVER,
    the exact duplicate-suppression bug the monitor exists to catch."""

    def _deliver(self, notification, now, archivable=True):
        super()._deliver(notification, now, archivable)
        for listener in self._listeners:
            listener(self.pid, notification, now)


def _system_with_rogue(mode, seed=1, n=16):
    cfg = LpbcastConfig(fanout=3, view_max=8)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    rogue = DoubleDeliverNode(
        nodes[5].pid, cfg, random.Random(500 + seed),
        initial_view=nodes[5].view.snapshot(),
    )
    nodes[5] = rogue
    sim = RoundSimulation(
        NetworkModel(loss_rate=0.0, rng=random.Random(seed + 1000)), seed=seed
    )
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    monitor = InvariantMonitor(mode=mode).attach(sim)
    return sim, nodes, rogue, monitor


class TestCleanRuns:
    def test_healthy_faulted_run_holds_every_invariant(self):
        sim, nodes, log = small_system(n=24, seed=11)
        monitor = InvariantMonitor(mode="collect").attach(sim)
        sim.use_fault_plan(
            FaultPlan().drop(0.1).duplicate(0.1)
            .crash(3, at=4, recover_at=10)
            .pause(7, at=5, duration=3)
        )
        for i in range(5):
            nodes[i].lpb_cast(f"e{i}", float(i))
        sim.run(30)
        assert monitor.ok, monitor.report()
        assert monitor.checks_run == 30
        assert "all invariants held" in monitor.report()
        assert "seed=11" in monitor.report()

    def test_seed_harvested_from_simulation(self):
        sim, _, _ = small_system(n=8, seed=123)
        monitor = InvariantMonitor(mode="collect").attach(sim)
        assert monitor.seed == 123

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            InvariantMonitor(mode="log")


class TestDoubleDeliveryCaught:
    def test_rogue_node_caught_with_replayable_report(self):
        """Acceptance: the deliberately broken double-delivering node is
        caught, and the violation report carries enough to replay it."""
        sim, nodes, rogue, monitor = _system_with_rogue("collect", seed=1)
        nodes[0].lpb_cast("probe", 0.0)
        sim.run(15)
        dupes = [v for v in monitor.violations
                 if v.invariant == "no-duplicate-delivery"]
        assert dupes, "the rogue node escaped the monitor"
        violation = dupes[0]
        assert violation.pid == rogue.pid
        assert violation.seed == 1
        assert violation.round >= 1
        assert violation.replay_hint() == (
            f"replay with seed=1, violated at round {violation.round}"
        )
        assert "no-duplicate-delivery" in str(violation)

    def test_replay_reproduces_the_violation(self):
        def first_violation():
            sim, nodes, _, monitor = _system_with_rogue("collect", seed=7)
            nodes[0].lpb_cast("probe", 0.0)
            sim.run(15)
            v = monitor.violations[0]
            return (v.invariant, v.pid, v.round)

        assert first_violation() == first_violation()

    def test_raise_mode_stops_the_run_immediately(self):
        sim, nodes, rogue, monitor = _system_with_rogue("raise", seed=1)
        nodes[0].lpb_cast("probe", 0.0)
        with pytest.raises(InvariantViolation) as excinfo:
            sim.run(15)
        assert excinfo.value.violation.invariant == "no-duplicate-delivery"
        assert excinfo.value.violation.pid == rogue.pid

    def test_redelivery_after_possible_eviction_is_legitimate(self):
        # Soundness: with |eventIds|m = 3, a second delivery 3+ deliveries
        # after the first could be an evicted id coming back — the paper's
        # accepted trade-off, not a bug.
        monitor = InvariantMonitor(mode="collect")
        monitor._sim = types.SimpleNamespace(crashed=set(), round=1)
        monitor._id_window[1] = 3
        event = types.SimpleNamespace(event_id=EventId(9, 1))
        filler = [types.SimpleNamespace(event_id=EventId(9, s))
                  for s in range(2, 5)]
        monitor._on_delivery(1, event, 0.0)
        for notif in filler:
            monitor._on_delivery(1, notif, 0.0)
        monitor._on_delivery(1, event, 1.0)  # 4 deliveries later: legal
        assert monitor.ok
        monitor._on_delivery(1, event, 2.0)  # 1 delivery later: a duplicate
        assert [v.invariant for v in monitor.violations] == [
            "no-duplicate-delivery"
        ]


class TestNodeStateChecks:
    def test_buffer_bound_breach_is_flagged(self):
        sim, nodes, _ = small_system(n=12, seed=2)
        monitor = InvariantMonitor(mode="collect").attach(sim)
        sim.run(2)
        assert monitor.ok
        # A config swap makes node 0's (healthy, size-8) view read as
        # overflowing a bound of 2 — the monitor must notice.
        nodes[0].config = LpbcastConfig(fanout=1, view_max=2)
        sim.run(1)
        breaches = [v for v in monitor.violations
                    if v.invariant == "buffer-bounds"]
        assert breaches and breaches[0].pid == nodes[0].pid
        assert "|view|" in breaches[0].detail

    def test_owner_in_view_is_flagged(self):
        sim, nodes, _ = small_system(n=10, seed=3)
        monitor = InvariantMonitor(mode="collect").attach(sim)
        node = nodes[4]
        # PartialView.add refuses the owner, so smuggle it in directly —
        # exactly what a membership bug would amount to.
        node.view._index[node.pid] = len(node.view._items)
        node.view._items.append(node.pid)
        sim.run(1)
        assert any(v.invariant == "view-excludes-owner"
                   and v.pid == node.pid for v in monitor.violations)

    def test_unpurged_obsolete_unsub_is_flagged(self):
        sim, nodes, _ = small_system(n=10, seed=4)
        monitor = InvariantMonitor(mode="collect").attach(sim)
        node = nodes[2]
        node.membership.purge = lambda now: None  # break the purge
        node.unsubs.add(Unsubscription(99, -100.0))
        sim.run(1)
        assert any(v.invariant == "unsub-expiry" and v.pid == node.pid
                   for v in monitor.violations)

    def test_gossip_after_fail_stop_is_flagged(self):
        sim, nodes, _ = small_system(n=10, seed=5)
        monitor = InvariantMonitor(mode="collect").attach(sim)
        victim = nodes[0]
        sim.crash(victim.pid)
        sim.run(1)  # baseline gossips_sent recorded post-crash
        victim.on_tick(99.0)  # a buggy engine keeps ticking the corpse
        sim.run(1)
        assert any(v.invariant == "crashed-silence" and v.pid == victim.pid
                   for v in monitor.violations)


class TestReporting:
    def test_report_lists_each_violation_with_replay_hint(self):
        sim, nodes, _, monitor = _system_with_rogue("collect", seed=9)
        nodes[0].lpb_cast("probe", 0.0)
        sim.run(15)
        report = monitor.report()
        assert f"{len(monitor.violations)} invariant violation(s)" in report
        assert "replay with seed=9" in report
        assert not monitor.ok

    def test_violation_str_names_invariant_process_and_round(self):
        v = Violation("buffer-bounds", 3, 7, 42, "|view| = 9 exceeds 8")
        text = str(v)
        assert "[buffer-bounds]" in text
        assert "process 3" in text
        assert "round 7" in text
        assert "seed=42" in text


class TestCausalInvariants:
    """The causality / holdback-bound pair added for causal-delivery mode."""

    CAUSAL_CFG = dict(fanout=3, view_max=8, causal_delivery=True,
                      digest_implies_delivery=False, retransmissions=True)

    def _watched_causal_node(self):
        from ..helpers import make_node

        node = make_node(pid=0, view=(1,), **self.CAUSAL_CFG)
        monitor = InvariantMonitor(mode="collect")
        monitor.watch_node(node.pid, node)
        return node, monitor

    def test_clean_causal_run_holds_every_invariant(self):
        cfg = LpbcastConfig(**self.CAUSAL_CFG)
        sim, nodes, log = small_system(n=16, seed=13, config=cfg)
        monitor = InvariantMonitor(mode="collect").attach(sim)
        for r in range(4):
            nodes[2 * r].lpb_cast(f"a{r}", float(r))
            nodes[2 * r + 1].lpb_cast(f"b{r}", float(r))
            sim.run_round()
        sim.run(10)
        assert monitor.ok, monitor.report()
        assert monitor._causal_pids == {node.pid for node in nodes}

    def test_premature_delivery_flags_causality(self):
        from ..helpers import gossip, notification

        node, monitor = self._watched_causal_node()
        # The planted defect class: a gate that considers everything ready.
        node.causal._ready = lambda n: True
        dependent = notification(2, 1, payload="x", deps=(EventId(1, 1),))
        node.on_gossip(gossip(sender=9, events=(dependent,)), now=1.0)
        assert [v.invariant for v in monitor.violations] == ["causality"]
        assert "dependency" in monitor.violations[0].detail

    def test_causality_checks_the_whole_interval(self):
        from ..helpers import gossip, notification

        node, monitor = self._watched_causal_node()
        node.causal._ready = lambda n: True
        # Dep (1, 3) means "all of origin 1 up to seq 3"; having delivered
        # only seq 1, the dependent delivery must still be flagged.
        node.on_gossip(gossip(sender=9, events=(notification(1, 1),)),
                       now=1.0)
        dependent = notification(2, 1, payload="x", deps=(EventId(1, 3),))
        node.on_gossip(gossip(sender=9, events=(dependent,)), now=2.0)
        assert [v.invariant for v in monitor.violations] == ["causality"]

    def test_correct_gate_never_flags_causality(self):
        from ..helpers import gossip, notification

        node, monitor = self._watched_causal_node()
        dependent = notification(2, 1, payload="x", deps=(EventId(1, 1),))
        node.on_gossip(gossip(sender=9, events=(dependent,)), now=1.0)
        node.on_gossip(gossip(sender=9, events=(notification(1, 1),)),
                       now=2.0)
        assert monitor.ok, monitor.report()
        assert node.has_delivered(EventId(2, 1))

    def test_holdback_overflow_flags_bound(self):
        from ..helpers import notification

        cfg = LpbcastConfig(causal_holdback_max=4, **self.CAUSAL_CFG)
        sim, nodes, log = small_system(n=8, seed=5, config=cfg)
        monitor = InvariantMonitor(mode="collect").attach(sim)
        gate = nodes[0].causal
        # Stuff the queue past its bound behind the gate's back (a correct
        # gate evicts; only a buggy one could reach this state).
        for seq in range(2, 9):
            held = notification(99, seq)
            gate.held[held.event_id] = held
        sim.run_round()
        kinds = {v.invariant for v in monitor.violations}
        assert "holdback-bound" in kinds
        flagged = [v for v in monitor.violations
                   if v.invariant == "holdback-bound"][0]
        assert flagged.pid == nodes[0].pid
        assert "bound 4" in flagged.detail

    def test_non_causal_nodes_skip_causality_bookkeeping(self):
        sim, nodes, log = small_system(n=8, seed=5)
        monitor = InvariantMonitor(mode="collect").attach(sim)
        nodes[0].lpb_cast("x", 0.0)
        sim.run(6)
        assert monitor._causal_pids == set()
        assert monitor.ok, monitor.report()
