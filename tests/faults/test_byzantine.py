"""The Byzantine layer end to end: mutation specs, protocol invariants,
cross-engine identity under lying plans, and the plain-vs-double-echo
agreement separation the layer exists to demonstrate."""

import random

import pytest

from repro.core import LpbcastConfig
from repro.core.events import Notification
from repro.core.ids import EventId
from repro.core.message import GossipMessage, SubscriptionAck
from repro.faults import (
    FORGE_SEQ_BASE,
    POISON_BASE,
    FaultPlan,
    InvariantMonitor,
    equivocated_payload,
    mutate_message,
)
from repro.sim import build_lpbcast_nodes, create_simulation, NetworkModel

from ..helpers import small_system


def _gossip(sender=1, payload="truth"):
    return GossipMessage(
        sender=sender,
        subs=(7,),
        events=(
            Notification(EventId(sender, 1), payload, 0.0),
            Notification(EventId(99, 4), "someone-else's", 0.0),
        ),
        event_ids=(EventId(sender, 1),),
    )


class TestMutateMessage:
    def test_none_spec_and_non_gossip_pass_through_by_identity(self):
        message = _gossip()
        assert mutate_message(message, None, 5) is message
        ack = SubscriptionAck(1, (2, 3))
        assert mutate_message(ack, ("equivocate", 2), 5) is ack

    def test_equivocate_rewrites_only_own_events_by_destination(self):
        message = _gossip(sender=1)
        odd = mutate_message(message, ("equivocate", 2), dst=5)
        assert odd is not message
        assert odd.events[0].payload == equivocated_payload("truth", 1)
        assert odd.events[0].payload != "truth"
        # Foreign events are untouched: the liar can only rewrite what it
        # originates.
        assert odd.events[1] == message.events[1]
        # Variant 0 keeps the original payload — identity short-circuit.
        assert mutate_message(message, ("equivocate", 2), dst=4) is message

    def test_equivocation_variants_differ_and_variant_zero_is_original(self):
        assert equivocated_payload("x", 0) == "x"
        assert equivocated_payload("x", 1) != equivocated_payload("x", 2)

    def test_forge_appends_fabricated_event_id(self):
        message = _gossip(sender=1)
        seq = FORGE_SEQ_BASE + 17
        forged = mutate_message(message, ("forge", 9, seq), dst=5)
        assert EventId(9, seq) in forged.event_ids
        assert message.event_ids == (EventId(1, 1),)  # original untouched
        # Idempotent: a digest already carrying the forged id is returned
        # as-is.
        assert mutate_message(forged, ("forge", 9, seq), dst=5) is forged

    def test_poison_appends_ghost_subscription(self):
        message = _gossip(sender=1)
        ghost = POISON_BASE + 100
        poisoned = mutate_message(message, ("poison", ghost), dst=5)
        assert ghost in poisoned.subs
        assert ghost not in message.subs
        assert mutate_message(poisoned, ("poison", ghost), dst=5) is poisoned

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown byzantine"):
            mutate_message(_gossip(), ("time-travel",), dst=5)


class TestProtocolInvariants:
    def _plan_with_liar(self, liar):
        return FaultPlan().equivocate(liar, rate=0.5, start=1, stop=5)

    def test_agreement_flags_conflicting_correct_deliveries(self):
        sim, nodes, _ = small_system(n=8, seed=1)
        sim.use_fault_plan(self._plan_with_liar(nodes[7].pid))
        monitor = InvariantMonitor(mode="collect").attach(sim)
        eid = EventId(3, 1)
        monitor._on_delivery(3, Notification(eid, "v1", 0.0), 0.0)
        monitor._on_delivery(4, Notification(eid, "v1", 0.0), 0.0)
        assert monitor.ok
        monitor._on_delivery(5, Notification(eid, "v2", 0.0), 0.0)
        # The conflicting payload breaks agreement, and — because the origin
        # is watched and published "v1" — validity too.
        assert [v.invariant for v in monitor.violations] == ["agreement",
                                                             "validity"]
        assert monitor.violations[0].pid == 5

    def test_byzantine_deliveries_prove_nothing(self):
        sim, nodes, _ = small_system(n=8, seed=2)
        liar = nodes[6].pid
        sim.use_fault_plan(self._plan_with_liar(liar))
        monitor = InvariantMonitor(mode="collect").attach(sim)
        eid = EventId(3, 1)
        monitor._on_delivery(3, Notification(eid, "v1", 0.0), 0.0)
        # The liar delivering something else is not an agreement violation.
        monitor._on_delivery(liar, Notification(eid, "v2", 0.0), 0.0)
        assert monitor.ok

    def test_validity_flags_ghost_event_from_unpublished_origin(self):
        sim, nodes, _ = small_system(n=8, seed=3)
        sim.use_fault_plan(self._plan_with_liar(nodes[7].pid))
        monitor = InvariantMonitor(mode="collect").attach(sim)
        # Origin 2 is correct and watched but never published — a forged
        # digest materialized a ghost delivery at process 4.
        monitor._on_delivery(4, Notification(EventId(2, 5), None, 0.0), 0.0)
        assert [v.invariant for v in monitor.violations] == ["validity"]

    def test_validity_accepts_published_events(self):
        sim, nodes, _ = small_system(n=8, seed=4)
        sim.use_fault_plan(self._plan_with_liar(nodes[7].pid))
        monitor = InvariantMonitor(mode="collect").attach(sim)
        eid = EventId(2, 1)
        # Publisher self-delivery (ground truth), then a remote delivery.
        monitor._on_delivery(2, Notification(eid, "real", 0.0), 0.0)
        monitor._on_delivery(4, Notification(eid, "real", 0.0), 0.0)
        # Digest-shortcut synthetic delivery (payload None) is also fine.
        monitor._on_delivery(5, Notification(eid, None, 0.0), 0.0)
        assert monitor.ok

    def test_view_hygiene_flags_out_of_scope_ghost_immediately(self):
        sim, nodes, _ = small_system(n=8, seed=5)
        sim.use_fault_plan(
            FaultPlan().poison_view(nodes[7].pid, rate=0.5, count=1,
                                    start=1, stop=4))
        monitor = InvariantMonitor(mode="collect").attach(sim)
        # A fabricated pid the plan never authorized: an injector bug.
        rogue_ghost = POISON_BASE + 999_999
        nodes[0].view._index[rogue_ghost] = len(nodes[0].view._items)
        nodes[0].view._items.append(rogue_ghost)
        sim.run(1)
        assert any(v.invariant == "view-hygiene"
                   and str(rogue_ghost) in v.detail
                   for v in monitor.violations)

    def test_planned_ghosts_tolerated_on_plain_lpbcast(self):
        sim, nodes, _ = small_system(n=8, seed=6)
        liar = nodes[7].pid
        sim.use_fault_plan(
            FaultPlan().poison_view(liar, rate=1.0, count=1, start=1, stop=3))
        monitor = InvariantMonitor(mode="collect").attach(sim)
        sim.run(20)  # ghosts circulate long past the window
        assert not [v for v in monitor.violations
                    if v.invariant == "view-hygiene"], monitor.report()


def _byz_plan():
    return (FaultPlan()
            .drop(0.05).duplicate(0.05).delay(0.03, delay=2)
            .equivocate(1, rate=0.8, start=1, stop=10, variants=2)
            .forge_digest(2, victim=9, rate=0.5, start=2, stop=9)
            .replay_stale(3, rate=0.5, lag=2, start=1, stop=10)
            .poison_view(4, rate=0.5, count=2, start=1, stop=10))


def _byz_run(engine, cfg, n=24, rounds=12, seed=11, wire="binary"):
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    network = NetworkModel(loss_rate=0.05, rng=random.Random(seed + 1))
    extra = {"shards": 2, "wire_format": wire} if engine == "sharded" else {}
    sim = create_simulation(engine, network=network, seed=seed, **extra)
    sim.add_nodes(nodes)
    sim.use_fault_plan(_byz_plan())

    def publish(round_no, s):
        if round_no <= 4:
            s.nodes[nodes[round_no % n].pid].lpb_cast(
                f"evt-{round_no}", float(round_no))

    sim.add_round_hook(publish)
    try:
        sim.run(rounds)
    finally:
        close = getattr(sim, "close", None)
        if close:
            close()
    return sim


def _counters(sim):
    return sim.telemetry.snapshot()["counters"]


class TestEngineParityUnderByzantinePlans:
    def test_plain_lpbcast_bit_identical_and_all_faults_strike(self):
        cfg = LpbcastConfig(fanout=3, view_max=8)
        serial = _byz_run("serial", cfg)
        sharded = _byz_run("sharded", cfg)
        assert _counters(serial) == _counters(sharded)
        for key in ("faults.equivocated", "faults.forged",
                    "faults.replayed", "faults.poisoned"):
            assert serial.telemetry.counter_total(key) > 0, key

    def test_double_echo_bit_identical_with_echo_traffic(self):
        cfg = LpbcastConfig(fanout=3, view_max=8, double_echo=True,
                            digest_implies_delivery=False)
        serial = _byz_run("serial", cfg)
        sharded = _byz_run("sharded", cfg)
        assert _counters(serial) == _counters(sharded)
        tele = serial.telemetry
        assert tele.counter_total("sim.sends", kind="EchoMessage") > 0
        assert tele.counter_total("sim.sends", kind="ReadyMessage") > 0
        assert tele.counter_total("sim.delivered") > 0

    def test_wire_format_does_not_perturb_byzantine_runs(self):
        # Binary vs forced-pickle cross-shard encoding on the *sharded*
        # engine (where wire_format actually applies — the old version of
        # this test compared two serial runs, which only agreed because the
        # factory silently ignored the kwarg).
        cfg = LpbcastConfig(fanout=3, view_max=8)
        binary = _byz_run("sharded", cfg, wire="binary")
        as_pickle = _byz_run("sharded", cfg, wire="pickle")
        assert _counters(binary) == _counters(as_pickle)


def _separation_run(seed, double_echo, engine="serial"):
    """One equivocating publisher; returns (violation kinds, deliveries)."""
    n, rounds = 16, 14
    if double_echo:
        cfg = LpbcastConfig(fanout=4, view_max=15,
                            digest_implies_delivery=False,
                            double_echo=True, echo_fanout=15,
                            echo_threshold=9, ready_threshold=9,
                            echo_pending_max=60)
    else:
        cfg = LpbcastConfig(fanout=4, view_max=15,
                            digest_implies_delivery=False)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    extra = {"shards": 2} if engine == "sharded" else {}
    sim = create_simulation(engine, seed=seed, **extra)
    sim.add_nodes(nodes)
    liar = nodes[1].pid
    sim.use_fault_plan(
        FaultPlan().equivocate(liar, rate=0.7, start=1, stop=10, variants=2))
    monitor = InvariantMonitor(mode="collect").attach(sim)

    def publish(round_no, s):
        if round_no == 1:
            s.nodes[liar].lpb_cast({"k": "v1"}, 1.0)

    sim.add_round_hook(publish)
    try:
        sim.run(rounds)
    finally:
        close = getattr(sim, "close", None)
        if close:
            close()
    kinds = sorted({v.invariant for v in monitor.violations})
    return kinds, sim.telemetry.counter_total("sim.delivered")


class TestAgreementSeparation:
    """The tentpole's demonstrated separation, pinned as a regression:
    plain lpbcast violates agreement under equivocation; the double-echo
    variant delivers the same workload with zero agreement violations."""

    def test_plain_lpbcast_violates_agreement_under_equivocation(self):
        kinds, delivered = _separation_run(seed=0, double_echo=False)
        assert kinds == ["agreement"]
        assert delivered > 0

    def test_double_echo_restores_agreement_on_the_same_workload(self):
        kinds, delivered = _separation_run(seed=0, double_echo=True)
        assert kinds == []
        assert delivered > 0

    def test_separation_holds_across_seeds(self):
        plain_violated = 0
        for seed in (0, 1, 2, 3):
            plain_kinds, _ = _separation_run(seed, double_echo=False)
            echo_kinds, echo_delivered = _separation_run(seed,
                                                         double_echo=True)
            # Agreement under double echo is deterministic (majority
            # thresholds): no seed may violate it.
            assert echo_kinds == [], f"seed={seed}: {echo_kinds}"
            assert echo_delivered > 0
            plain_violated += "agreement" in plain_kinds
        # Plain lpbcast fails on most seeds (gossip luck spares a few).
        assert plain_violated >= 3
