"""Tests for the delivery log."""

from repro.core.ids import EventId
from repro.metrics import DeliveryLog

from ..helpers import make_node, notification


class TestDeliveryLog:
    def test_records_first_delivery(self):
        log = DeliveryLog()
        n = notification(1, 1)
        log.on_delivery(5, n, now=2.0)
        assert log.delivered(5, n.event_id)
        assert log.delivery_time(5, n.event_id) == 2.0
        assert log.delivery_count(n.event_id) == 1

    def test_redelivery_counted_separately(self):
        log = DeliveryLog()
        n = notification(1, 1)
        log.on_delivery(5, n, now=2.0)
        log.on_delivery(5, n, now=4.0)
        assert log.total_deliveries == 2
        assert log.redeliveries == 1
        assert log.delivery_time(5, n.event_id) == 2.0  # first kept

    def test_distinct_processes_counted(self):
        log = DeliveryLog()
        n = notification(1, 1)
        log.on_delivery(5, n, now=1.0)
        log.on_delivery(6, n, now=1.5)
        assert log.deliverers_of(n.event_id) == {5, 6}

    def test_unknown_event(self):
        log = DeliveryLog()
        assert not log.delivered(1, EventId(9, 9))
        assert log.delivery_count(EventId(9, 9)) == 0
        assert log.delivery_time(1, EventId(9, 9)) is None

    def test_attach_wires_listener(self):
        log = DeliveryLog()
        node = make_node(view=(1,))
        log.attach([node])
        n = node.lpb_cast("x", now=3.0)
        assert log.delivered(node.pid, n.event_id)

    def test_latencies(self):
        log = DeliveryLog()
        n = notification(1, 1)
        log.on_delivery(5, n, now=2.0)
        log.on_delivery(6, n, now=3.0)
        assert sorted(log.latencies(n.event_id, published_at=1.0)) == [1.0, 2.0]

    def test_known_events_and_len(self):
        log = DeliveryLog()
        log.on_delivery(1, notification(1, 1), now=0.0)
        log.on_delivery(1, notification(1, 2), now=0.0)
        assert len(log.known_events()) == 2
        assert len(log) == 2
