"""Tests for the 1-β reliability metric."""

import pytest

from repro.metrics import DeliveryLog, measure_reliability, per_event_coverage

from ..helpers import notification


def make_log(deliveries):
    """deliveries: iterable of (pid, notification)."""
    log = DeliveryLog()
    for pid, n in deliveries:
        log.on_delivery(pid, n, now=0.0)
    return log


class TestMeasureReliability:
    def test_full_coverage(self):
        n1 = notification(1, 1)
        log = make_log((pid, n1) for pid in range(5))
        report = measure_reliability(log, [n1.event_id], range(5))
        assert report.reliability == 1.0
        assert report.pairs_total == 5
        assert report.worst_event_coverage == 1.0

    def test_partial_coverage(self):
        n1 = notification(1, 1)
        log = make_log((pid, n1) for pid in range(3))
        report = measure_reliability(log, [n1.event_id], range(5))
        assert report.reliability == pytest.approx(0.6)
        assert report.pairs_delivered == 3

    def test_multiple_events_averaged(self):
        a, b = notification(1, 1), notification(1, 2)
        log = make_log(
            [(pid, a) for pid in range(4)] + [(pid, b) for pid in range(2)]
        )
        report = measure_reliability(log, [a.event_id, b.event_id], range(4))
        assert report.reliability == pytest.approx((4 + 2) / 8)
        assert report.worst_event_coverage == pytest.approx(0.5)

    def test_excluded_processes_ignored(self):
        n1 = notification(1, 1)
        log = make_log([(0, n1), (1, n1), (99, n1)])
        report = measure_reliability(log, [n1.event_id], [0, 1])
        assert report.reliability == 1.0

    def test_empty_inputs_rejected(self):
        log = DeliveryLog()
        with pytest.raises(ValueError):
            measure_reliability(log, [], range(5))
        with pytest.raises(ValueError):
            measure_reliability(log, [notification(1, 1).event_id], [])

    def test_report_str(self):
        n1 = notification(1, 1)
        log = make_log([(0, n1)])
        text = str(measure_reliability(log, [n1.event_id], [0]))
        assert "reliability=1.0000" in text


class TestPerEventCoverage:
    def test_coverage_list(self):
        a, b = notification(1, 1), notification(1, 2)
        log = make_log([(0, a), (1, a), (0, b)])
        coverage = per_event_coverage(log, [a.event_id, b.event_id], [0, 1])
        assert coverage == [1.0, 0.5]

    def test_empty_processes_rejected(self):
        with pytest.raises(ValueError):
            per_event_coverage(DeliveryLog(), [notification(1, 1).event_id], [])


class TestCoverageHistogram:
    def test_binning(self):
        from repro.metrics import coverage_histogram
        histogram = coverage_histogram([0.0, 0.05, 0.5, 0.95, 1.0], bins=10)
        assert histogram[0] == 2     # 0.0 and 0.05
        assert histogram[5] == 1     # 0.5
        assert histogram[9] == 2     # 0.95 and 1.0 (1.0 clamped into last bin)
        assert sum(histogram) == 5

    def test_single_bin(self):
        from repro.metrics import coverage_histogram
        assert coverage_histogram([0.1, 0.9], bins=1) == [2]

    def test_out_of_range_rejected(self):
        from repro.metrics import coverage_histogram
        with pytest.raises(ValueError):
            coverage_histogram([1.5])

    def test_invalid_bins(self):
        from repro.metrics import coverage_histogram
        with pytest.raises(ValueError):
            coverage_histogram([0.5], bins=0)
