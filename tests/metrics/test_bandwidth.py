"""Tests for protocol-overhead accounting."""

import pytest

from repro.core import LpbcastConfig
from repro.metrics.bandwidth import BandwidthMeter
from repro.sim import RoundSimulation, build_lpbcast_nodes


def build_metered(n=20, rounds=8, fanout=3):
    cfg = LpbcastConfig(fanout=fanout, view_max=8)
    nodes = build_lpbcast_nodes(n, cfg, seed=0)
    meter = BandwidthMeter()
    for node in nodes:
        meter.instrument(node)
    sim = RoundSimulation(seed=0)
    sim.add_round_hook(meter.on_round)
    sim.add_nodes(nodes)
    sim.run(rounds)
    return meter, nodes


class TestBandwidthMeter:
    def test_message_count_is_n_times_fanout_per_round(self):
        meter, nodes = build_metered(n=20, rounds=8, fanout=3)
        for r in range(2, 8):
            assert meter.round_traffic(r).messages == 20 * 3

    def test_totals(self):
        meter, _ = build_metered(n=10, rounds=5, fanout=2)
        assert meter.total_messages() == 10 * 2 * 5
        assert meter.total_elements() >= meter.total_messages()

    def test_by_kind(self):
        meter, _ = build_metered(n=10, rounds=4)
        kinds = meter.messages_by_kind()
        assert set(kinds) == {"GossipMessage"}

    def test_per_sender_balanced(self):
        meter, nodes = build_metered(n=15, rounds=6, fanout=3)
        totals = meter.per_sender_totals()
        assert set(totals.values()) == {6 * 3}

    def test_load_stability_is_perfect_without_app_traffic(self):
        # Sec. 3.3: protocol load does not fluctuate.
        meter, _ = build_metered(n=20, rounds=10)
        assert meter.load_stability() == pytest.approx(0.0)

    def test_load_stable_under_application_traffic(self):
        cfg = LpbcastConfig(fanout=3, view_max=8)
        nodes = build_lpbcast_nodes(20, cfg, seed=1)
        meter = BandwidthMeter()
        for node in nodes:
            meter.instrument(node)
        sim = RoundSimulation(seed=1)
        sim.add_round_hook(meter.on_round)
        sim.add_nodes(nodes)

        def publish(round_number, sim_):
            nodes[round_number % 20].lpb_cast("x", now=float(round_number))

        sim.add_round_hook(publish)
        sim.run(10)
        # Messages per round unchanged: notifications piggyback on the same
        # F gossips (element volume grows instead).
        assert meter.load_stability() == pytest.approx(0.0)

    def test_load_stability_needs_enough_rounds(self):
        meter, _ = build_metered(n=5, rounds=2)
        with pytest.raises(ValueError):
            meter.load_stability()

    def test_unmeasured_round_is_empty(self):
        meter, _ = build_metered(n=5, rounds=2)
        assert meter.round_traffic(99).messages == 0


class TestByteAccounting:
    """Byte-accurate bandwidth: opt-in, exact, engine-symmetric."""

    def _run(self, engine, n=16, rounds=6, **kwargs):
        from repro.sim import create_simulation

        cfg = LpbcastConfig(fanout=3, view_max=8)
        nodes = build_lpbcast_nodes(n, cfg, seed=5)
        sim = create_simulation(engine, seed=5, **kwargs)
        meter = BandwidthMeter().attach(sim, count_bytes=True)
        sim.add_nodes(nodes)
        sim.nodes[nodes[0].pid].lpb_cast("bytes!", 0.0)
        sim.run(rounds)
        close = getattr(sim, "close", None)
        if close:
            close()
        return sim, meter

    def test_bytes_off_by_default(self):
        meter, _ = build_metered(n=10, rounds=5)
        assert meter.total_wire_bytes() == 0
        assert meter.round_traffic(3).wire_bytes == 0

    def test_bytes_exact_against_recount(self):
        from repro.core.codec import wire_size

        sim, meter = self._run("serial")
        total = meter.total_wire_bytes()
        assert total > 0
        # Cross-check one round against an independent recount of a fresh
        # identical run captured message-by-message.
        cfg = LpbcastConfig(fanout=3, view_max=8)
        nodes = build_lpbcast_nodes(16, cfg, seed=5)
        from repro.sim import create_simulation
        resim = create_simulation("serial", seed=5)
        captured = []
        original = resim.telemetry.record_sends

        def capture(round_no, src, outgoings):
            captured.extend((round_no, out.message) for out in outgoings)
            original(round_no, src, outgoings)

        resim.telemetry.record_sends = capture
        resim.add_nodes(nodes)
        resim.nodes[nodes[0].pid].lpb_cast("bytes!", 0.0)
        resim.run(6)
        expected = sum(wire_size(m, fmt="binary")
                       for r, m in captured if r == 4)
        assert meter.round_traffic(4).wire_bytes == expected

    def test_bytes_identical_serial_vs_sharded(self):
        _, serial = self._run("serial")
        _, sharded = self._run("sharded", shards=3)
        assert serial.total_wire_bytes() == sharded.total_wire_bytes()
        for round_no in serial.rounds():
            assert (serial.round_traffic(round_no).wire_bytes
                    == sharded.round_traffic(round_no).wire_bytes)

    def test_elements_and_bytes_are_separate_series(self):
        sim, meter = self._run("serial")
        traffic = meter.round_traffic(4)
        assert traffic.elements > 0
        assert traffic.wire_bytes > 0
        assert traffic.wire_bytes != traffic.elements
        assert meter.total_elements() != meter.total_wire_bytes()
