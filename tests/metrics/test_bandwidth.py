"""Tests for protocol-overhead accounting."""

import pytest

from repro.core import LpbcastConfig
from repro.metrics.bandwidth import BandwidthMeter
from repro.sim import RoundSimulation, build_lpbcast_nodes


def build_metered(n=20, rounds=8, fanout=3):
    cfg = LpbcastConfig(fanout=fanout, view_max=8)
    nodes = build_lpbcast_nodes(n, cfg, seed=0)
    meter = BandwidthMeter()
    for node in nodes:
        meter.instrument(node)
    sim = RoundSimulation(seed=0)
    sim.add_round_hook(meter.on_round)
    sim.add_nodes(nodes)
    sim.run(rounds)
    return meter, nodes


class TestBandwidthMeter:
    def test_message_count_is_n_times_fanout_per_round(self):
        meter, nodes = build_metered(n=20, rounds=8, fanout=3)
        for r in range(2, 8):
            assert meter.round_traffic(r).messages == 20 * 3

    def test_totals(self):
        meter, _ = build_metered(n=10, rounds=5, fanout=2)
        assert meter.total_messages() == 10 * 2 * 5
        assert meter.total_elements() >= meter.total_messages()

    def test_by_kind(self):
        meter, _ = build_metered(n=10, rounds=4)
        kinds = meter.messages_by_kind()
        assert set(kinds) == {"GossipMessage"}

    def test_per_sender_balanced(self):
        meter, nodes = build_metered(n=15, rounds=6, fanout=3)
        totals = meter.per_sender_totals()
        assert set(totals.values()) == {6 * 3}

    def test_load_stability_is_perfect_without_app_traffic(self):
        # Sec. 3.3: protocol load does not fluctuate.
        meter, _ = build_metered(n=20, rounds=10)
        assert meter.load_stability() == pytest.approx(0.0)

    def test_load_stable_under_application_traffic(self):
        cfg = LpbcastConfig(fanout=3, view_max=8)
        nodes = build_lpbcast_nodes(20, cfg, seed=1)
        meter = BandwidthMeter()
        for node in nodes:
            meter.instrument(node)
        sim = RoundSimulation(seed=1)
        sim.add_round_hook(meter.on_round)
        sim.add_nodes(nodes)

        def publish(round_number, sim_):
            nodes[round_number % 20].lpb_cast("x", now=float(round_number))

        sim.add_round_hook(publish)
        sim.run(10)
        # Messages per round unchanged: notifications piggyback on the same
        # F gossips (element volume grows instead).
        assert meter.load_stability() == pytest.approx(0.0)

    def test_load_stability_needs_enough_rounds(self):
        meter, _ = build_metered(n=5, rounds=2)
        with pytest.raises(ValueError):
            meter.load_stability()

    def test_unmeasured_round_is_empty(self):
        meter, _ = build_metered(n=5, rounds=2)
        assert meter.round_traffic(99).messages == 0
