"""Tests for infection-curve tracking."""

from repro.metrics import DeliveryLog, InfectionObserver, mean_curves

from ..helpers import notification, run_dissemination


class TestInfectionObserver:
    def test_curve_from_simulation(self):
        sim, nodes, log, event = run_dissemination(n=20, rounds=10)
        observer = InfectionObserver(log, event.event_id)
        # Reconstruct counts post-hoc for determinism of this unit test.
        observer.counts = {0: 1}
        for r in range(1, 11):
            observer.counts[r] = min(
                20, len(log.deliverers_of(event.event_id))
            )
        curve = observer.curve(10)
        assert curve[0] == 1
        assert curve[-1] == 20

    def test_live_observation(self):
        from ..helpers import small_system
        sim, nodes, log = small_system(n=15, seed=2)
        event = nodes[0].lpb_cast("x", now=0.0)
        observer = InfectionObserver(log, event.event_id)
        sim.add_observer(observer.on_round)
        sim.run(8)
        curve = observer.curve()
        assert curve[0] == 1
        assert all(b >= a for a, b in zip(curve, curve[1:]))
        assert curve[-1] == 15

    def test_rounds_to_reach(self):
        log = DeliveryLog()
        observer = InfectionObserver(log, notification(1, 1).event_id)
        observer.counts = {0: 1, 1: 5, 2: 12, 3: 20}
        assert observer.rounds_to_reach(5) == 1
        assert observer.rounds_to_reach(13) == 3
        assert observer.rounds_to_reach(25) is None

    def test_rounds_to_fraction(self):
        log = DeliveryLog()
        observer = InfectionObserver(log, notification(1, 1).event_id)
        observer.counts = {0: 1, 1: 10, 2: 20}
        assert observer.rounds_to_fraction(0.99, population=20) == 2

    def test_fraction_validation(self):
        log = DeliveryLog()
        observer = InfectionObserver(log, notification(1, 1).event_id)
        try:
            observer.rounds_to_fraction(0.0, population=10)
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")

    def test_curve_fills_gaps(self):
        log = DeliveryLog()
        observer = InfectionObserver(log, notification(1, 1).event_id)
        observer.counts = {0: 1, 3: 7}
        assert observer.curve(4) == [1, 1, 1, 7, 7]


class TestMeanCurves:
    def test_pointwise_mean(self):
        assert mean_curves([[1, 2, 3], [3, 4, 5]]) == [2.0, 3.0, 4.0]

    def test_ragged_tails_extend(self):
        assert mean_curves([[1, 5], [1, 1, 1]]) == [1.0, 3.0, 3.0]

    def test_empty(self):
        assert mean_curves([]) == []
