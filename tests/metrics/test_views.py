"""Tests for view-graph statistics and partition detection."""

import pytest

from repro.core import LpbcastConfig
from repro.metrics import (
    dissemination_reachable,
    find_partitions,
    in_degree_distribution,
    in_degree_stats,
    is_partitioned,
    view_graph,
    view_uniformity_chi2,
)
from repro.sim import build_lpbcast_nodes

from ..helpers import make_node


def chain_nodes():
    """0 -> 1 -> 2 (directed knows-about chain)."""
    return [
        make_node(pid=0, view=(1,), view_max=3, fanout=1),
        make_node(pid=1, view=(2,), view_max=3, fanout=1),
        make_node(pid=2, view=(), view_max=3, fanout=1),
    ]


class TestViewGraph:
    def test_edges_follow_views(self):
        graph = view_graph(chain_nodes())
        assert set(graph.edges) == {(0, 1), (1, 2)}

    def test_all_nodes_present(self):
        graph = view_graph(chain_nodes())
        assert set(graph.nodes) == {0, 1, 2}


class TestInDegree:
    def test_stats(self):
        stats = in_degree_stats(chain_nodes())
        assert stats.mean == pytest.approx(2 / 3)
        assert stats.minimum == 0
        assert stats.maximum == 1
        assert stats.isolated == 1  # nobody knows node 0

    def test_uniform_bootstrap_mean_equals_l(self):
        nodes = build_lpbcast_nodes(60, LpbcastConfig(view_max=10), seed=0)
        stats = in_degree_stats(nodes)
        assert stats.mean == pytest.approx(10.0)
        assert stats.isolated == 0

    def test_distribution_sums_to_n(self):
        nodes = build_lpbcast_nodes(30, LpbcastConfig(view_max=5), seed=0)
        histogram = in_degree_distribution(nodes)
        assert sum(histogram.values()) == 30

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            in_degree_stats([])


class TestPartitions:
    def test_connected_system_single_component(self):
        nodes = build_lpbcast_nodes(30, LpbcastConfig(view_max=5), seed=0)
        assert not is_partitioned(nodes)
        assert len(find_partitions(nodes)) == 1

    def test_two_islands_detected(self):
        island1 = [
            make_node(pid=0, view=(1,), view_max=2, fanout=1),
            make_node(pid=1, view=(0,), view_max=2, fanout=1),
        ]
        island2 = [
            make_node(pid=2, view=(3,), view_max=2, fanout=1),
            make_node(pid=3, view=(2,), view_max=2, fanout=1),
        ]
        nodes = island1 + island2
        assert is_partitioned(nodes)
        partitions = find_partitions(nodes)
        assert {frozenset(p) for p in partitions} == {
            frozenset({0, 1}), frozenset({2, 3})
        }

    def test_one_directional_edge_joins_components(self):
        # 2 knows 0: the membership knowledge can still flow.
        nodes = [
            make_node(pid=0, view=(1,), view_max=2, fanout=1),
            make_node(pid=1, view=(0,), view_max=2, fanout=1),
            make_node(pid=2, view=(0, 3), view_max=2, fanout=1),
            make_node(pid=3, view=(2,), view_max=2, fanout=1),
        ]
        assert not is_partitioned(nodes)


class TestReachability:
    def test_chain_reachability(self):
        nodes = chain_nodes()
        assert dissemination_reachable(nodes, 0) == {0, 1, 2}
        assert dissemination_reachable(nodes, 2) == {2}

    def test_unknown_origin(self):
        assert dissemination_reachable(chain_nodes(), 99) == set()


class TestUniformity:
    def test_uniform_views_score_low(self):
        nodes = build_lpbcast_nodes(100, LpbcastConfig(view_max=8), seed=1)
        chi2 = view_uniformity_chi2(nodes, view_size=8)
        assert chi2 < 100

    def test_skewed_views_score_higher(self):
        # Everyone knows only node 0's neighbourhood: highly non-uniform.
        nodes = [make_node(pid=i, view=tuple(j for j in range(1, 9) if j != i),
                           view_max=8, fanout=2) for i in range(100)]
        skewed = view_uniformity_chi2(nodes, view_size=8)
        uniform_nodes = build_lpbcast_nodes(100, LpbcastConfig(view_max=8), seed=1)
        uniform = view_uniformity_chi2(uniform_nodes, view_size=8)
        assert skewed > uniform * 5

    def test_small_population_rejected(self):
        with pytest.raises(ValueError):
            view_uniformity_chi2([make_node(pid=0)], view_size=3)
