"""Tests for the text reporting helpers."""

from repro.metrics import format_series, format_table, merge_curves


class TestFormatTable:
    def test_headers_and_rows(self):
        text = format_table(["a", "bb"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "1" in lines[2]

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456]])
        assert "0.1235" in text

    def test_scientific_for_tiny_values(self):
        text = format_table(["v"], [[1.5e-14]])
        assert "e-14" in text

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text


class TestFormatSeries:
    def test_one_column_per_series(self):
        text = format_series(
            "round", [0, 1, 2],
            {"F=3": [1, 3, 9], "F=4": [1, 4, 16]},
        )
        header = text.splitlines()[0]
        assert "round" in header and "F=3" in header and "F=4" in header
        assert "16" in text

    def test_short_series_padded_with_blank(self):
        text = format_series("x", [0, 1], {"s": [5]})
        assert text  # no crash; second row has empty cell


class TestMergeCurves:
    def test_pads_to_longest(self):
        merged = merge_curves({"a": [1, 2], "b": [1, 2, 3]})
        assert merged["a"] == [1, 2, 2]
        assert merged["b"] == [1, 2, 3]

    def test_empty_mapping(self):
        assert merge_curves({}) == {}

    def test_empty_curve_padded_with_zero(self):
        merged = merge_curves({"a": [], "b": [7]})
        assert merged["a"] == [0.0]
