"""Tests for the statistical helpers."""

import math

import pytest

from repro.metrics.stats import (
    compare_means,
    proportion_summary,
    summarize,
    wilson_interval,
)


class TestSummarize:
    def test_known_values(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.std == pytest.approx(1.0)
        assert stats.stderr == pytest.approx(1.0 / math.sqrt(3))
        assert stats.minimum == 1.0 and stats.maximum == 3.0

    def test_single_value(self):
        stats = summarize([5.0])
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.count == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_confidence_interval_contains_mean(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        low, high = stats.confidence_interval()
        assert low < stats.mean < high


class TestWilson:
    def test_symmetric_at_half(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high
        assert (0.5 - low) == pytest.approx(high - 0.5, abs=1e-9)

    def test_clamped_to_unit_interval(self):
        low, high = wilson_interval(0, 10)
        assert low == 0.0
        low, high = wilson_interval(10, 10)
        assert high == 1.0

    def test_narrower_with_more_trials(self):
        low1, high1 = wilson_interval(7, 10)
        low2, high2 = wilson_interval(700, 1000)
        assert (high2 - low2) < (high1 - low1)

    def test_never_degenerate_at_extremes(self):
        low, high = wilson_interval(10, 10)
        assert low < 1.0  # unlike the normal approximation

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)

    def test_proportion_summary_format(self):
        text = proportion_summary(73, 100)
        assert text.startswith("0.7300 [")


class TestCompareMeans:
    def test_sign_convention(self):
        assert compare_means([2.0, 2.1, 1.9], [1.0, 1.1, 0.9]) > 0
        assert compare_means([1.0, 1.1, 0.9], [2.0, 2.1, 1.9]) < 0

    def test_identical_samples_zero(self):
        assert compare_means([1.0, 1.0], [1.0, 1.0]) == 0.0

    def test_zero_variance_different_means_infinite(self):
        assert compare_means([2.0, 2.0], [1.0, 1.0]) == math.inf

    def test_large_effect_large_t(self):
        t = compare_means([10.0, 10.1, 9.9, 10.05], [1.0, 1.2, 0.8, 1.1])
        assert abs(t) > 10
