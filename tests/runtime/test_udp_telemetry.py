"""Telemetry smoke for the loopback-UDP runtime.

The deployment shares one thread-safe registry across all hosts; the old
plain-int counters are now back-compat views over it, so both surfaces must
agree and the shared registry must carry per-pid labelled series.
"""

import pytest

from repro.core import LpbcastConfig
from repro.metrics import DeliveryLog
from repro.runtime import LocalDeployment
from repro.sim import build_lpbcast_nodes


def build_cluster(n=6, loss=0.0, period=0.03, seed=6):
    cfg = LpbcastConfig(fanout=3, view_max=6, gossip_period=period)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    log = DeliveryLog().attach(nodes)
    cluster = LocalDeployment(nodes, gossip_period=period, loss_rate=loss,
                              seed=seed)
    return cluster, nodes, log


class TestUdpTelemetry:
    def test_shared_registry_matches_host_counters(self):
        cluster, nodes, log = build_cluster(n=6)
        with cluster:
            event = cluster.host(nodes[0].pid).publish("hello")
            done = cluster.wait_until(
                lambda: log.delivery_count(event.event_id) == 6, timeout=8.0
            )
        assert done
        telemetry = cluster.telemetry
        for host in cluster.hosts:
            assert host.telemetry is telemetry  # one registry, all hosts
            assert host.datagrams_sent == telemetry.counter_value(
                "udp.datagrams_sent", pid=host.node.pid
            )
            assert host.datagrams_received == telemetry.counter_value(
                "udp.datagrams_received", pid=host.node.pid
            )
        assert telemetry.counter_total("udp.datagrams_sent") == \
            sum(host.datagrams_sent for host in cluster.hosts)
        assert telemetry.counter_total("udp.datagrams_sent") > 0

    def test_injected_loss_counted(self):
        cluster, nodes, log = build_cluster(n=6, loss=0.25, seed=7)
        with cluster:
            cluster.run_for(0.4)
        telemetry = cluster.telemetry
        lost = telemetry.counter_total("udp.datagrams_lost_injected")
        assert lost > 0
        assert lost == sum(h.datagrams_lost_injected for h in cluster.hosts)

    def test_codec_timings_recorded(self):
        cluster, nodes, log = build_cluster(n=4, seed=8)
        with cluster:
            cluster.run_for(0.3)
        telemetry = cluster.telemetry
        encode = telemetry.histogram_stats("time.codec", op="encode")
        decode = telemetry.histogram_stats("time.codec", op="decode")
        assert encode is not None and encode[0] > 0
        assert decode is not None and decode[0] > 0

    def test_decode_errors_counted(self):
        cluster, nodes, log = build_cluster(n=4, seed=9)
        with cluster:
            import socket
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            target = cluster.host(nodes[0].pid).address
            sock.sendto(b"garbage", target)
            sock.close()
            cluster.wait_until(
                lambda: cluster.host(nodes[0].pid).decode_errors > 0,
                timeout=5.0,
            )
        assert cluster.telemetry.counter_total("udp.decode_errors") >= 1
