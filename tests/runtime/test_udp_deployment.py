"""Tests for the loopback-UDP deployment runtime.

These run real sockets and threads with short wall-clock budgets; they are
deliberately small-scale (n <= 12, sub-second gossip periods) to stay fast
and robust.
"""

import threading
import time

import pytest

from repro.core import LpbcastConfig
from repro.metrics import DeliveryLog
from repro.runtime import LocalDeployment, UdpProcessHost
from repro.sim import build_lpbcast_nodes


def build_cluster(n=8, loss=0.0, period=0.03, seed=1, view=6):
    cfg = LpbcastConfig(fanout=3, view_max=view, gossip_period=period)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    log = DeliveryLog().attach(nodes)
    cluster = LocalDeployment(nodes, gossip_period=period, loss_rate=loss,
                              seed=seed)
    return cluster, nodes, log


class TestDeployment:
    def test_broadcast_reaches_every_process(self):
        cluster, nodes, log = build_cluster(n=8)
        with cluster:
            event = cluster.host(nodes[0].pid).publish("hello")
            done = cluster.wait_until(
                lambda: log.delivery_count(event.event_id) == 8, timeout=8.0
            )
        assert done, f"only {log.delivery_count(event.event_id)}/8 delivered"

    def test_broadcast_survives_injected_loss(self):
        cluster, nodes, log = build_cluster(n=8, loss=0.2, seed=2)
        with cluster:
            event = cluster.host(nodes[0].pid).publish("lossy")
            done = cluster.wait_until(
                lambda: log.delivery_count(event.event_id) == 8, timeout=10.0
            )
        assert done
        assert any(host.datagrams_dropped > 0 for host in cluster.hosts)

    def test_multiple_publishers_concurrently(self):
        cluster, nodes, log = build_cluster(n=10, seed=3)
        with cluster:
            events = [
                cluster.host(nodes[i].pid).publish({"from": i})
                for i in range(3)
            ]
            done = cluster.wait_until(
                lambda: all(
                    log.delivery_count(e.event_id) == 10 for e in events
                ),
                timeout=10.0,
            )
        assert done

    def test_timers_are_unsynchronized_and_periodic(self):
        cluster, nodes, log = build_cluster(n=6, period=0.05, seed=4)
        with cluster:
            cluster.run_for(0.5)
            sent = [host.datagrams_sent for host in cluster.hosts]
        # ~10 ticks x fanout 3 each; generous bounds for scheduler jitter.
        assert all(s >= 9 for s in sent)

    def test_malformed_datagrams_tolerated(self):
        cluster, nodes, log = build_cluster(n=4, seed=5)
        with cluster:
            import socket
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            target = cluster.host(nodes[0].pid).address
            sock.sendto(b"garbage", target)
            sock.sendto(b"1|{not json", target)
            sock.sendto(b"xx|{}", target)
            sock.close()
            event = cluster.host(nodes[1].pid).publish("still works")
            done = cluster.wait_until(
                lambda: log.delivery_count(event.event_id) == 4, timeout=8.0
            )
        assert done
        assert cluster.host(nodes[0].pid).decode_errors >= 2

    def test_stop_is_clean_and_idempotent(self):
        cluster, nodes, log = build_cluster(n=4, seed=6)
        cluster.start()
        cluster.stop()
        before = threading.active_count()
        time.sleep(0.1)
        assert threading.active_count() <= before

    def test_with_node_ships_returned_messages(self):
        cluster, nodes, log = build_cluster(n=4, seed=7)
        joiner_cfg = LpbcastConfig(fanout=2, view_max=4, gossip_period=0.03)
        from repro.core import LpbcastNode
        import random as _random
        joiner = LpbcastNode(99, joiner_cfg, _random.Random(99))
        DeliveryLog().attach([joiner])
        with cluster:
            host = UdpProcessHost(joiner, cluster.directory,
                                  gossip_period=0.03)
            host.start()
            host.with_node(
                lambda node: node.start_join(nodes[0].pid,
                                             now=time.monotonic())
            )
            joined = cluster.wait_until(lambda: joiner.joined, timeout=8.0)
            host.stop()
            host.join()
        assert joined


class TestDropAccounting:
    """The three send-side drop causes stay distinct (a conflated counter
    made loss-rate experiments misreport whenever oversize occurred)."""

    def test_injected_loss_lands_in_its_own_counter(self):
        cluster, nodes, log = build_cluster(n=6, loss=0.25, seed=11)
        with cluster:
            event = cluster.host(nodes[0].pid).publish("count me")
            cluster.wait_until(
                lambda: log.delivery_count(event.event_id) == 6, timeout=10.0
            )
        lost = sum(h.datagrams_lost_injected for h in cluster.hosts)
        assert lost > 0
        assert sum(h.datagrams_oversize for h in cluster.hosts) == 0
        assert sum(h.datagrams_send_errors for h in cluster.hosts) == 0
        assert sum(h.datagrams_dropped for h in cluster.hosts) == lost

    def test_oversize_lands_in_its_own_counter(self):
        cluster, nodes, log = build_cluster(n=2, seed=12)
        with cluster:
            host = cluster.host(nodes[0].pid)
            host.with_node(lambda node: node.lpb_cast("x" * 100_000))
            cluster.run_for(0.3)
            oversize = host.datagrams_oversize
            assert oversize > 0
            assert host.datagrams_lost_injected == 0
            assert host.datagrams_dropped == oversize

    def test_cluster_counters_aggregate_by_cause(self):
        cluster, nodes, log = build_cluster(n=6, loss=0.2, seed=13)
        with cluster:
            cluster.host(nodes[0].pid).publish("tally")
            cluster.run_for(0.5)
            counters = cluster.datagram_counters()
        assert counters["sent"] > 0
        assert counters["received"] > 0
        assert counters["lost_injected"] > 0
        assert counters["dropped"] == (counters["lost_injected"]
                                       + counters["oversize"]
                                       + counters["send_errors"])


class TestFaultPlanDeployment:
    def test_drop_plan_replaces_loss_rate(self):
        from repro.faults import FaultPlan

        cfg = LpbcastConfig(fanout=3, view_max=6, gossip_period=0.03)
        nodes = build_lpbcast_nodes(8, cfg, seed=14)
        log = DeliveryLog().attach(nodes)
        cluster = LocalDeployment(nodes, gossip_period=0.03, seed=14,
                                  fault_plan=FaultPlan().drop(0.25))
        assert all(h.fault_injector is cluster.fault_injector
                   for h in cluster.hosts)
        with cluster:
            event = cluster.host(nodes[0].pid).publish("planned loss")
            done = cluster.wait_until(
                lambda: log.delivery_count(event.event_id) == 8, timeout=10.0
            )
        assert done
        assert cluster.datagram_counters()["lost_injected"] > 0
        assert cluster.fault_injector.stats.dropped > 0

    def test_partition_plan_cuts_the_cluster(self):
        from repro.faults import FaultPlan

        cfg = LpbcastConfig(fanout=3, view_max=6, gossip_period=0.03)
        nodes = build_lpbcast_nodes(6, cfg, seed=15)
        log = DeliveryLog().attach(nodes)
        side_a = [n.pid for n in nodes[:3]]
        side_b = [n.pid for n in nodes[3:]]
        plan = FaultPlan().partition(side_a, side_b, start=1, heal=100_000)
        cluster = LocalDeployment(nodes, gossip_period=0.03, seed=15,
                                  fault_plan=plan)
        with cluster:
            event = cluster.host(side_a[0]).publish("walled in")
            cluster.wait_until(
                lambda: log.delivery_count(event.event_id) == 3, timeout=8.0
            )
            cluster.run_for(0.3)  # grace: a crossing would surface here
        assert {p for p in side_a if log.delivered(p, event.event_id)} \
            == set(side_a)
        assert all(not log.delivered(p, event.event_id) for p in side_b)
        assert cluster.fault_injector.stats.partition_blocked > 0


class TestValidation:
    def test_invalid_period(self):
        with pytest.raises(ValueError):
            build_cluster(period=0.0)

    def test_invalid_loss(self):
        with pytest.raises(ValueError):
            build_cluster(loss=1.0)

    def test_oversized_datagram_dropped_not_crashed(self):
        cluster, nodes, log = build_cluster(n=2, seed=8)
        with cluster:
            host = cluster.host(nodes[0].pid)
            # A payload far beyond the 65 kB datagram cap.
            host.with_node(lambda node: node.lpb_cast("x" * 100_000))
            cluster.run_for(0.3)
            dropped = host.datagrams_dropped
        assert dropped > 0  # counted, not raised

    def test_message_to_unknown_pid_ignored(self):
        cluster, nodes, log = build_cluster(n=2, seed=9)
        with cluster:
            host = cluster.host(nodes[0].pid)
            from repro.core.message import Outgoing
            host._send_all([Outgoing(9999, object())])  # no address: no-op
            cluster.run_for(0.1)
        # Nothing raised; cluster shut down cleanly.
