"""pbcast on the UDP deployment: the baseline also runs on real sockets."""

from repro.metrics import DeliveryLog
from repro.pbcast import PbcastConfig, build_pbcast_nodes
from repro.runtime import LocalDeployment


class TestPbcastOverUdp:
    def test_multicast_plus_gossip_repair_on_loopback(self):
        cfg = PbcastConfig(fanout=4, view_max=6, gossip_period=0.03)
        nodes = build_pbcast_nodes(8, cfg, seed=5, membership="partial")
        log = DeliveryLog().attach(nodes)
        cluster = LocalDeployment(nodes, gossip_period=0.03, loss_rate=0.2,
                                  seed=5)
        with cluster:
            host = cluster.host(nodes[0].pid)
            event_holder = {}

            def publish(node):
                notification, first = node.publish("via-udp")
                event_holder["event"] = notification
                return first  # with_node ships the phase-1 datagrams

            host.with_node(publish)
            done = cluster.wait_until(
                lambda: log.delivery_count(event_holder["event"].event_id) == 8,
                timeout=10.0,
            )
        assert done, (
            f"only {log.delivery_count(event_holder['event'].event_id)}/8"
        )

    def test_digest_gossip_alone_disseminates(self):
        cfg = PbcastConfig(fanout=4, view_max=6, gossip_period=0.03,
                           first_phase="none")
        nodes = build_pbcast_nodes(8, cfg, seed=6, membership="partial")
        log = DeliveryLog().attach(nodes)
        cluster = LocalDeployment(nodes, gossip_period=0.03, seed=6)
        with cluster:
            holder = {}

            def publish(node):
                notification, _ = node.publish("gossip-only")
                holder["event"] = notification
                return []

            cluster.host(nodes[0].pid).with_node(publish)
            done = cluster.wait_until(
                lambda: log.delivery_count(holder["event"].event_id) == 8,
                timeout=10.0,
            )
        assert done
