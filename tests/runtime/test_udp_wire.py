"""Wire-path tests for the UDP runtime: frame formats, splitting,
truncation detection and byte accounting."""

import socket

import pytest

from repro.core import LpbcastConfig
from repro.metrics import DeliveryLog
from repro.runtime import LocalDeployment
from repro.sim import build_lpbcast_nodes


def build_cluster(n=4, period=0.03, seed=1, wire_format="binary"):
    cfg = LpbcastConfig(fanout=3, view_max=6, gossip_period=period)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    log = DeliveryLog().attach(nodes)
    cluster = LocalDeployment(nodes, gossip_period=period, seed=seed,
                              wire_format=wire_format)
    return cluster, nodes, log


class TestWireFormats:
    @pytest.mark.parametrize("wire_format", ["binary", "json", "text"])
    def test_broadcast_delivers_in_every_format(self, wire_format):
        cluster, nodes, log = build_cluster(n=6, seed=21,
                                            wire_format=wire_format)
        with cluster:
            event = cluster.host(nodes[0].pid).publish(f"via-{wire_format}")
            done = cluster.wait_until(
                lambda: log.delivery_count(event.event_id) == 6, timeout=8.0
            )
        assert done, (f"{wire_format}: only "
                      f"{log.delivery_count(event.event_id)}/6 delivered")

    def test_invalid_wire_format_rejected(self):
        with pytest.raises(ValueError, match="wire_format"):
            build_cluster(wire_format="carrier-pigeon")

    def test_binary_is_the_default(self):
        cfg = LpbcastConfig(fanout=2, view_max=4)
        nodes = build_lpbcast_nodes(2, cfg, seed=1)
        cluster = LocalDeployment(nodes)
        assert all(h.wire_format == "binary" for h in cluster.hosts)

    def test_legacy_text_datagram_accepted_by_binary_host(self):
        # An old peer speaking pid|json must still be understood.
        from repro.core.codec import to_json
        from repro.core.message import SubscriptionRequest

        cluster, nodes, log = build_cluster(n=2, seed=22)
        with cluster:
            host = cluster.host(nodes[0].pid)
            before = host.datagrams_received
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            text = f"{nodes[1].pid}|{to_json(SubscriptionRequest(99))}"
            sock.sendto(text.encode("utf-8"), host.address)
            sock.close()
            cluster.wait_until(lambda: host.datagrams_received > before,
                               timeout=3.0)
            assert host.datagrams_received > before
            assert host.decode_errors == 0


class TestByteCounters:
    def test_bytes_sent_and_received_tracked(self):
        cluster, nodes, log = build_cluster(n=4, seed=23)
        with cluster:
            cluster.host(nodes[0].pid).publish("count bytes")
            cluster.run_for(0.3)
            counters = cluster.datagram_counters()
        assert counters["bytes_sent"] > 0
        assert counters["bytes_received"] > 0
        # Loopback with no loss: received bytes come from sent datagrams.
        assert counters["bytes_received"] <= counters["bytes_sent"]

    def test_binary_moves_fewer_bytes_than_json(self):
        totals = {}
        for fmt in ("binary", "json"):
            cluster, nodes, log = build_cluster(n=6, seed=24, wire_format=fmt)
            with cluster:
                event = cluster.host(nodes[0].pid).publish("compare")
                cluster.wait_until(
                    lambda: log.delivery_count(event.event_id) == 6,
                    timeout=8.0,
                )
                counters = cluster.datagram_counters()
            totals[fmt] = counters["bytes_sent"] / max(counters["sent"], 1)
        assert totals["binary"] < totals["json"]


class TestOversizeHandling:
    def test_oversize_gossip_split_and_delivered(self, monkeypatch):
        # Shrink the datagram cap so ordinary gossips overflow it: they
        # must be split and still deliver, not dropped.
        import repro.runtime.udp as udp
        monkeypatch.setattr(udp, "_MAX_DATAGRAM", 120)
        monkeypatch.setattr(udp, "_RECV_BUFSIZE", 121)
        cluster, nodes, log = build_cluster(n=4, seed=25)
        with cluster:
            host = cluster.host(nodes[0].pid)
            # Several events at once: the carrying gossip far exceeds the
            # 120-byte cap, but each single event still fits, so the frame
            # layer must split rather than drop.
            events = [host.publish(f"piece-{i}-" + "p" * 20)
                      for i in range(6)]
            done = cluster.wait_until(
                lambda: all(log.delivery_count(e.event_id) == 4
                            for e in events),
                timeout=8.0,
            )
            split = sum(h.gossips_split for h in cluster.hosts)
        assert done, "split gossips failed to deliver"
        assert split > 0, "expected at least one split at a 120-byte cap"

    def test_undeliverable_message_counted_and_traced(self):
        cluster, nodes, log = build_cluster(n=2, seed=26)
        with cluster:
            host = cluster.host(nodes[0].pid)
            # One event whose payload alone exceeds the cap: unsplittable.
            host.with_node(lambda node: node.lpb_cast("x" * 100_000))
            cluster.wait_until(lambda: host.datagrams_oversize > 0,
                               timeout=3.0)
            assert host.datagrams_oversize > 0
            events = [e for e in cluster.telemetry.trace.events
                      if e.kind == "wire.oversize"]
        assert events, "oversize drop left no trace event"
        assert events[0].data["message_kind"] == "GossipMessage"
        assert events[0].data["wire_size"] > 65_000

    def test_truncated_datagram_detected_not_parsed(self, monkeypatch):
        import repro.runtime.udp as udp
        monkeypatch.setattr(udp, "_MAX_DATAGRAM", 200)
        monkeypatch.setattr(udp, "_RECV_BUFSIZE", 201)
        cluster, nodes, log = build_cluster(n=2, seed=27)
        with cluster:
            host = cluster.host(nodes[0].pid)
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.sendto(b"\x02" + b"\x00" * 300, host.address)
            sock.close()
            cluster.wait_until(lambda: host.datagrams_truncated > 0,
                               timeout=3.0)
            assert host.datagrams_truncated > 0
            # Never parsed, so never a decode error either.
            assert host.decode_errors == 0

    def test_recv_buffer_exceeds_send_cap(self):
        # The receive buffer must be strictly larger than the sender cap,
        # otherwise a legal max-size datagram is silently cut short.
        import repro.runtime.udp as udp
        assert udp._RECV_BUFSIZE > udp._MAX_DATAGRAM
