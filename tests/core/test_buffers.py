"""Tests for the bounded buffers of Sec. 3.2."""

import random

import pytest

from repro.core.buffers import (
    CompactEventIdDigest,
    FifoBuffer,
    FifoEventIdBuffer,
    RandomDropBuffer,
)
from repro.core.ids import EventId


class TestRandomDropBuffer:
    def test_add_and_contains(self):
        buf = RandomDropBuffer(5, random.Random(0))
        assert buf.add("a")
        assert "a" in buf
        assert len(buf) == 1

    def test_no_duplicates(self):
        buf = RandomDropBuffer(5, random.Random(0))
        assert buf.add("a")
        assert not buf.add("a")
        assert len(buf) == 1

    def test_add_all_counts_new(self):
        buf = RandomDropBuffer(10, random.Random(0))
        assert buf.add_all(["a", "b", "a", "c"]) == 3

    def test_truncate_respects_bound_and_returns_evicted(self):
        buf = RandomDropBuffer(3, random.Random(0))
        buf.add_all(range(10))
        evicted = buf.truncate()
        assert len(buf) == 3
        assert len(evicted) == 7
        assert set(evicted) | set(buf) == set(range(10))
        assert set(evicted) & set(buf) == set()

    def test_truncate_noop_under_bound(self):
        buf = RandomDropBuffer(5, random.Random(0))
        buf.add_all([1, 2])
        assert buf.truncate() == []
        assert len(buf) == 2

    def test_eviction_is_random(self):
        # Over many trials every element should get evicted sometimes.
        evicted_counts = {i: 0 for i in range(5)}
        for seed in range(200):
            buf = RandomDropBuffer(4, random.Random(seed))
            buf.add_all(range(5))
            for item in buf.truncate():
                evicted_counts[item] += 1
        assert all(count > 0 for count in evicted_counts.values())

    def test_discard(self):
        buf = RandomDropBuffer(5, random.Random(0))
        buf.add_all(["a", "b", "c"])
        assert buf.discard("b")
        assert not buf.discard("b")
        assert set(buf) == {"a", "c"}

    def test_pop_random_empties(self):
        buf = RandomDropBuffer(5, random.Random(0))
        buf.add_all([1, 2, 3])
        popped = {buf.pop_random() for _ in range(3)}
        assert popped == {1, 2, 3}
        with pytest.raises(IndexError):
            buf.pop_random()

    def test_drain(self):
        buf = RandomDropBuffer(5, random.Random(0))
        buf.add_all([1, 2, 3])
        assert sorted(buf.drain()) == [1, 2, 3]
        assert len(buf) == 0

    def test_sample(self):
        buf = RandomDropBuffer(10, random.Random(0))
        buf.add_all(range(10))
        sample = buf.sample(4)
        assert len(sample) == 4
        assert len(set(sample)) == 4
        assert set(sample) <= set(range(10))

    def test_sample_larger_than_content(self):
        buf = RandomDropBuffer(10, random.Random(0))
        buf.add_all([1, 2])
        assert sorted(buf.sample(5)) == [1, 2]

    def test_zero_capacity(self):
        buf = RandomDropBuffer(0, random.Random(0))
        buf.add("x")
        assert buf.truncate() == ["x"]
        assert len(buf) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            RandomDropBuffer(-1)

    def test_key_function_allows_unhashable_values(self):
        buf = RandomDropBuffer(5, random.Random(0), key=lambda d: d["id"])
        assert buf.add({"id": 1, "payload": [1, 2]})
        assert not buf.add({"id": 1, "payload": [9]})
        assert buf.contains_key(1)
        assert not buf.contains_key(2)

    def test_contains_with_unhashable_item_and_identity_key(self):
        buf = RandomDropBuffer(5, random.Random(0))
        assert {"x": 1} not in buf  # must not raise

    def test_add_truncating(self):
        buf = RandomDropBuffer(2, random.Random(0))
        buf.add_all([1, 2])
        evicted = buf.add_truncating(3)
        assert len(buf) == 2
        assert len(evicted) == 1


class TestFifoBuffer:
    def test_evicts_oldest(self):
        buf = FifoBuffer(3)
        for i in range(5):
            buf.add(i)
        assert buf.snapshot() == (2, 3, 4)

    def test_add_returns_evicted(self):
        buf = FifoBuffer(2)
        assert buf.add("a") == []
        assert buf.add("b") == []
        assert buf.add("c") == ["a"]

    def test_readd_does_not_refresh_age(self):
        buf = FifoBuffer(2)
        buf.add("a")
        buf.add("b")
        buf.add("a")  # no-op, "a" stays oldest
        assert buf.add("c") == ["a"]

    def test_oldest(self):
        buf = FifoBuffer(5)
        buf.add_all(["x", "y"])
        assert buf.oldest() == "x"

    def test_snapshot_cached_between_mutations(self):
        buf = FifoBuffer(5)
        buf.add_all(["a", "b"])
        first = buf.snapshot()
        assert first == ("a", "b")
        assert buf.snapshot() is first  # no mutation: same cached tuple
        buf.add("a")  # duplicate, nothing evicted: still a no-op
        assert buf.snapshot() is first

    def test_snapshot_cache_invalidated_by_insert_and_eviction(self):
        buf = FifoBuffer(2)
        buf.add("a")
        assert buf.snapshot() == ("a",)
        buf.add("b")
        assert buf.snapshot() == ("a", "b")
        buf.add("c")  # evicts "a"
        assert buf.snapshot() == ("b", "c")

    def test_snapshot_cache_invalidated_by_discard_and_clear(self):
        buf = FifoBuffer(3)
        buf.add_all(["a", "b", "c"])
        assert buf.snapshot() == ("a", "b", "c")
        buf.discard("b")
        assert buf.snapshot() == ("a", "c")
        buf.clear()
        assert buf.snapshot() == ()

    def test_oldest_empty_raises(self):
        with pytest.raises(IndexError):
            FifoBuffer(3).oldest()

    def test_discard(self):
        buf = FifoBuffer(5)
        buf.add_all([1, 2, 3])
        assert buf.discard(2)
        assert not buf.discard(2)
        assert buf.snapshot() == (1, 3)

    def test_zero_capacity_evicts_immediately(self):
        buf = FifoBuffer(0)
        assert buf.add("a") == ["a"]
        assert len(buf) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            FifoBuffer(-2)


class TestFifoEventIdBuffer:
    def test_event_id_semantics(self):
        buf = FifoEventIdBuffer(2)
        buf.add(EventId(1, 1))
        buf.add(EventId(1, 2))
        evicted = buf.add(EventId(2, 1))
        assert evicted == [EventId(1, 1)]
        assert EventId(1, 1) not in buf  # forgotten: duplicate detection bounded
        assert EventId(1, 2) in buf


class TestCompactEventIdDigest:
    def test_in_sequence_compaction(self):
        digest = CompactEventIdDigest()
        for seq in (1, 2, 3):
            digest.add(EventId(7, seq))
        assert digest.last_in_sequence(7) == 3
        assert digest.out_of_order_count() == 0
        assert EventId(7, 2) in digest
        assert EventId(7, 4) not in digest

    def test_gap_tracked_out_of_order(self):
        digest = CompactEventIdDigest()
        digest.add(EventId(7, 1))
        digest.add(EventId(7, 3))
        assert digest.last_in_sequence(7) == 1
        assert digest.out_of_order_count() == 1
        assert EventId(7, 3) in digest
        assert EventId(7, 2) not in digest

    def test_gap_closes(self):
        digest = CompactEventIdDigest()
        digest.add(EventId(7, 1))
        digest.add(EventId(7, 3))
        digest.add(EventId(7, 2))
        assert digest.last_in_sequence(7) == 3
        assert digest.out_of_order_count() == 0

    def test_multiple_senders_independent(self):
        digest = CompactEventIdDigest()
        digest.add(EventId(1, 1))
        digest.add(EventId(2, 5))
        assert digest.last_in_sequence(1) == 1
        assert digest.last_in_sequence(2) == 0
        assert set(digest.senders()) == {1, 2}

    def test_budget_folds_oldest(self):
        digest = CompactEventIdDigest(max_out_of_order=2)
        digest.add(EventId(1, 10))
        digest.add(EventId(1, 20))
        digest.add(EventId(1, 30))  # overflows: (1,10) folded away
        # Folding advances the frontier past seq 10: over-approximation.
        assert digest.last_in_sequence(1) >= 10
        assert EventId(1, 10) in digest
        assert EventId(1, 30) in digest

    def test_duplicate_add_is_noop(self):
        digest = CompactEventIdDigest()
        digest.add(EventId(1, 2))
        digest.add(EventId(1, 2))
        assert digest.out_of_order_count() == 1

    def test_contains_rejects_foreign_types(self):
        digest = CompactEventIdDigest()
        assert "not-an-id" not in digest
        assert (1,) not in digest

    def test_never_delivered_sender(self):
        digest = CompactEventIdDigest()
        assert digest.last_in_sequence(42) == 0
        assert EventId(42, 1) not in digest

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            CompactEventIdDigest(max_out_of_order=-1)
