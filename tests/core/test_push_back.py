"""Tests for the gossip-push repair (Sec. 2.3 footnote 5, rpbcast-style)."""

import pytest

from repro.core import LpbcastConfig
from repro.core.ids import EventId
from repro.core.message import RetransmitResponse

from ..helpers import gossip, make_node, notification


def make_pusher(pid=0, view=(1, 2), **overrides):
    defaults = dict(push_back=True, digest_implies_delivery=False)
    defaults.update(overrides)
    return make_node(pid=pid, view=view, **defaults)


class TestConfig:
    def test_push_back_requires_payload_mode(self):
        with pytest.raises(ValueError, match="push_back"):
            LpbcastConfig(push_back=True, digest_implies_delivery=True)

    def test_anti_entropy_combination_allowed(self):
        cfg = LpbcastConfig(push_back=True, retransmissions=True,
                            digest_implies_delivery=False)
        assert cfg.push_back and cfg.retransmissions


class TestPushBack:
    def test_missing_notification_pushed_to_sender(self):
        holder = make_pusher()
        n = notification(9, 1, "data")
        holder.on_gossip(gossip(sender=9, events=(n,)), now=0.5)
        # A peer gossips a digest that lacks n: push it back.
        out = holder.on_gossip(gossip(sender=3, event_ids=(EventId(9, 99),)),
                               now=1.0)
        pushes = [o for o in out if isinstance(o.message, RetransmitResponse)]
        assert len(pushes) == 1
        assert pushes[0].destination == 3
        assert pushes[0].message.events[0].event_id == n.event_id

    def test_nothing_pushed_when_sender_has_everything(self):
        holder = make_pusher()
        n = notification(9, 1)
        holder.on_gossip(gossip(sender=9, events=(n,)), now=0.5)
        out = holder.on_gossip(gossip(sender=3, event_ids=(n.event_id,)),
                               now=1.0)
        assert out == []

    def test_push_served_from_archive_after_forwarding(self):
        holder = make_pusher()
        n = notification(9, 1, "archived")
        holder.on_gossip(gossip(sender=9, events=(n,)), now=0.5)
        holder.on_tick(now=1.0)  # events flushed; archive retains
        out = holder.on_gossip(gossip(sender=3, event_ids=()), now=1.5)
        pushes = [o for o in out if isinstance(o.message, RetransmitResponse)]
        assert pushes and pushes[0].message.events[0].payload == "archived"

    def test_push_budget_bounded(self):
        holder = make_pusher(retransmit_request_max=3, events_max=50,
                             archive_max=50)
        events = tuple(notification(9, s) for s in range(1, 11))
        holder.on_gossip(gossip(sender=9, events=events), now=0.5)
        out = holder.on_gossip(gossip(sender=3, event_ids=()), now=1.0)
        pushes = [o for o in out if isinstance(o.message, RetransmitResponse)]
        assert len(pushes[0].message.events) == 3

    def test_receiver_absorbs_push(self):
        holder = make_pusher(pid=0, view=(3,))
        receiver = make_pusher(pid=3, view=(0,))
        n = notification(9, 1, "payload")
        holder.on_gossip(gossip(sender=9, events=(n,)), now=0.5)
        out = holder.on_gossip(gossip(sender=3, event_ids=()), now=1.0)
        receiver.handle_message(0, out[0].message, now=1.1)
        assert receiver.has_delivered(n.event_id)

    def test_push_back_repairs_one_shot_losses(self):
        # End to end: payload-only mode with losses; push-back raises
        # coverage versus plain one-shot forwarding.
        import random
        from repro.metrics import DeliveryLog
        from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes

        def run(push_back: bool):
            cfg = LpbcastConfig(
                fanout=3, view_max=10,
                push_back=push_back, digest_implies_delivery=False,
            )
            nodes = build_lpbcast_nodes(40, cfg, seed=12)
            sim = RoundSimulation(
                NetworkModel(loss_rate=0.25, rng=random.Random(13)), seed=12
            )
            sim.add_nodes(nodes)
            log = DeliveryLog().attach(nodes)
            event = nodes[0].lpb_cast("x", now=0.0)
            sim.run(12)
            return log.delivery_count(event.event_id)

        assert run(push_back=True) > run(push_back=False)
        assert run(push_back=True) >= 38  # near-complete repair
