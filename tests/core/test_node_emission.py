"""Tests for periodic gossip emission — Figure 1(b)."""

from repro.core import GossipMessage

from ..helpers import gossip, make_node, notification


def tick_gossips(node, now=1.0):
    """Run on_tick and return the GossipMessage payloads sent."""
    out = node.on_tick(now)
    return [o for o in out if isinstance(o.message, GossipMessage)]


class TestEmission:
    def test_gossips_to_fanout_targets(self):
        node = make_node(view=tuple(range(1, 11)), fanout=3, view_max=10)
        out = tick_gossips(node)
        assert len(out) == 3
        destinations = {o.destination for o in out}
        assert len(destinations) == 3
        assert destinations <= set(range(1, 11))

    def test_gossips_even_without_events(self):
        # "This is done even if the process has not received any new
        # notifications since it last sent a gossip message."
        node = make_node(view=(1, 2, 3))
        out = tick_gossips(node)
        assert len(out) == 3
        assert all(o.message.events == () for o in out)

    def test_sender_advertises_itself(self):
        node = make_node(pid=7, view=(1, 2, 3))
        out = tick_gossips(node)
        assert all(7 in o.message.subs for o in out)

    def test_events_cleared_after_gossip(self):
        # Each notification is forwarded at most once per process.
        node = make_node(view=(1, 2, 3))
        node.on_gossip(gossip(events=(notification(9, 1),)), now=0.5)
        first = tick_gossips(node, now=1.0)
        assert any(o.message.events for o in first)
        second = tick_gossips(node, now=2.0)
        assert all(o.message.events == () for o in second)

    def test_digest_carried_every_round(self):
        node = make_node(view=(1, 2, 3))
        n = notification(9, 1)
        node.on_gossip(gossip(events=(n,)), now=0.5)
        tick_gossips(node, now=1.0)
        second = tick_gossips(node, now=2.0)
        assert all(n.event_id in o.message.event_ids for o in second)

    def test_same_gossip_object_to_all_targets(self):
        node = make_node(view=(1, 2, 3, 4, 5), fanout=3)
        out = tick_gossips(node)
        assert len({id(o.message) for o in out}) == 1

    def test_empty_view_sends_nothing(self):
        node = make_node(view=())
        assert node.on_tick(1.0) == []
        assert node.stats.gossips_sent == 0

    def test_unsubs_forwarded(self):
        node = make_node(view=(1, 2, 3))
        from ..helpers import unsub
        node.on_gossip(gossip(unsubs=(unsub(9, timestamp=1.0),)), now=1.0)
        out = tick_gossips(node, now=2.0)
        assert all(any(u.pid == 9 for u in o.message.unsubs) for o in out)

    def test_obsolete_unsubs_purged_on_tick(self):
        node = make_node(view=(1, 2, 3), unsub_ttl=5.0)
        from ..helpers import unsub
        node.on_gossip(gossip(unsubs=(unsub(9, timestamp=1.0),)), now=1.0)
        out = tick_gossips(node, now=50.0)
        assert all(o.message.unsubs == () for o in out)


class TestMembershipFrequency:
    def test_membership_every_kth_round(self):
        node = make_node(pid=7, view=(1, 2, 3), membership_period=3)
        rounds_with_membership = []
        for r in range(1, 7):
            out = tick_gossips(node, now=float(r))
            if any(o.message.subs for o in out):
                rounds_with_membership.append(r)
        # Ticks 3 and 6 only (k=3).
        assert rounds_with_membership == [3, 6]

    def test_membership_boost_sends_extra_gossips(self):
        node = make_node(view=(1, 2, 3, 4, 5), fanout=2, membership_boost=2)
        out = tick_gossips(node)
        # 1 regular batch of F + 2 boost batches of F.
        assert len(out) == 6
        boost_messages = [o.message for o in out if o.message.events == ()
                          and o.message.event_ids == ()]
        assert len(boost_messages) >= 4  # boosts carry membership only

    def test_boost_gossips_carry_subs(self):
        node = make_node(pid=7, view=(1, 2, 3), membership_boost=1)
        out = tick_gossips(node)
        assert all(7 in o.message.subs for o in out)

    def test_boost_gossips_counted_as_sent(self):
        # Boost emissions are real wire traffic: each boost batch increments
        # gossips_sent exactly like the regular per-tick emission.
        node = make_node(view=(1, 2, 3, 4, 5), fanout=2, membership_boost=2)
        tick_gossips(node)
        assert node.stats.gossips_sent == 3  # 1 regular + 2 boost batches

    def test_boost_with_empty_view_sends_nothing(self):
        node = make_node(view=(), membership_boost=3)
        assert node.on_tick(1.0) == []
        assert node.stats.gossips_sent == 0


class TestWeightedSubsConstruction:
    def test_weighted_payload_includes_low_weight_view_entries(self):
        node = make_node(pid=0, view=(1, 2, 3, 4), weighted_views=True,
                         subs_max=3, view_max=10)
        # Raise awareness of 1 and 2; payload should prefer 3 and 4.
        node.on_gossip(gossip(subs=(1, 2)), now=0.5)
        out = tick_gossips(node, now=1.0)
        payload = set(out[0].message.subs)
        assert {3, 4} <= payload
        assert 0 in payload  # self always advertised
