"""Node-level causal-delivery mode: dependency stamping, hold-back,
retransmit-driven dependency recovery, and the config couplings."""

import pickle

import pytest

from repro.core import LpbcastConfig
from repro.core.ids import EventId
from repro.core.message import RetransmitRequest, RetransmitResponse

from ..helpers import gossip, make_node, notification


def make_causal_node(pid=0, view=(1,), **overrides):
    overrides.setdefault("causal_delivery", True)
    overrides.setdefault("digest_implies_delivery", False)
    overrides.setdefault("retransmissions", True)
    return make_node(pid=pid, view=view, **overrides)


class TestConfigCouplings:
    def test_causal_requires_payload_transfer(self):
        with pytest.raises(ValueError, match="digest_implies_delivery"):
            LpbcastConfig(causal_delivery=True)

    def test_causal_excludes_double_echo(self):
        with pytest.raises(ValueError, match="double_echo"):
            LpbcastConfig(causal_delivery=True,
                          digest_implies_delivery=False,
                          double_echo=True, retransmissions=False,
                          push_back=False)

    def test_holdback_bound_validated(self):
        with pytest.raises(ValueError, match="causal_holdback_max"):
            LpbcastConfig(causal_holdback_max=0)

    def test_causal_without_retransmissions_is_legal(self):
        cfg = LpbcastConfig(causal_delivery=True,
                            digest_implies_delivery=False,
                            retransmissions=False)
        assert cfg.causal_delivery

    def test_non_causal_node_has_no_gate(self):
        assert make_node(view=(1,)).causal is None


class TestPublishStamping:
    def test_first_publish_carries_empty_deps(self):
        node = make_causal_node()
        published = node.lpb_cast("a", now=0.0)
        assert published.deps == ()
        assert node.has_delivered(published.event_id)

    def test_publish_stamps_the_delivered_frontier(self):
        node = make_causal_node()
        node.on_gossip(gossip(sender=9, events=(notification(9, 1),)),
                       now=0.5)
        published = node.lpb_cast("b", now=1.0)
        assert published.deps == (EventId(9, 1),)

    def test_second_publish_includes_own_previous_event(self):
        node = make_causal_node()
        node.lpb_cast("a", now=0.0)
        second = node.lpb_cast("b", now=1.0)
        assert EventId(node.pid, 1) in second.deps


class TestHoldbackAndRecovery:
    def test_out_of_order_arrival_held_and_dep_solicited(self):
        node = make_causal_node()
        dependent = notification(2, 1, payload="x", deps=(EventId(1, 1),))
        out = node.on_gossip(gossip(sender=7, events=(dependent,)), now=1.0)
        # The id buffer records *receipt* (so digests do not re-solicit a
        # held notification), but the application saw nothing yet.
        assert node.stats.delivered == 0
        assert node.has_delivered(dependent.event_id)
        assert node.causal.held_count() == 1
        assert node.stats.causal_held_back == 1
        assert node.stats.causal_deps_solicited == 1
        assert len(out) == 1 and out[0].destination == 7
        request = out[0].message
        assert isinstance(request, RetransmitRequest)
        assert request.event_ids == (EventId(1, 1),)

    def test_dependency_arrival_releases_in_causal_order(self):
        node = make_causal_node()
        order = []
        node.add_delivery_listener(
            lambda pid, n, now: order.append(n.event_id))
        dependent = notification(2, 1, payload="x", deps=(EventId(1, 1),))
        node.on_gossip(gossip(sender=7, events=(dependent,)), now=1.0)
        node.on_gossip(gossip(sender=7, events=(notification(1, 1),)),
                       now=2.0)
        assert order == [EventId(1, 1), EventId(2, 1)]

    def test_retransmit_response_routes_through_the_gate(self):
        node = make_causal_node()
        order = []
        node.add_delivery_listener(
            lambda pid, n, now: order.append(n.event_id))
        dependent = notification(2, 1, payload="x", deps=(EventId(1, 1),))
        node.on_gossip(gossip(sender=7, events=(dependent,)), now=1.0)
        node.on_retransmit_response(
            RetransmitResponse(7, (notification(1, 1),)), now=2.0)
        assert order == [EventId(1, 1), EventId(2, 1)]
        assert node.stats.retransmits_delivered == 1

    def test_response_with_unmet_deps_is_held_not_delivered(self):
        # Even a solicited notification obeys the gate: if the response
        # itself carries deps the node has not delivered, it waits.
        node = make_causal_node()
        chained = notification(1, 1, payload="y", deps=(EventId(3, 1),))
        out = node.on_retransmit_response(
            RetransmitResponse(7, (chained,)), now=1.0)
        assert node.stats.delivered == 0
        assert node.causal.held_count() == 1
        # ... and the transitive dependency is solicited from the responder.
        assert any(isinstance(o.message, RetransmitRequest)
                   and o.destination == 7 for o in out)

    def test_overflow_eviction_counted_in_stats(self):
        node = make_causal_node(causal_holdback_max=1)
        node.on_gossip(gossip(sender=7, events=(notification(5, 2),)),
                       now=1.0)
        node.on_gossip(gossip(sender=7, events=(notification(6, 2),)),
                       now=2.0)
        assert node.stats.causal_evicted == 1
        assert node.causal.held_count() == 1

    def test_held_notification_still_forwarded(self):
        # Hold-back delays *delivery*, never dissemination: the held
        # notification must still ride the next gossip out.
        node = make_causal_node()
        dependent = notification(2, 1, payload="x", deps=(EventId(1, 1),))
        node.on_gossip(gossip(sender=7, events=(dependent,)), now=1.0)
        outgoing = node.on_tick(now=2.0)
        forwarded = [n.event_id
                     for o in outgoing for n in o.message.events]
        assert EventId(2, 1) in forwarded

    def test_no_solicitation_without_retransmissions(self):
        node = make_causal_node(retransmissions=False)
        dependent = notification(2, 1, payload="x", deps=(EventId(1, 1),))
        out = node.on_gossip(gossip(sender=7, events=(dependent,)), now=1.0)
        assert out == []
        assert node.stats.causal_deps_solicited == 0
        assert node.causal.held_count() == 1


class TestPickleSafety:
    def test_causal_node_survives_pickling_with_gate_state(self):
        node = make_causal_node()
        dependent = notification(2, 1, payload="x", deps=(EventId(1, 1),))
        node.on_gossip(gossip(sender=7, events=(dependent,)), now=1.0)
        clone = pickle.loads(pickle.dumps(node))
        assert clone.causal.held_count() == 1
        order = []
        clone.add_delivery_listener(
            lambda pid, n, now: order.append(n.event_id))
        clone.on_gossip(gossip(sender=7, events=(notification(1, 1),)),
                        now=2.0)
        assert order == [EventId(1, 1), EventId(2, 1)]
