"""Tests for protocol message records."""

import pytest

from repro.core.events import Unsubscription
from repro.core.ids import EventId
from repro.core.message import (
    GossipMessage,
    Outgoing,
    RetransmitRequest,
    RetransmitResponse,
    SubscriptionAck,
    SubscriptionRequest,
)

from ..helpers import notification


class TestGossipMessage:
    def test_defaults_are_empty(self):
        g = GossipMessage(sender=1)
        assert g.subs == ()
        assert g.unsubs == ()
        assert g.events == ()
        assert g.event_ids == ()

    def test_immutable(self):
        g = GossipMessage(sender=1)
        with pytest.raises(Exception):
            g.subs = (2,)

    def test_size_estimate_counts_elements(self):
        g = GossipMessage(
            sender=1,
            subs=(2, 3),
            unsubs=(Unsubscription(4, 0.0),),
            events=(notification(1, 1),),
            event_ids=(EventId(1, 1), EventId(1, 2)),
        )
        assert g.size_estimate() == 1 + 2 + 1 + 1 + 2

    def test_empty_gossip_has_header_only(self):
        assert GossipMessage(sender=1).size_estimate() == 1


class TestAuxiliaryMessages:
    def test_subscription_request(self):
        assert SubscriptionRequest(5).subscriber == 5

    def test_subscription_ack_sample(self):
        ack = SubscriptionAck(contact=1, view_sample=(2, 3))
        assert ack.view_sample == (2, 3)

    def test_retransmit_request(self):
        req = RetransmitRequest(9, (EventId(1, 1),))
        assert req.requester == 9

    def test_retransmit_response(self):
        resp = RetransmitResponse(3, (notification(1, 1),))
        assert resp.responder == 3

    def test_outgoing_pairs(self):
        out = Outgoing(7, "message")
        assert out.destination == 7
        assert out.message == "message"
