"""Tests for UnsubscriptionBuffer and JoinState."""

import random

import pytest

from repro.core.events import Unsubscription
from repro.core.subscription import JoinState, UnsubscriptionBuffer


class TestUnsubscriptionBuffer:
    def test_add_and_contains(self):
        buf = UnsubscriptionBuffer(5, random.Random(0))
        buf.add(Unsubscription(3, 1.0))
        assert 3 in buf
        assert len(buf) == 1

    def test_newest_timestamp_wins(self):
        buf = UnsubscriptionBuffer(5, random.Random(0))
        buf.add(Unsubscription(3, 1.0))
        buf.add(Unsubscription(3, 5.0))
        assert buf.snapshot() == (Unsubscription(3, 5.0),)

    def test_older_timestamp_ignored(self):
        buf = UnsubscriptionBuffer(5, random.Random(0))
        buf.add(Unsubscription(3, 5.0))
        buf.add(Unsubscription(3, 1.0))
        assert buf.snapshot() == (Unsubscription(3, 5.0),)

    def test_truncate_random_eviction(self):
        buf = UnsubscriptionBuffer(2, random.Random(0))
        for pid in range(5):
            buf.add(Unsubscription(pid, 1.0))
        evicted = buf.truncate()
        assert len(buf) == 2
        assert len(evicted) == 3

    def test_purge_obsolete(self):
        buf = UnsubscriptionBuffer(10, random.Random(0))
        buf.add(Unsubscription(1, 0.0))
        buf.add(Unsubscription(2, 8.0))
        expired = buf.purge_obsolete(now=10.0, ttl=5.0)
        assert [u.pid for u in expired] == [1]
        assert 2 in buf

    def test_discard(self):
        buf = UnsubscriptionBuffer(10, random.Random(0))
        buf.add(Unsubscription(1, 0.0))
        assert buf.discard(1)
        assert not buf.discard(1)

    def test_iter(self):
        buf = UnsubscriptionBuffer(10, random.Random(0))
        buf.add(Unsubscription(1, 0.0))
        buf.add(Unsubscription(2, 0.0))
        assert set(buf) == {1, 2}

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnsubscriptionBuffer(-1)


class TestJoinState:
    def test_retry_after_timeout(self):
        join = JoinState(contact=1, timeout=2.0)
        join.start(now=0.0)
        assert not join.should_retry(now=1.0)
        assert join.should_retry(now=2.0)

    def test_no_retry_after_integration(self):
        join = JoinState(contact=1, timeout=2.0)
        join.start(now=0.0)
        join.on_gossip_received()
        assert not join.should_retry(now=100.0)

    def test_ack_alone_does_not_stop_retries(self):
        # The ack only confirms the contact got the request; integration
        # evidence is receiving gossip (Sec. 3.4).
        join = JoinState(contact=1, timeout=2.0)
        join.start(now=0.0)
        join.on_ack()
        assert join.acknowledged
        assert join.should_retry(now=5.0)

    def test_attempts_counted(self):
        join = JoinState(contact=1, timeout=2.0)
        join.start(now=0.0)
        join.start(now=2.0)
        assert join.attempts == 2

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            JoinState(contact=1, timeout=0.0)
