"""Tests for process and event identifiers."""

import pytest

from repro.core.ids import EventId, ProcessNamespace


class TestEventId:
    def test_fields(self):
        eid = EventId(3, 7)
        assert eid.origin == 3
        assert eid.seq == 7

    def test_ordering_is_lexicographic(self):
        assert EventId(1, 5) < EventId(2, 1)
        assert EventId(2, 1) < EventId(2, 2)

    def test_equality_and_hash(self):
        assert EventId(1, 1) == EventId(1, 1)
        assert hash(EventId(1, 1)) == hash(EventId(1, 1))
        assert EventId(1, 1) != EventId(1, 2)

    def test_usable_as_dict_key(self):
        d = {EventId(1, 1): "a"}
        assert d[EventId(1, 1)] == "a"

    def test_str(self):
        assert str(EventId(4, 9)) == "4#9"


class TestProcessNamespace:
    def test_ids_are_ordered_and_distinct(self):
        ns = ProcessNamespace()
        ids = ns.create_many(10)
        assert ids == sorted(ids)
        assert len(set(ids)) == 10

    def test_named_process(self):
        ns = ProcessNamespace()
        pid = ns.create("publisher")
        assert ns.name_of(pid) == "publisher"

    def test_default_name(self):
        ns = ProcessNamespace()
        pid = ns.create()
        assert ns.name_of(pid) == f"p{pid}"

    def test_foreign_id_gets_fallback_name(self):
        ns = ProcessNamespace()
        assert ns.name_of(12345) == "p12345"

    def test_custom_start(self):
        ns = ProcessNamespace(start=100)
        assert ns.create() == 100
        assert ns.create() == 101

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            ProcessNamespace(start=-1)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ProcessNamespace().create_many(-1)

    def test_len_iter_contains(self):
        ns = ProcessNamespace()
        ids = ns.create_many(3)
        assert len(ns) == 3
        assert set(ns) == set(ids)
        assert ids[0] in ns
        assert 999 not in ns
