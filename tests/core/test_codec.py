"""Tests for the wire codec."""

import pytest

from repro.core.codec import (
    CodecError,
    decode_message,
    encode_message,
    from_json,
    to_json,
    wire_size,
)
from repro.core.events import Unsubscription
from repro.core.ids import EventId
from repro.core.message import (
    GossipMessage,
    RetransmitRequest,
    RetransmitResponse,
    SubscriptionAck,
    SubscriptionRequest,
)
from repro.loggers import LogUpload, LogUploadAck, RecoveryRequest, RecoveryResponse
from repro.pbcast import PbcastData, PbcastDigest, PbcastSolicit
from repro.pubsub import TopicEnvelope

from ..helpers import notification


FULL_GOSSIP = GossipMessage(
    sender=3,
    subs=(1, 2),
    unsubs=(Unsubscription(9, 4.5),),
    events=(notification(3, 1, {"k": [1, 2]}), notification(3, 2, "text")),
    event_ids=(EventId(3, 1), EventId(7, 12)),
)

ALL_MESSAGES = [
    FULL_GOSSIP,
    GossipMessage(sender=0),
    GossipMessage(sender=2, heartbeats=((2, 17), (5, 3))),
    SubscriptionRequest(5),
    SubscriptionAck(1, (2, 3, 4)),
    RetransmitRequest(9, (EventId(1, 1),)),
    RetransmitResponse(3, (notification(1, 1, None),)),
    PbcastData(2, notification(2, 5, "payload"), hops=3),
    PbcastDigest(4, (EventId(2, 5),), subs=(1,), unsubs=(Unsubscription(8, 1.0),)),
    PbcastSolicit(6, (EventId(2, 5), EventId(2, 6))),
    LogUpload(1, notification(1, 9, [1, 2, 3])),
    LogUploadAck(900, EventId(1, 9)),
    RecoveryRequest(4, (EventId(1, 9),)),
    RecoveryResponse(900, (notification(1, 9),), complete=False),
    TopicEnvelope("stocks/nasdaq", FULL_GOSSIP),
]


class TestRoundTrip:
    @pytest.mark.parametrize("message", ALL_MESSAGES,
                             ids=lambda m: type(m).__name__)
    def test_dict_round_trip(self, message):
        assert decode_message(encode_message(message)) == message

    @pytest.mark.parametrize("message", ALL_MESSAGES,
                             ids=lambda m: type(m).__name__)
    def test_json_round_trip(self, message):
        assert from_json(to_json(message)) == message

    def test_nested_envelope(self):
        inner = TopicEnvelope("a", SubscriptionRequest(1))
        outer = TopicEnvelope("b", inner)
        assert from_json(to_json(outer)) == outer


class TestErrors:
    def test_unknown_type_rejected(self):
        with pytest.raises(CodecError, match="cannot encode"):
            encode_message(object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(CodecError, match="unknown message tag"):
            decode_message({"@": "zz"})

    def test_untagged_rejected(self):
        with pytest.raises(CodecError, match="not a tagged"):
            decode_message({"s": 1})
        with pytest.raises(CodecError):
            decode_message("nope")

    def test_malformed_fields_rejected(self):
        with pytest.raises(CodecError):
            decode_message({"@": "g"})  # missing sender
        with pytest.raises(CodecError):
            decode_message({"@": "g", "s": 1, "ids": [["x"]]})

    def test_invalid_json(self):
        with pytest.raises(CodecError, match="invalid JSON"):
            from_json("{broken")

    def test_malformed_envelope(self):
        with pytest.raises(CodecError):
            decode_message({"@": "te", "topic": "a"})


class TestWireSize:
    def test_monotone_in_content(self):
        empty = GossipMessage(sender=1)
        assert wire_size(FULL_GOSSIP) > wire_size(empty)

    def test_roughly_compact(self):
        assert wire_size(GossipMessage(sender=1)) < 80


class TestTopicValidation:
    """Regression: a TopicEnvelope with a non-string topic used to encode
    (and decode) silently, producing an envelope no peer's topic table
    could match and no re-encode could round-trip."""

    def test_encode_rejects_non_string_topic(self):
        for bad in (42, None, ("a",), b"bytes"):
            with pytest.raises(CodecError, match="topic must be a string"):
                encode_message(TopicEnvelope(bad, SubscriptionRequest(1)))

    def test_decode_rejects_non_string_topic(self):
        inner = encode_message(SubscriptionRequest(1))
        for bad in (42, None, ["a"], {"t": 1}):
            with pytest.raises(CodecError, match="topic must be a string"):
                decode_message({"@": "te", "topic": bad, "inner": inner})

    def test_string_topics_still_round_trip(self):
        message = TopicEnvelope("topic/with/slashes", SubscriptionRequest(2))
        assert from_json(to_json(message)) == message
