"""Tests for partial views and the weighted-view heuristic (Sec. 6.1)."""

import random

import pytest

from repro.core.view import PartialView, WeightedPartialView


class TestPartialView:
    def test_never_contains_owner(self):
        view = PartialView(owner=1, max_size=5, rng=random.Random(0))
        assert not view.add(1)
        assert 1 not in view

    def test_add_and_contains(self):
        view = PartialView(1, 5, random.Random(0))
        assert view.add(2)
        assert 2 in view
        assert not view.add(2)  # duplicate
        assert len(view) == 1

    def test_remove(self):
        view = PartialView(1, 5, random.Random(0))
        view.add(2)
        assert view.remove(2)
        assert not view.remove(2)
        assert 2 not in view

    def test_truncate_bounds_and_returns_evicted(self):
        view = PartialView(0, 3, random.Random(0))
        for pid in range(1, 11):
            view.add(pid)
        evicted = view.truncate()
        assert len(view) == 3
        assert len(evicted) == 7
        assert set(evicted) | set(view) == set(range(1, 11))

    def test_eviction_uniform_over_entries(self):
        survival = {pid: 0 for pid in range(1, 6)}
        for seed in range(500):
            view = PartialView(0, 1, random.Random(seed))
            for pid in range(1, 6):
                view.add(pid)
            view.truncate()
            survival[next(iter(view))] += 1
        # Every entry should survive sometimes (uniform truncation).
        assert all(count > 50 for count in survival.values())

    def test_choose_gossip_targets_distinct(self):
        view = PartialView(0, 10, random.Random(0))
        for pid in range(1, 11):
            view.add(pid)
        targets = view.choose_gossip_targets(4)
        assert len(targets) == 4
        assert len(set(targets)) == 4

    def test_choose_gossip_targets_small_view(self):
        view = PartialView(0, 10, random.Random(0))
        view.add(1)
        assert view.choose_gossip_targets(3) == [1]

    def test_choose_gossip_targets_empty_view(self):
        view = PartialView(0, 10, random.Random(0))
        assert view.choose_gossip_targets(3) == []

    def test_select_for_subs(self):
        view = PartialView(0, 10, random.Random(0))
        for pid in range(1, 6):
            view.add(pid)
        selected = view.select_for_subs(3)
        assert len(selected) == 3
        assert set(selected) <= set(range(1, 6))

    def test_snapshot_is_immutable_copy(self):
        view = PartialView(0, 5, random.Random(0))
        view.add(1)
        snap = view.snapshot()
        view.add(2)
        assert snap == (1,)

    def test_clear(self):
        view = PartialView(0, 5, random.Random(0))
        view.add(1)
        view.clear()
        assert len(view) == 0

    def test_negative_max_rejected(self):
        with pytest.raises(ValueError):
            PartialView(0, -1)


class TestWeightedPartialView:
    def test_weights_start_at_zero(self):
        view = WeightedPartialView(0, 5, random.Random(0))
        view.add(1)
        assert view.weight_of(1) == 0

    def test_note_awareness_increments(self):
        view = WeightedPartialView(0, 5, random.Random(0))
        view.add(1)
        view.note_awareness(1)
        view.note_awareness(1)
        assert view.weight_of(1) == 2

    def test_note_awareness_ignores_unknown(self):
        view = WeightedPartialView(0, 5, random.Random(0))
        view.note_awareness(9)
        assert view.weight_of(9) == 0

    def test_truncation_evicts_heaviest(self):
        view = WeightedPartialView(0, 2, random.Random(0))
        for pid in (1, 2, 3):
            view.add(pid)
        view.note_awareness(2)
        view.note_awareness(2)
        evicted = view.truncate()
        assert evicted == [2]
        assert set(view) == {1, 3}

    def test_truncation_tie_break_random(self):
        evicted_counts = {1: 0, 2: 0, 3: 0}
        for seed in range(300):
            view = WeightedPartialView(0, 2, random.Random(seed))
            for pid in (1, 2, 3):
                view.add(pid)
            evicted_counts[view.truncate()[0]] += 1
        assert all(count > 30 for count in evicted_counts.values())

    def test_select_for_subs_prefers_light_entries(self):
        view = WeightedPartialView(0, 5, random.Random(0))
        for pid in (1, 2, 3, 4):
            view.add(pid)
        for _ in range(3):
            view.note_awareness(1)
            view.note_awareness(2)
        selected = view.select_for_subs(2)
        assert set(selected) == {3, 4}

    def test_remove_forgets_weight(self):
        view = WeightedPartialView(0, 5, random.Random(0))
        view.add(1)
        view.note_awareness(1)
        view.remove(1)
        view.add(1)
        assert view.weight_of(1) == 0

    def test_weighted_view_still_excludes_owner(self):
        view = WeightedPartialView(7, 5, random.Random(0))
        assert not view.add(7)
