"""Tests for the per-origin FIFO and causal delivery gates."""

import pytest

from repro.core.delivery import CausalDeliveryGate, FifoDeliveryGate
from repro.core.ids import EventId

from ..helpers import notification


def make_gate(max_holdback=8):
    gate = FifoDeliveryGate(max_holdback=max_holdback)
    released = []
    gate.add_listener(lambda pid, n, now: released.append(n.event_id.seq))
    return gate, released


class TestInOrder:
    def test_in_order_passes_through(self):
        gate, released = make_gate()
        for seq in (1, 2, 3):
            gate.on_delivery(0, notification(5, seq), now=float(seq))
        assert released == [1, 2, 3]
        assert gate.delivered_in_order == 3

    def test_origins_independent(self):
        gate, released = make_gate()
        gate.on_delivery(0, notification(5, 1), 0.0)
        gate.on_delivery(0, notification(6, 1), 0.0)
        gate.on_delivery(0, notification(6, 2), 0.0)
        assert released == [1, 1, 2]
        assert gate.expected_next(5) == 2
        assert gate.expected_next(6) == 3


class TestReordering:
    def test_out_of_order_held_and_released(self):
        gate, released = make_gate()
        gate.on_delivery(0, notification(5, 2), 0.0)
        assert released == []
        assert gate.held_count(5) == 1
        gate.on_delivery(0, notification(5, 1), 1.0)
        assert released == [1, 2]
        assert gate.held_count(5) == 0

    def test_long_reordering_run(self):
        gate, released = make_gate()
        for seq in (3, 5, 2, 4, 1):
            gate.on_delivery(0, notification(5, seq), 0.0)
        assert released == [1, 2, 3, 4, 5]

    def test_duplicate_of_released_dropped(self):
        gate, released = make_gate()
        gate.on_delivery(0, notification(5, 1), 0.0)
        gate.on_delivery(0, notification(5, 1), 1.0)
        assert released == [1]
        assert gate.stale_dropped == 1

    def test_duplicate_of_held_not_double_buffered(self):
        gate, released = make_gate()
        gate.on_delivery(0, notification(5, 3), 0.0)
        gate.on_delivery(0, notification(5, 3), 1.0)
        assert gate.held_count(5) == 1


class TestGapSkipping:
    def test_overflow_skips_gap(self):
        gate, released = make_gate(max_holdback=2)
        # seq 1 never arrives; 2, 3, 4 pile up.
        gate.on_delivery(0, notification(5, 2), 0.0)
        gate.on_delivery(0, notification(5, 3), 0.0)
        assert released == []
        gate.on_delivery(0, notification(5, 4), 0.0)  # overflow: skip 1
        assert released == [2, 3, 4]
        assert gate.gaps_skipped == 1

    def test_progress_after_skip(self):
        gate, released = make_gate(max_holdback=1)
        gate.on_delivery(0, notification(5, 3), 0.0)
        gate.on_delivery(0, notification(5, 5), 0.0)  # skips to 3, holds 5
        gate.on_delivery(0, notification(5, 4), 0.0)
        assert released == [3, 4, 5]

    def test_validation(self):
        with pytest.raises(ValueError):
            FifoDeliveryGate(max_holdback=0)


class TestEndToEnd:
    def test_fifo_order_over_lossy_simulation(self):
        import random
        from repro.core import LpbcastConfig
        from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes

        cfg = LpbcastConfig(fanout=3, view_max=8)
        nodes = build_lpbcast_nodes(20, cfg, seed=10)
        sim = RoundSimulation(
            NetworkModel(loss_rate=0.1, rng=random.Random(11)), seed=10
        )
        sim.add_nodes(nodes)

        orders = {}
        for node in nodes[1:]:
            gate = FifoDeliveryGate()
            order = []
            gate.add_listener(
                lambda pid, n, now, order=order: order.append(n.event_id.seq)
            )
            node.add_delivery_listener(gate.on_delivery)
            orders[node.pid] = order

        for r in range(5):
            nodes[0].lpb_cast(f"m{r}", now=float(r))
            sim.run_round()
        sim.run(10)

        for pid, order in orders.items():
            assert order == sorted(order), f"process {pid} out of order"
            assert order == list(range(1, len(order) + 1))


class TestCausalDeliveryGate:
    def test_in_order_no_deps_passes_through(self):
        gate = CausalDeliveryGate(max_holdback=8)
        released, missing = gate.offer(notification(5, 1))
        assert [n.event_id for n in released] == [EventId(5, 1)]
        assert missing == []
        released, _ = gate.offer(notification(5, 2))
        assert [n.event_id for n in released] == [EventId(5, 2)]
        assert gate.delivered_causally == 2
        assert gate.frontier_of(5) == 2

    def test_dependency_holds_back_and_releases(self):
        gate = CausalDeliveryGate(max_holdback=8)
        dependent = notification(3, 1, deps=(EventId(1, 1),))
        released, missing = gate.offer(dependent)
        assert released == []
        assert missing == [EventId(1, 1)]
        assert gate.held_count() == 1
        released, _ = gate.offer(notification(1, 1))
        assert [n.event_id for n in released] == [EventId(1, 1), EventId(3, 1)]
        assert gate.held_count() == 0

    def test_predecessor_gap_holds_back(self):
        gate = CausalDeliveryGate(max_holdback=8)
        released, missing = gate.offer(notification(2, 3))
        assert released == []
        assert missing == [EventId(2, 1), EventId(2, 2)]

    def test_transitive_drain_fixpoint(self):
        # c depends on b, b depends on a; arriving in reverse, the arrival
        # of a must drain the whole chain in causal order.
        gate = CausalDeliveryGate(max_holdback=8)
        c = notification(3, 1, deps=(EventId(2, 1),))
        b = notification(2, 1, deps=(EventId(1, 1),))
        a = notification(1, 1)
        assert gate.offer(c)[0] == []
        assert gate.offer(b)[0] == []
        released, _ = gate.offer(a)
        assert [n.event_id for n in released] == \
            [EventId(1, 1), EventId(2, 1), EventId(3, 1)]

    def test_missing_expansion_skips_held_and_dedupes(self):
        gate = CausalDeliveryGate(max_holdback=8)
        gate.offer(notification(1, 1))          # frontier[1] = 1
        gate.offer(notification(2, 2))          # held: predecessor (2,1)
        dependent = notification(3, 1, deps=(EventId(2, 2), EventId(1, 1)))
        released, missing = gate.offer(dependent)
        assert released == []
        # (2,2) itself is held, so only its gap (2,1) is solicited; the
        # satisfied dep (1,1) is not named at all.
        assert missing == [EventId(2, 1)]

    def test_stale_duplicate_dropped(self):
        gate = CausalDeliveryGate(max_holdback=8)
        gate.offer(notification(5, 1))
        released, missing = gate.offer(notification(5, 1))
        assert released == [] and missing == []
        assert gate.stale_dropped == 1

    def test_duplicate_of_held_not_double_buffered(self):
        gate = CausalDeliveryGate(max_holdback=8)
        gate.offer(notification(5, 2))
        gate.offer(notification(5, 2))
        assert gate.held_count() == 1
        assert gate.stale_dropped == 1

    def test_overflow_evicts_oldest_held_undelivered(self):
        # Option A semantics: completeness is traded, causal order never —
        # the evicted notification is simply never released.
        gate = CausalDeliveryGate(max_holdback=2)
        gate.offer(notification(5, 2))          # held (needs seq 1)
        gate.offer(notification(6, 2))          # held (needs seq 1)
        gate.offer(notification(7, 2))          # held: overflow evicts (5,2)
        assert gate.held_count() == 2
        assert gate.evicted == 1
        released, _ = gate.offer(notification(5, 1))
        assert [n.event_id for n in released] == [EventId(5, 1)]
        assert gate.frontier_of(5) == 1         # (5,2) is gone for good

    def test_publish_deps_is_sorted_frontier(self):
        gate = CausalDeliveryGate(max_holdback=8)
        gate.offer(notification(9, 1))
        gate.offer(notification(2, 1))
        gate.offer(notification(2, 2))
        assert gate.publish_deps() == (EventId(2, 2), EventId(9, 1))

    def test_publish_deps_empty_before_any_delivery(self):
        assert CausalDeliveryGate(max_holdback=8).publish_deps() == ()

    def test_counters(self):
        gate = CausalDeliveryGate(max_holdback=8)
        gate.offer(notification(5, 2))
        gate.offer(notification(5, 1))
        assert gate.held_back_total == 1
        assert gate.delivered_causally == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CausalDeliveryGate(max_holdback=0)
