"""Tests for the per-origin FIFO delivery gate."""

import pytest

from repro.core.delivery import FifoDeliveryGate

from ..helpers import notification


def make_gate(max_holdback=8):
    gate = FifoDeliveryGate(max_holdback=max_holdback)
    released = []
    gate.add_listener(lambda pid, n, now: released.append(n.event_id.seq))
    return gate, released


class TestInOrder:
    def test_in_order_passes_through(self):
        gate, released = make_gate()
        for seq in (1, 2, 3):
            gate.on_delivery(0, notification(5, seq), now=float(seq))
        assert released == [1, 2, 3]
        assert gate.delivered_in_order == 3

    def test_origins_independent(self):
        gate, released = make_gate()
        gate.on_delivery(0, notification(5, 1), 0.0)
        gate.on_delivery(0, notification(6, 1), 0.0)
        gate.on_delivery(0, notification(6, 2), 0.0)
        assert released == [1, 1, 2]
        assert gate.expected_next(5) == 2
        assert gate.expected_next(6) == 3


class TestReordering:
    def test_out_of_order_held_and_released(self):
        gate, released = make_gate()
        gate.on_delivery(0, notification(5, 2), 0.0)
        assert released == []
        assert gate.held_count(5) == 1
        gate.on_delivery(0, notification(5, 1), 1.0)
        assert released == [1, 2]
        assert gate.held_count(5) == 0

    def test_long_reordering_run(self):
        gate, released = make_gate()
        for seq in (3, 5, 2, 4, 1):
            gate.on_delivery(0, notification(5, seq), 0.0)
        assert released == [1, 2, 3, 4, 5]

    def test_duplicate_of_released_dropped(self):
        gate, released = make_gate()
        gate.on_delivery(0, notification(5, 1), 0.0)
        gate.on_delivery(0, notification(5, 1), 1.0)
        assert released == [1]
        assert gate.stale_dropped == 1

    def test_duplicate_of_held_not_double_buffered(self):
        gate, released = make_gate()
        gate.on_delivery(0, notification(5, 3), 0.0)
        gate.on_delivery(0, notification(5, 3), 1.0)
        assert gate.held_count(5) == 1


class TestGapSkipping:
    def test_overflow_skips_gap(self):
        gate, released = make_gate(max_holdback=2)
        # seq 1 never arrives; 2, 3, 4 pile up.
        gate.on_delivery(0, notification(5, 2), 0.0)
        gate.on_delivery(0, notification(5, 3), 0.0)
        assert released == []
        gate.on_delivery(0, notification(5, 4), 0.0)  # overflow: skip 1
        assert released == [2, 3, 4]
        assert gate.gaps_skipped == 1

    def test_progress_after_skip(self):
        gate, released = make_gate(max_holdback=1)
        gate.on_delivery(0, notification(5, 3), 0.0)
        gate.on_delivery(0, notification(5, 5), 0.0)  # skips to 3, holds 5
        gate.on_delivery(0, notification(5, 4), 0.0)
        assert released == [3, 4, 5]

    def test_validation(self):
        with pytest.raises(ValueError):
            FifoDeliveryGate(max_holdback=0)


class TestEndToEnd:
    def test_fifo_order_over_lossy_simulation(self):
        import random
        from repro.core import LpbcastConfig
        from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes

        cfg = LpbcastConfig(fanout=3, view_max=8)
        nodes = build_lpbcast_nodes(20, cfg, seed=10)
        sim = RoundSimulation(
            NetworkModel(loss_rate=0.1, rng=random.Random(11)), seed=10
        )
        sim.add_nodes(nodes)

        orders = {}
        for node in nodes[1:]:
            gate = FifoDeliveryGate()
            order = []
            gate.add_listener(
                lambda pid, n, now, order=order: order.append(n.event_id.seq)
            )
            node.add_delivery_listener(gate.on_delivery)
            orders[node.pid] = order

        for r in range(5):
            nodes[0].lpb_cast(f"m{r}", now=float(r))
            sim.run_round()
        sim.run(10)

        for pid, order in orders.items():
            assert order == sorted(order), f"process {pid} out of order"
            assert order == list(range(1, len(order) + 1))
