"""Tests for notifications and unsubscription records."""

import pytest

from repro.core.events import Notification, Unsubscription, make_notification
from repro.core.ids import EventId


class TestNotification:
    def test_origin_comes_from_event_id(self):
        n = Notification(EventId(8, 2), "payload")
        assert n.origin == 8

    def test_default_created_at(self):
        n = Notification(EventId(1, 1), None)
        assert n.created_at == 0.0

    def test_make_notification(self):
        n = make_notification(5, 3, payload="x", created_at=2.5)
        assert n.event_id == EventId(5, 3)
        assert n.payload == "x"
        assert n.created_at == 2.5

    def test_make_notification_rejects_zero_seq(self):
        with pytest.raises(ValueError):
            make_notification(5, 0)

    def test_immutable(self):
        n = make_notification(1, 1)
        with pytest.raises(AttributeError):
            n.payload = "other"


class TestUnsubscription:
    def test_not_obsolete_before_ttl(self):
        u = Unsubscription(3, timestamp=10.0)
        assert not u.is_obsolete(now=15.0, ttl=20.0)

    def test_obsolete_at_ttl(self):
        u = Unsubscription(3, timestamp=10.0)
        assert u.is_obsolete(now=30.0, ttl=20.0)

    def test_obsolete_after_ttl(self):
        u = Unsubscription(3, timestamp=10.0)
        assert u.is_obsolete(now=100.0, ttl=20.0)

    def test_hashable_record(self):
        assert len({Unsubscription(1, 0.0), Unsubscription(1, 0.0)}) == 1
