"""Tests for the subscription lifecycle of Sec. 3.4."""

import pytest

from repro.core.message import SubscriptionAck, SubscriptionRequest

from ..helpers import gossip, make_node, unsub


class TestJoin:
    def test_start_join_emits_request(self):
        joiner = make_node(pid=10)
        out = joiner.start_join(contact=1, now=0.0)
        assert len(out) == 1
        assert out[0].destination == 1
        assert isinstance(out[0].message, SubscriptionRequest)
        assert out[0].message.subscriber == 10

    def test_cannot_join_through_self(self):
        node = make_node(pid=10)
        with pytest.raises(ValueError):
            node.start_join(contact=10, now=0.0)

    def test_contact_adopts_and_acks(self):
        contact = make_node(pid=1, view=(2, 3))
        out = contact.on_subscription_request(SubscriptionRequest(10), now=0.0)
        assert 10 in contact.view
        assert 10 in contact.subs  # will be gossiped on the joiner's behalf
        assert len(out) == 1
        assert isinstance(out[0].message, SubscriptionAck)
        assert out[0].destination == 10

    def test_contact_ignores_own_request(self):
        contact = make_node(pid=1)
        assert contact.on_subscription_request(SubscriptionRequest(1), now=0.0) == []

    def test_ack_seeds_joiner_view(self):
        joiner = make_node(pid=10)
        joiner.start_join(contact=1, now=0.0)
        joiner.on_subscription_ack(SubscriptionAck(1, view_sample=(2, 3, 4)), now=0.5)
        assert 1 in joiner.view
        assert {2, 3, 4} <= set(joiner.view)

    def test_join_not_integrated_until_gossip_received(self):
        joiner = make_node(pid=10)
        joiner.start_join(contact=1, now=0.0)
        assert not joiner.joined
        joiner.on_gossip(gossip(sender=1), now=1.0)
        assert joiner.joined

    def test_join_retries_after_timeout(self):
        joiner = make_node(pid=10, join_timeout=2.0)
        joiner.start_join(contact=1, now=0.0)
        assert joiner.stats.join_requests_sent == 1
        joiner.on_tick(now=1.0)  # before the deadline: no retry
        assert joiner.stats.join_requests_sent == 1
        out = joiner.on_tick(now=2.5)
        assert joiner.stats.join_requests_sent == 2
        assert any(isinstance(o.message, SubscriptionRequest) for o in out)

    def test_no_retry_once_integrated(self):
        joiner = make_node(pid=10, join_timeout=2.0)
        joiner.start_join(contact=1, now=0.0)
        joiner.on_gossip(gossip(sender=1), now=0.5)
        joiner.on_tick(now=10.0)
        assert joiner.stats.join_requests_sent == 1

    def test_bootstrapped_node_counts_as_joined(self):
        node = make_node(view=(1, 2))
        assert node.joined


class TestUnsubscribe:
    def test_unsubscribe_adds_own_record(self):
        node = make_node(view=(1, 2))
        assert node.try_unsubscribe(now=5.0)
        assert node.unsubscribed
        assert node.pid in node.unsubs

    def test_unsubscribe_idempotent(self):
        node = make_node(view=(1, 2))
        assert node.try_unsubscribe(now=5.0)
        assert node.try_unsubscribe(now=6.0)

    def test_unsubscribe_refused_when_buffer_saturated(self):
        # Sec. 3.4: refusal protects the own unsubscription from truncation.
        node = make_node(view=(1, 2), unsubs_max=20, unsub_refusal_threshold=3)
        unsubs = tuple(unsub(pid, 1.0) for pid in range(100, 104))
        node.on_gossip(gossip(unsubs=unsubs), now=1.0)
        assert not node.try_unsubscribe(now=2.0)
        assert not node.unsubscribed

    def test_unsubscribe_possible_after_buffer_drains(self):
        node = make_node(view=(1, 2), unsubs_max=20, unsub_refusal_threshold=3,
                         unsub_ttl=5.0)
        unsubs = tuple(unsub(pid, 1.0) for pid in range(100, 104))
        node.on_gossip(gossip(unsubs=unsubs), now=1.0)
        assert not node.try_unsubscribe(now=2.0)
        node.on_tick(now=10.0)  # ttl expires the foreign unsubscriptions
        assert node.try_unsubscribe(now=10.5)

    def test_unsubscribed_node_stops_advertising_itself(self):
        node = make_node(pid=7, view=(1, 2, 3))
        node.try_unsubscribe(now=1.0)
        out = [o for o in node.on_tick(now=2.0)]
        for o in out:
            assert 7 not in o.message.subs
            assert any(u.pid == 7 for u in o.message.unsubs)

    def test_peers_drop_unsubscribed_process(self):
        leaver = make_node(pid=7, view=(1,))
        leaver.try_unsubscribe(now=1.0)
        peer = make_node(pid=1, view=(7, 2))
        gossips = [o.message for o in leaver.on_tick(now=2.0)]
        peer.on_gossip(gossips[0], now=2.0)
        assert 7 not in peer.view
        assert 7 in peer.unsubs  # forwarded onwards
