"""Tests for LpbcastConfig validation (the paper's parameter constraints)."""

import pytest

from repro.core import LpbcastConfig, PAPER_MEASUREMENT_CONFIG, PAPER_SIMULATION_CONFIG


class TestDefaults:
    def test_paper_defaults(self):
        cfg = LpbcastConfig()
        assert cfg.fanout == 3          # Sec. 4.3: "fixed to F = 3"
        assert cfg.event_ids_max == 60  # Fig. 6(a) notification list size
        assert cfg.membership_period == 1
        assert not cfg.weighted_views
        assert not cfg.retransmissions
        assert cfg.digest_implies_delivery

    def test_paper_presets(self):
        assert PAPER_SIMULATION_CONFIG.fanout == 3
        assert PAPER_MEASUREMENT_CONFIG.view_max == 15
        assert PAPER_MEASUREMENT_CONFIG.event_ids_max == 60


class TestValidation:
    def test_fanout_must_not_exceed_view(self):
        # "F <= l must always be ensured" (Sec. 4.3).
        with pytest.raises(ValueError, match="view_max"):
            LpbcastConfig(fanout=5, view_max=4)

    def test_fanout_equal_view_allowed(self):
        assert LpbcastConfig(fanout=5, view_max=5).fanout == 5

    def test_fanout_positive(self):
        with pytest.raises(ValueError):
            LpbcastConfig(fanout=0)

    @pytest.mark.parametrize(
        "field",
        ["events_max", "event_ids_max", "subs_max", "unsubs_max",
         "archive_max", "retransmit_request_max"],
    )
    def test_buffer_bounds_non_negative(self, field):
        with pytest.raises(ValueError, match=field):
            LpbcastConfig(**{field: -1})

    def test_gossip_period_positive(self):
        with pytest.raises(ValueError):
            LpbcastConfig(gossip_period=0.0)

    def test_unsub_ttl_positive(self):
        with pytest.raises(ValueError):
            LpbcastConfig(unsub_ttl=0.0)

    def test_membership_period_at_least_one(self):
        with pytest.raises(ValueError):
            LpbcastConfig(membership_period=0)

    def test_membership_boost_non_negative(self):
        with pytest.raises(ValueError):
            LpbcastConfig(membership_boost=-1)

    def test_join_timeout_positive(self):
        with pytest.raises(ValueError):
            LpbcastConfig(join_timeout=0.0)

    def test_retransmissions_exclusive_with_digest_delivery(self):
        with pytest.raises(ValueError, match="mutually"):
            LpbcastConfig(retransmissions=True, digest_implies_delivery=True)

    def test_retransmissions_with_digest_delivery_off(self):
        cfg = LpbcastConfig(retransmissions=True, digest_implies_delivery=False)
        assert cfg.retransmissions


class TestOverrides:
    def test_with_overrides_returns_new_config(self):
        base = LpbcastConfig()
        derived = base.with_overrides(fanout=4)
        assert derived.fanout == 4
        assert base.fanout == 3

    def test_with_overrides_revalidates(self):
        with pytest.raises(ValueError):
            LpbcastConfig().with_overrides(fanout=100)

    def test_frozen(self):
        cfg = LpbcastConfig()
        with pytest.raises(Exception):
            cfg.fanout = 9
