"""Tests for the frequency-aware events buffer (Sec. 6.1 applied to events)."""

import random

import pytest

from repro.core.buffers import FrequencyAwareEventBuffer

from ..helpers import gossip, make_node, notification


class TestFrequencyAwareEventBuffer:
    def make(self, max_size=3, seed=0):
        return FrequencyAwareEventBuffer(max_size, random.Random(seed))

    def test_add_and_contains(self):
        buf = self.make()
        n = notification(1, 1)
        assert buf.add(n)
        assert not buf.add(n)
        assert n in buf
        assert buf.contains_key(n.event_id)
        assert len(buf) == 1

    def test_truncate_evicts_most_seen(self):
        buf = self.make(max_size=2)
        a, b, c = (notification(1, s) for s in (1, 2, 3))
        for n in (a, b, c):
            buf.add(n)
        buf.note_seen(b.event_id)
        buf.note_seen(b.event_id)
        dropped = buf.truncate()
        assert dropped == [b]
        assert a in buf and c in buf

    def test_ties_broken_randomly(self):
        victims = set()
        for seed in range(100):
            buf = self.make(max_size=2, seed=seed)
            items = [notification(1, s) for s in (1, 2, 3)]
            for n in items:
                buf.add(n)
            victims.add(buf.truncate()[0].event_id)
        assert len(victims) == 3  # uniform fallback when weights equal

    def test_note_seen_unknown_is_noop(self):
        buf = self.make()
        buf.note_seen(notification(9, 9).event_id)
        assert buf.seen_count(notification(9, 9).event_id) == 0

    def test_drain_clears(self):
        buf = self.make()
        buf.add(notification(1, 1))
        drained = buf.drain()
        assert len(drained) == 1
        assert len(buf) == 0

    def test_seen_counts_reset_on_drain(self):
        buf = self.make()
        n = notification(1, 1)
        buf.add(n)
        buf.note_seen(n.event_id)
        buf.drain()
        assert buf.seen_count(n.event_id) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FrequencyAwareEventBuffer(-1)

    def test_contains_foreign_type(self):
        assert "nope" not in self.make()


class TestNodeIntegration:
    def test_weighted_events_buffer_selected(self):
        node = make_node(view=(1,), weighted_events=True)
        assert isinstance(node.events, FrequencyAwareEventBuffer)

    def test_duplicates_bump_weight(self):
        node = make_node(view=(1,), weighted_events=True, events_max=10)
        n = notification(2, 1)
        node.on_gossip(gossip(events=(n,)), now=1.0)
        node.on_gossip(gossip(events=(n,)), now=2.0)
        assert node.events.seen_count(n.event_id) == 1

    def test_overflow_prefers_duplicated_event(self):
        node = make_node(view=(1,), weighted_events=True, events_max=2)
        a, b = notification(2, 1), notification(2, 2)
        node.on_gossip(gossip(events=(a, b)), now=1.0)
        node.on_gossip(gossip(events=(a,)), now=2.0)  # duplicate of a
        c = notification(2, 3)
        node.on_gossip(gossip(events=(c,)), now=3.0)  # overflow
        assert not node.events.contains_key(a.event_id)  # most-seen dropped
        assert node.events.contains_key(b.event_id)
        assert node.events.contains_key(c.event_id)

    def test_dissemination_still_works(self):
        import random as _random
        from repro.core import LpbcastConfig
        from repro.metrics import DeliveryLog
        from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes

        cfg = LpbcastConfig(fanout=3, view_max=8, weighted_events=True)
        nodes = build_lpbcast_nodes(30, cfg, seed=4)
        sim = RoundSimulation(
            NetworkModel(loss_rate=0.05, rng=_random.Random(5)), seed=4
        )
        sim.add_nodes(nodes)
        log = DeliveryLog().attach(nodes)
        event = nodes[0].lpb_cast("x", now=0.0)
        sim.run(10)
        assert log.delivery_count(event.event_id) == 30
