"""Tests for the retransmission archive and gossip-pull engine."""

import pytest

from repro.core.ids import EventId
from repro.core.message import RetransmitRequest, RetransmitResponse
from repro.core.retransmit import NotificationArchive, RetransmissionEngine

from ..helpers import gossip, make_node, notification


class TestNotificationArchive:
    def test_store_and_get(self):
        archive = NotificationArchive(5)
        n = notification(1, 1)
        archive.add(n)
        assert archive.get(n.event_id) == n
        assert n.event_id in archive

    def test_fifo_eviction(self):
        archive = NotificationArchive(2)
        ns = [notification(1, s) for s in (1, 2, 3)]
        for n in ns:
            archive.add(n)
        assert archive.get(ns[0].event_id) is None
        assert archive.get(ns[2].event_id) == ns[2]

    def test_add_returns_evicted(self):
        archive = NotificationArchive(1)
        a, b = notification(1, 1), notification(1, 2)
        assert archive.add(a) == []
        assert archive.add(b) == [a]

    def test_duplicate_add_noop(self):
        archive = NotificationArchive(5)
        n = notification(1, 1)
        archive.add(n)
        archive.add(n)
        assert len(archive) == 1

    def test_ids(self):
        archive = NotificationArchive(5)
        archive.add(notification(1, 1))
        assert archive.ids() == (EventId(1, 1),)


class TestRetransmissionEngine:
    def test_selects_missing_only(self):
        engine = RetransmissionEngine(request_max=10)
        delivered = {EventId(1, 1)}
        digest = (EventId(1, 1), EventId(1, 2))
        missing = engine.select_missing(digest, delivered, now=0.0)
        assert missing == [EventId(1, 2)]

    def test_pending_not_re_requested(self):
        engine = RetransmissionEngine(request_max=10, pending_ttl=5.0)
        digest = (EventId(1, 2),)
        assert engine.select_missing(digest, set(), now=0.0) == [EventId(1, 2)]
        assert engine.select_missing(digest, set(), now=1.0) == []

    def test_pending_expires(self):
        engine = RetransmissionEngine(request_max=10, pending_ttl=5.0)
        digest = (EventId(1, 2),)
        engine.select_missing(digest, set(), now=0.0)
        assert engine.select_missing(digest, set(), now=10.0) == [EventId(1, 2)]

    def test_request_cap(self):
        engine = RetransmissionEngine(request_max=2)
        digest = tuple(EventId(1, s) for s in range(1, 10))
        assert len(engine.select_missing(digest, set(), now=0.0)) == 2

    def test_on_received_clears_pending(self):
        engine = RetransmissionEngine(request_max=10, pending_ttl=100.0)
        digest = (EventId(1, 2),)
        engine.select_missing(digest, set(), now=0.0)
        engine.on_received(EventId(1, 2))
        assert engine.select_missing(digest, set(), now=1.0) == [EventId(1, 2)]

    def test_serve_prefers_pending_events_then_archive(self):
        archive = NotificationArchive(5)
        archived = notification(1, 1, payload="archived")
        archive.add(archived)
        pending = [notification(1, 2, payload="pending")]
        found = RetransmissionEngine.serve(
            (EventId(1, 1), EventId(1, 2), EventId(1, 3)), pending, archive
        )
        assert {n.event_id for n in found} == {EventId(1, 1), EventId(1, 2)}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RetransmissionEngine(request_max=-1)
        with pytest.raises(ValueError):
            RetransmissionEngine(request_max=1, pending_ttl=0)


class TestNodeRetransmissionFlow:
    def make_retransmitting_node(self, pid=0, view=(1,), **overrides):
        return make_node(
            pid=pid,
            view=view,
            retransmissions=True,
            digest_implies_delivery=False,
            **overrides,
        )

    def test_digest_triggers_request(self):
        node = self.make_retransmitting_node()
        eid = EventId(9, 1)
        out = node.on_gossip(gossip(sender=5, event_ids=(eid,)), now=1.0)
        assert len(out) == 1
        assert out[0].destination == 5
        request = out[0].message
        assert isinstance(request, RetransmitRequest)
        assert request.event_ids == (eid,)

    def test_request_served_from_archive(self):
        holder = self.make_retransmitting_node(pid=5)
        n = notification(9, 1, payload="data")
        holder.on_gossip(gossip(sender=9, events=(n,)), now=0.5)
        holder.on_tick(now=1.0)  # events flushed; archive retains it
        out = holder.on_retransmit_request(
            RetransmitRequest(0, (n.event_id,)), now=1.5
        )
        assert len(out) == 1
        response = out[0].message
        assert isinstance(response, RetransmitResponse)
        assert response.events[0].payload == "data"

    def test_response_delivers(self):
        node = self.make_retransmitting_node()
        n = notification(9, 1, payload="data")
        node.on_retransmit_response(RetransmitResponse(5, (n,)), now=2.0)
        assert node.has_delivered(n.event_id)
        assert node.stats.retransmits_delivered == 1

    def test_full_pull_roundtrip(self):
        holder = self.make_retransmitting_node(pid=5, view=(0,))
        requester = self.make_retransmitting_node(pid=0, view=(5,))
        n = holder.lpb_cast("payload", now=0.0)
        gossips = [o for o in holder.on_tick(now=1.0)]
        # Simulate the event itself being lost: deliver a digest-only gossip.
        digest_only = gossip(sender=5, event_ids=(n.event_id,))
        requests = requester.on_gossip(digest_only, now=1.0)
        responses = holder.handle_message(0, requests[0].message, now=1.1)
        requester.handle_message(5, responses[0].message, now=1.2)
        assert requester.has_delivered(n.event_id)

    def test_unserveable_request_ignored(self):
        node = self.make_retransmitting_node()
        out = node.on_retransmit_request(
            RetransmitRequest(1, (EventId(42, 42),)), now=1.0
        )
        assert out == []

    def test_lost_request_re_solicited_after_pending_ttl(self):
        # The wire is lossy (that is the paper's premise): a solicitation
        # can vanish.  The pending entry must expire after pending_ttl
        # (4 gossip periods) so a later digest re-triggers the pull.
        node = self.make_retransmitting_node()
        eid = EventId(9, 1)
        digest_only = gossip(sender=5, event_ids=(eid,))
        first = node.on_gossip(digest_only, now=1.0)
        assert isinstance(first[0].message, RetransmitRequest)
        # The request is lost; while the entry is pending, digests naming
        # the same id do not produce a second solicitation...
        assert node.on_gossip(digest_only, now=2.0) == []
        assert node.on_gossip(digest_only, now=4.9) == []
        # ...but once pending_ttl (4 * gossip_period = 4.0) has elapsed,
        # the id is solicited again.
        retry = node.on_gossip(digest_only, now=5.0)
        assert len(retry) == 1
        assert isinstance(retry[0].message, RetransmitRequest)
        assert retry[0].message.event_ids == (eid,)
        assert node.stats.retransmit_requests_sent == 2

    def test_no_requests_when_nothing_missing(self):
        node = self.make_retransmitting_node()
        n = notification(9, 1)
        node.on_gossip(gossip(sender=5, events=(n,)), now=1.0)
        out = node.on_gossip(gossip(sender=5, event_ids=(n.event_id,)), now=2.0)
        assert out == []


class TestArchiveGhosts:
    """Digest-implied deliveries carry no payload and must never enter the
    retransmission archive — an archived ``payload=None`` ghost would later
    be served in place of the real event."""

    def make_hybrid_node(self):
        # digest_implies_delivery and the archive-backed features are
        # mutually exclusive at the config layer; force the combination to
        # pin down the node-level guard independently of that validation.
        node = make_node(view=(1,), retransmissions=True,
                         digest_implies_delivery=False)
        object.__setattr__(node.config, "digest_implies_delivery", True)
        return node

    def test_digest_implied_delivery_not_archived(self):
        node = self.make_hybrid_node()
        eid = EventId(9, 1)
        node.on_gossip(gossip(sender=5, event_ids=(eid,)), now=1.0)
        assert node.has_delivered(eid)   # the digest counted as a delivery
        assert eid not in node.archive   # but no ghost was archived

    def test_real_payload_still_archived(self):
        node = self.make_hybrid_node()
        n = notification(9, 2, payload="data")
        node.on_gossip(gossip(sender=5, events=(n,)), now=1.0)
        assert n.event_id in node.archive
        assert node.archive.get(n.event_id).payload == "data"

    def test_ghost_never_served(self):
        node = self.make_hybrid_node()
        eid = EventId(9, 3)
        node.on_gossip(gossip(sender=5, event_ids=(eid,)), now=1.0)
        out = node.on_retransmit_request(RetransmitRequest(1, (eid,)), now=2.0)
        assert out == []  # nothing to serve: the payload was never received
