"""Tests for the retransmission archive and gossip-pull engine."""

import pytest

from repro.core.ids import EventId
from repro.core.message import RetransmitRequest, RetransmitResponse
from repro.core.retransmit import NotificationArchive, RetransmissionEngine

from ..helpers import gossip, make_node, notification


class TestNotificationArchive:
    def test_store_and_get(self):
        archive = NotificationArchive(5)
        n = notification(1, 1)
        archive.add(n)
        assert archive.get(n.event_id) == n
        assert n.event_id in archive

    def test_fifo_eviction(self):
        archive = NotificationArchive(2)
        ns = [notification(1, s) for s in (1, 2, 3)]
        for n in ns:
            archive.add(n)
        assert archive.get(ns[0].event_id) is None
        assert archive.get(ns[2].event_id) == ns[2]

    def test_add_returns_evicted(self):
        archive = NotificationArchive(1)
        a, b = notification(1, 1), notification(1, 2)
        assert archive.add(a) == []
        assert archive.add(b) == [a]

    def test_duplicate_add_noop(self):
        archive = NotificationArchive(5)
        n = notification(1, 1)
        archive.add(n)
        archive.add(n)
        assert len(archive) == 1

    def test_ids(self):
        archive = NotificationArchive(5)
        archive.add(notification(1, 1))
        assert archive.ids() == (EventId(1, 1),)


class TestRetransmissionEngine:
    def test_selects_missing_only(self):
        engine = RetransmissionEngine(request_max=10)
        delivered = {EventId(1, 1)}
        digest = (EventId(1, 1), EventId(1, 2))
        missing = engine.select_missing(digest, delivered, now=0.0)
        assert missing == [EventId(1, 2)]

    def test_pending_not_re_requested(self):
        engine = RetransmissionEngine(request_max=10, pending_ttl=5.0)
        digest = (EventId(1, 2),)
        assert engine.select_missing(digest, set(), now=0.0) == [EventId(1, 2)]
        assert engine.select_missing(digest, set(), now=1.0) == []

    def test_pending_expires(self):
        engine = RetransmissionEngine(request_max=10, pending_ttl=5.0)
        digest = (EventId(1, 2),)
        engine.select_missing(digest, set(), now=0.0)
        assert engine.select_missing(digest, set(), now=10.0) == [EventId(1, 2)]

    def test_request_cap(self):
        engine = RetransmissionEngine(request_max=2)
        digest = tuple(EventId(1, s) for s in range(1, 10))
        assert len(engine.select_missing(digest, set(), now=0.0)) == 2

    def test_on_received_clears_pending(self):
        engine = RetransmissionEngine(request_max=10, pending_ttl=100.0)
        digest = (EventId(1, 2),)
        engine.select_missing(digest, set(), now=0.0)
        engine.on_received(EventId(1, 2))
        assert engine.select_missing(digest, set(), now=1.0) == [EventId(1, 2)]

    def test_serve_prefers_pending_events_then_archive(self):
        archive = NotificationArchive(5)
        archived = notification(1, 1, payload="archived")
        archive.add(archived)
        pending = [notification(1, 2, payload="pending")]
        found = RetransmissionEngine.serve(
            (EventId(1, 1), EventId(1, 2), EventId(1, 3)), pending, archive
        )
        assert {n.event_id for n in found} == {EventId(1, 1), EventId(1, 2)}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RetransmissionEngine(request_max=-1)
        with pytest.raises(ValueError):
            RetransmissionEngine(request_max=1, pending_ttl=0)


class TestNodeRetransmissionFlow:
    def make_retransmitting_node(self, pid=0, view=(1,), **overrides):
        return make_node(
            pid=pid,
            view=view,
            retransmissions=True,
            digest_implies_delivery=False,
            **overrides,
        )

    def test_digest_triggers_request(self):
        node = self.make_retransmitting_node()
        eid = EventId(9, 1)
        out = node.on_gossip(gossip(sender=5, event_ids=(eid,)), now=1.0)
        assert len(out) == 1
        assert out[0].destination == 5
        request = out[0].message
        assert isinstance(request, RetransmitRequest)
        assert request.event_ids == (eid,)

    def test_request_served_from_archive(self):
        holder = self.make_retransmitting_node(pid=5)
        n = notification(9, 1, payload="data")
        holder.on_gossip(gossip(sender=9, events=(n,)), now=0.5)
        holder.on_tick(now=1.0)  # events flushed; archive retains it
        out = holder.on_retransmit_request(
            RetransmitRequest(0, (n.event_id,)), now=1.5
        )
        assert len(out) == 1
        response = out[0].message
        assert isinstance(response, RetransmitResponse)
        assert response.events[0].payload == "data"

    def test_response_delivers(self):
        node = self.make_retransmitting_node()
        n = notification(9, 1, payload="data")
        node.on_retransmit_response(RetransmitResponse(5, (n,)), now=2.0)
        assert node.has_delivered(n.event_id)
        assert node.stats.retransmits_delivered == 1

    def test_full_pull_roundtrip(self):
        holder = self.make_retransmitting_node(pid=5, view=(0,))
        requester = self.make_retransmitting_node(pid=0, view=(5,))
        n = holder.lpb_cast("payload", now=0.0)
        gossips = [o for o in holder.on_tick(now=1.0)]
        # Simulate the event itself being lost: deliver a digest-only gossip.
        digest_only = gossip(sender=5, event_ids=(n.event_id,))
        requests = requester.on_gossip(digest_only, now=1.0)
        responses = holder.handle_message(0, requests[0].message, now=1.1)
        requester.handle_message(5, responses[0].message, now=1.2)
        assert requester.has_delivered(n.event_id)

    def test_unserveable_request_ignored(self):
        node = self.make_retransmitting_node()
        out = node.on_retransmit_request(
            RetransmitRequest(1, (EventId(42, 42),)), now=1.0
        )
        assert out == []

    def test_lost_request_re_solicited_after_pending_ttl(self):
        # The wire is lossy (that is the paper's premise): a solicitation
        # can vanish.  The pending entry must expire after pending_ttl
        # (4 gossip periods) so a later digest re-triggers the pull.
        node = self.make_retransmitting_node()
        eid = EventId(9, 1)
        digest_only = gossip(sender=5, event_ids=(eid,))
        first = node.on_gossip(digest_only, now=1.0)
        assert isinstance(first[0].message, RetransmitRequest)
        # The request is lost; while the entry is pending, digests naming
        # the same id do not produce a second solicitation...
        assert node.on_gossip(digest_only, now=2.0) == []
        assert node.on_gossip(digest_only, now=4.9) == []
        # ...but once pending_ttl (4 * gossip_period = 4.0) has elapsed,
        # the id is solicited again.
        retry = node.on_gossip(digest_only, now=5.0)
        assert len(retry) == 1
        assert isinstance(retry[0].message, RetransmitRequest)
        assert retry[0].message.event_ids == (eid,)
        assert node.stats.retransmit_requests_sent == 2

    def test_no_requests_when_nothing_missing(self):
        node = self.make_retransmitting_node()
        n = notification(9, 1)
        node.on_gossip(gossip(sender=5, events=(n,)), now=1.0)
        out = node.on_gossip(gossip(sender=5, event_ids=(n.event_id,)), now=2.0)
        assert out == []


class TestReSolicitationUnderChurn:
    """Re-solicitation when the first responder crashes mid-pull.

    The pending-ttl expiry path is pinned above; these tests pin what
    happens *around* it when crash/recover interleaves with the pull: a
    dead responder must not wedge the id forever, a recovered responder
    must still serve from its archive, and per-id deadlines must expire
    independently.
    """

    def make_retransmitting_node(self, pid=0, view=(1,), **overrides):
        return make_node(
            pid=pid,
            view=view,
            retransmissions=True,
            digest_implies_delivery=False,
            **overrides,
        )

    def test_crashed_responder_failover_to_second_digest_sender(self):
        # Solicit from peer 5, which crashes before answering; once the
        # entry expires, a digest from peer 6 must re-route the pull there
        # and the notification must arrive via the second responder.
        requester = self.make_retransmitting_node(pid=0, view=(5, 6))
        survivor = self.make_retransmitting_node(pid=6, view=(0,))
        n = notification(9, 1, payload="data")
        survivor.on_gossip(gossip(sender=9, events=(n,)), now=0.5)
        first = requester.on_gossip(
            gossip(sender=5, event_ids=(n.event_id,)), now=1.0)
        assert first[0].destination == 5  # peer 5 then crashes: no response
        retry = requester.on_gossip(
            gossip(sender=6, event_ids=(n.event_id,)), now=5.5)
        assert len(retry) == 1
        assert retry[0].destination == 6
        responses = survivor.on_retransmit_request(retry[0].message, now=5.6)
        requester.on_retransmit_response(responses[0].message, now=5.7)
        assert requester.has_delivered(n.event_id)
        assert requester.stats.retransmit_requests_sent == 2

    def test_recovered_responder_serves_from_archive(self):
        # The responder crashes after archiving the event and later
        # recovers with its buffers intact (the crash-with-recovery model):
        # a post-recovery solicitation must still be served.
        holder = self.make_retransmitting_node(pid=5)
        n = notification(9, 2, payload="data")
        holder.on_gossip(gossip(sender=9, events=(n,)), now=0.5)
        holder.on_tick(now=1.0)  # flushed to the archive
        # ... crash at t=2, recovery at t=20; state objects survive ...
        out = holder.on_retransmit_request(
            RetransmitRequest(0, (n.event_id,)), now=20.0)
        assert out[0].message.events[0].payload == "data"

    def test_interleaved_deadlines_expire_independently(self):
        # Two pulls started at different times against a responder that
        # crashed: only the older entry has expired at the probe time, so
        # re-solicitation must pick exactly the expired id.
        engine = RetransmissionEngine(request_max=10, pending_ttl=4.0)
        old, young = EventId(1, 1), EventId(2, 1)
        assert engine.select_missing((old,), set(), now=0.0) == [old]
        assert engine.select_missing((young,), set(), now=3.0) == [young]
        # now=5.0: old's deadline (4.0) has passed, young's (7.0) has not.
        assert engine.select_missing((old, young), set(), now=5.0) == [old]
        assert engine.pending_count(now=5.0) == 2

    def test_delivery_during_pending_window_wins_over_retry(self):
        # The event arrives by regular gossip while the pull is pending
        # (the first responder recovered and flushed its buffer): the
        # delivered id must never be re-solicited, even after its old
        # deadline has lapsed.
        node = self.make_retransmitting_node()
        n = notification(9, 3, payload="data")
        digest_only = gossip(sender=5, event_ids=(n.event_id,))
        assert len(node.on_gossip(digest_only, now=1.0)) == 1
        node.on_gossip(gossip(sender=6, events=(n,)), now=2.0)
        assert node.has_delivered(n.event_id)
        assert node.on_gossip(digest_only, now=9.0) == []
        assert node.stats.retransmit_requests_sent == 1

    def test_on_received_for_never_pending_id_is_noop(self):
        # A recovered node replays backlog it never solicited; clearing an
        # id that was never pending must not disturb other entries.
        engine = RetransmissionEngine(request_max=10, pending_ttl=4.0)
        engine.select_missing((EventId(1, 1),), set(), now=0.0)
        engine.on_received(EventId(7, 7))
        assert engine.pending_count(now=1.0) == 1

    def test_expired_entry_does_not_resurrect_on_received(self):
        # Expiry then arrival then a later digest: the id is delivered by
        # then, so the digest must not trigger a third pull.
        node = self.make_retransmitting_node()
        n = notification(9, 4, payload="data")
        digest_only = gossip(sender=5, event_ids=(n.event_id,))
        node.on_gossip(digest_only, now=1.0)        # pull #1, lost
        retry = node.on_gossip(digest_only, now=5.5)  # expired -> pull #2
        assert len(retry) == 1
        node.on_retransmit_response(RetransmitResponse(5, (n,)), now=6.0)
        assert node.on_gossip(digest_only, now=12.0) == []
        assert node.stats.retransmit_requests_sent == 2


class TestArchiveGhosts:
    """Digest-implied deliveries carry no payload and must never enter the
    retransmission archive — an archived ``payload=None`` ghost would later
    be served in place of the real event."""

    def make_hybrid_node(self):
        # digest_implies_delivery and the archive-backed features are
        # mutually exclusive at the config layer; force the combination to
        # pin down the node-level guard independently of that validation.
        node = make_node(view=(1,), retransmissions=True,
                         digest_implies_delivery=False)
        object.__setattr__(node.config, "digest_implies_delivery", True)
        return node

    def test_digest_implied_delivery_not_archived(self):
        node = self.make_hybrid_node()
        eid = EventId(9, 1)
        node.on_gossip(gossip(sender=5, event_ids=(eid,)), now=1.0)
        assert node.has_delivered(eid)   # the digest counted as a delivery
        assert eid not in node.archive   # but no ghost was archived

    def test_real_payload_still_archived(self):
        node = self.make_hybrid_node()
        n = notification(9, 2, payload="data")
        node.on_gossip(gossip(sender=5, events=(n,)), now=1.0)
        assert n.event_id in node.archive
        assert node.archive.get(n.event_id).payload == "data"

    def test_ghost_never_served(self):
        node = self.make_hybrid_node()
        eid = EventId(9, 3)
        node.on_gossip(gossip(sender=5, event_ids=(eid,)), now=1.0)
        out = node.on_retransmit_request(RetransmitRequest(1, (eid,)), now=2.0)
        assert out == []  # nothing to serve: the payload was never received
