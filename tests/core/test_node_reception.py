"""Tests for gossip reception — the three phases of Figure 1(a)."""

import random

from repro.core import LpbcastConfig, LpbcastNode
from repro.core.ids import EventId

from ..helpers import gossip, make_node, notification, unsub


class TestPhase1Unsubscriptions:
    def test_unsubscription_removed_from_view(self):
        node = make_node(view=(2, 3, 4))
        node.on_gossip(gossip(unsubs=(unsub(3),)), now=1.0)
        assert 3 not in node.view
        assert 2 in node.view

    def test_unsubscription_buffered_for_forwarding(self):
        node = make_node(view=(2, 3))
        node.on_gossip(gossip(unsubs=(unsub(3),)), now=1.0)
        assert 3 in node.unsubs

    def test_obsolete_unsubscription_ignored(self):
        node = make_node(view=(2, 3), unsub_ttl=5.0)
        node.on_gossip(gossip(unsubs=(unsub(3, timestamp=0.0),)), now=100.0)
        assert 3 in node.view
        assert 3 not in node.unsubs

    def test_unsubs_buffer_truncated_to_bound(self):
        node = make_node(unsubs_max=3)
        unsubs = tuple(unsub(pid, timestamp=1.0) for pid in range(10, 20))
        node.on_gossip(gossip(unsubs=unsubs), now=1.0)
        assert len(node.unsubs) == 3

    def test_unsubscription_for_unknown_process_still_buffered(self):
        node = make_node(view=(2,))
        node.on_gossip(gossip(unsubs=(unsub(42),)), now=1.0)
        assert 42 in node.unsubs


class TestPhase2Subscriptions:
    def test_new_subscription_enters_view_and_subs(self):
        node = make_node(view=(2,))
        node.on_gossip(gossip(subs=(5,)), now=1.0)
        assert 5 in node.view
        assert 5 in node.subs

    def test_own_id_rejected(self):
        node = make_node(pid=0)
        node.on_gossip(gossip(subs=(0,)), now=1.0)
        assert 0 not in node.view
        assert 0 not in node.subs

    def test_known_subscription_not_re_added_to_subs(self):
        node = make_node(view=(5,))
        node.on_gossip(gossip(subs=(5,)), now=1.0)
        assert 5 not in node.subs

    def test_view_overflow_recycles_evictees_into_subs(self):
        node = make_node(view=(1, 2, 3), view_max=3, fanout=2, subs_max=10)
        node.on_gossip(gossip(subs=(7,)), now=1.0)
        assert len(node.view) == 3
        # One of {1,2,3,7} was evicted and must now be advertised in subs.
        in_subs = set(node.subs)
        evicted = {1, 2, 3, 7} - set(node.view)
        assert evicted <= in_subs

    def test_subs_buffer_truncated(self):
        node = make_node(subs_max=2, view_max=50, fanout=1)
        node.on_gossip(gossip(subs=tuple(range(10, 30))), now=1.0)
        assert len(node.subs) == 2

    def test_buffered_unsubscription_blocks_readdition(self):
        # Death-certificate rule: while 9's unsubscription is buffered, a
        # stale subscription for 9 cannot re-enter the view.
        node = make_node(view=(9,), unsub_ttl=5.0)
        node.on_gossip(gossip(subs=(9,), unsubs=(unsub(9, timestamp=1.0),)), now=1.0)
        assert 9 not in node.view
        assert 9 not in node.subs

    def test_resubscription_accepted_after_certificate_expires(self):
        node = make_node(view=(9,), unsub_ttl=5.0)
        node.on_gossip(gossip(unsubs=(unsub(9, timestamp=1.0),)), now=1.0)
        node.on_tick(now=10.0)  # ttl expires the certificate
        node.on_gossip(gossip(subs=(9,)), now=10.5)
        assert 9 in node.view


class TestPhase3Notifications:
    def test_fresh_notification_delivered(self):
        node = make_node(view=(2,))
        delivered = []
        node.add_delivery_listener(lambda pid, n, now: delivered.append(n))
        n1 = notification(2, 1, "hello")
        node.on_gossip(gossip(events=(n1,)), now=1.0)
        assert delivered == [n1]
        assert node.has_delivered(n1.event_id)

    def test_duplicate_not_redelivered(self):
        node = make_node(view=(2,))
        delivered = []
        node.add_delivery_listener(lambda pid, n, now: delivered.append(n))
        n1 = notification(2, 1)
        node.on_gossip(gossip(events=(n1,)), now=1.0)
        node.on_gossip(gossip(events=(n1,)), now=2.0)
        assert len(delivered) == 1
        assert node.stats.duplicates == 1

    def test_delivered_notification_staged_for_forwarding(self):
        node = make_node(view=(2,))
        n1 = notification(2, 1)
        node.on_gossip(gossip(events=(n1,)), now=1.0)
        assert node.events.contains_key(n1.event_id)

    def test_events_buffer_overflow_drops_randomly(self):
        node = make_node(view=(2,), events_max=3)
        events = tuple(notification(2, seq) for seq in range(1, 10))
        node.on_gossip(gossip(events=events), now=1.0)
        assert len(node.events) == 3
        assert node.stats.events_dropped == 6

    def test_event_ids_bounded_oldest_dropped(self):
        node = make_node(view=(2,), event_ids_max=3)
        events = tuple(notification(2, seq) for seq in range(1, 6))
        node.on_gossip(gossip(events=events), now=1.0)
        # Oldest ids were evicted; a late duplicate of seq 1 is re-delivered.
        assert not node.has_delivered(EventId(2, 1))
        assert node.has_delivered(EventId(2, 5))
        assert node.stats.event_ids_evicted == 2

    def test_digest_implies_delivery_default(self):
        node = make_node(view=(2,))
        eid = EventId(9, 4)
        node.on_gossip(gossip(event_ids=(eid,)), now=1.0)
        assert node.has_delivered(eid)
        assert node.stats.delivered == 1

    def test_digest_delivery_synthetic_not_staged_into_events(self):
        node = make_node(view=(2,))
        node.on_gossip(gossip(event_ids=(EventId(9, 4),)), now=1.0)
        assert len(node.events) == 0

    def test_digest_delivery_disabled(self):
        node = make_node(view=(2,), digest_implies_delivery=False)
        eid = EventId(9, 4)
        node.on_gossip(gossip(event_ids=(eid,)), now=1.0)
        assert not node.has_delivered(eid)

    def test_digest_known_id_not_redelivered(self):
        node = make_node(view=(2,))
        n1 = notification(2, 1)
        node.on_gossip(gossip(events=(n1,)), now=1.0)
        node.on_gossip(gossip(event_ids=(n1.event_id,)), now=2.0)
        assert node.stats.delivered == 1


class TestDispatch:
    def test_unknown_message_type_raises(self):
        node = make_node()
        try:
            node.handle_message(1, object(), now=0.0)
        except TypeError as exc:
            assert "unknown message" in str(exc)
        else:
            raise AssertionError("expected TypeError")

    def test_gossip_counter(self):
        node = make_node(view=(2,))
        node.handle_message(2, gossip(), now=1.0)
        assert node.stats.gossips_received == 1


class TestPublish:
    def test_publisher_delivers_locally(self):
        node = make_node(view=(2,))
        delivered = []
        node.add_delivery_listener(lambda pid, n, now: delivered.append(n))
        n = node.lpb_cast("x", now=0.0)
        assert delivered == [n]
        assert node.has_delivered(n.event_id)
        assert node.events.contains_key(n.event_id)

    def test_sequence_numbers_increase(self):
        node = make_node(view=(2,))
        a = node.lpb_cast(now=0.0)
        b = node.lpb_cast(now=0.0)
        assert b.event_id.seq == a.event_id.seq + 1

    def test_publish_after_unsubscribe_rejected(self):
        node = make_node(view=(2,))
        assert node.try_unsubscribe(now=0.0)
        try:
            node.lpb_cast("x", now=1.0)
        except RuntimeError:
            pass
        else:
            raise AssertionError("expected RuntimeError")
