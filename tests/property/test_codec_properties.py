"""Property-based round-trip tests for the wire codec."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codec import CodecError, from_json, to_json
from repro.core.events import Notification, Unsubscription
from repro.core.ids import EventId
from repro.core.message import (
    EchoMessage,
    GossipMessage,
    ReadyMessage,
    RetransmitRequest,
    RetransmitResponse,
    SubscriptionAck,
    SubscriptionRequest,
)
from repro.pbcast import PbcastData, PbcastDigest, PbcastSolicit

pids = st.integers(min_value=0, max_value=10_000)
seqs = st.integers(min_value=1, max_value=10_000)
event_ids = st.builds(EventId, origin=pids, seq=seqs)

# JSON-representable payloads (None, bools, ints, floats, strings, and
# shallow containers of them).
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
json_payloads = st.one_of(
    json_scalars,
    st.lists(json_scalars, max_size=4),
    st.dictionaries(st.text(max_size=8), json_scalars, max_size=4),
)

# deps pinned empty: dependency metadata rides only the records with causal
# binary forms (gossip / retransmit response); the deps-carrying strategies
# live in tests.property.test_wire_properties next to the causal-tag tests.
notifications = st.builds(
    Notification,
    event_id=event_ids,
    payload=json_payloads,
    created_at=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    deps=st.just(()),
)
unsubs = st.builds(
    Unsubscription, pid=pids,
    timestamp=st.floats(min_value=0, max_value=1e6, allow_nan=False),
)
heartbeats = st.lists(
    st.tuples(pids, st.integers(min_value=0, max_value=10**6)), max_size=5
).map(tuple)

gossips = st.builds(
    GossipMessage,
    sender=pids,
    subs=st.lists(pids, max_size=6).map(tuple),
    unsubs=st.lists(unsubs, max_size=4).map(tuple),
    events=st.lists(notifications, max_size=4).map(tuple),
    event_ids=st.lists(event_ids, max_size=6).map(tuple),
    heartbeats=heartbeats,
)

# payload_digest() values span the full 64-bit range (first 8 bytes of a
# sha256), so the digest strategy must too.
digests = st.integers(min_value=0, max_value=2**64 - 1)

any_message = st.one_of(
    gossips,
    st.builds(EchoMessage, sender=pids, event_id=event_ids, digest=digests),
    st.builds(ReadyMessage, sender=pids, event_id=event_ids, digest=digests),
    st.builds(SubscriptionRequest, subscriber=pids),
    st.builds(SubscriptionAck, contact=pids,
              view_sample=st.lists(pids, max_size=6).map(tuple)),
    st.builds(RetransmitRequest, requester=pids,
              event_ids=st.lists(event_ids, max_size=5).map(tuple)),
    st.builds(RetransmitResponse, responder=pids,
              events=st.lists(notifications, max_size=3).map(tuple)),
    st.builds(PbcastData, sender=pids, notification=notifications,
              hops=st.integers(0, 10)),
    st.builds(PbcastDigest, sender=pids,
              ids=st.lists(event_ids, max_size=5).map(tuple),
              subs=st.lists(pids, max_size=4).map(tuple),
              unsubs=st.lists(unsubs, max_size=3).map(tuple)),
    st.builds(PbcastSolicit, requester=pids,
              ids=st.lists(event_ids, max_size=5).map(tuple)),
)


class TestCodecProperties:
    @settings(max_examples=200, deadline=None)
    @given(message=any_message)
    def test_round_trip_identity(self, message):
        assert from_json(to_json(message)) == message

    @settings(max_examples=100, deadline=None)
    @given(message=any_message)
    def test_wire_form_is_plain_json(self, message):
        import json
        parsed = json.loads(to_json(message))
        assert isinstance(parsed, dict)
        assert "@" in parsed

    @settings(max_examples=100, deadline=None)
    @given(garbage=st.text(max_size=40))
    def test_arbitrary_text_never_crashes(self, garbage):
        try:
            from_json(garbage)
        except CodecError:
            pass  # rejecting is fine; raising anything else is not

    @settings(max_examples=100, deadline=None)
    @given(
        data=st.dictionaries(
            st.text(max_size=6),
            st.one_of(st.integers(), st.text(max_size=6),
                      st.lists(st.integers(), max_size=3)),
            max_size=5,
        )
    )
    def test_arbitrary_dicts_never_crash(self, data):
        from repro.core.codec import decode_message
        try:
            decode_message(data)
        except CodecError:
            pass
