"""Property-based tests of protocol-level invariants.

Feed a node arbitrary (well-formed) gossip sequences and check that the
paper's structural invariants can never be violated: bounded buffers, no
self-knowledge, at-most-once delivery while the id is remembered.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GossipMessage, LpbcastConfig, LpbcastNode
from repro.core.events import Notification, Unsubscription
from repro.core.ids import EventId

pids = st.integers(min_value=0, max_value=20)
seqs = st.integers(min_value=1, max_value=20)
event_ids = st.builds(EventId, origin=pids, seq=seqs)
notifications = st.builds(
    Notification,
    event_id=event_ids,
    payload=st.none(),
    created_at=st.just(0.0),
)
unsubs = st.builds(
    Unsubscription, pid=pids, timestamp=st.floats(min_value=0.0, max_value=5.0)
)
gossips = st.builds(
    GossipMessage,
    sender=pids,
    subs=st.lists(pids, max_size=8).map(tuple),
    unsubs=st.lists(unsubs, max_size=4).map(tuple),
    events=st.lists(notifications, max_size=8).map(tuple),
    event_ids=st.lists(event_ids, max_size=8).map(tuple),
)


def fresh_node(seed: int) -> LpbcastNode:
    config = LpbcastConfig(
        fanout=2, view_max=4, events_max=5, event_ids_max=8,
        subs_max=4, unsubs_max=3,
    )
    return LpbcastNode(0, config, random.Random(seed), initial_view=(1, 2))


class TestNodeInvariants:
    @settings(max_examples=60, deadline=None)
    @given(messages=st.lists(gossips, max_size=25),
           seed=st.integers(0, 2**32 - 1))
    def test_bounds_hold_under_arbitrary_gossip(self, messages, seed):
        node = fresh_node(seed)
        for i, message in enumerate(messages):
            node.on_gossip(message, now=float(i))
            if i % 3 == 0:
                node.on_tick(now=float(i))
            assert len(node.view) <= node.config.view_max
            assert len(node.subs) <= node.config.subs_max
            assert len(node.unsubs) <= node.config.unsubs_max
            assert len(node.events) <= node.config.events_max
            assert len(node.event_ids) <= node.config.event_ids_max

    @settings(max_examples=60, deadline=None)
    @given(messages=st.lists(gossips, max_size=25),
           seed=st.integers(0, 2**32 - 1))
    def test_never_knows_itself(self, messages, seed):
        node = fresh_node(seed)
        for i, message in enumerate(messages):
            node.on_gossip(message, now=float(i))
            assert node.pid not in node.view
            assert node.pid not in node.subs

    @settings(max_examples=60, deadline=None)
    @given(messages=st.lists(gossips, max_size=25),
           seed=st.integers(0, 2**32 - 1))
    def test_deliveries_unique_while_remembered(self, messages, seed):
        node = fresh_node(seed)
        deliveries = []
        node.add_delivery_listener(lambda pid, n, now: deliveries.append(n.event_id))
        for i, message in enumerate(messages):
            node.on_gossip(message, now=float(i))
        # Any id delivered twice must have been evicted from eventIds in
        # between; eviction only happens on overflow, so re-deliveries are
        # bounded by the eviction count.
        counts = {}
        for eid in deliveries:
            counts[eid] = counts.get(eid, 0) + 1
        total_evictions = node.stats.event_ids_evicted
        redelivered = sum(c - 1 for c in counts.values() if c > 1)
        assert redelivered <= total_evictions

    @settings(max_examples=60, deadline=None)
    @given(messages=st.lists(gossips, max_size=15),
           seed=st.integers(0, 2**32 - 1))
    def test_outgoing_messages_never_target_self(self, messages, seed):
        node = fresh_node(seed)
        for i, message in enumerate(messages):
            for out in node.on_gossip(message, now=float(i)):
                assert out.destination != node.pid
            for out in node.on_tick(now=float(i)):
                assert out.destination != node.pid

    @settings(max_examples=60, deadline=None)
    @given(messages=st.lists(gossips, max_size=15),
           seed=st.integers(0, 2**32 - 1))
    def test_gossip_payload_bounded(self, messages, seed):
        node = fresh_node(seed)
        cfg = node.config
        for i, message in enumerate(messages):
            node.on_gossip(message, now=float(i))
            for out in node.on_tick(now=float(i)):
                g = out.message
                assert len(g.subs) <= cfg.subs_max + 1   # + self
                assert len(g.unsubs) <= cfg.unsubs_max
                assert len(g.events) <= cfg.events_max
                assert len(g.event_ids) <= cfg.event_ids_max
