"""Property-based tests for the analytical models."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    InfectionMarkovChain,
    expected_infected_curve,
    infection_probability,
    phi,
    psi,
)

n_values = st.integers(min_value=10, max_value=200)
fanouts = st.integers(min_value=1, max_value=6)
view_sizes = st.integers(min_value=1, max_value=8)
rates = st.floats(min_value=0.0, max_value=0.5)


class TestInfectionProbabilityProperties:
    @given(n=n_values, fanout=fanouts, eps=rates, tau=rates)
    def test_is_a_probability(self, n, fanout, eps, tau):
        p = infection_probability(n, fanout, eps, tau)
        assert 0.0 <= p <= 1.0

    @given(n=n_values, fanout=fanouts, eps=rates, tau=rates)
    def test_perfect_network_upper_bounds(self, n, fanout, eps, tau):
        lossy = infection_probability(n, fanout, eps, tau)
        perfect = infection_probability(n, fanout, 0.0, 0.0)
        assert lossy <= perfect + 1e-12


class TestMarkovProperties:
    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(10, 80), fanout=st.integers(1, 5))
    def test_distribution_normalized_every_round(self, n, fanout):
        chain = InfectionMarkovChain(n, fanout)
        history = chain.round_distributions(6)
        for row in history:
            assert abs(row.sum() - 1.0) < 1e-8

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(10, 80), fanout=st.integers(1, 5))
    def test_expected_curve_monotone_bounded(self, n, fanout):
        curve = InfectionMarkovChain(n, fanout).expected_curve(8)
        assert all(b >= a - 1e-9 for a, b in zip(curve, curve[1:]))
        assert all(1.0 - 1e-9 <= v <= n + 1e-9 for v in curve)


class TestExpectationProperties:
    @given(n=n_values, p=st.floats(min_value=0.001, max_value=0.999),
           rounds=st.integers(0, 30))
    def test_recursion_monotone_bounded(self, n, p, rounds):
        curve = expected_infected_curve(n, p, rounds)
        assert len(curve) == rounds + 1
        assert all(b >= a - 1e-9 for a, b in zip(curve, curve[1:]))
        assert all(1.0 - 1e-9 <= v <= n + 1e-9 for v in curve)


class TestPartitionProperties:
    @given(n=st.integers(10, 150), l=view_sizes,
           i=st.integers(0, 160))
    def test_psi_is_probability(self, n, l, i):
        value = psi(i, n, l)
        assert 0.0 <= value <= 1.0
        assert not math.isnan(value)

    @given(n=st.integers(10, 150), l=view_sizes)
    def test_psi_impossible_sizes_zero(self, n, l):
        for i in range(0, min(l + 1, n)):
            assert psi(i, n, l) == 0.0

    @given(n=st.integers(12, 100), l=st.integers(1, 4),
           r=st.floats(min_value=0.0, max_value=1e6))
    def test_phi_is_probability(self, n, l, r):
        value = phi(n, l, r)
        assert 0.0 <= value <= 1.0

    @given(n=st.integers(12, 100), l=st.integers(1, 4))
    def test_phi_monotone_decreasing_in_rounds(self, n, l):
        assert phi(n, l, 10.0) >= phi(n, l, 1e6) - 1e-12
