"""Property-based tests for the pbcast node."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Notification, Unsubscription
from repro.core.ids import EventId
from repro.pbcast import PbcastConfig, PbcastData, PbcastDigest, PbcastNode, PbcastSolicit

pids = st.integers(min_value=0, max_value=15)
event_ids = st.builds(EventId, origin=pids,
                      seq=st.integers(min_value=1, max_value=10))
notifications = st.builds(Notification, event_id=event_ids,
                          payload=st.none(), created_at=st.just(0.0))

data_messages = st.builds(
    PbcastData, sender=pids, notification=notifications,
    hops=st.integers(min_value=0, max_value=6),
)
digests = st.builds(
    PbcastDigest, sender=pids,
    ids=st.lists(event_ids, max_size=6).map(tuple),
    subs=st.lists(pids, max_size=4).map(tuple),
    unsubs=st.lists(
        st.builds(Unsubscription, pid=pids,
                  timestamp=st.floats(min_value=0, max_value=3)),
        max_size=3,
    ).map(tuple),
)
solicits = st.builds(
    PbcastSolicit, requester=pids,
    ids=st.lists(event_ids, max_size=6).map(tuple),
)
messages = st.one_of(data_messages, digests, solicits)


def fresh_node(seed: int) -> PbcastNode:
    config = PbcastConfig(fanout=2, view_max=4, message_buffer_max=6,
                          event_ids_max=8, solicit_max=4)
    return PbcastNode(0, config, random.Random(seed), initial_view=(1, 2))


class TestPbcastInvariants:
    @settings(max_examples=50, deadline=None)
    @given(msgs=st.lists(messages, max_size=25),
           seed=st.integers(0, 2**32 - 1))
    def test_bounds_hold(self, msgs, seed):
        node = fresh_node(seed)
        for i, message in enumerate(msgs):
            node.handle_message(message.sender if hasattr(message, "sender")
                                else 1, message, now=float(i))
            if i % 3 == 0:
                node.on_tick(now=float(i))
            assert len(node._store) <= node.config.message_buffer_max
            assert len(node.event_ids) <= node.config.event_ids_max
            assert len(node.membership) <= node.config.view_max

    @settings(max_examples=50, deadline=None)
    @given(msgs=st.lists(messages, max_size=20),
           seed=st.integers(0, 2**32 - 1))
    def test_solicits_bounded_and_targeted(self, msgs, seed):
        node = fresh_node(seed)
        for i, message in enumerate(msgs):
            out = node.handle_message(1, message, now=float(i))
            for outgoing in out:
                assert outgoing.destination != node.pid
                if isinstance(outgoing.message, PbcastSolicit):
                    assert len(outgoing.message.ids) <= node.config.solicit_max

    @settings(max_examples=50, deadline=None)
    @given(msgs=st.lists(messages, max_size=20),
           seed=st.integers(0, 2**32 - 1))
    def test_served_data_respects_hop_limit(self, msgs, seed):
        node = fresh_node(seed)
        for i, message in enumerate(msgs):
            out = node.handle_message(1, message, now=float(i))
            for outgoing in out:
                if isinstance(outgoing.message, PbcastData):
                    assert outgoing.message.hops <= node.config.hop_limit

    @settings(max_examples=50, deadline=None)
    @given(msgs=st.lists(messages, max_size=20),
           seed=st.integers(0, 2**32 - 1))
    def test_digest_ids_are_known(self, msgs, seed):
        # Everything a node gossips about, it has actually stored.
        node = fresh_node(seed)
        for i, message in enumerate(msgs):
            node.handle_message(1, message, now=float(i))
            for outgoing in node.on_tick(now=float(i)):
                if isinstance(outgoing.message, PbcastDigest):
                    for event_id in outgoing.message.ids:
                        assert event_id in node._store
