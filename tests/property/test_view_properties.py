"""Property-based tests for partial views."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core.view import PartialView, WeightedPartialView

pids = st.integers(min_value=0, max_value=40)
pid_lists = st.lists(pids, max_size=60)
bounds = st.integers(min_value=0, max_value=15)
seeds = st.integers(min_value=0, max_value=2**32 - 1)
view_classes = st.sampled_from([PartialView, WeightedPartialView])


class TestViewInvariants:
    @given(cls=view_classes, owner=pids, additions=pid_lists,
           bound=bounds, seed=seeds)
    def test_owner_never_in_view(self, cls, owner, additions, bound, seed):
        view = cls(owner, bound, random.Random(seed))
        for pid in additions:
            view.add(pid)
        view.truncate()
        assert owner not in view

    @given(cls=view_classes, owner=pids, additions=pid_lists,
           bound=bounds, seed=seeds)
    def test_bound_holds_after_truncate(self, cls, owner, additions, bound, seed):
        view = cls(owner, bound, random.Random(seed))
        for pid in additions:
            view.add(pid)
        view.truncate()
        assert len(view) <= bound

    @given(cls=view_classes, owner=pids, additions=pid_lists,
           bound=bounds, seed=seeds)
    def test_no_duplicates(self, cls, owner, additions, bound, seed):
        view = cls(owner, bound, random.Random(seed))
        for pid in additions:
            view.add(pid)
        contents = list(view)
        assert len(contents) == len(set(contents))

    @given(cls=view_classes, owner=pids, additions=pid_lists,
           bound=bounds, seed=seeds,
           fanout=st.integers(min_value=1, max_value=10))
    def test_gossip_targets_are_view_members(self, cls, owner, additions,
                                             bound, seed, fanout):
        view = cls(owner, bound, random.Random(seed))
        for pid in additions:
            view.add(pid)
        view.truncate()
        targets = view.choose_gossip_targets(fanout)
        assert len(targets) == min(fanout, len(view))
        assert len(set(targets)) == len(targets)
        assert set(targets) <= set(view)

    @given(owner=pids, additions=pid_lists, bound=bounds, seed=seeds)
    def test_weighted_truncation_evicts_maximal_weight(self, owner, additions,
                                                       bound, seed):
        view = WeightedPartialView(owner, bound, random.Random(seed))
        for pid in additions:
            view.add(pid)
            view.note_awareness(pid)  # weights vary with re-adds
        if len(view) > bound:
            max_weight = max(view.weight_of(p) for p in view)
            evicted = view.truncate()
            # The first evictee must have carried the maximal weight.
            assert all(
                view.weight_of(p) <= max_weight for p in view
            )
            assert evicted  # something was evicted
