"""Property-based tests for the binary wire codec and frame layer.

Reuses the message strategies of :mod:`tests.property.test_codec_properties`
(extended with the logger messages and pub/sub envelopes, so every binary
tag is generated) and checks two total properties: every generated message
round-trips bit-exactly through both codecs, and *no* byte string — random
or a truncated/mutated valid encoding — ever raises anything but
:class:`~repro.core.codec.CodecError`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codec import CodecError, from_json, to_json
from repro.core.events import Notification
from repro.core.message import GossipMessage, RetransmitResponse
from repro.loggers.messages import (
    LogUpload,
    LogUploadAck,
    RecoveryRequest,
    RecoveryResponse,
)
from repro.pubsub.peer import TopicEnvelope
from repro.wire import (
    decode_binary,
    decode_frame,
    encode_binary,
    encode_frame,
    pack_messages,
    unpack_messages,
)

from .test_codec_properties import (
    any_message as core_messages,
    event_ids,
    gossips,
    heartbeats,
    json_payloads,
    notifications,
    pids,
    unsubs,
)
from repro.wire.binary import TAG_GOSSIP_CAUSAL, TAG_RETR_RESPONSE_CAUSAL

logger_messages = st.one_of(
    st.builds(LogUpload, sender=pids, notification=notifications),
    st.builds(LogUploadAck, logger=pids, event_id=event_ids),
    st.builds(RecoveryRequest, requester=pids,
              frontier=st.lists(event_ids, max_size=5).map(tuple)),
    st.builds(RecoveryResponse, logger=pids,
              events=st.lists(notifications, max_size=3).map(tuple),
              complete=st.booleans()),
)

envelopes = st.builds(TopicEnvelope, topic=st.text(max_size=12),
                      inner=st.one_of(gossips, logger_messages))

#: Every message type carrying a binary tag.
any_wire_message = st.one_of(core_messages, logger_messages, envelopes)

# -- causal dependency metadata ----------------------------------------------
# Only gossip and retransmit responses carry deps on the wire (the causal
# tags 0x10/0x11); every other notification-bearing record ships the base
# 3-field form, so these strategies attach deps to exactly those two types.
causal_notifications = st.builds(
    Notification,
    event_id=event_ids,
    payload=json_payloads,
    created_at=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    deps=st.lists(event_ids, max_size=4).map(tuple),
)
causal_gossips = st.builds(
    GossipMessage,
    sender=pids,
    subs=st.lists(pids, max_size=4).map(tuple),
    unsubs=st.lists(unsubs, max_size=3).map(tuple),
    events=st.lists(causal_notifications, min_size=1, max_size=4).map(tuple),
    event_ids=st.lists(event_ids, max_size=5).map(tuple),
    heartbeats=heartbeats,
)
causal_responses = st.builds(
    RetransmitResponse,
    responder=pids,
    events=st.lists(causal_notifications, min_size=1, max_size=3).map(tuple),
)
causal_messages = st.one_of(causal_gossips, causal_responses)


class TestBinaryRoundTrip:
    @settings(max_examples=300, deadline=None)
    @given(message=any_wire_message)
    def test_binary_round_trip_identity(self, message):
        assert decode_binary(encode_binary(message)) == message

    @settings(max_examples=150, deadline=None)
    @given(message=any_wire_message)
    def test_binary_agrees_with_json_codec(self, message):
        # Both codecs must reconstruct the same object from their own wire
        # forms — the two formats are interchangeable behind the version
        # byte, so a message may cross one leg as JSON and the next as
        # binary.
        assert decode_binary(encode_binary(message)) \
            == from_json(to_json(message))

    @settings(max_examples=100, deadline=None)
    @given(messages=st.lists(any_wire_message, max_size=6), sender=pids)
    def test_frame_round_trip_both_formats(self, messages, sender):
        for fmt in ("binary", "json"):
            got_sender, got = decode_frame(
                encode_frame(sender, messages, fmt=fmt)
            )
            assert got_sender == sender
            assert got == messages

    @settings(max_examples=100, deadline=None)
    @given(messages=st.lists(any_wire_message, max_size=6))
    def test_cross_shard_blob_round_trip(self, messages):
        assert unpack_messages(pack_messages(messages)) == messages


class TestAdversarialInput:
    @settings(max_examples=300, deadline=None)
    @given(garbage=st.binary(max_size=60))
    def test_random_bytes_never_crash_decode_binary(self, garbage):
        try:
            decode_binary(garbage)
        except CodecError:
            pass  # rejecting is fine; any other exception is a bug

    @settings(max_examples=300, deadline=None)
    @given(garbage=st.binary(max_size=60))
    def test_random_bytes_never_crash_decode_frame(self, garbage):
        try:
            decode_frame(garbage)
        except CodecError:
            pass

    @settings(max_examples=300, deadline=None)
    @given(garbage=st.binary(max_size=60))
    def test_random_bytes_never_crash_unpack_messages(self, garbage):
        try:
            unpack_messages(bytes([0x02]) + garbage)
        except CodecError:
            pass

    @settings(max_examples=150, deadline=None)
    @given(message=any_wire_message, data=st.data())
    def test_mutated_encodings_never_crash(self, message, data):
        blob = bytearray(encode_binary(message))
        if blob:
            index = data.draw(st.integers(0, len(blob) - 1))
            blob[index] = data.draw(st.integers(0, 255))
        try:
            decode_binary(bytes(blob))
        except CodecError:
            pass

    @settings(max_examples=150, deadline=None)
    @given(message=any_wire_message, cut=st.integers(0, 200))
    def test_truncated_encodings_never_crash(self, message, cut):
        blob = encode_binary(message)
        if cut >= len(blob):
            return
        try:
            decode_binary(blob[:cut])
        except CodecError:
            pass


class TestCausalMetadataWire:
    """The dependency-carrying records (tags 0x10/0x11) under the same
    total properties as every other tag: exact round trips, cross-codec
    agreement, and graceful rejection of every malformed byte string."""

    @settings(max_examples=300, deadline=None)
    @given(message=causal_messages)
    def test_causal_round_trip_identity(self, message):
        assert decode_binary(encode_binary(message)) == message

    @settings(max_examples=150, deadline=None)
    @given(message=causal_messages)
    def test_causal_binary_agrees_with_json_codec(self, message):
        assert decode_binary(encode_binary(message)) \
            == from_json(to_json(message))

    @settings(max_examples=200, deadline=None)
    @given(message=causal_messages)
    def test_causal_tag_selected_iff_any_deps(self, message):
        # Deps-free messages must keep their pre-causal encoding — byte
        # compatibility with every pinned golden vector — while any carried
        # dep must switch the record to its causal tag.
        tag = encode_binary(message)[0]
        causal_tags = (TAG_GOSSIP_CAUSAL, TAG_RETR_RESPONSE_CAUSAL)
        if any(n.deps for n in message.events):
            assert tag in causal_tags
        else:
            assert tag not in causal_tags

    @settings(max_examples=60, deadline=None)
    @given(message=causal_messages)
    def test_causal_every_prefix_truncation_raises_codec_error(self, message):
        # The every-prefix pattern from tests/wire/test_binary_codec.py: no
        # proper prefix of a causal record may decode (or crash) — the
        # delta-encoded dep runs must not leave a shorter valid record
        # embedded in a longer one.
        blob = encode_binary(message)
        for cut in range(len(blob)):
            with pytest.raises(CodecError):
                decode_binary(blob[:cut])

    @settings(max_examples=150, deadline=None)
    @given(message=causal_messages, data=st.data())
    def test_causal_mutated_encodings_never_crash(self, message, data):
        blob = bytearray(encode_binary(message))
        index = data.draw(st.integers(0, len(blob) - 1))
        blob[index] = data.draw(st.integers(0, 255))
        try:
            decode_binary(bytes(blob))
        except CodecError:
            pass
