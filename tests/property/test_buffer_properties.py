"""Property-based tests for the bounded buffers (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buffers import (
    CompactEventIdDigest,
    FifoBuffer,
    RandomDropBuffer,
)
from repro.core.ids import EventId

items = st.lists(st.integers(min_value=0, max_value=50), max_size=60)
capacities = st.integers(min_value=0, max_value=20)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestRandomDropBufferProperties:
    @given(items=items, capacity=capacities, seed=seeds)
    def test_bound_always_holds_after_truncate(self, items, capacity, seed):
        buf = RandomDropBuffer(capacity, random.Random(seed))
        buf.add_all(items)
        buf.truncate()
        assert len(buf) <= capacity

    @given(items=items, capacity=capacities, seed=seeds)
    def test_no_duplicates_ever(self, items, capacity, seed):
        buf = RandomDropBuffer(capacity, random.Random(seed))
        buf.add_all(items)
        contents = list(buf)
        assert len(contents) == len(set(contents))

    @given(items=items, capacity=capacities, seed=seeds)
    def test_truncate_partitions_content(self, items, capacity, seed):
        buf = RandomDropBuffer(capacity, random.Random(seed))
        buf.add_all(items)
        before = set(buf)
        evicted = buf.truncate()
        after = set(buf)
        assert after | set(evicted) == before
        assert after.isdisjoint(evicted)

    @given(items=items, seed=seeds)
    def test_unbounded_add_preserves_all(self, items, seed):
        buf = RandomDropBuffer(1000, random.Random(seed))
        buf.add_all(items)
        assert set(buf) == set(items)

    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["add", "discard", "truncate"]),
                      st.integers(0, 30)),
            max_size=80,
        ),
        capacity=capacities,
        seed=seeds,
    )
    def test_index_consistency_under_mixed_operations(self, ops, capacity, seed):
        buf = RandomDropBuffer(capacity, random.Random(seed))
        model = set()
        for op, value in ops:
            if op == "add":
                buf.add(value)
                model.add(value)
            elif op == "discard":
                buf.discard(value)
                model.discard(value)
            else:
                for evicted in buf.truncate():
                    model.discard(evicted)
            assert set(buf) == model
            for item in model:
                assert item in buf


class TestFifoBufferProperties:
    @given(items=items, capacity=capacities)
    def test_bound_holds(self, items, capacity):
        buf = FifoBuffer(capacity)
        buf.add_all(items)
        assert len(buf) <= capacity

    @staticmethod
    def reference_model(items, capacity):
        """Ordered-set-with-capacity reference: re-adding an item evicted
        earlier re-inserts it at the back."""
        content, evicted = [], []
        for item in items:
            if item not in content:
                content.append(item)
            while len(content) > capacity:
                evicted.append(content.pop(0))
        return content, evicted

    @given(items=items, capacity=st.integers(min_value=1, max_value=20))
    def test_matches_reference_content(self, items, capacity):
        buf = FifoBuffer(capacity)
        buf.add_all(items)
        expected, _ = self.reference_model(items, capacity)
        assert list(buf.snapshot()) == expected

    @given(items=items, capacity=capacities)
    def test_matches_reference_evictions(self, items, capacity):
        buf = FifoBuffer(capacity)
        evicted = buf.add_all(items)
        _, expected = self.reference_model(items, capacity)
        assert evicted == expected


event_ids = st.tuples(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=1, max_value=30),
).map(lambda t: EventId(*t))


class TestCompactDigestProperties:
    @given(ids=st.lists(event_ids, max_size=60))
    def test_never_forgets_without_eviction(self, ids):
        digest = CompactEventIdDigest(max_out_of_order=10_000)
        seen = set()
        for event_id in ids:
            digest.add(event_id)
            seen.add(event_id)
            for known in seen:
                assert known in digest

    @given(ids=st.lists(event_ids, max_size=60))
    def test_eviction_only_over_approximates(self, ids):
        # With a tight budget the digest may claim extra ids as delivered
        # (folding), but must never lose one it actually recorded.
        digest = CompactEventIdDigest(max_out_of_order=3)
        seen = set()
        for event_id in ids:
            digest.add(event_id)
            seen.add(event_id)
        for event_id in seen:
            assert event_id in digest

    @given(ids=st.lists(event_ids, max_size=60),
           budget=st.integers(min_value=0, max_value=8))
    def test_out_of_order_budget_respected(self, ids, budget):
        digest = CompactEventIdDigest(max_out_of_order=budget)
        for event_id in ids:
            digest.add(event_id)
        assert len(digest._insertion_order) <= budget
