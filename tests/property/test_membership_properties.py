"""Property-based tests for the membership layer."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Unsubscription
from repro.membership import PartialViewMembership

pids = st.integers(min_value=0, max_value=25)
timestamps = st.floats(min_value=0.0, max_value=20.0)
unsubs = st.builds(Unsubscription, pid=pids, timestamp=timestamps)

membership_updates = st.lists(
    st.tuples(
        st.lists(pids, max_size=6).map(tuple),       # subs
        st.lists(unsubs, max_size=3).map(tuple),      # unsubs
        st.floats(min_value=0.0, max_value=30.0),     # now
    ),
    max_size=30,
)


def fresh_layer(seed: int, weighted: bool = False) -> PartialViewMembership:
    return PartialViewMembership(
        owner=0, view_max=5, subs_max=4, unsubs_max=3, unsub_ttl=10.0,
        rng=random.Random(seed), weighted=weighted,
        initial_view=(1, 2),
    )


class TestMembershipInvariants:
    @settings(max_examples=60, deadline=None)
    @given(updates=membership_updates, seed=st.integers(0, 2**32 - 1),
           weighted=st.booleans())
    def test_bounds_and_self_exclusion(self, updates, seed, weighted):
        layer = fresh_layer(seed, weighted)
        for subs, unsub_batch, now in updates:
            layer.apply_membership(subs, unsub_batch, now)
            assert len(layer.view) <= 5
            assert len(layer.subs) <= 4
            assert len(layer.unsubs) <= 3
            assert 0 not in layer.view
            assert 0 not in layer.subs

    @settings(max_examples=60, deadline=None)
    @given(updates=membership_updates, seed=st.integers(0, 2**32 - 1))
    def test_buffered_unsub_never_coexists_with_view_entry(self, updates, seed):
        # The death-certificate rule: a pid cannot simultaneously be in the
        # view and in the unsubscription buffer after any update batch.
        layer = fresh_layer(seed)
        for subs, unsub_batch, now in updates:
            layer.apply_membership(subs, unsub_batch, now)
            for pid in layer.unsubs:
                assert pid not in layer.view

    @settings(max_examples=60, deadline=None)
    @given(updates=membership_updates, seed=st.integers(0, 2**32 - 1))
    def test_payload_well_formed(self, updates, seed):
        layer = fresh_layer(seed)
        for subs, unsub_batch, now in updates:
            layer.apply_membership(subs, unsub_batch, now)
            payload_subs, payload_unsubs = layer.membership_payload(now)
            assert len(payload_subs) == len(set(payload_subs))
            assert 0 in payload_subs            # self-advertisement
            assert len(payload_unsubs) <= 3

    @settings(max_examples=60, deadline=None)
    @given(updates=membership_updates, seed=st.integers(0, 2**32 - 1),
           fanout=st.integers(1, 6))
    def test_targets_always_valid(self, updates, seed, fanout):
        layer = fresh_layer(seed)
        for subs, unsub_batch, now in updates:
            layer.apply_membership(subs, unsub_batch, now)
            targets = layer.gossip_targets(fanout)
            assert len(targets) == min(fanout, len(layer.view))
            assert len(set(targets)) == len(targets)
            assert all(t in layer.view for t in targets)
