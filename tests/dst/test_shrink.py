"""The shrinker: minimisation with injected predicates and the real oracle."""

from repro.dst import ScenarioSpec, generate_spec, shrink_spec
from repro.faults import FaultPlan


def big_spec():
    plan = (FaultPlan().drop(0.05).duplicate(0.05)
            .crash(3, at=2).pause(5, at=4, duration=2))
    return ScenarioSpec(seed=9, n=32, rounds=20, publishes=6,
                        loss_rate=0.1, retransmissions=True, plan=plan)


class TestShrinkWithInjectedPredicate:
    def test_always_failing_reaches_the_floor(self):
        # A predicate that accepts everything lets the shrinker run to its
        # fixpoint: minimum sizes, no faults, minimal workload.
        result = shrink_spec(big_spec(), "invariant:x",
                             is_failing=lambda spec: True)
        assert result.spec.n == 4
        assert result.spec.rounds == 2
        assert result.spec.publishes == 1
        assert result.spec.plan.is_empty()
        assert result.spec.loss_rate == 0.0
        assert not result.spec.retransmissions

    def test_never_failing_keeps_the_original(self):
        result = shrink_spec(big_spec(), "invariant:x",
                             is_failing=lambda spec: False)
        assert result.spec == result.original
        assert result.accepted == 0

    def test_predicate_constraints_respected(self):
        # Failure requires at least 16 processes: the shrinker must stop
        # exactly at the boundary instead of overshooting past it.
        result = shrink_spec(big_spec(), "invariant:x",
                             is_failing=lambda spec: spec.n >= 16)
        assert result.spec.n == 16

    def test_seed_never_changes(self):
        result = shrink_spec(big_spec(), "invariant:x",
                             is_failing=lambda spec: True)
        assert result.spec.seed == big_spec().seed

    def test_attempt_budget_bounds_work(self):
        calls = []

        def count(spec):
            calls.append(spec)
            return True

        shrink_spec(big_spec(), "invariant:x", is_failing=count,
                    max_attempts=3)
        assert len(calls) <= 3

    def test_every_candidate_is_valid(self):
        seen = []

        def record(spec):
            spec.validate()
            seen.append(spec)
            return len(seen) % 2 == 0  # alternate, exercising both branches

        shrink_spec(big_spec(), "invariant:x", is_failing=record,
                    max_attempts=40)
        assert seen


class TestShrinkWithRealOracle:
    def test_planted_bug_shrinks_to_minimum(self):
        # double-delivery fails on every serial run, so the true minimum is
        # the floor spec; the oracle's invariant fast path keeps this quick.
        spec = generate_spec(3, max_n=20, max_rounds=14,
                             mutation="double-delivery")
        result = shrink_spec(spec, "invariant:no-duplicate-delivery")
        assert result.spec.n == 4
        assert result.spec.rounds == 2
        assert result.spec.plan.is_empty()
        assert result.spec.size() < spec.size()
