"""Scenario specs: generation determinism, serialization, validation."""

import pytest

from repro.dst import (
    MIN_N,
    ScenarioSpec,
    generate_spec,
    restrict_plan,
    spec_seeds,
)
from repro.faults import FaultPlan


class TestGenerateSpec:
    def test_same_seed_same_spec(self):
        assert generate_spec(7) == generate_spec(7)

    def test_different_seeds_differ(self):
        specs = {generate_spec(seed).describe() for seed in range(10)}
        assert len(specs) > 1

    def test_generated_specs_validate(self):
        for seed in range(30):
            generate_spec(seed).validate()

    def test_bounds_respected(self):
        for seed in range(30):
            spec = generate_spec(seed, max_n=20, max_rounds=12)
            assert 8 <= spec.n <= 20
            assert 10 <= spec.rounds <= 12
            assert 1 <= spec.publishes <= spec.rounds

    def test_generator_explores_fault_plans(self):
        plans = [generate_spec(seed).plan.is_empty() for seed in range(30)]
        assert any(plans) and not all(plans)

    def test_mutation_passes_through(self):
        spec = generate_spec(1, mutation="double-delivery")
        assert spec.mutation == "double-delivery"

    def test_tiny_ranges_rejected(self):
        with pytest.raises(ValueError):
            generate_spec(0, max_n=4)
        with pytest.raises(ValueError):
            generate_spec(0, max_rounds=5)

    def test_spec_seeds_deterministic_and_distinct(self):
        seeds = spec_seeds(0, 10)
        assert seeds == spec_seeds(0, 10)
        assert len(set(seeds)) == 10


class TestByzantineFamily:
    def test_same_seed_same_spec(self):
        assert generate_spec(7, byzantine=True) == \
            generate_spec(7, byzantine=True)

    def test_byzantine_specs_pair_liars_with_double_echo(self):
        for seed in range(15):
            spec = generate_spec(seed, byzantine=True)
            spec.validate()
            assert spec.double_echo
            assert spec.plan.byzantine_pids(), spec.describe()
            assert "double-echo" in spec.describe()

    def test_byzantine_family_leaves_plain_seeds_untouched(self):
        # The adversarial family derives from its own rng streams, so
        # enabling it cannot shift what plain seeds generate.
        assert generate_spec(7) == generate_spec(7, byzantine=False)
        assert generate_spec(7, byzantine=True) != generate_spec(7)

    def test_double_echo_round_trips(self):
        for seed in range(5):
            spec = generate_spec(seed, byzantine=True)
            rebuilt = ScenarioSpec.from_json(spec.to_json())
            assert rebuilt == spec
            assert rebuilt.double_echo

    def test_double_echo_config_uses_majority_thresholds(self):
        spec = generate_spec(3, byzantine=True)
        cfg = spec.config()
        assert cfg.double_echo
        assert not cfg.digest_implies_delivery
        assert cfg.echo_threshold == spec.n // 2 + 1
        assert cfg.ready_threshold == spec.n // 2 + 1

    def test_double_echo_conflicts_with_retransmissions(self):
        spec = ScenarioSpec(seed=0, n=8, rounds=10, double_echo=True,
                            retransmissions=True)
        with pytest.raises(ValueError, match="retransmissions"):
            spec.validate()

    def test_byzantine_plan_targets_validated(self):
        plan = FaultPlan().equivocate(99, rate=0.5)
        with pytest.raises(ValueError, match="unknown pid"):
            ScenarioSpec(seed=0, n=8, rounds=10, plan=plan).validate()
        plan = FaultPlan().forge_digest(1, victim=99, rate=0.5)
        with pytest.raises(ValueError, match="unknown victim"):
            ScenarioSpec(seed=0, n=8, rounds=10, plan=plan).validate()


class TestCausalFamily:
    def test_same_seed_same_spec(self):
        assert generate_spec(7, causal=True) == generate_spec(7, causal=True)

    def test_causal_specs_enable_the_ordering_layer(self):
        for seed in range(15):
            spec = generate_spec(seed, causal=True)
            spec.validate()
            assert spec.causal
            assert not spec.double_echo
            assert spec.publishes >= 2, "concurrency needs >=2 publishers"
            assert "causal(holdback=" in spec.describe()
            cfg = spec.config()
            assert cfg.causal_delivery
            assert not cfg.digest_implies_delivery
            assert cfg.causal_holdback_max == spec.causal_holdback_max

    def test_causal_family_leaves_plain_seeds_untouched(self):
        assert generate_spec(7) == generate_spec(7, causal=False)
        assert generate_spec(7, causal=True) != generate_spec(7)
        assert generate_spec(7, causal=True) != \
            generate_spec(7, byzantine=True)

    def test_causal_spec_round_trips(self):
        for seed in range(5):
            spec = generate_spec(seed, causal=True)
            rebuilt = ScenarioSpec.from_json(spec.to_json())
            assert rebuilt == spec
            assert rebuilt.causal
            assert rebuilt.causal_holdback_max == spec.causal_holdback_max

    def test_family_explores_small_holdback_bounds(self):
        # The eviction path (and the holdback-bound invariant) only ever
        # fires when the bound is small; the family must sample such bounds.
        bounds = {generate_spec(seed, causal=True).causal_holdback_max
                  for seed in range(30)}
        assert any(bound <= 8 for bound in bounds)
        assert len(bounds) > 1

    def test_byzantine_and_causal_mutually_exclusive(self):
        with pytest.raises(ValueError, match="disjoint"):
            generate_spec(0, byzantine=True, causal=True)

    def test_causal_conflicts_with_double_echo(self):
        spec = ScenarioSpec(seed=0, n=8, rounds=10, causal=True,
                            double_echo=True)
        with pytest.raises(ValueError, match="mutually exclusive"):
            spec.validate()

    def test_holdback_bound_validated(self):
        spec = ScenarioSpec(seed=0, n=8, rounds=10, causal=True,
                            causal_holdback_max=0)
        with pytest.raises(ValueError, match="causal_holdback_max"):
            spec.validate()


class TestSerialization:
    def test_json_round_trip(self):
        for seed in range(10):
            spec = generate_spec(seed)
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_unknown_format_rejected(self):
        data = generate_spec(0).to_dict()
        data["format"] = "repro-dst-spec/999"
        with pytest.raises(ValueError, match="format"):
            ScenarioSpec.from_dict(data)

    def test_from_dict_validates(self):
        data = generate_spec(0).to_dict()
        data["n"] = 1
        with pytest.raises(ValueError):
            ScenarioSpec.from_dict(data)


class TestValidation:
    def test_minimum_sizes(self):
        with pytest.raises(ValueError):
            ScenarioSpec(seed=0, n=MIN_N - 1, rounds=5).validate()
        with pytest.raises(ValueError):
            ScenarioSpec(seed=0, n=8, rounds=1).validate()

    def test_publishes_beyond_horizon(self):
        with pytest.raises(ValueError):
            ScenarioSpec(seed=0, n=8, rounds=5, publishes=6).validate()

    def test_plan_targets_must_exist(self):
        plan = FaultPlan().crash(99, at=2)
        with pytest.raises(ValueError, match="unknown pid"):
            ScenarioSpec(seed=0, n=8, rounds=5, plan=plan).validate()

    def test_config_derivation_consistent(self):
        spec = ScenarioSpec(seed=0, n=8, rounds=5, retransmissions=True)
        cfg = spec.config()
        assert cfg.retransmissions and not cfg.digest_implies_delivery
        cfg = ScenarioSpec(seed=0, n=8, rounds=5).config()
        assert not cfg.retransmissions and cfg.digest_implies_delivery


class TestRestrictPlan:
    def test_drops_faults_targeting_removed_pids(self):
        plan = (FaultPlan().crash(2, at=1).crash(9, at=1)
                .pause(8, at=1, duration=2))
        restricted = restrict_plan(plan, 5)
        assert [c.pid for c in restricted.crashes] == [2]
        assert not restricted.pauses

    def test_partitions_intersected(self):
        plan = FaultPlan().partition((0, 1, 8), (2, 9), start=1, heal=4)
        restricted = restrict_plan(plan, 5)
        assert len(restricted.partitions) == 1
        assert restricted.partitions[0].side_a == (0, 1)
        assert restricted.partitions[0].side_b == (2,)

    def test_partition_dropped_when_side_empties(self):
        plan = FaultPlan().partition((0, 1), (8, 9), start=1, heal=4)
        assert restrict_plan(plan, 5).is_empty()

    def test_shrinking_n_applies_restriction(self):
        plan = FaultPlan().crash(9, at=1)
        spec = ScenarioSpec(seed=0, n=12, rounds=5, plan=plan)
        smaller = spec.with_overrides(n=6)
        assert smaller.plan.is_empty()
        smaller.validate()

    def test_byzantine_faults_restricted_with_their_targets(self):
        plan = (FaultPlan()
                .equivocate(2, rate=0.5)
                .equivocate(9, rate=0.5)
                .forge_digest(3, victim=8, rate=0.5)   # victim leaves range
                .replay_stale(4, rate=0.5)
                .poison_view(9, rate=0.5))
        restricted = restrict_plan(plan, 5)
        assert [f.pid for f in restricted.equivocations] == [2]
        assert not restricted.forges
        assert [f.pid for f in restricted.replays] == [4]
        assert not restricted.poisons
