"""Campaigns, artifacts, replay (in-process and fresh-process), self-test."""

import json
import os
import subprocess
import sys

import pytest

from repro.dst import (
    build_artifact,
    load_artifact,
    replay_artifact,
    run_campaign,
    run_self_test,
)

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src")


def failing_campaign(tmp_path):
    return run_campaign(1, 3, max_n=16, max_rounds=12,
                        mutation="double-delivery", stop_after=1,
                        artifact_dir=str(tmp_path))


class TestCampaign:
    def test_clean_campaign_passes(self):
        result = run_campaign(2026, 3, max_n=16, max_rounds=12)
        assert result.ok
        assert result.checked == 3

    def test_campaign_is_deterministic(self):
        a = run_campaign(2026, 3, max_n=16, max_rounds=12)
        b = run_campaign(2026, 3, max_n=16, max_rounds=12)
        assert a.ok == b.ok and a.checked == b.checked

    def test_failing_campaign_reports_and_writes_artifacts(self, tmp_path):
        result = failing_campaign(tmp_path)
        assert not result.ok
        case = result.cases[0]
        assert case.signature.startswith("invariant:")
        assert case.artifact_path is not None
        assert os.path.exists(case.artifact_path)

    def test_no_shrink_keeps_original(self):
        result = run_campaign(1, 3, max_n=16, max_rounds=12,
                              mutation="double-delivery", shrink=False,
                              stop_after=1)
        case = result.cases[0]
        assert case.shrunk.spec == case.original


class TestArtifacts:
    def test_artifact_round_trips_through_disk(self, tmp_path):
        case = failing_campaign(tmp_path).cases[0]
        data = load_artifact(case.artifact_path)
        assert data == build_artifact(case)
        assert data["failure"]["signature"] == case.signature
        assert set(data["fingerprints"]) == {"serial", "sharded"}

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else/1"}))
        with pytest.raises(ValueError, match="format"):
            load_artifact(str(path))

    def test_replay_reproduces_bit_identically(self, tmp_path):
        case = failing_campaign(tmp_path).cases[0]
        result = replay_artifact(load_artifact(case.artifact_path))
        assert result.ok, result.mismatches

    def test_replay_flags_stale_fingerprints(self, tmp_path):
        case = failing_campaign(tmp_path).cases[0]
        data = load_artifact(case.artifact_path)
        data["fingerprints"]["serial"] = "0" * 64
        result = replay_artifact(data)
        assert not result.ok
        assert any("fingerprint" in line for line in result.mismatches)


class TestFreshProcessReplay:
    @pytest.mark.slow
    def test_cli_replay_in_a_new_interpreter(self, tmp_path):
        """The acceptance criterion: an artifact written here replays
        bit-identically in a process with no shared state."""
        case = failing_campaign(tmp_path).cases[0]
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fuzz",
             "--replay", case.artifact_path],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "bit-identically" in proc.stdout


class TestSelfTest:
    @pytest.mark.slow
    def test_self_test_catches_every_planted_bug(self, tmp_path):
        outcomes = run_self_test(0, artifact_dir=str(tmp_path))
        assert outcomes, "no mutations registered"
        for outcome in outcomes:
            assert outcome.ok, f"{outcome.mutation}: {outcome.detail}"
        kinds = {o.expected_kind for o in outcomes}
        assert kinds == {"invariant", "parity"}
