"""The DST oracle: clean scenarios pass, planted bugs are detected."""

import pytest

from repro.dst import (
    MUTATIONS,
    ScenarioSpec,
    apply_scenario,
    check_scenario,
    generate_spec,
)

CLEAN = ScenarioSpec(seed=5, n=10, rounds=8, publishes=3)


class TestApplyScenario:
    def test_serial_run_is_deterministic(self):
        a = apply_scenario(CLEAN, "serial")
        b = apply_scenario(CLEAN, "serial")
        assert a.fingerprint == b.fingerprint
        assert a.deliveries == b.deliveries > 0

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            apply_scenario(CLEAN, "quantum")

    def test_async_engine_runs_the_same_spec(self):
        outcome = apply_scenario(CLEAN, "async")
        assert outcome.engine == "async"
        assert outcome.deliveries > 0
        assert not outcome.violations


class TestCheckScenario:
    def test_clean_scenario_passes_both_engines(self):
        report = check_scenario(CLEAN)
        assert report.ok
        assert report.engines_run == ["serial", "sharded"]
        assert report.fingerprints["serial"] == report.fingerprints["sharded"]

    def test_generated_scenarios_pass(self):
        for seed in range(3):
            spec = generate_spec(seed, max_n=16, max_rounds=12)
            report = check_scenario(spec)
            assert report.ok, report.summary()

    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_planted_bugs_detected_with_expected_kind(self, name):
        mutation = MUTATIONS[name]
        for seed in range(4):
            # Family-specific mutations only fire on their own scenario
            # family (dropped-dependency needs causal_delivery on).
            spec = generate_spec(seed, max_n=16, max_rounds=12,
                                 mutation=name,
                                 causal=mutation.family == "causal")
            report = check_scenario(spec, engines=mutation.engines)
            if not report.ok:
                kinds = {f.kind for f in report.failures}
                assert mutation.expected_kind in kinds, report.summary()
                return
        pytest.fail(f"mutation {name!r} went undetected across 4 scenarios")

    def test_invariant_fast_path_skips_sharded_run(self):
        spec = ScenarioSpec(seed=5, n=10, rounds=8, publishes=3,
                            mutation="double-delivery")
        full = check_scenario(spec)
        assert "invariant:no-duplicate-delivery" in full.signatures()
        fast = check_scenario(
            spec, require_signature="invariant:no-duplicate-delivery")
        assert fast.engines_run == ["serial"]
        assert "invariant:no-duplicate-delivery" in fast.signatures()

    def test_serial_reference_engine_is_mandatory(self):
        with pytest.raises(ValueError, match="serial reference"):
            check_scenario(CLEAN, engines=("sharded",))
        with pytest.raises(ValueError, match="unknown oracle engine"):
            check_scenario(CLEAN, engines=("serial", "quantum"))


class TestColumnarOracle:
    def test_clean_scenario_passes_columnar_pair(self):
        report = check_scenario(CLEAN, engines=("serial", "columnar"))
        assert report.ok
        assert report.engines_run == ["serial", "columnar"]
        assert "columnar" in report.fingerprints

    def test_columnar_fingerprint_is_deterministic(self):
        a = check_scenario(CLEAN, engines=("serial", "columnar"))
        b = check_scenario(CLEAN, engines=("serial", "columnar"))
        assert a.fingerprints["columnar"] == b.fingerprints["columnar"]

    def test_columnar_undercount_flagged_on_honoured_subset(self):
        spec = ScenarioSpec(seed=5, n=10, rounds=8, publishes=3,
                            mutation="columnar-undercount")
        report = check_scenario(spec, engines=("serial", "columnar"))
        assert "parity:columnar:sim.sends" in report.signatures()

    def test_columnar_signature_pulls_engine_in_implicitly(self):
        # The shrinker passes only require_signature; a parity:columnar:*
        # signature must run the columnar engine without engine plumbing,
        # and must skip the sharded run entirely (it cannot produce it).
        spec = ScenarioSpec(seed=5, n=10, rounds=8, publishes=3,
                            mutation="columnar-undercount")
        report = check_scenario(
            spec, require_signature="parity:columnar:sim.sends")
        assert report.engines_run == ["serial", "columnar"]
        assert "parity:columnar:sim.sends" in report.signatures()


class TestFullReport:
    def test_double_defect_reports_both_signatures(self):
        # One scenario carrying an invariant break AND a parity break: the
        # default fast path may stop at the first, but full=True must list
        # both detector families' signatures.
        spec = ScenarioSpec(seed=5, n=10, rounds=8, publishes=3,
                            mutation="double-defect")
        report = check_scenario(spec, full=True)
        signatures = report.signatures()
        assert "invariant:no-duplicate-delivery" in signatures
        assert any(s.startswith("parity:") for s in signatures), signatures

    def test_full_disables_invariant_fast_path(self):
        spec = ScenarioSpec(seed=5, n=10, rounds=8, publishes=3,
                            mutation="double-defect")
        fast = check_scenario(
            spec, require_signature="invariant:no-duplicate-delivery")
        assert fast.engines_run == ["serial"]
        full = check_scenario(
            spec, require_signature="invariant:no-duplicate-delivery",
            full=True)
        assert full.engines_run == ["serial", "sharded"]
        assert len(full.signatures()) > len(fast.signatures())
