# Convenience targets for the lpbcast reproduction.

PYTHON ?= python

.PHONY: install test test-slow coverage fuzz bench bench-figures bench-hotpath examples check clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-slow:
	$(PYTHON) -m pytest tests/ -m slow

# Line-coverage report over src/repro.  Requires pytest-cov (the `cov`
# extra); prints a pointer instead of failing when it isn't installed.
coverage:
	@$(PYTHON) -c "import pytest_cov" 2>/dev/null \
	    && $(PYTHON) -m pytest tests/ --cov=repro --cov-report=term-missing \
	    || echo "pytest-cov not installed; run: pip install -e .[test,cov]"

fuzz:
	$(PYTHON) -m repro fuzz --self-test --quiet
	$(PYTHON) -m repro fuzz --count 25 --seed 2026 --quiet

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-hotpath:
	$(PYTHON) benchmarks/bench_hotpath.py

bench-figures:
	$(PYTHON) -m pytest benchmarks/bench_fig2_fanout.py \
	    benchmarks/bench_fig3_system_size.py \
	    benchmarks/bench_fig4_partition.py \
	    benchmarks/bench_fig5_sim_vs_analysis.py \
	    benchmarks/bench_fig6_reliability.py \
	    benchmarks/bench_fig7_pbcast.py --benchmark-only -s

examples:
	@for script in examples/*.py; do \
	    echo "== $$script"; $(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

check: test bench

clean:
	rm -rf .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
