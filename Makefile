# Convenience targets for the lpbcast reproduction.

PYTHON ?= python

.PHONY: install test bench bench-figures bench-hotpath examples check clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-hotpath:
	$(PYTHON) benchmarks/bench_hotpath.py

bench-figures:
	$(PYTHON) -m pytest benchmarks/bench_fig2_fanout.py \
	    benchmarks/bench_fig3_system_size.py \
	    benchmarks/bench_fig4_partition.py \
	    benchmarks/bench_fig5_sim_vs_analysis.py \
	    benchmarks/bench_fig6_reliability.py \
	    benchmarks/bench_fig7_pbcast.py --benchmark-only -s

examples:
	@for script in examples/*.py; do \
	    echo "== $$script"; $(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

check: test bench

clean:
	rm -rf .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
