"""Figure 4 — Analysis: probability of partitioning (Eq. 4).

Ψ(i, n, l) for l = 3 and n = 50, 75, 125, against the partition size i.
Paper shape: Ψ monotonically decreases when increasing n (and l); the
magnitudes are astronomically small.  Also reproduces the Sec. 4.4 time
extension (Eq. 5): the number of rounds until partitioning becomes likely
is beyond any practical run length.
"""

import figlib
from repro.analysis import partition_probability_per_round, phi, psi, rounds_until_partition
from repro.metrics import format_table


def test_fig4_partition_probability(benchmark):
    curves = benchmark.pedantic(figlib.fig4_series, rounds=1, iterations=1)

    rows = []
    sizes = [i for i, _ in curves["n=50"]]
    by_n = {name: dict(points) for name, points in curves.items()}
    for i in sizes:
        rows.append([
            i,
            by_n["n=50"].get(i, 0.0),
            by_n["n=75"].get(i, 0.0),
            by_n["n=125"].get(i, 0.0),
        ])
    print()
    print(format_table(
        ["partition size i", "n=50", "n=75", "n=125"], rows,
        title="Figure 4: probability of partition of size i (l=3)",
    ))

    # Monotone decrease in n at every feasible size.
    for i in sizes:
        assert by_n["n=50"][i] >= by_n["n=75"][i] >= by_n["n=125"][i]

    # Astronomically small probabilities (partitioning is a non-event).
    assert max(by_n["n=50"].values()) < 1e-12

    # Monotone decrease in l as well.
    assert psi(10, 50, 3) > psi(10, 50, 5)


def test_fig4_time_extension_eq5(benchmark):
    def compute():
        return {
            "per_round_n50": partition_probability_per_round(50, 3),
            "phi_n50_1e9": phi(50, 3, 1e9),
            "rounds_to_p90_n50": rounds_until_partition(50, 3, 0.9),
            "rounds_to_p90_n75": rounds_until_partition(75, 3, 0.9),
        }

    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    print()
    print(format_table(
        ["quantity", "value"], [[k, v] for k, v in result.items()],
        title="Eq. 5: probability of no partitioning over time",
    ))

    # Paper: ">= 1e12 rounds to partition with probability 0.9 (n=50, l=3)".
    assert result["rounds_to_p90_n50"] > 1e12
    assert result["rounds_to_p90_n75"] > result["rounds_to_p90_n50"]
    assert result["phi_n50_1e9"] > 0.999
