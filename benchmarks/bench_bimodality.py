"""Bimodality bench: the all-or-nothing shape of gossip delivery.

Gossip delivery is *bimodal* (Sec. 2.3's Bimodal Multicast is named for
it): an event either dies in the first hops or reaches essentially
everybody; intermediate coverage is rare.  Which regime a protocol sits in
depends on whether repetitions are bounded:

* **lpbcast's standard mode** (digests re-advertise an event every round,
  repetitions unlimited, Sec. 4) has no extinction branch — every event
  saturates.  The Eqs. 2–3 Markov chain predicts exactly that: at round 6
  nearly all probability mass sits at s = n.
* **one-shot forwarding** (each process forwards a payload at most once —
  Figure 1(b)'s ``events`` discipline without the digest shortcut) is a
  branching process with genuine extinction probability: under heavy loss
  the empirical coverage histogram shows the classic two modes.
"""

import random

import figlib
import numpy as np
from repro.analysis import InfectionMarkovChain
from repro.core import LpbcastConfig
from repro.metrics import (
    DeliveryLog,
    coverage_histogram,
    format_table,
    per_event_coverage,
)
from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes

N = 60
ROUNDS = 8
EVENTS = 120


def empirical_coverage(loss: float, one_shot: bool, seed: int = 0):
    cfg = LpbcastConfig(
        fanout=3, view_max=8,
        digest_implies_delivery=not one_shot,
    )
    nodes = build_lpbcast_nodes(N, cfg, seed=seed)
    sim = RoundSimulation(
        NetworkModel(loss_rate=loss, rng=random.Random(seed + 5)), seed=seed
    )
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    rng = random.Random(seed + 77)
    events = []
    for i in range(EVENTS):
        publisher = nodes[rng.randrange(N)]
        events.append((publisher.lpb_cast(i, now=float(sim.round)), sim.round))
        sim.run_round()
    sim.run(ROUNDS)
    coverages = []
    for event, published_round in events:
        deliverers = {
            pid for pid in log.deliverers_of(event.event_id)
            if (t := log.delivery_time(pid, event.event_id)) is not None
            and t <= published_round + ROUNDS
        }
        coverages.append(len(deliverers) / N)
    return coverages


def test_bimodal_delivery_distribution(benchmark):
    def compute():
        return {
            "standard (unlimited repetitions)": empirical_coverage(
                loss=0.05, one_shot=False
            ),
            "one-shot forwarding, eps=0.35": empirical_coverage(
                loss=0.35, one_shot=True
            ),
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for name, coverages in results.items():
        rows.append([name] + coverage_histogram(coverages, bins=10))
    print()
    print(format_table(
        ["configuration"] + [f"{i * 10}-{i * 10 + 10}%" for i in range(10)],
        rows,
        title=f"Per-event coverage histogram after {ROUNDS} rounds "
              f"({EVENTS} events, n={N})",
    ))

    standard = coverage_histogram(
        results["standard (unlimited repetitions)"], bins=10
    )
    one_shot = coverage_histogram(
        results["one-shot forwarding, eps=0.35"], bins=10
    )

    # Standard lpbcast: unimodal at the top — every event saturates.
    assert standard[-1] > 0.9 * EVENTS

    # One-shot under heavy loss: bimodal — an extinction mode near zero and
    # a final-size mode (≈70–80% for R0 ≈ 2), with a sparse valley between.
    extinct = sum(one_shot[:2])        # coverage < 20%
    saturated = sum(one_shot[6:])      # coverage >= 60%
    valley = sum(one_shot[2:5])        # 20–50%
    assert extinct >= 2
    assert saturated > 0.6 * EVENTS
    assert valley < saturated / 3


def test_markov_chain_predicts_saturation(benchmark):
    def compute():
        chain = InfectionMarkovChain(N, 3, figlib.EPSILON, figlib.TAU)
        return chain.round_distributions(ROUNDS)[-1]

    law = benchmark.pedantic(compute, rounds=1, iterations=1)
    top_decile_mass = float(np.sum(law[int(0.9 * N):]))
    print(f"\nP(s_{ROUNDS} >= 0.9n) = {top_decile_mass:.4f}")
    # Unlimited repetitions: essentially all mass in the top decile.
    assert top_decile_mass > 0.95
