"""Ablation A2 — membership gossip frequency (Sec. 6.1).

"We have tried in a first attempt to reduce the frequency for the gossiping
of membership information (every k-th round only, k > 1).  It has however
turned out that this sanction leads to the opposite effect, i.e., latency
increases ... In contrast, when the frequency for membership gossiping is
increased ... the views appear to come closer to ideal views, and the
performance of our algorithm improves."

We sweep k (membership every k-th gossip) and the boost factor (extra
membership-only gossips per period) and measure view-health (in-degree
spread) — the quantity membership traffic directly controls.
"""

import random

import figlib
from repro.core import LpbcastConfig
from repro.metrics import format_table, in_degree_stats
from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes


def view_spread(k: int = 1, boost: int = 0, seeds=range(3), n: int = 125,
                l: int = 12, rounds: int = 30) -> float:
    """Average in-degree standard deviation after a long run."""
    stds = []
    for seed in seeds:
        cfg = LpbcastConfig(fanout=3, view_max=l, membership_period=k,
                            membership_boost=boost)
        nodes = build_lpbcast_nodes(n, cfg, seed=seed)
        sim = RoundSimulation(
            NetworkModel(loss_rate=figlib.EPSILON,
                         rng=random.Random(seed + 13)),
            seed=seed,
        )
        sim.add_nodes(nodes)
        sim.run(rounds)
        stds.append(in_degree_stats(nodes).std)
    return sum(stds) / len(stds)


def latency(k: int = 1, boost: int = 0, seeds=range(4)) -> float:
    """Mean rounds to infect 99% of n = 125."""
    totals = []
    for seed in seeds:
        curve = figlib.lpbcast_infection_curve(
            125, l=12, seed=seed, rounds=14,
            config_overrides={"membership_period": k,
                              "membership_boost": boost},
        )
        totals.append(next(r for r, v in enumerate(curve) if v >= 124))
    return sum(totals) / len(totals)


def test_ablation_membership_frequency(benchmark):
    def compute():
        return {
            "k=1 (paper default)": (view_spread(k=1), latency(k=1)),
            "k=3 (rarer membership)": (view_spread(k=3), latency(k=3)),
            "k=1 + boost=1 (extra membership)": (
                view_spread(k=1, boost=1), latency(k=1, boost=1)
            ),
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    print()
    print(format_table(
        ["configuration", "in-degree std", "rounds to 99%"],
        [[name, spread, lat] for name, (spread, lat) in results.items()],
        title="Ablation A2: membership gossip frequency",
    ))

    base_spread, base_latency = results["k=1 (paper default)"]
    rare_spread, rare_latency = results["k=3 (rarer membership)"]
    boosted_spread, boosted_latency = results["k=1 + boost=1 (extra membership)"]

    # Rarer membership gossip must not *improve* dissemination (Sec. 6.1
    # found it hurts); allow equality within noise.
    assert rare_latency >= base_latency - 0.75
    # Boosted membership keeps latency at least as good within noise.
    assert boosted_latency <= base_latency + 0.75
    # All configurations still achieve dissemination (sanity).
    assert all(lat <= 12 for _, lat in results.values())
