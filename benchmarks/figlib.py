"""Bench-side alias of :mod:`repro.experiments.figures`.

The experiment functions live inside the package (they also back the
``python -m repro`` CLI); the bench files import them through this thin
module so `pytest benchmarks/` needs no path tricks.
"""

from repro.experiments.figures import (  # noqa: F401
    EPSILON,
    TAU,
    fig2_series,
    fig3a_series,
    fig3b_series,
    fig4_series,
    fig5a_series,
    fig5b_series,
    fig6a_series,
    fig6b_series,
    fig7a_series,
    fig7b_series,
    lpbcast_infection_curve,
    lpbcast_mean_curve,
    measurement_reliability,
    pbcast_infection_curve,
    pbcast_mean_curve,
    pbcast_measurement_reliability,
)
