"""Ablation A3 — retransmissions (Sec. 3.2 / 5.2).

The paper's measurements assumed "once a gossip receiver has received the
identifier of a notification, the notification itself is assumed to have
been received" — i.e. no actual retransmissions.  This ablation runs the
protocol *without* that shortcut: notifications only count when their payload
actually arrives, either pushed in ``gossip.events`` (each process forwards a
payload at most once) or pulled through the digest-driven retransmission
engine.  Retransmissions should close most of the gap the one-shot push
leaves.
"""

import random

import figlib
from repro.core import LpbcastConfig
from repro.metrics import DeliveryLog, format_table
from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes


def payload_coverage(retransmissions: bool, seed: int = 0, n: int = 125,
                     rounds: int = 12, push_back: bool = False) -> float:
    """Fraction of processes that received the actual payload."""
    cfg = LpbcastConfig(
        fanout=3, view_max=25,
        retransmissions=retransmissions,
        push_back=push_back,
        digest_implies_delivery=False,
    )
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    sim = RoundSimulation(
        NetworkModel(loss_rate=figlib.EPSILON, rng=random.Random(seed + 13)),
        seed=seed,
    )
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    event = nodes[0].lpb_cast("payload", now=0.0)
    sim.run(rounds)
    return log.delivery_count(event.event_id) / n


def test_ablation_retransmissions(benchmark):
    def compute():
        seeds = range(4)

        def mean(values):
            return sum(values) / len(values)

        return {
            "one-shot only": mean(
                [payload_coverage(False, seed=s) for s in seeds]
            ),
            "+ gossip pull (retransmissions)": mean(
                [payload_coverage(True, seed=s) for s in seeds]
            ),
            "+ gossip push (push_back)": mean(
                [payload_coverage(False, seed=s, push_back=True)
                 for s in seeds]
            ),
            "+ anti-entropy (pull and push)": mean(
                [payload_coverage(True, seed=s, push_back=True)
                 for s in seeds]
            ),
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    print()
    print(format_table(
        ["repair mode (Sec. 2.3 fn. 5)", "payload coverage"],
        [[name, value] for name, value in results.items()],
        title="Ablation A3: payload delivery by repair mode",
    ))

    base = results["one-shot only"]
    pull = results["+ gossip pull (retransmissions)"]
    push = results["+ gossip push (push_back)"]
    both = results["+ anti-entropy (pull and push)"]

    # One-shot push misses a tail of processes; every repair mode recovers it.
    assert min(pull, push, both) > base
    assert pull > 0.97 and push > 0.97 and both > 0.97
    # The one-shot branching process still covers a solid majority
    # (F=3 with 5% loss is supercritical).
    assert base > 0.5
