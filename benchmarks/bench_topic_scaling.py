"""Topic-scaling bench (beyond the paper).

Sec. 3.1 presents lpbcast "with respect to a single topic, and do[es] not
discuss the effect of scaling up topics."  The pub/sub facade runs one
independent lpbcast instance per topic, so protocol traffic grows linearly
with the number of topics a peer subscribes to — this bench quantifies that
(the honest cost of the per-topic design) and verifies dissemination quality
is unaffected by topic count.
"""

import random

from repro.core import LpbcastConfig
from repro.metrics import format_table
from repro.metrics.bandwidth import BandwidthMeter
from repro.pubsub import build_pubsub_peers
from repro.sim import NetworkModel, RoundSimulation

N = 40
ROUNDS = 10


def run(topic_count: int, seed: int = 0):
    topics = {f"t{i}": list(range(N)) for i in range(topic_count)}
    cfg = LpbcastConfig(fanout=3, view_max=8)
    peers = build_pubsub_peers(N, topics, cfg, seed=seed)
    meter = BandwidthMeter()
    for peer in peers:
        meter.instrument(peer)
    sim = RoundSimulation(
        NetworkModel(loss_rate=0.05, rng=random.Random(seed + 31)), seed=seed
    )
    sim.add_round_hook(meter.on_round)
    sim.add_nodes(peers)

    events = {
        name: peers[i % N].publish(name, i, now=0.0)
        for i, name in enumerate(topics)
    }
    sim.run(ROUNDS)

    coverage = []
    for name, event in events.items():
        covered = sum(
            1 for p in range(N)
            if peers[p].topic_node(name).has_delivered(event.event_id)
        )
        coverage.append(covered / N)
    return {
        "messages": meter.total_messages(),
        "coverage": min(coverage),
    }


def test_topic_scaling(benchmark):
    def compute():
        return {t: run(t) for t in (1, 2, 4, 8)}

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [t, r["messages"], round(r["messages"] / (N * 3 * ROUNDS), 2),
         r["coverage"]]
        for t, r in results.items()
    ]
    print()
    print(format_table(
        ["topics", "messages", "x single-topic load", "worst topic coverage"],
        rows,
        title=f"Per-topic instances: traffic vs topic count (n={N}, "
              f"all peers subscribe to all topics)",
    ))

    # Linear growth in protocol messages (one instance per topic)...
    m1 = results[1]["messages"]
    for t in (2, 4, 8):
        ratio = results[t]["messages"] / m1
        assert t * 0.9 <= ratio <= t * 1.1
    # ...with undiminished per-topic dissemination quality.
    assert all(r["coverage"] == 1.0 for r in results.values())
