"""Figure 3 — Analysis: relation between system size and latency.

(a) expected infected processes per round for n = 125..1000 (F = 3);
(b) expected rounds to infect 99% of Π — grows logarithmically in n.
"""

import math

import figlib
from repro.metrics import format_series, format_table


def test_fig3a_infection_by_system_size(benchmark):
    series = benchmark.pedantic(
        lambda: figlib.fig3a_series(rounds=10), rounds=1, iterations=1
    )
    print()
    print(format_series(
        "round", list(range(11)), series,
        title="Figure 3(a): expected infected processes per round (F=3)",
    ))

    # Every curve saturates at its own n.
    for n in range(125, 1001, 125):
        assert series[f"n={n}"][-1] > 0.99 * n

    # Larger systems lag smaller ones in relative coverage mid-epidemic.
    for r in (4, 5):
        frac_small = series["n=125"][r] / 125
        frac_large = series["n=1000"][r] / 1000
        assert frac_small > frac_large


def test_fig3b_rounds_grow_logarithmically(benchmark):
    sizes, rounds = benchmark.pedantic(figlib.fig3b_series, rounds=1, iterations=1)
    print()
    print(format_table(
        ["n", "rounds to 99%"], list(zip(sizes, rounds)),
        title="Figure 3(b): expected rounds to infect 99% of the system",
    ))

    # Monotone increase...
    assert all(b >= a for a, b in zip(rounds, rounds[1:]))
    # ...in the paper's 5-8 round band...
    assert all(4.5 <= r <= 8.0 for r in rounds)
    # ...and sub-linear (logarithmic): 10x the system adds < 2 rounds.
    assert rounds[-1] - rounds[0] < 2.0
    # Log-shape check: increments shrink as n grows.
    first_jump = rounds[1] - rounds[0]
    last_jump = rounds[-1] - rounds[-2]
    assert last_jump <= first_jump + 0.25
