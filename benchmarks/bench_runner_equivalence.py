"""Methodology bench: the two runners agree.

The paper validates its analysis twice — synchronous-round simulation
(Sec. 5.1) and a real deployment (Sec. 5.2).  This repository mirrors that
with the round runner and the discrete-event runtime; this bench checks the
*methodology itself*: the same protocol under both runners produces the
same epidemic, measured as rounds (resp. gossip periods) to reach 99%
coverage.
"""

import random

import figlib
from repro.core import LpbcastConfig
from repro.metrics import DeliveryLog, format_table
from repro.sim import (
    AsyncGossipRuntime,
    NetworkModel,
    RoundSimulation,
    build_lpbcast_nodes,
    uniform_latency,
)

N = 100
L = 15


def round_latency(seed: int) -> float:
    cfg = LpbcastConfig(fanout=3, view_max=L)
    nodes = build_lpbcast_nodes(N, cfg, seed=seed)
    sim = RoundSimulation(
        NetworkModel(loss_rate=figlib.EPSILON, rng=random.Random(seed + 61)),
        seed=seed,
    )
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    event = nodes[0].lpb_cast("x", now=0.0)
    target = int(0.99 * N)
    sim.run_until(
        lambda s: log.delivery_count(event.event_id) >= target, max_rounds=30
    )
    return float(sim.round)


def async_latency(seed: int) -> float:
    cfg = LpbcastConfig(fanout=3, view_max=L, gossip_period=1.0)
    nodes = build_lpbcast_nodes(N, cfg, seed=seed)
    net = NetworkModel(loss_rate=figlib.EPSILON, rng=random.Random(seed + 61),
                       latency=uniform_latency(0.05, 0.5))
    runtime = AsyncGossipRuntime(network=net, seed=seed)
    runtime.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    holder = {}
    runtime.call_at(
        1.0, lambda: holder.update(event=nodes[0].lpb_cast("x", now=runtime.now))
    )
    target = int(0.99 * N)
    deadline, step = 40.0, 0.5
    t = 1.0
    while t < deadline:
        t += step
        runtime.run_until(t)
        if log.delivery_count(holder["event"].event_id) >= target:
            return t - 1.0  # gossip periods since publication
    return deadline


def test_runners_agree_on_epidemic_speed(benchmark):
    def compute():
        seeds = range(5)
        return (
            [round_latency(s) for s in seeds],
            [async_latency(s) for s in seeds],
        )

    round_lat, async_lat = benchmark.pedantic(compute, rounds=1, iterations=1)
    round_mean = sum(round_lat) / len(round_lat)
    async_mean = sum(async_lat) / len(async_lat)
    print()
    print(format_table(
        ["runner", "time to 99% (rounds / periods)", "mean"],
        [
            ["synchronous rounds (Sec. 5.1)", str(round_lat), round_mean],
            ["discrete-event runtime (Sec. 5.2)", str(async_lat), async_mean],
        ],
        title=f"Runner equivalence, n={N}, l={L}, F=3, eps={figlib.EPSILON}",
    ))

    # Both land in the analytical ballpark (~6 rounds, Fig. 3(b))...
    assert 4.0 <= round_mean <= 9.0
    assert 4.0 <= async_mean <= 10.0
    # ...and within ~1.5 periods of each other: unsynchronized timers and
    # sub-period latency do not change the epidemic.
    assert abs(round_mean - async_mean) <= 1.5
