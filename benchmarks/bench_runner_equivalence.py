"""Methodology bench: the runners agree.

The paper validates its analysis twice — synchronous-round simulation
(Sec. 5.1) and a real deployment (Sec. 5.2).  This repository mirrors that
with the round runner and the discrete-event runtime; this bench checks the
*methodology itself*: the same protocol under both runners produces the
same epidemic, measured as rounds (resp. gossip periods) to reach 99%
coverage.

The sharded engine is held to a strictly stronger standard than the async
runtime: not "the same epidemic" but the *same run* — bit-identical
delivery traces, node statistics and simulator counters for the same root
seed (``test_sharded_engine_bit_identical``).
"""

import random

import figlib
from repro.core import LpbcastConfig
from repro.metrics import DeliveryLog, format_table
from repro.sim import (
    AsyncGossipRuntime,
    BroadcastWorkload,
    NetworkModel,
    RoundSimulation,
    ShardedRoundSimulation,
    build_lpbcast_nodes,
    create_simulation,
    uniform_latency,
)

N = 100
L = 15


def round_latency(seed: int) -> float:
    cfg = LpbcastConfig(fanout=3, view_max=L)
    nodes = build_lpbcast_nodes(N, cfg, seed=seed)
    sim = RoundSimulation(
        NetworkModel(loss_rate=figlib.EPSILON, rng=random.Random(seed + 61)),
        seed=seed,
    )
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    event = nodes[0].lpb_cast("x", now=0.0)
    target = int(0.99 * N)
    sim.run_until(
        lambda s: log.delivery_count(event.event_id) >= target, max_rounds=30
    )
    return float(sim.round)


def async_latency(seed: int) -> float:
    cfg = LpbcastConfig(fanout=3, view_max=L, gossip_period=1.0)
    nodes = build_lpbcast_nodes(N, cfg, seed=seed)
    net = NetworkModel(loss_rate=figlib.EPSILON, rng=random.Random(seed + 61),
                       latency=uniform_latency(0.05, 0.5))
    runtime = AsyncGossipRuntime(network=net, seed=seed)
    runtime.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    holder = {}
    runtime.call_at(
        1.0, lambda: holder.update(event=nodes[0].lpb_cast("x", now=runtime.now))
    )
    target = int(0.99 * N)
    deadline, step = 40.0, 0.5
    t = 1.0
    while t < deadline:
        t += step
        runtime.run_until(t)
        if log.delivery_count(holder["event"].event_id) >= target:
            return t - 1.0  # gossip periods since publication
    return deadline


def test_runners_agree_on_epidemic_speed(benchmark):
    def compute():
        seeds = range(5)
        return (
            [round_latency(s) for s in seeds],
            [async_latency(s) for s in seeds],
        )

    round_lat, async_lat = benchmark.pedantic(compute, rounds=1, iterations=1)
    round_mean = sum(round_lat) / len(round_lat)
    async_mean = sum(async_lat) / len(async_lat)
    print()
    print(format_table(
        ["runner", "time to 99% (rounds / periods)", "mean"],
        [
            ["synchronous rounds (Sec. 5.1)", str(round_lat), round_mean],
            ["discrete-event runtime (Sec. 5.2)", str(async_lat), async_mean],
        ],
        title=f"Runner equivalence, n={N}, l={L}, F=3, eps={figlib.EPSILON}",
    ))

    # Both land in the analytical ballpark (~6 rounds, Fig. 3(b))...
    assert 4.0 <= round_mean <= 9.0
    assert 4.0 <= async_mean <= 10.0
    # ...and within ~1.5 periods of each other: unsynchronized timers and
    # sub-period latency do not change the epidemic.
    assert abs(round_mean - async_mean) <= 1.5


# ---------------------------------------------------------------------------
# Serial vs sharded: identical runs, not just identical epidemics
# ---------------------------------------------------------------------------

EQ_N = 500
EQ_ROUNDS = 30


def _engine_trace(engine: str, seed: int, shards=None, fault_plan=None):
    """Run the standard workload scenario and return every observable the
    two engines must agree on, including the full delivery trace."""
    cfg = LpbcastConfig(fanout=3, view_max=20, events_max=30,
                        event_ids_max=60)
    network = NetworkModel(loss_rate=figlib.EPSILON,
                           rng=random.Random(seed + 61))
    sim = create_simulation(engine, network=network, seed=seed, shards=shards)
    nodes = build_lpbcast_nodes(EQ_N, cfg, seed=seed)
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    if fault_plan is not None:
        sim.use_fault_plan(fault_plan)
    workload = BroadcastWorkload([n.pid for n in nodes[:3]],
                                 events_per_round=1, start=1,
                                 stop=EQ_ROUNDS - 10)
    sim.add_round_hook(workload.on_round)
    per_round = []
    sim.add_observer(lambda r, s: per_round.append(
        (r, s.messages_delivered, s.network.messages_offered,
         s.network.messages_dropped)))
    sim.run(EQ_ROUNDS)
    if isinstance(sim, ShardedRoundSimulation):
        sim.collect()
    trace = sorted(
        (pid, event_id, at)
        for (pid, event_id), at in log._first_delivery_time.items()
    )
    stats = {
        pid: (node.stats.delivered, node.stats.duplicates,
              node.stats.gossips_sent, node.stats.events_dropped)
        for pid, node in sim.nodes.items()
    }
    return trace, stats, per_round


def test_sharded_engine_bit_identical(benchmark):
    """Acceptance: identical delivery traces serial vs sharded, n=500,
    30 rounds, same root seed."""
    def compute():
        serial = _engine_trace("serial", seed=17)
        sharded = _engine_trace("sharded", seed=17, shards=2)
        return serial, sharded

    serial, sharded = benchmark.pedantic(compute, rounds=1, iterations=1)
    trace_s, stats_s, rounds_s = serial
    trace_p, stats_p, rounds_p = sharded
    print()
    print(format_table(
        ["engine", "deliveries", "distinct (pid, event) pairs"],
        [
            ["serial", rounds_s[-1][1], len(trace_s)],
            ["sharded (2 shards)", rounds_p[-1][1], len(trace_p)],
        ],
        title=f"Engine equivalence, n={EQ_N}, {EQ_ROUNDS} rounds, "
              f"eps={figlib.EPSILON}",
    ))
    assert trace_p == trace_s, "delivery traces diverged"
    assert stats_p == stats_s, "node statistics diverged"
    assert rounds_p == rounds_s, "per-round counters diverged"
    assert len(trace_s) > EQ_N  # the epidemic actually spread


def _chaos_plan():
    from repro.faults import FaultPlan

    return (
        FaultPlan()
        .drop(0.1, start=2, stop=EQ_ROUNDS)
        .partition(range(0, EQ_N // 5), range(EQ_N // 5, EQ_N),
                   start=6, heal=14)
        .crash(4, at=5, recover_at=18)
        .crash(11, at=9)
    )


def test_sharded_engine_bit_identical_under_faults(benchmark):
    """Acceptance: one FaultPlan combining drop + partition-with-heal +
    crash-with-recovery produces identical delivery outcomes on the serial
    and sharded engines for the same seed."""
    def compute():
        plan = _chaos_plan()
        serial = _engine_trace("serial", seed=23, fault_plan=plan)
        sharded = _engine_trace("sharded", seed=23, shards=2,
                                fault_plan=_chaos_plan())
        return serial, sharded

    serial, sharded = benchmark.pedantic(compute, rounds=1, iterations=1)
    trace_s, stats_s, rounds_s = serial
    trace_p, stats_p, rounds_p = sharded
    print()
    print(format_table(
        ["engine", "deliveries", "distinct (pid, event) pairs"],
        [
            ["serial + faults", rounds_s[-1][1], len(trace_s)],
            ["sharded (2 shards) + faults", rounds_p[-1][1], len(trace_p)],
        ],
        title=f"Engine equivalence under faults, n={EQ_N}, "
              f"{EQ_ROUNDS} rounds, plan: {_chaos_plan().describe()}",
    ))
    assert trace_p == trace_s, "delivery traces diverged under faults"
    assert stats_p == stats_s, "node statistics diverged under faults"
    assert rounds_p == rounds_s, "per-round counters diverged under faults"
    assert len(trace_s) > EQ_N  # chaos notwithstanding, the epidemic spread
