"""Figure 5 — Simulation results.

(a) analysis vs simulation for n = 125, 250, 500 ("very good correlation");
(b) simulated infection curves for l = 10, 15, 20 at n = 125 (the view size
has only a slight impact on dissemination latency).
"""

import figlib
from repro.metrics import format_series, merge_curves


def test_fig5a_analysis_vs_simulation(benchmark):
    series = benchmark.pedantic(
        lambda: figlib.fig5a_series(seeds=range(5), rounds=10),
        rounds=1, iterations=1,
    )
    print()
    print(format_series(
        "round", list(range(11)), merge_curves(series),
        title="Figure 5(a): analysis vs simulation (F=3, l=25)",
    ))

    # Correlation: simulation tracks theory within a modest relative band
    # through the epidemic's growth phase, and both saturate at n.
    for n in (125, 250, 500):
        theory = series[f"n={n} theory"]
        sim = series[f"n={n} sim"]
        assert sim[-1] > 0.99 * n
        for r in range(3, 9):
            assert abs(sim[r] - theory[r]) <= max(0.35 * theory[r], 12)


def test_fig5b_view_size_impact(benchmark):
    series = benchmark.pedantic(
        lambda: figlib.fig5b_series(seeds=range(5), rounds=9),
        rounds=1, iterations=1,
    )
    print()
    print(format_series(
        "round", list(range(10)), merge_curves(series),
        title="Figure 5(b): infection curves for l=10,15,20 (n=125)",
    ))

    curves = merge_curves(series)
    # Everyone is infected regardless of l...
    for curve in curves.values():
        assert curve[-1] >= 124
    # ...and the l-dependence is weak: mid-epidemic curves within a small
    # band of each other (paper: "slightly contradicting our analysis").
    for r in range(3, 8):
        values = [curves[f"l={l}"][r] for l in (10, 15, 20)]
        assert max(values) - min(values) <= 0.25 * 125
