"""Figure 6 — Measurements: degree of reliability (1-β).

Run on the asynchronous discrete-event runtime that substitutes for the
paper's 125-workstation testbed (DESIGN.md §4): non-synchronized per-process
gossip timers, latency < T, loss ε = 0.05.

(a) reliability vs view size l (|eventIds|m = 60): very weak dependence —
    the paper's own headline is that "the variation in terms of reliability
    is only very weak";
(b) reliability vs |eventIds|m (l = 15): strong dependence — once ids are
    purged from all buffers before global infection, dissemination of that
    notification stops.

Load is scaled relative to the paper's 40 events/process/round (see
EXPERIMENTS.md): the buffer-pressure ratio, not the absolute rate, drives
these curves.
"""

import figlib
from repro.metrics import format_table


def test_fig6a_reliability_vs_view_size(benchmark):
    l_values, reliabilities = benchmark.pedantic(
        lambda: figlib.fig6a_series(seeds=range(3)), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["view size l", "reliability (1-beta)"],
        list(zip(l_values, reliabilities)),
        title="Figure 6(a): reliability vs view size (|eventIds|m=60, F=3)",
    ))

    # All runs deliver the large majority of (event, process) pairs.
    assert all(r > 0.6 for r in reliabilities)
    # The paper's conclusion: the dependence on l is very weak.
    assert max(reliabilities) - min(reliabilities) < 0.08
    # And no catastrophic degradation at the smallest view.
    assert reliabilities[0] > max(reliabilities) - 0.08


def test_fig6b_reliability_vs_event_id_buffer(benchmark):
    sizes, reliabilities = benchmark.pedantic(
        lambda: figlib.fig6b_series(seeds=range(3)), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["|eventIds|m", "reliability (1-beta)"],
        list(zip(sizes, reliabilities)),
        title="Figure 6(b): reliability vs notification list size (l=15)",
    ))

    # Strong, essentially monotone increase (allow small seed noise).
    assert reliabilities[-1] - reliabilities[0] > 0.3
    for a, b in zip(reliabilities, reliabilities[1:]):
        assert b >= a - 0.05
    # Starved buffers hurt badly; generous buffers approach full reliability.
    assert reliabilities[0] < 0.6
    assert reliabilities[-1] > 0.9
