"""Figure 2 — Analysis: expected infected processes per round for different
fanout values (n = 125, F = 3..6).

Paper shape: increasing the fanout decreases the number of rounds needed to
infect all processes, with diminishing returns.
"""

import figlib
from repro.metrics import format_series


def compute():
    return figlib.fig2_series(rounds=10)


def test_fig2_fanout(benchmark):
    series = benchmark.pedantic(compute, rounds=1, iterations=1)

    print()
    print(format_series(
        "round", list(range(11)), series,
        title="Figure 2: expected infected processes per round (n=125)",
    ))

    # Higher fanout infects faster at every mid-epidemic round.
    for r in range(1, 6):
        assert series["F=3"][r] < series["F=4"][r] < series["F=5"][r] < series["F=6"][r]

    # All curves saturate at n.
    for curve in series.values():
        assert curve[-1] > 124.9

    # Diminishing returns: the gain of F=4 over F=3 exceeds that of F=6
    # over F=5 at the inflection rounds.
    r = 3
    gain_34 = series["F=4"][r] - series["F=3"][r]
    gain_56 = series["F=6"][r] - series["F=5"][r]
    assert gain_34 > gain_56


def test_fig2_rounds_to_full_infection(benchmark):
    from repro.analysis import InfectionMarkovChain

    def rounds_needed():
        return {
            F: InfectionMarkovChain(125, F, figlib.EPSILON, figlib.TAU)
            .rounds_to_fraction(0.99)
            for F in (3, 4, 5, 6)
        }

    result = benchmark.pedantic(rounds_needed, rounds=1, iterations=1)
    print()
    print("Rounds to infect 99% of n=125:", result)
    values = [result[F] for F in (3, 4, 5, 6)]
    assert values == sorted(values, reverse=True)
    assert values[0] <= 9
