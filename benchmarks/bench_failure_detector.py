"""Failure-detector bench: crash-cleanup latency (paper reference [29]).

lpbcast alone removes crashed processes from views only by accidental random
truncation — their ids linger, attracting wasted gossips.  The heartbeat
failure detector (repro.failuredetector) purges them deliberately.  This
bench measures how many rounds it takes for a crashed process to vanish
from every live view, with and without the detector, and confirms the
detector does not slow dissemination.
"""

import random

import figlib
from repro.core import LpbcastConfig
from repro.failuredetector import FdLpbcastNode
from repro.metrics import DeliveryLog, format_table
from repro.sim import NetworkModel, RoundSimulation
from repro.sim.rng import SeedSequence
from repro.sim.topology import uniform_random_views

N = 60
VIEW = 10
SUSPECT = 6.0


def build(with_fd: bool, seed: int):
    cfg = LpbcastConfig(fanout=3, view_max=VIEW)
    seeds = SeedSequence(seed)
    pids = list(range(N))
    views = uniform_random_views(pids, VIEW, seeds.rng("views"))
    if with_fd:
        nodes = [
            FdLpbcastNode(pid, cfg, seeds.rng("node", pid),
                          initial_view=views[pid],
                          suspect_timeout=SUSPECT,
                          forget_timeout=4 * SUSPECT)
            for pid in pids
        ]
    else:
        from repro.core import LpbcastNode
        nodes = [
            LpbcastNode(pid, cfg, seeds.rng("node", pid),
                        initial_view=views[pid])
            for pid in pids
        ]
    sim = RoundSimulation(
        NetworkModel(loss_rate=figlib.EPSILON, rng=random.Random(seed + 3)),
        seed=seed,
    )
    sim.add_nodes(nodes)
    return sim, nodes


def cleanup_rounds(with_fd: bool, seed: int, max_rounds: int = 40):
    """Rounds from crash until no live view contains the victim."""
    sim, nodes = build(with_fd, seed)
    victim = nodes[7].pid
    sim.run(3)
    sim.crash(victim)
    for extra in range(1, max_rounds + 1):
        sim.run_round()
        knowers = sum(
            1 for n in nodes if n.pid != victim and victim in n.view
        )
        if knowers == 0:
            return extra
    return max_rounds + 1  # never cleaned up within the horizon


def test_crash_cleanup_latency(benchmark):
    def compute():
        seeds = range(3)
        return (
            [cleanup_rounds(False, s) for s in seeds],
            [cleanup_rounds(True, s) for s in seeds],
        )

    without_fd, with_fd = benchmark.pedantic(compute, rounds=1, iterations=1)
    print()
    print(format_table(
        ["system", "rounds to full cleanup (per seed)", "mean"],
        [
            ["plain lpbcast", str(without_fd),
             sum(without_fd) / len(without_fd)],
            ["with failure detector", str(with_fd),
             sum(with_fd) / len(with_fd)],
        ],
        title=f"Crash-cleanup latency, n={N}, l={VIEW}, suspect={SUSPECT} rounds",
    ))

    # The detector bounds cleanup near its timeout; plain lpbcast relies on
    # luck (random truncation) and is much slower or never finishes.
    assert max(with_fd) <= SUSPECT + 10
    assert sum(with_fd) < sum(without_fd)


def test_fd_does_not_slow_dissemination(benchmark):
    def compute():
        results = {}
        for with_fd in (False, True):
            counts = []
            for seed in range(3):
                sim, nodes = build(with_fd, seed)
                log = DeliveryLog().attach(nodes)
                event = nodes[0].lpb_cast("x", now=0.0)
                sim.run(8)
                counts.append(log.delivery_count(event.event_id))
            results["fd" if with_fd else "plain"] = counts
        return results

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    print(f"\ncoverage after 8 rounds: {results}")
    assert all(c == N for c in results["fd"])
    assert all(c == N for c in results["plain"])
