"""Buffer-model bench: analytical Fig. 6(b) vs steady-state measurement.

The paper measures the reliability-vs-``|eventIds|m`` dependence but leaves
it unmodelled (Sec. 5.2 calls a precise expression "a difficult task").
``repro.analysis.buffers`` supplies a conservative first-order model:
reliability ≈ P(infection latency ≤ id-survival horizon B/λ).  This bench
runs a steady-state load (λ = 10 fresh notifications per round, continuous)
and sweeps B, checking that the model (a) lower-bounds the measurement,
(b) matches its monotone saturating shape, and (c) agrees at both extremes.
"""

import random

import figlib
from repro.analysis import predicted_reliability
from repro.core import LpbcastConfig
from repro.metrics import DeliveryLog, format_table, measure_reliability
from repro.sim import (
    BroadcastWorkload,
    NetworkModel,
    RoundSimulation,
    build_lpbcast_nodes,
)

N = 60
PUBLISHERS = 10          # x1 event/round each => lambda = 10 per round
SIZES = (10, 20, 40, 80)


def measured_reliability(buffer_size: int, seed: int) -> float:
    cfg = LpbcastConfig(
        fanout=3, view_max=10,
        event_ids_max=buffer_size, events_max=max(buffer_size, 10),
    )
    nodes = build_lpbcast_nodes(N, cfg, seed=seed)
    sim = RoundSimulation(
        NetworkModel(loss_rate=figlib.EPSILON, rng=random.Random(seed + 7)),
        seed=seed,
    )
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    workload = BroadcastWorkload(nodes[:PUBLISHERS], events_per_round=1,
                                 start=5, stop=25)
    sim.add_round_hook(workload.on_round)
    sim.run(45)
    # Score only mid-window events: they experience the steady-state load
    # on both sides (no warmup/cooldown edge effects).
    mid_window = [
        record.event_id for record in workload.records
        if 8 <= record.published_at <= 20
    ]
    report = measure_reliability(log, mid_window, [n.pid for n in nodes])
    return report.reliability


def test_buffer_model_vs_measurement(benchmark):
    def compute():
        rows = []
        for size in SIZES:
            measured = sum(
                measured_reliability(size, seed) for seed in range(3)
            ) / 3
            predicted = predicted_reliability(
                N, 3, size, publish_rate=float(PUBLISHERS)
            )
            rows.append((size, predicted, measured))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print()
    print(format_table(
        ["|eventIds|m", "model (lower bound)", "measured"],
        [list(row) for row in rows],
        title=f"Buffer model vs steady-state measurement "
              f"(n={N}, lambda={PUBLISHERS}/round)",
    ))

    predictions = [p for _, p, _ in rows]
    measurements = [m for _, _, m in rows]

    # (a) conservative: the model never exceeds measurement by more than
    # seed noise.
    for _, predicted, measured in rows:
        assert predicted <= measured + 0.05
    # (b) both monotone increasing in B.
    assert all(b >= a - 0.02 for a, b in zip(predictions, predictions[1:]))
    assert all(b >= a - 0.05 for a, b in zip(measurements, measurements[1:]))
    # (c) agreement at the generous end.
    assert abs(predictions[-1] - measurements[-1]) < 0.05
    # And the knee is real: both rise substantially across the sweep.
    assert measurements[-1] - measurements[0] > 0.2
    assert predictions[-1] - predictions[0] > 0.5
