"""Ablation — the compact per-sender id digest (Sec. 3.2).

"We suppose that these identifiers are unique, and include the identifier
of the originator.  That way, the buffer can be optimized by only retaining
for each sender the identifiers of notifications delivered since the last
one delivered in sequence."

Under mostly-ordered traffic the compact digest summarizes arbitrarily many
delivered ids in O(#senders) memory, where the plain FIFO forgets everything
past its bound.  This bench runs a sustained publication load and compares
(a) duplicate-detection quality (re-deliveries) and (b) the memory proxy
(tracked entries) between the two representations.
"""

import random

import figlib
from repro.core import LpbcastConfig
from repro.core.buffers import CompactEventIdDigest
from repro.metrics import DeliveryLog, format_table
from repro.sim import (
    BroadcastWorkload,
    NetworkModel,
    RoundSimulation,
    build_lpbcast_nodes,
)

N = 50
ROUNDS = 30


def run(compact: bool, seed: int):
    cfg = LpbcastConfig(
        fanout=3, view_max=10,
        compact_event_ids=compact,
        event_ids_max=40,      # FIFO bound; compact: out-of-order budget
        events_max=40,
    )
    nodes = build_lpbcast_nodes(N, cfg, seed=seed)
    sim = RoundSimulation(
        NetworkModel(loss_rate=figlib.EPSILON, rng=random.Random(seed + 3)),
        seed=seed,
    )
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    workload = BroadcastWorkload(nodes[:10], events_per_round=1,
                                 start=1, stop=25)
    sim.add_round_hook(workload.on_round)
    sim.run(ROUNDS)

    if compact:
        memory = sum(
            len(node.event_ids._insertion_order) +
            len(node.event_ids.senders())
            for node in nodes
        ) / N
    else:
        memory = sum(len(node.event_ids) for node in nodes) / N
    return {
        "published": len(workload),
        "redeliveries": log.redeliveries,
        "memory_per_node": memory,
    }


def test_compact_digest_vs_fifo(benchmark):
    def compute():
        seeds = range(3)

        def mean_of(key, runs):
            return sum(r[key] for r in runs) / len(runs)

        fifo_runs = [run(False, s) for s in seeds]
        compact_runs = [run(True, s) for s in seeds]
        return {
            "fifo |eventIds|m=40": {
                k: mean_of(k, fifo_runs) for k in fifo_runs[0]
            },
            "compact per-sender digest": {
                k: mean_of(k, compact_runs) for k in compact_runs[0]
            },
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [name, r["published"], r["redeliveries"], r["memory_per_node"]]
        for name, r in results.items()
    ]
    print()
    print(format_table(
        ["eventIds representation", "published", "re-deliveries",
         "avg tracked entries/node"],
        rows,
        title=f"Sec. 3.2 digest optimization, n={N}, 10 publishers x 25 rounds",
    ))

    fifo = results["fifo |eventIds|m=40"]
    compact = results["compact per-sender digest"]

    # 250 events flow through; the FIFO (bound 40) forgets most of them and
    # re-delivers late copies; the compact digest remembers every in-sequence
    # prefix in O(#senders) and suppresses (nearly) all duplicates.
    assert compact["redeliveries"] < fifo["redeliveries"] / 2
    # ...with comparable or smaller per-node memory.
    assert compact["memory_per_node"] <= fifo["memory_per_node"] * 1.5
