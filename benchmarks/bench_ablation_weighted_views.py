"""Ablation A1 — weighted views (Sec. 6.1).

"Every process should ideally be known by exactly l other processes."  The
weighted-view heuristic evicts well-known (high-weight) entries and
advertises poorly-known (low-weight) ones.  We compare the in-degree
distribution of long-running systems with uniform vs weighted views: the
heuristic should not degrade connectivity and should keep the in-degree
spread at least as tight.
"""

import random

import figlib
from repro.core import LpbcastConfig
from repro.metrics import format_table, in_degree_stats, is_partitioned
from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes


def run_system(weighted: bool, seed: int = 0, n: int = 125, l: int = 12,
               rounds: int = 30):
    cfg = LpbcastConfig(fanout=3, view_max=l, weighted_views=weighted)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    sim = RoundSimulation(
        NetworkModel(loss_rate=figlib.EPSILON, rng=random.Random(seed + 13)),
        seed=seed,
    )
    sim.add_nodes(nodes)
    sim.run(rounds)
    return nodes


def compute():
    results = {}
    for weighted in (False, True):
        stats = []
        for seed in range(3):
            nodes = run_system(weighted, seed=seed)
            stats.append(in_degree_stats(nodes))
        label = "weighted" if weighted else "uniform"
        results[label] = {
            "mean": sum(s.mean for s in stats) / len(stats),
            "std": sum(s.std for s in stats) / len(stats),
            "min": min(s.minimum for s in stats),
            "isolated": max(s.isolated for s in stats),
        }
    return results


def test_ablation_weighted_views(benchmark):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [label, r["mean"], r["std"], r["min"], r["isolated"]]
        for label, r in results.items()
    ]
    print()
    print(format_table(
        ["views", "mean in-degree", "std", "min", "isolated"], rows,
        title="Ablation A1: in-degree distribution, uniform vs weighted views",
    ))

    # Mean in-degree is l by conservation either way.
    for r in results.values():
        assert abs(r["mean"] - 12) < 0.2
        assert r["isolated"] == 0

    # The heuristic must not blow up the spread (it targets tightening it).
    assert results["weighted"]["std"] <= results["uniform"]["std"] * 1.25


def test_weighted_views_do_not_hurt_dissemination(benchmark):
    def curves():
        uniform = figlib.lpbcast_mean_curve(
            125, l=12, seeds=range(3), rounds=9,
        )
        weighted = figlib.lpbcast_mean_curve(
            125, l=12, seeds=range(3), rounds=9,
            config_overrides={"weighted_views": True},
        )
        return uniform, weighted

    uniform, weighted = benchmark.pedantic(curves, rounds=1, iterations=1)
    print()
    print(format_table(
        ["round", "uniform", "weighted"],
        [[r, uniform[r], weighted[r]] for r in range(len(uniform))],
        title="Ablation A1: infection curves, uniform vs weighted views",
    ))
    assert weighted[-1] >= 124
    # Latency comparable: mid-epidemic difference bounded.
    for r in range(3, 8):
        assert abs(weighted[r] - uniform[r]) <= 0.25 * 125
