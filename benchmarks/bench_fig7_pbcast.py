"""Figure 7 — pbcast with the lpbcast membership (Sec. 6.2).

(a) infection curves: lpbcast vs pbcast-with-partial-view vs
    pbcast-with-total-view (n = 125, l = 15, F = 5).  Paper shape: the
    partial-view pbcast tracks the total-view pbcast (the membership layer
    preserves behaviour), and lpbcast is at least as fast because its hops
    and repetitions are unlimited.
(b) delivery reliability of pbcast over the partial-view membership for
    different l — the same weak dependence as lpbcast's Fig. 6(a).
"""

import figlib
from repro.metrics import format_series, format_table, merge_curves


def test_fig7a_protocol_comparison(benchmark):
    series = benchmark.pedantic(
        lambda: figlib.fig7a_series(seeds=range(5), rounds=7),
        rounds=1, iterations=1,
    )
    curves = merge_curves(series)
    print()
    print(format_series(
        "round", list(range(8)), curves,
        title="Figure 7(a): infected processes per round (n=125, l=15, F=5)",
    ))

    lpb = curves["lpbcast l=15 F=5"]
    partial = curves["pbcast partial view"]
    total = curves["pbcast total view"]

    # All three infect (essentially) the whole system.
    assert lpb[-1] >= 124.5
    assert partial[-1] >= 122
    assert total[-1] >= 122

    # The membership layer preserves pbcast's behaviour: partial ~ total.
    for r in range(2, 7):
        assert abs(partial[r] - total[r]) <= 0.15 * 125

    # lpbcast's unlimited hops/repetitions: at least as fast overall
    # (area under the growth phase).
    assert sum(lpb[:7]) >= sum(partial[:7]) - 15


def test_fig7b_pbcast_reliability_vs_view_size(benchmark):
    l_values, reliabilities = benchmark.pedantic(
        lambda: figlib.fig7b_series(seeds=range(3)), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["view size l", "reliability (1-beta)"],
        list(zip(l_values, reliabilities)),
        title="Figure 7(b): pbcast + partial view reliability (F=5)",
    ))

    # Same qualitative story as Fig. 6(a): high reliability, weak l-dependence.
    assert all(r > 0.6 for r in reliabilities)
    assert max(reliabilities) - min(reliabilities) < 0.12
