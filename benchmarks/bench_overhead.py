"""Overhead bench — protocol load and its stability (Sec. 3.3).

"The network thus experiences little fluctuations in terms of overall load
due to gossip messages, as long as the number of processes inside Π and also
T remain unchanged."

Measures per-round protocol message counts and serialized byte volume for
lpbcast and pbcast under the same workload, and verifies the load-stability
claim: lpbcast's *message count* is exactly n·F per round regardless of
application traffic (payload volume grows instead), while pbcast adds
data/solicit traffic on top of its digests.
"""

import random

import figlib
from repro.core import LpbcastConfig
from repro.core.codec import wire_size
from repro.metrics import format_table
from repro.metrics.bandwidth import BandwidthMeter
from repro.pbcast import FIRST_PHASE_NONE, PbcastConfig, build_pbcast_nodes
from repro.sim import BroadcastWorkload, NetworkModel, RoundSimulation, build_lpbcast_nodes

ROUNDS = 12
N = 60


def run_lpbcast(rate: int, seed: int = 0):
    cfg = LpbcastConfig(fanout=3, view_max=12)
    nodes = build_lpbcast_nodes(N, cfg, seed=seed)
    meter = BandwidthMeter()
    for node in nodes:
        meter.instrument(node)
    sim = RoundSimulation(
        NetworkModel(loss_rate=figlib.EPSILON, rng=random.Random(seed + 1)),
        seed=seed,
    )
    sim.add_round_hook(meter.on_round)
    sim.add_nodes(nodes)
    if rate:
        workload = BroadcastWorkload(nodes[:10], events_per_round=rate,
                                     start=2, stop=10)
        sim.add_round_hook(workload.on_round)
    sim.run(ROUNDS)
    return meter


def run_pbcast(rate: int, seed: int = 0):
    cfg = PbcastConfig(fanout=3, view_max=12, first_phase=FIRST_PHASE_NONE)
    nodes = build_pbcast_nodes(N, cfg, seed=seed, membership="partial")
    meter = BandwidthMeter()
    for node in nodes:
        meter.instrument(node)
    sim = RoundSimulation(
        NetworkModel(loss_rate=figlib.EPSILON, rng=random.Random(seed + 1)),
        seed=seed,
    )
    sim.add_round_hook(meter.on_round)
    sim.add_nodes(nodes)
    if rate:
        def publish(node, now):
            notification, first = node.publish(None, now)
            sim.inject(node.pid, first)
            return notification

        workload = BroadcastWorkload(nodes[:10], events_per_round=rate,
                                     start=2, stop=10, publish_fn=publish)
        sim.add_round_hook(workload.on_round)
    sim.run(ROUNDS)
    return meter


def test_overhead_and_stability(benchmark):
    def compute():
        return {
            "lpbcast idle": run_lpbcast(rate=0),
            "lpbcast loaded": run_lpbcast(rate=2),
            "pbcast idle": run_pbcast(rate=0),
            "pbcast loaded": run_pbcast(rate=2),
        }

    meters = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for name, meter in meters.items():
        rows.append([
            name,
            meter.total_messages(),
            round(meter.total_messages() / ROUNDS / N, 2),
            meter.load_stability(),
            " ".join(f"{k}:{v}" for k, v in sorted(meter.messages_by_kind().items())),
        ])
    print()
    print(format_table(
        ["system", "msgs total", "msgs/round/proc", "load CV", "by kind"],
        rows,
        title=f"Protocol overhead, n={N}, F=3, {ROUNDS} rounds",
    ))

    # lpbcast: exactly F messages per process per round, loaded or not.
    assert meters["lpbcast idle"].total_messages() == N * 3 * ROUNDS
    assert meters["lpbcast loaded"].total_messages() == N * 3 * ROUNDS
    assert meters["lpbcast loaded"].load_stability() < 1e-9

    # pbcast adds solicit/data traffic under load.
    assert (meters["pbcast loaded"].total_messages()
            > meters["pbcast idle"].total_messages())
    kinds = meters["pbcast loaded"].messages_by_kind()
    assert "PbcastSolicit" in kinds and "PbcastData" in kinds


def test_wire_sizes(benchmark):
    from repro.core import GossipMessage
    from repro.core.events import Unsubscription
    from repro.core.ids import EventId
    from repro.core.events import Notification

    def compute():
        empty = GossipMessage(sender=1)
        loaded = GossipMessage(
            sender=1,
            subs=tuple(range(15)),
            unsubs=tuple(Unsubscription(i, 1.0) for i in range(5)),
            events=tuple(
                Notification(EventId(2, s), "x" * 32, 0.0) for s in range(1, 11)
            ),
            event_ids=tuple(EventId(3, s) for s in range(1, 61)),
        )
        return wire_size(empty), wire_size(loaded)

    empty_size, loaded_size = benchmark.pedantic(compute, rounds=1, iterations=1)
    print(f"\nempty gossip: {empty_size} B, fully loaded gossip: {loaded_size} B")
    assert empty_size < 100
    assert loaded_size < 4096  # a loaded gossip still fits small datagrams
