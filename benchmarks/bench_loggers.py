"""Logger-extension bench (rpbcast-style strong reliability, Sec. 7).

Quantifies what the deterministic third phase buys and costs: under harsh
conditions (25% loss, starved buffers, no digest-implies-delivery shortcut),
plain lpbcast leaves (event, process) pairs undelivered; adding two loggers
closes the gap completely, at a bounded extra message cost.
"""

import random

from repro.core import LpbcastConfig
from repro.loggers import build_logged_system
from repro.metrics import format_table
from repro.metrics.bandwidth import BandwidthMeter
from repro.sim import NetworkModel, RoundSimulation

N = 40
PUBLISHERS = 8
ROUNDS = 40
LOSS = 0.25


def run(with_loggers: bool, seed: int = 1):
    cfg = LpbcastConfig(
        fanout=3, view_max=10, events_max=3, event_ids_max=6,
        digest_implies_delivery=False,
    )
    clients, loggers = build_logged_system(N, logger_count=2, config=cfg,
                                           seed=seed)
    nodes = clients + (loggers if with_loggers else [])
    if not with_loggers:
        for client in clients:
            client.loggers = ()
    meter = BandwidthMeter()
    for node in nodes:
        meter.instrument(node)
    sim = RoundSimulation(
        NetworkModel(loss_rate=LOSS, rng=random.Random(seed + 9)), seed=seed
    )
    sim.add_round_hook(meter.on_round)
    sim.add_nodes(nodes)
    published = []
    for client in clients[:PUBLISHERS]:
        notification, uploads = client.publish_logged(None, now=0.0)
        published.append(notification)
        if with_loggers:
            sim.inject(client.pid, uploads)
    sim.run(ROUNDS)
    missing = sum(
        1
        for notification in published
        for client in clients
        if not client.has_contiguously_delivered(notification.event_id)
    )
    recovered = sum(client.recovered_events for client in clients)
    return {
        "missing_pairs": missing,
        "total_pairs": len(published) * len(clients),
        "recovered": recovered,
        "messages": meter.total_messages(),
    }


def test_logger_strong_reliability(benchmark):
    def compute():
        return {
            "plain lpbcast": run(with_loggers=False),
            "with 2 loggers": run(with_loggers=True),
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [name, r["missing_pairs"], r["total_pairs"], r["recovered"],
         r["messages"]]
        for name, r in results.items()
    ]
    print()
    print(format_table(
        ["system", "missing pairs", "total pairs", "recovered", "messages"],
        rows,
        title=f"Logger extension: n={N}, loss={LOSS}, starved buffers, "
              f"{ROUNDS} rounds",
    ))

    plain = results["plain lpbcast"]
    logged = results["with 2 loggers"]
    # The probabilistic protocol alone leaves gaps in this regime...
    assert plain["missing_pairs"] > 0
    # ...the deterministic third phase closes all of them...
    assert logged["missing_pairs"] == 0
    assert logged["recovered"] > 0
    # ...at a bounded cost (well under 3x the message volume).
    assert logged["messages"] < 3 * plain["messages"]
