"""Hot-path throughput benchmarks + the perf-regression harness.

This is the measurement side of the round-engine hot-path work: four small
benchmarks covering the paths the optimization touched, written to
``BENCH_hotpath.json`` at the repo root in a fixed, schema-validated shape
so successive runs (and future PRs) are comparable:

* ``node_tick`` — one warmed lpbcast node's ``on_tick`` throughput
  (gossip construction, membership payload, view/buffer truncation);
* ``node_receive`` — ``handle_message`` throughput against a pre-built
  gossip stream (digest processing, membership phases I/II, delivery);
* ``serial_round_loop`` — the end-to-end serial engine at n=5000, the
  scenario behind the "≥1.5x rounds/s" acceptance bar;
* ``shard_sync`` — the sharded engine's cross-shard payload exchange,
  read straight from the ``time.shard.sync`` phase timer;
* ``codec`` — wire-codec encode/decode throughput and encoded size over a
  captured corpus of real gossip traffic, for both the JSON and binary
  formats, plus the golden byte-vector check and the decode fast-path
  speedup against the recorded pre-cursor baseline;
* ``columnar`` — the mega-scale columnar engine: wall-clock for n=100,000
  over 20 rounds (acceptance bar: under 60 s), the columnar-vs-serial
  rounds/s speedup at the serial loop's n (bar: ≥20x), and a fixed-seed
  honoured-subset parity check against the serial engine;
* ``mega_1m`` — the bit-packed engine at n=1,000,000 (full mode; the
  ``--check`` smoke runs n=200,000 over ``workers=2``): build and round
  wall-clock, peak RSS via ``resource.getrusage``, resident state
  bytes-per-node, and a workers=1 vs workers=N honoured-fingerprint
  cross-check (bars, full mode: build + 10 rounds ≤ 120 s, ≤ 8 GB RSS);
* ``multicore`` — shared-memory speedup at n=100,000: the same scenario
  timed at workers=1 and workers=N with byte-identical honoured
  fingerprints required (speed bar ≥2x, enforced in full mode only when
  the host has ≥4 cores — worker count is always explicit, never derived
  from the machine).

``--check`` runs the same code at reduced sizes and asserts only
*correctness* properties — the emitted document validates against the
schema, the serial/sharded engines produce identical counter fingerprints,
the columnar honoured subset matches serial, both mega sections'
worker-count parity holds, the golden byte vectors hold and the binary
codec stays ≥2x smaller than JSON — never wall-clock thresholds, so it is
safe on noisy shared CI runners.  The wall-clock acceptance bars (60 s /
20x / 120 s / 8 GB / 2x-on-4-cores) are enforced in full mode only.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import random
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if not any(os.path.basename(p) == "src" for p in sys.path):
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core import LpbcastConfig  # noqa: E402
from repro.core.message import GossipMessage  # noqa: E402
from repro.sim import (  # noqa: E402
    NetworkModel,
    build_lpbcast_nodes,
    create_simulation,
)

SCHEMA_VERSION = 4

#: Binary decode throughput recorded before the varint local-offset-cursor
#: fast path landed (same corpus, same machine class) — the denominator of
#: the codec section's ``decode_speedup_vs_baseline``.
DECODE_BASELINE_PER_SEC = 73_933.3

#: The document contract, checked by :func:`validate`: each leaf is the
#: required type (a tuple means "any of these types").  Kept dependency-free
#: on purpose — the container has no jsonschema.
SCHEMA = {
    "schema_version": int,
    "mode": str,
    "python": str,
    "platform": str,
    "results": {
        "node_tick": {
            "iterations": int,
            "seconds": float,
            "ticks_per_sec": float,
        },
        "node_receive": {
            "iterations": int,
            "seconds": float,
            "messages_per_sec": float,
        },
        "serial_round_loop": {
            "n": int,
            "rounds": int,
            "seconds": float,
            "rounds_per_sec": float,
        },
        "shard_sync": {
            "n": int,
            "shards": int,
            "rounds": int,
            "sync_count": int,
            "sync_seconds_total": float,
            "sync_seconds_mean": float,
        },
        "parity": {
            "n": int,
            "rounds": int,
            "serial_sha256": str,
            "sharded_sha256": str,
            "agree": bool,
        },
        "columnar": {
            "backend": str,
            "mega_n": int,
            "mega_rounds": int,
            "mega_seconds": float,
            "mega_rounds_per_sec": float,
            "speedup_n": int,
            "speedup_rounds": int,
            "serial_rounds_per_sec": float,
            "columnar_rounds_per_sec": float,
            "speedup": float,
            "honoured_parity": bool,
        },
        "mega_1m": {
            "n": int,
            "rounds": int,
            "workers": int,
            "build_seconds": float,
            "run_seconds": float,
            "seconds_total": float,
            "rounds_per_sec": float,
            "peak_rss_bytes": int,
            "workers_peak_rss_bytes": int,
            "state_bytes": int,
            "bytes_per_node": float,
            "parity_n": int,
            "parity_workers": int,
            "honoured_parity": bool,
        },
        "multicore": {
            "n": int,
            "rounds": int,
            "workers": int,
            "cores": int,
            "single_rounds_per_sec": float,
            "multi_rounds_per_sec": float,
            "speedup": float,
            "honoured_parity": bool,
        },
        "codec": {
            "corpus_n": int,
            "corpus_gossips": int,
            "json_bytes_per_gossip": float,
            "binary_bytes_per_gossip": float,
            "compression_ratio": float,
            "json_encode_per_sec": float,
            "json_decode_per_sec": float,
            "binary_encode_per_sec": float,
            "binary_decode_per_sec": float,
            "decode_baseline_per_sec": float,
            "decode_speedup_vs_baseline": float,
            "golden_vectors_ok": bool,
        },
    },
}


def validate(doc, spec=SCHEMA, path="$"):
    """Recursively check ``doc`` against ``spec``; raises ValueError with
    the offending path on a missing key or type mismatch."""
    if isinstance(spec, dict):
        if not isinstance(doc, dict):
            raise ValueError(f"{path}: expected object, got {type(doc).__name__}")
        for key, sub in spec.items():
            if key not in doc:
                raise ValueError(f"{path}.{key}: missing")
            validate(doc[key], sub, f"{path}.{key}")
        return
    if spec is float:
        spec = (int, float)  # a whole-valued float serializes as int
    if not isinstance(doc, spec):
        wanted = getattr(spec, "__name__", spec)
        raise ValueError(f"{path}: expected {wanted}, got {type(doc).__name__}")
    if isinstance(doc, bool) and spec is int:
        raise ValueError(f"{path}: expected int, got bool")


# -- scenarios ---------------------------------------------------------------

def _warmed_pair(cfg_seed=11):
    """Two connected nodes from a small warmed system, for microbenches."""
    cfg = LpbcastConfig(fanout=3, view_max=10)
    nodes = build_lpbcast_nodes(64, cfg, seed=cfg_seed)
    sim = create_simulation("serial", seed=cfg_seed)
    sim.add_nodes(nodes)
    nodes[0].lpb_cast("warm", 0.0)
    sim.run(3)  # fill views, buffers and digests with realistic content
    return nodes[0], nodes[1]


def bench_node_tick(iterations):
    node, _ = _warmed_pair()
    now = 10.0
    begin = time.perf_counter()
    for i in range(iterations):
        node.on_tick(now + i)
    seconds = time.perf_counter() - begin
    return {"iterations": iterations, "seconds": seconds,
            "ticks_per_sec": iterations / seconds}


def bench_node_receive(iterations):
    sender, receiver = _warmed_pair()
    # A realistic gossip stream: actual tick output, replayed round-robin.
    stream = []
    now = 10.0
    while len(stream) < 64:
        ticked = sender.on_tick(now)
        stream.extend(out.message for out in ticked
                      if isinstance(out.message, GossipMessage))
        now += 1.0
        if now > 100.0 and not stream:
            raise RuntimeError("warmed sender produced no gossip traffic")
    handle = receiver.handle_message
    src = sender.pid
    begin = time.perf_counter()
    for i in range(iterations):
        handle(src, stream[i % len(stream)], now + i)
    seconds = time.perf_counter() - begin
    return {"iterations": iterations, "seconds": seconds,
            "messages_per_sec": iterations / seconds}


def bench_serial_round_loop(n, rounds, warmup=2, seed=42):
    cfg = LpbcastConfig(fanout=3, view_max=25)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    sim = create_simulation("serial", seed=seed)
    sim.add_nodes(nodes)
    for i in range(3):
        sim.nodes[nodes[i].pid].lpb_cast(f"warm-{i}", 0.0)
    sim.run(warmup)
    begin = time.perf_counter()
    sim.run(rounds)
    seconds = time.perf_counter() - begin
    return {"n": n, "rounds": rounds, "seconds": seconds,
            "rounds_per_sec": rounds / seconds}


def bench_shard_sync(n, rounds, shards, seed=43):
    cfg = LpbcastConfig(fanout=3, view_max=25)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    sim = create_simulation("sharded", seed=seed, shards=shards)
    sim.add_nodes(nodes)
    sim.nodes[nodes[0].pid].lpb_cast("seed-event", 0.0)
    try:
        sim.run(rounds)
        stats = sim.telemetry.histogram_stats("time.shard.sync")
    finally:
        sim.close()
    count, total = (stats[0], stats[1]) if stats else (0, 0.0)
    return {"n": n, "shards": shards, "rounds": rounds,
            "sync_count": count, "sync_seconds_total": total,
            "sync_seconds_mean": total / count if count else 0.0}


def _counter_sha256(sim):
    items = []
    for (name, key), value in sim.telemetry.snapshot()["counters"].items():
        items.append((name, tuple((str(k), repr(v)) for k, v in key), value))
    items.sort()
    return hashlib.sha256(repr(items).encode()).hexdigest()


def bench_parity(n, rounds, seed=20260806, shards=2):
    """Fingerprint the counter state of the same run on both engines —
    the bench-side twin of the golden test in tests/telemetry."""
    digests = {}
    for engine in ("serial", "sharded"):
        cfg = LpbcastConfig(fanout=3, view_max=15)
        nodes = build_lpbcast_nodes(n, cfg, seed=seed)
        network = NetworkModel(loss_rate=0.05, rng=random.Random(seed + 1))
        extra = {"shards": shards} if engine == "sharded" else {}
        sim = create_simulation(engine, network=network, seed=seed, **extra)
        sim.add_nodes(nodes)
        sim.nodes[nodes[0].pid].lpb_cast("evt", 0.0)
        try:
            sim.run(rounds)
            digests[engine] = _counter_sha256(sim)
        finally:
            close = getattr(sim, "close", None)
            if close is not None:
                close()
    return {"n": n, "rounds": rounds,
            "serial_sha256": digests["serial"],
            "sharded_sha256": digests["sharded"],
            "agree": digests["serial"] == digests["sharded"]}


def bench_columnar(mega_n, mega_rounds, speedup_rounds, serial_loop,
                   seed=7):
    """The mega-scale engine: n=100k wall-clock, speedup vs serial, and a
    fixed-seed honoured-subset parity check.

    The mega run bootstraps columns directly (:meth:`build` — no per-node
    objects); the speedup run ingests the same prebuilt nodes the serial
    loop used so the two engines time the identical scenario shape.
    """
    from repro.sim import ColumnarRoundSimulation
    from repro.sim.columnar_runner import honoured_records
    from repro.telemetry import counter_records

    cfg = LpbcastConfig(fanout=3, view_max=25)
    sim = ColumnarRoundSimulation.build(mega_n, cfg, seed=seed)
    sim.nodes[0].lpb_cast("mega", 0.0)
    begin = time.perf_counter()
    sim.run(mega_rounds)
    mega_seconds = time.perf_counter() - begin

    n = serial_loop["n"]
    nodes = build_lpbcast_nodes(n, cfg, seed=42)
    csim = create_simulation("columnar", seed=42)
    csim.add_nodes(nodes)
    for i in range(3):
        csim.nodes[nodes[i].pid].lpb_cast(f"warm-{i}", 0.0)
    csim.run(2)
    begin = time.perf_counter()
    csim.run(speedup_rounds)
    columnar_rps = speedup_rounds / (time.perf_counter() - begin)
    serial_rps = serial_loop["rounds_per_sec"]

    honoured = {}
    for engine in ("serial", "columnar"):
        pnodes = build_lpbcast_nodes(64, cfg, seed=9)
        psim = create_simulation(engine, seed=9)
        psim.add_nodes(pnodes)
        psim.nodes[pnodes[0].pid].lpb_cast("evt", 0.0)
        psim.run(6)
        honoured[engine] = honoured_records(counter_records(psim.telemetry))

    return {
        "backend": sim.backend,
        "mega_n": mega_n,
        "mega_rounds": mega_rounds,
        "mega_seconds": mega_seconds,
        "mega_rounds_per_sec": mega_rounds / mega_seconds,
        "speedup_n": n,
        "speedup_rounds": speedup_rounds,
        "serial_rounds_per_sec": serial_rps,
        "columnar_rounds_per_sec": columnar_rps,
        "speedup": columnar_rps / serial_rps,
        "honoured_parity": honoured["serial"] == honoured["columnar"],
    }


def _rss_bytes():
    """Peak resident set of this process and of its reaped children, in
    bytes (``ru_maxrss`` is KB on Linux, bytes on macOS)."""
    import resource
    scale = 1 if sys.platform == "darwin" else 1024
    return (resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * scale,
            resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss * scale)


def bench_mega_1m(n, rounds, workers, parity_n, parity_rounds,
                  parity_workers, seed=13):
    """Million-node scale on the bit-packed columnar engine.

    Times the direct columnar bootstrap (no per-node objects) and the
    round loop, records peak RSS and resident engine-state bytes per node,
    then cross-checks a smaller fixed-seed scenario at workers=1 vs
    workers=``parity_workers``: the honoured fingerprints must be
    byte-identical (the multi-core mode's determinism contract).
    """
    from repro.sim.columnar_runner import (
        ColumnarRoundSimulation,
        honoured_fingerprint,
    )
    from repro.telemetry import counter_records

    cfg = LpbcastConfig(fanout=3, view_max=25)
    begin = time.perf_counter()
    sim = ColumnarRoundSimulation.build(n, cfg, seed=seed, workers=workers)
    build_seconds = time.perf_counter() - begin
    try:
        for i in range(3):
            sim.nodes[i].lpb_cast(f"mega-{i}", 0.0)
        begin = time.perf_counter()
        sim.run(rounds)
        run_seconds = time.perf_counter() - begin
        state_bytes = sim.memory_bytes()
    finally:
        sim.close()
    rss_self, rss_children = _rss_bytes()

    fingerprints = {}
    for w in (1, parity_workers):
        psim = ColumnarRoundSimulation.build(parity_n, cfg, seed=seed + 1,
                                             workers=w)
        try:
            for i in range(3):
                psim.nodes[i].lpb_cast(f"parity-{i}", 0.0)
            psim.run(parity_rounds)
            fingerprints[w] = honoured_fingerprint(
                counter_records(psim.telemetry))
        finally:
            psim.close()

    return {
        "n": n,
        "rounds": rounds,
        "workers": workers,
        "build_seconds": build_seconds,
        "run_seconds": run_seconds,
        "seconds_total": build_seconds + run_seconds,
        "rounds_per_sec": rounds / run_seconds,
        "peak_rss_bytes": rss_self,
        "workers_peak_rss_bytes": rss_children,
        "state_bytes": state_bytes,
        "bytes_per_node": state_bytes / n,
        "parity_n": parity_n,
        "parity_workers": parity_workers,
        "honoured_parity": fingerprints[1] == fingerprints[parity_workers],
    }


def bench_multicore(n, rounds, workers, seed=17):
    """Shared-memory speedup: the identical scenario timed at workers=1
    and workers=``workers``, with byte-identical honoured fingerprints
    required — a speedup that changed the output would be a bug, not a
    result."""
    from repro.sim.columnar_runner import (
        ColumnarRoundSimulation,
        honoured_fingerprint,
    )
    from repro.telemetry import counter_records

    cfg = LpbcastConfig(fanout=3, view_max=25)
    rps, fps = {}, {}
    for w in (1, workers):
        sim = ColumnarRoundSimulation.build(n, cfg, seed=seed, workers=w)
        try:
            for i in range(3):
                sim.nodes[i].lpb_cast(f"mc-{i}", 0.0)
            sim.run(2)  # warm: infect enough state that rounds do real work
            begin = time.perf_counter()
            sim.run(rounds)
            rps[w] = rounds / (time.perf_counter() - begin)
            fps[w] = honoured_fingerprint(counter_records(sim.telemetry))
        finally:
            sim.close()
    return {
        "n": n,
        "rounds": rounds,
        "workers": workers,
        "cores": os.cpu_count() or 1,
        "single_rounds_per_sec": rps[1],
        "multi_rounds_per_sec": rps[workers],
        "speedup": rps[workers] / rps[1],
        "honoured_parity": fps[1] == fps[workers],
    }


def bench_codec(n, rounds, seed=2026):
    """Encode/decode throughput and size over real gossip traffic.

    The corpus is every gossip emitted during a fixed-seed serial run,
    captured at the engine's own accounting point, so the numbers reflect
    genuine digest/view/event mixes rather than synthetic shapes.
    """
    from repro.core.codec import from_json, to_json
    from repro.telemetry import Telemetry
    from repro.wire import check_golden_vectors, decode_binary, encode_binary
    from repro.wire.golden import GOLDEN_VECTORS

    class _Capture(Telemetry):
        def __init__(self):
            super().__init__()
            self.messages = []

        def record_sends(self, round_no, src, outgoings):
            self.messages.extend(out.message for out in outgoings)
            super().record_sends(round_no, src, outgoings)

    cfg = LpbcastConfig(fanout=4, view_max=12)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    sim = create_simulation("serial", seed=seed)
    sim.telemetry = _Capture()
    sim.add_nodes(nodes)
    for i in range(1, 4):
        sim.nodes[i].lpb_cast(f"event-{i}", float(i))
    sim.run(rounds)
    gossips = [m for m in sim.telemetry.messages
               if isinstance(m, GossipMessage)]

    json_blobs = [to_json(m).encode("utf-8") for m in gossips]
    binary_blobs = [encode_binary(m) for m in gossips]

    def timed(fn, items):
        begin = time.perf_counter()
        for item in items:
            fn(item)
        return len(items) / (time.perf_counter() - begin)

    json_bytes = sum(len(b) for b in json_blobs)
    binary_bytes = sum(len(b) for b in binary_blobs)
    decode_per_sec = timed(decode_binary, binary_blobs)
    return {
        "corpus_n": n,
        "corpus_gossips": len(gossips),
        "json_bytes_per_gossip": json_bytes / len(gossips),
        "binary_bytes_per_gossip": binary_bytes / len(gossips),
        "compression_ratio": json_bytes / binary_bytes,
        "json_encode_per_sec": timed(to_json, gossips),
        "json_decode_per_sec": timed(
            from_json, [b.decode("utf-8") for b in json_blobs]),
        "binary_encode_per_sec": timed(encode_binary, gossips),
        "binary_decode_per_sec": decode_per_sec,
        "decode_baseline_per_sec": DECODE_BASELINE_PER_SEC,
        "decode_speedup_vs_baseline": decode_per_sec / DECODE_BASELINE_PER_SEC,
        "golden_vectors_ok": check_golden_vectors() == len(GOLDEN_VECTORS),
    }


# -- driver ------------------------------------------------------------------

FULL_PARAMS = dict(tick_iters=2000, recv_iters=20000, loop_n=5000,
                   loop_rounds=8, sync_n=2000, sync_rounds=5, sync_shards=4,
                   parity_n=200, parity_rounds=8,
                   codec_n=500, codec_rounds=6,
                   mega_n=100_000, mega_rounds=20, col_rounds=40,
                   mega1m_n=1_000_000, mega1m_rounds=10, mega1m_workers=1,
                   mega1m_parity_n=100_000, mega1m_parity_rounds=5,
                   mega1m_parity_workers=2,
                   mc_n=100_000, mc_rounds=10, mc_workers=4)
CHECK_PARAMS = dict(tick_iters=200, recv_iters=1000, loop_n=200,
                    loop_rounds=3, sync_n=120, sync_rounds=3, sync_shards=2,
                    parity_n=96, parity_rounds=6,
                    codec_n=150, codec_rounds=4,
                    mega_n=1500, mega_rounds=4, col_rounds=3,
                    # The CI smoke's reduced mega run: n=200k over two
                    # shared-memory workers, parity cross-checked.
                    mega1m_n=200_000, mega1m_rounds=10, mega1m_workers=2,
                    mega1m_parity_n=50_000, mega1m_parity_rounds=4,
                    mega1m_parity_workers=2,
                    mc_n=5_000, mc_rounds=4, mc_workers=2)


def run(params, mode):
    serial_loop = bench_serial_round_loop(
        params["loop_n"], params["loop_rounds"])
    results = {
        "node_tick": bench_node_tick(params["tick_iters"]),
        "node_receive": bench_node_receive(params["recv_iters"]),
        "serial_round_loop": serial_loop,
        "shard_sync": bench_shard_sync(
            params["sync_n"], params["sync_rounds"], params["sync_shards"]),
        "parity": bench_parity(params["parity_n"], params["parity_rounds"]),
        # Codec before the mega sections: the 1M run's allocation churn
        # depresses interpreter-bound throughput numbers measured after it.
        "codec": bench_codec(params["codec_n"], params["codec_rounds"]),
        "columnar": bench_columnar(
            params["mega_n"], params["mega_rounds"], params["col_rounds"],
            serial_loop),
        "mega_1m": bench_mega_1m(
            params["mega1m_n"], params["mega1m_rounds"],
            params["mega1m_workers"], params["mega1m_parity_n"],
            params["mega1m_parity_rounds"], params["mega1m_parity_workers"]),
        "multicore": bench_multicore(
            params["mc_n"], params["mc_rounds"], params["mc_workers"]),
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": results,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="toy sizes; assert schema + engine parity only "
                             "(no wall-clock thresholds) — the CI mode")
    parser.add_argument("--output", default=os.path.join(
        REPO_ROOT, "BENCH_hotpath.json"))
    args = parser.parse_args(argv)

    mode = "check" if args.check else "full"
    doc = run(CHECK_PARAMS if args.check else FULL_PARAMS, mode)
    validate(doc)
    if not doc["results"]["parity"]["agree"]:
        print("FAIL: serial and sharded counter fingerprints differ",
              file=sys.stderr)
        print(json.dumps(doc["results"]["parity"], indent=2), file=sys.stderr)
        return 1
    codec = doc["results"]["codec"]
    if not codec["golden_vectors_ok"]:
        print("FAIL: golden byte vectors no longer hold — the binary wire "
              "format changed", file=sys.stderr)
        return 1
    if codec["compression_ratio"] < 2.0:
        print(f"FAIL: binary codec only {codec['compression_ratio']:.2f}x "
              f"smaller than JSON (floor is 2x)", file=sys.stderr)
        return 1
    columnar = doc["results"]["columnar"]
    if not columnar["honoured_parity"]:
        print("FAIL: columnar honoured counter subset diverges from serial",
              file=sys.stderr)
        return 1
    mega = doc["results"]["mega_1m"]
    if not mega["honoured_parity"]:
        print(f"FAIL: mega_1m honoured fingerprint differs between "
              f"workers=1 and workers={mega['parity_workers']} at "
              f"n={mega['parity_n']}", file=sys.stderr)
        return 1
    multicore = doc["results"]["multicore"]
    if not multicore["honoured_parity"]:
        print(f"FAIL: multicore honoured fingerprint differs between "
              f"workers=1 and workers={multicore['workers']} at "
              f"n={multicore['n']}", file=sys.stderr)
        return 1
    if mode == "full":
        # Wall-clock acceptance bars, full mode only (CI check runs on
        # noisy shared runners and asserts correctness, not speed).
        if columnar["mega_seconds"] >= 60.0:
            print(f"FAIL: columnar n={columnar['mega_n']} took "
                  f"{columnar['mega_seconds']:.1f}s for "
                  f"{columnar['mega_rounds']} rounds (bar: <60s)",
                  file=sys.stderr)
            return 1
        if columnar["speedup"] < 20.0:
            print(f"FAIL: columnar only {columnar['speedup']:.1f}x faster "
                  f"than serial at n={columnar['speedup_n']} (bar: ≥20x)",
                  file=sys.stderr)
            return 1
        if mega["seconds_total"] > 120.0:
            print(f"FAIL: mega_1m n={mega['n']} build + {mega['rounds']} "
                  f"rounds took {mega['seconds_total']:.1f}s (bar: ≤120s)",
                  file=sys.stderr)
            return 1
        if mega["peak_rss_bytes"] > 8 * 1024**3:
            print(f"FAIL: mega_1m peak RSS "
                  f"{mega['peak_rss_bytes'] / 1024**3:.2f} GB (bar: ≤8 GB)",
                  file=sys.stderr)
            return 1
        # The multi-core speed bar only means something with real cores
        # under the workers; parity above is asserted unconditionally.
        if multicore["cores"] >= 4 and multicore["speedup"] < 2.0:
            print(f"FAIL: multicore only {multicore['speedup']:.2f}x at "
                  f"n={multicore['n']} with workers="
                  f"{multicore['workers']} on {multicore['cores']} cores "
                  f"(bar: ≥2x)", file=sys.stderr)
            return 1
    with open(args.output, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")

    r = doc["results"]
    print(f"wrote {args.output} (mode={mode})")
    print(f"  node_tick        : {r['node_tick']['ticks_per_sec']:>12.0f} ticks/s")
    print(f"  node_receive     : {r['node_receive']['messages_per_sec']:>12.0f} msgs/s")
    print(f"  serial_round_loop: {r['serial_round_loop']['rounds_per_sec']:>12.3f} rounds/s "
          f"(n={r['serial_round_loop']['n']})")
    print(f"  shard_sync       : {r['shard_sync']['sync_seconds_mean'] * 1e3:>12.3f} ms/sync "
          f"(shards={r['shard_sync']['shards']})")
    print(f"  parity           : engines agree "
          f"({r['parity']['serial_sha256'][:12]}…)")
    print(f"  columnar         : n={r['columnar']['mega_n']} x "
          f"{r['columnar']['mega_rounds']} rounds in "
          f"{r['columnar']['mega_seconds']:.2f}s "
          f"({r['columnar']['backend']}); "
          f"{r['columnar']['speedup']:.1f}x serial at "
          f"n={r['columnar']['speedup_n']}")
    print(f"  mega_1m          : n={r['mega_1m']['n']} x "
          f"{r['mega_1m']['rounds']} rounds in "
          f"{r['mega_1m']['seconds_total']:.1f}s total "
          f"(workers={r['mega_1m']['workers']}, "
          f"{r['mega_1m']['peak_rss_bytes'] / 1024**3:.2f} GB peak, "
          f"{r['mega_1m']['bytes_per_node']:.1f} B/node)")
    print(f"  multicore        : {r['multicore']['speedup']:.2f}x at "
          f"n={r['multicore']['n']} "
          f"(workers={r['multicore']['workers']}, "
          f"{r['multicore']['cores']} core(s), parity "
          f"{'ok' if r['multicore']['honoured_parity'] else 'BROKEN'})")
    print(f"  codec            : {r['codec']['compression_ratio']:>12.2f}x smaller "
          f"({r['codec']['binary_bytes_per_gossip']:.1f}B vs "
          f"{r['codec']['json_bytes_per_gossip']:.1f}B/gossip, "
          f"{r['codec']['binary_encode_per_sec']:.0f} enc/s, "
          f"{r['codec']['binary_decode_per_sec']:.0f} dec/s, "
          f"{r['codec']['decode_speedup_vs_baseline']:.2f}x decode baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
