"""Wall-clock scaling of the sharded round engine.

The point of sharding is to make the paper's large-n regime (Fig. 3 runs
the analysis out to tens of thousands of processes) simulable in reasonable
time: ticking n=5000 lpbcast nodes serially is pure single-core Python.
This bench runs the same n=5000 scenario on the serial engine and on the
sharded engine with 4 shards and reports the speedup.

The speedup assertion is gated on the machine actually having cores to
shard over: on a single-core container the sharded engine still produces
the identical run (that property is asserted unconditionally on a smaller
system in ``bench_runner_equivalence.py``) but pays IPC overhead with no
parallelism to buy it back, so the >1.5x criterion is skipped with the
measured numbers in the skip message.
"""

import os
import random
import time

import pytest

import figlib
from repro.core import LpbcastConfig
from repro.metrics import format_table
from repro.sim import (
    NetworkModel,
    ShardedRoundSimulation,
    build_lpbcast_nodes,
    create_simulation,
)

N = 5000
ROUNDS = 6
SHARDS = 4
SPEEDUP_FLOOR = 1.5

CFG = LpbcastConfig(fanout=3, view_max=25, events_max=30, event_ids_max=60)


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed_run(engine: str, shards=None) -> tuple:
    """(wall seconds for the round loop, total messages delivered)."""
    network = NetworkModel(loss_rate=figlib.EPSILON,
                           rng=random.Random(1061))
    sim = create_simulation(engine, network=network, seed=29, shards=shards)
    nodes = build_lpbcast_nodes(N, CFG, seed=29)
    sim.add_nodes(nodes)
    nodes[0].lpb_cast("seed-event", now=0.0)
    if isinstance(sim, ShardedRoundSimulation):
        sim.start()  # worker spawn + node distribution excluded from timing
    begin = time.perf_counter()
    sim.run(ROUNDS)
    elapsed = time.perf_counter() - begin
    delivered = sim.messages_delivered
    if isinstance(sim, ShardedRoundSimulation):
        sim.close()
    return elapsed, delivered


def test_sharded_engine_speedup(benchmark):
    def compute():
        serial_s, serial_delivered = _timed_run("serial")
        sharded_s, sharded_delivered = _timed_run("sharded", shards=SHARDS)
        return serial_s, serial_delivered, sharded_s, sharded_delivered

    serial_s, serial_delivered, sharded_s, sharded_delivered = (
        benchmark.pedantic(compute, rounds=1, iterations=1)
    )
    speedup = serial_s / sharded_s if sharded_s else float("inf")
    print()
    print(format_table(
        ["engine", "wall (s)", "messages delivered"],
        [
            ["serial", f"{serial_s:.2f}", serial_delivered],
            [f"sharded ({SHARDS} shards)", f"{sharded_s:.2f}",
             sharded_delivered],
            ["speedup", f"{speedup:.2f}x", ""],
        ],
        title=f"Round-loop wall clock, n={N}, {ROUNDS} rounds, F=3",
    ))

    # The run itself must match regardless of how many cores we have.
    assert sharded_delivered == serial_delivered

    cores = _available_cores()
    if cores < 2:
        pytest.skip(
            f"speedup criterion needs >=2 cores, have {cores}: measured "
            f"serial={serial_s:.2f}s sharded={sharded_s:.2f}s "
            f"({speedup:.2f}x) with no parallelism available"
        )
    assert speedup > SPEEDUP_FLOOR, (
        f"sharded engine too slow: {speedup:.2f}x "
        f"(serial {serial_s:.2f}s, sharded {sharded_s:.2f}s)"
    )
