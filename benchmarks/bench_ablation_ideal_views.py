"""Ablation — protocol views vs "perfect" views (Sec. 6.1).

"Simulations performed with artificially generated independent uniform
views have shown that there is virtually no dependency between latency of
delivery ... and the size of the individual views.  The views obtained in
practice with lpbcast thus are not completely uniform and independent."

We reproduce that diagnosis: run dissemination (a) with the protocol
maintaining its own views and (b) with every view *resampled uniformly at
random each round* (the analysis assumption made literal).  Under (b) the
small-l latency penalty of Fig. 5(b) disappears; under (a) it is visible —
the residual correlation between views in time and space is the cause.
"""

import random

import figlib
from repro.core import LpbcastConfig
from repro.metrics import DeliveryLog, InfectionObserver, format_table, mean_curves
from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes
from repro.sim.rng import SeedSequence

N = 125
ROUNDS = 9


def run_curve(l: int, ideal_views: bool, seed: int):
    cfg = LpbcastConfig(fanout=3, view_max=l)
    nodes = build_lpbcast_nodes(N, cfg, seed=seed)
    sim = RoundSimulation(
        NetworkModel(loss_rate=figlib.EPSILON, rng=random.Random(seed + 17)),
        seed=seed,
    )
    sim.add_nodes(nodes)

    if ideal_views:
        resample_rng = SeedSequence(seed).rng("resample")
        pids = [node.pid for node in nodes]

        def resample(round_number: int, sim_) -> None:
            # The Sec. 4.1 assumption made literal: every round, every view
            # is an independent uniform sample of l other processes.
            for node in nodes:
                others = [p for p in pids if p != node.pid]
                node.view.clear()
                for target in resample_rng.sample(others, l):
                    node.view.add(target)

        sim.add_round_hook(resample)

    log = DeliveryLog().attach(nodes)
    event = nodes[0].lpb_cast("x", now=0.0)
    observer = InfectionObserver(log, event.event_id)
    sim.add_observer(observer.on_round)
    sim.run(ROUNDS)
    return observer.curve(ROUNDS)


def mid_epidemic_gap(ideal_views: bool, seeds=range(6)):
    """Mean infected-count gap between l=25 and l=10 at rounds 3-5."""
    small = mean_curves([run_curve(10, ideal_views, s) for s in seeds])
    large = mean_curves([run_curve(25, ideal_views, s) for s in seeds])
    gaps = [large[r] - small[r] for r in (3, 4, 5)]
    return sum(gaps) / len(gaps), small, large


def test_ideal_views_remove_the_l_dependence(benchmark):
    def compute():
        protocol_gap, p_small, p_large = mid_epidemic_gap(ideal_views=False)
        ideal_gap, i_small, i_large = mid_epidemic_gap(ideal_views=True)
        return protocol_gap, ideal_gap, p_small, p_large, i_small, i_large

    protocol_gap, ideal_gap, p_small, p_large, i_small, i_large = (
        benchmark.pedantic(compute, rounds=1, iterations=1)
    )
    print()
    print(format_table(
        ["views", "l", *[f"r{r}" for r in range(ROUNDS + 1)]],
        [
            ["protocol", 10] + [round(v, 1) for v in p_small],
            ["protocol", 25] + [round(v, 1) for v in p_large],
            ["ideal (resampled)", 10] + [round(v, 1) for v in i_small],
            ["ideal (resampled)", 25] + [round(v, 1) for v in i_large],
        ],
        title="Infection curves: protocol-maintained vs ideal uniform views",
    ))
    print(f"mid-epidemic l-gap: protocol={protocol_gap:.1f} processes, "
          f"ideal={ideal_gap:.1f} processes")

    # Under ideal views the l-dependence is (statistically) gone; under the
    # protocol's own views a residual gap remains (Sec. 6.1's diagnosis).
    assert abs(ideal_gap) < 0.08 * N
    assert protocol_gap > ideal_gap - 2.0
    # All configurations still infect everyone.
    for curve in (p_small, p_large, i_small, i_large):
        assert curve[-1] >= 0.99 * N
