#!/usr/bin/env python
"""Quickstart: broadcast one event through a 50-process lpbcast system.

Builds a system with uniformly random bounded views, publishes a single
notification, and watches the epidemic infect every process in a handful of
gossip rounds — the paper's headline behaviour: dissemination latency does
not depend on how small the per-process views are.

Run:  python examples/quickstart.py
"""

import random

from repro.core import LpbcastConfig
from repro.metrics import DeliveryLog, InfectionObserver, in_degree_stats
from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes


def main() -> None:
    n = 50

    # Every process knows only 8 random others (out of 49) and gossips to
    # F = 3 of them each round.  Losses: 5% of messages drop.
    config = LpbcastConfig(fanout=3, view_max=8)
    nodes = build_lpbcast_nodes(n, config, seed=42)

    network = NetworkModel(loss_rate=0.05, rng=random.Random(7))
    sim = RoundSimulation(network=network, seed=42)
    sim.add_nodes(nodes)

    # Instrument: record every delivery, track one event's infection curve.
    log = DeliveryLog().attach(nodes)
    event = nodes[0].lpb_cast({"type": "greeting", "body": "hello, gossip!"},
                              now=0.0)
    observer = InfectionObserver(log, event.event_id)
    sim.add_observer(observer.on_round)

    sim.run(10)

    print(f"System: {n} processes, view size {config.view_max}, "
          f"fanout {config.fanout}, 5% message loss")
    print(f"Published {event.event_id} from process 0\n")
    print("round  infected processes")
    for r, count in enumerate(observer.curve()):
        bar = "#" * count
        print(f"{r:5d}  {count:3d}  {bar}")

    stats = in_degree_stats(nodes)
    print(f"\nMembership health: mean in-degree {stats.mean:.1f} "
          f"(target l={config.view_max}), min {stats.minimum}, "
          f"max {stats.maximum}, isolated {stats.isolated}")
    assert log.delivery_count(event.event_id) == n
    print("Every process delivered the event.")


if __name__ == "__main__":
    main()
