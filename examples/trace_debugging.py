#!/usr/bin/env python
"""Answering "why didn't process X get event Y?" with the tracer.

Runs a lossy dissemination with full tracing, then walks the trace to
explain one process's delivery path — which round it was infected in, who
could have infected it earlier, and which of those gossips the network
dropped.

Run:  python examples/trace_debugging.py
"""

import random

from repro.core import LpbcastConfig
from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes
from repro.sim.trace import DELIVER, DROP, Tracer


def main() -> None:
    config = LpbcastConfig(fanout=3, view_max=8)
    nodes = build_lpbcast_nodes(30, config, seed=33)
    network = NetworkModel(loss_rate=0.25, rng=random.Random(34))
    sim = RoundSimulation(network=network, seed=33)
    sim.add_nodes(nodes)

    tracer = Tracer()
    tracer.attach_deliveries(nodes)
    tracer.attach_network(network)
    sim.add_observer(tracer.on_round)

    event = nodes[0].lpb_cast({"kind": "audit"}, now=0.0)
    tracer.trace_publish(nodes[0].pid, event, 0.0)
    sim.run(12)

    deliveries = [r for r in tracer.for_event(event.event_id)
                  if r.kind == DELIVER]
    order = tracer.delivery_order(event.event_id)
    print(f"event {event.event_id}: delivered by {len(order)}/30 processes")
    print(f"first five deliverers: {order[:5]}")
    last = deliveries[-1]
    print(f"\nslowest process: {last.pid}, infected at round {last.at:.0f}")

    drops = tracer.of_kind(DROP)
    drops_to_last = [r for r in drops if r.peer == last.pid]
    print(f"network dropped {len(drops)} messages in total, "
          f"{len(drops_to_last)} of them addressed to process {last.pid}")
    print(f"=> process {last.pid} was late because "
          f"{len(drops_to_last)} gossips toward it were lost before "
          f"round {last.at:.0f}.")

    print(f"\ntrace summary: {tracer.counts()}")


if __name__ == "__main__":
    main()
