#!/usr/bin/env python
"""The paper's analytical toolkit next to live simulation (Secs. 4 and 5.1).

1. Eq. 1: the infection probability p is independent of the view size l.
2. Eqs. 2-3 / Appendix A: expected infection curves (Markov chain vs the
   cheaper expectation recursion) against simulation.
3. Eqs. 4-5: partitioning probabilities — why tiny views are still safe.

Run:  python examples/analysis_vs_simulation.py
"""

import random

from repro.analysis import (
    InfectionMarkovChain,
    expected_infected_curve,
    expected_rounds_to_fraction,
    infection_probability,
    partition_probability_per_round,
    psi,
    rounds_until_partition,
)
from repro.core import LpbcastConfig
from repro.metrics import (
    DeliveryLog,
    InfectionObserver,
    format_series,
    mean_curves,
    merge_curves,
)
from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes

N, F, ROUNDS = 125, 3, 10
EPSILON, TAU = 0.05, 0.01


def simulate(l: int, seed: int):
    cfg = LpbcastConfig(fanout=F, view_max=l)
    nodes = build_lpbcast_nodes(N, cfg, seed=seed)
    sim = RoundSimulation(
        NetworkModel(loss_rate=EPSILON, rng=random.Random(seed + 99)), seed=seed
    )
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    event = nodes[0].lpb_cast("x", now=0.0)
    obs = InfectionObserver(log, event.event_id)
    sim.add_observer(obs.on_round)
    sim.run(ROUNDS)
    return obs.curve(ROUNDS)


def main() -> None:
    p = infection_probability(N, F, EPSILON, TAU)
    print(f"Eq. 1: p = F/(n-1) * (1-eps) * (1-tau) = {p:.5f}")
    print("       (no l anywhere in the formula — the paper's key point)\n")

    chain = InfectionMarkovChain(N, F, EPSILON, TAU)
    series = merge_curves({
        "markov E[s_r]": chain.expected_curve(ROUNDS),
        "appendix A": expected_infected_curve(N, p, ROUNDS),
        "sim l=10": mean_curves([simulate(10, s) for s in range(5)]),
        "sim l=25": mean_curves([simulate(25, s) for s in range(5)]),
    })
    print(format_series(
        "round", list(range(ROUNDS + 1)), series,
        title=f"Infection curves, n={N}, F={F} (analysis vs simulation)",
    ))

    print("\nExpected rounds to infect 99% (Fig. 3(b) tool):")
    for n in (125, 250, 500, 1000):
        print(f"  n={n:5d}: {expected_rounds_to_fraction(n, F, EPSILON, TAU):.2f}")

    print("\nPartitioning (Eqs. 4-5), l = 3:")
    print(f"  psi(4, 50, 3)  = {psi(4, 50, 3):.3e}")
    print(f"  psi(4, 125, 3) = {psi(4, 125, 3):.3e}   (decreases with n)")
    per_round = partition_probability_per_round(50, 3)
    print(f"  per-round partition probability (n=50): {per_round:.3e}")
    print(f"  rounds until partition w.p. 0.9 (n=50): "
          f"{rounds_until_partition(50, 3, 0.9):.3e}")
    print("  -> even views of size 3 keep the membership together for "
          "astronomically many rounds.")


if __name__ == "__main__":
    main()
