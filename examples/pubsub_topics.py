#!/usr/bin/env python
"""Topic-based publish/subscribe over lpbcast (paper Sec. 3.1).

Models a small market-data fabric: 60 peers, three topics with overlapping
subscriber sets, one lpbcast instance per topic per peer.  Demonstrates
topic isolation (events never leak to non-subscribers), multiple listeners,
and a late subscriber joining through a contact peer.

Run:  python examples/pubsub_topics.py
"""

import random
from collections import Counter

from repro.core import LpbcastConfig
from repro.pubsub import build_pubsub_peers
from repro.sim import NetworkModel, RoundSimulation


def main() -> None:
    topics = {
        "stocks/nasdaq": list(range(0, 30)),
        "stocks/nyse": list(range(20, 50)),
        "news/markets": list(range(10, 60, 2)),
    }
    config = LpbcastConfig(fanout=3, view_max=10)
    peers = build_pubsub_peers(60, topics, config, seed=11)

    sim = RoundSimulation(
        network=NetworkModel(loss_rate=0.05, rng=random.Random(3)), seed=11
    )
    sim.add_nodes(peers)

    received = Counter()
    peers[25].subscribe(
        "stocks/nasdaq",
        listener=lambda topic, n, now: received.update([topic]),
    )
    peers[25].subscribe(
        "news/markets",
        listener=lambda topic, n, now: received.update([topic]),
    )

    # Publish a burst on each topic.
    published = {}
    for topic, subscribers in topics.items():
        publisher = peers[subscribers[0]]
        published[topic] = [
            publisher.publish(topic, {"tick": i}, now=0.0) for i in range(3)
        ]

    sim.run(10)

    print("Topic coverage after 10 gossip rounds:")
    for topic, subscribers in topics.items():
        for event in published[topic]:
            covered = sum(
                1 for pid in subscribers
                if peers[pid].topic_node(topic).has_delivered(event.event_id)
            )
            print(f"  {topic:15s} {event.event_id}: "
                  f"{covered}/{len(subscribers)} subscribers")

    print(f"\nPeer 25 listener deliveries by topic: {dict(received)}")

    # A late peer joins stocks/nasdaq through peer 0 (Sec. 3.4 handshake).
    late = peers[59]
    out = late.subscribe("stocks/nasdaq", contact=0, now=10.0)
    sim.inject(late.pid, out)
    sim.run(6)
    print(f"\nLate subscriber 59 integrated: "
          f"{late.topic_node('stocks/nasdaq').joined}, "
          f"view size {len(late.topic_node('stocks/nasdaq').view)}")

    event = peers[0].publish("stocks/nasdaq", {"tick": "post-join"}, now=16.0)
    sim.run(8)
    got_it = late.topic_node("stocks/nasdaq").has_delivered(event.event_id)
    print(f"Late subscriber received post-join publication: {got_it}")

    # Isolation: peers outside a topic never instantiated it.
    leaks = sum(
        1 for pid in range(60)
        if "stocks/nasdaq" in peers[pid].topics()
        and pid not in topics["stocks/nasdaq"] + [59]
    )
    print(f"Non-subscribers holding topic state: {leaks}")


if __name__ == "__main__":
    main()
