#!/usr/bin/env python
"""Strong reliability via loggers (rpbcast-style, paper Sec. 7).

The paper closes by proposing to combine lpbcast's membership "with other
gossip-based event dissemination algorithms, e.g., using loggers to ensure
strong reliability guarantees whenever this is required (cf. rpbcast)".

This example runs lpbcast in a deliberately hostile regime — 25% message
loss, events forwarded at most once with tiny buffers, no digest shortcut —
where the purely probabilistic protocol visibly loses (event, process)
pairs.  Adding two logger processes and the deterministic third phase
(acknowledged uploads + periodic frontier reconciliation) recovers every
missing delivery.

Run:  python examples/logged_broadcast.py
"""

import random

from repro.core import LpbcastConfig
from repro.loggers import build_logged_system
from repro.sim import NetworkModel, RoundSimulation


def run(with_loggers: bool, seed: int = 2):
    config = LpbcastConfig(
        fanout=3, view_max=10,
        events_max=3, event_ids_max=6,          # starved buffers
        digest_implies_delivery=False,           # payloads must really travel
    )
    clients, loggers = build_logged_system(
        35, logger_count=2, config=config, seed=seed, recovery_period=3
    )
    nodes = clients + (loggers if with_loggers else [])
    if not with_loggers:
        for client in clients:
            client.loggers = ()

    sim = RoundSimulation(
        network=NetworkModel(loss_rate=0.25, rng=random.Random(seed + 40)),
        seed=seed,
    )
    sim.add_nodes(nodes)

    published = []
    for client in clients[:7]:
        notification, uploads = client.publish_logged(
            {"publisher": client.pid}, now=0.0
        )
        published.append(notification)
        if with_loggers:
            sim.inject(client.pid, uploads)

    sim.run(40)

    missing = sum(
        1
        for notification in published
        for client in clients
        if not client.has_contiguously_delivered(notification.event_id)
    )
    recovered = sum(client.recovered_events for client in clients)
    return missing, len(published) * len(clients), recovered, loggers


def main() -> None:
    print("Conditions: 25% loss, |events|m=3, |eventIds|m=6, payload-only "
          "dissemination\n")

    missing, total, _, _ = run(with_loggers=False)
    print(f"plain lpbcast:   {missing}/{total} (event, process) pairs "
          f"never delivered")

    missing, total, recovered, loggers = run(with_loggers=True)
    print(f"with 2 loggers:  {missing}/{total} pairs missing "
          f"({recovered} deliveries recovered deterministically)")
    for logger in loggers:
        print(f"  logger {logger.pid}: archived {logger.logged_count()} "
              f"notifications, served {logger.recoveries_served} recoveries")

    print("\nThe gossip phase still does almost all of the work; the loggers "
          "only backfill the probabilistic tail — the rpbcast trade-off.")


if __name__ == "__main__":
    main()
