#!/usr/bin/env python
"""Stress scenarios: lpbcast under conditions beyond the paper's assumptions.

The analysis (Sec. 4.1) assumes τ = 0.01 crashes and ε = 0.05 loss.  The
scenario library pushes far past that — a flash crowd of simultaneous
joiners, a mass exodus, a rack failure taking out 20% of processes in one
round, a flaky WAN at 30% loss — and measures whether dissemination and
membership hold up.

Run:  python examples/stress_scenarios.py
"""

from repro.metrics import in_degree_stats
from repro.sim import (
    correlated_crashes,
    flaky_wan,
    flash_crowd,
    mass_departure,
)


def report(name: str, scenario, covered: int, population: int,
           extra: str = "") -> None:
    stats = in_degree_stats(scenario.alive_nodes())
    print(f"{name:22s} coverage {covered}/{population}"
          f"   in-degree mean {stats.mean:.1f} (min {stats.minimum})"
          f"   {extra}")


def main() -> None:
    print("scenario               broadcast result          membership health\n")

    # 1. Flash crowd: 20 joiners hit a 60-process system in one round.
    scenario = flash_crowd(n=60, joiners=20, seed=1).run(15)
    event = scenario.nodes[0].lpb_cast("to the crowd", now=15.0)
    scenario.run(12)
    joiners = scenario.extras["joiner_pids"]
    covered = sum(1 for pid in joiners
                  if scenario.log.delivered(pid, event.event_id))
    integrated = sum(1 for pid in joiners if scenario.sim.nodes[pid].joined)
    report("flash crowd (+33%)", scenario, covered, len(joiners),
           extra=f"{integrated}/{len(joiners)} joiners integrated")

    # 2. Mass departure: a third of the system unsubscribes at once.
    scenario = mass_departure(n=60, leavers=20, seed=2).run(20)
    survivors = [n for n in scenario.nodes if not n.unsubscribed]
    event = survivors[0].lpb_cast("survivors only", now=20.0)
    scenario.run(12)
    covered = sum(1 for n in survivors
                  if scenario.log.delivered(n.pid, event.event_id))
    lingering = sum(
        1 for n in survivors
        for leaver in scenario.extras["leaver_pids"] if leaver in n.view
    )
    report("mass departure (-33%)", scenario, covered, len(survivors),
           extra=f"{lingering} stale leaver entries left in views")

    # 3. Rack failure: 20% of processes crash in the same round, mid-epidemic.
    scenario = correlated_crashes(n=60, crash_fraction=0.2, crash_round=2,
                                  seed=3)
    event = scenario.nodes[0].lpb_cast("through the failure", now=0.0)
    scenario.run(14)
    survivors = scenario.alive_nodes()
    covered = sum(1 for n in survivors
                  if scenario.log.delivered(n.pid, event.event_id))
    report("rack failure (20%)", scenario, covered, len(survivors),
           extra=f"{len(scenario.extras['victims'])} victims")

    # 4. Flaky WAN: 30% loss plus background crashes.
    scenario = flaky_wan(n=60, loss_rate=0.3, seed=4)
    event = scenario.nodes[0].lpb_cast("across the WAN", now=0.0)
    scenario.run(15)
    survivors = scenario.alive_nodes()
    covered = sum(1 for n in survivors
                  if scenario.log.delivered(n.pid, event.event_id))
    report("flaky WAN (30% loss)", scenario, covered, len(survivors),
           extra=f"loss observed "
                 f"{scenario.sim.network.observed_loss_rate():.0%}")

    print("\nGossip redundancy absorbs all four: no scenario needed any "
          "recovery mechanism beyond the protocol itself.")


if __name__ == "__main__":
    main()
