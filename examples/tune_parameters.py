#!/usr/bin/env python
"""Tuning lpbcast for a target deployment (paper Sec. 7).

"The analytical approach we have given here can be used as a tool to tune
the algorithm for a given expected maximum system size."

For a range of expected system sizes, derive (F, l) from the analysis —
smallest fanout meeting a latency budget, smallest view keeping the
partition horizon beyond the deployment's lifetime — then *validate the
recommendation by simulation*.

Run:  python examples/tune_parameters.py
"""

import random

from repro.analysis.tuning import recommend_config
from repro.metrics import DeliveryLog, InfectionObserver, format_table
from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes


def validate(n: int, config, seeds=range(3)) -> float:
    """Mean simulated rounds to infect 99% with the recommended config."""
    totals = []
    for seed in seeds:
        nodes = build_lpbcast_nodes(n, config, seed=seed)
        sim = RoundSimulation(
            NetworkModel(loss_rate=0.05, rng=random.Random(seed + 21)),
            seed=seed,
        )
        sim.add_nodes(nodes)
        log = DeliveryLog().attach(nodes)
        event = nodes[0].lpb_cast("probe", now=0.0)
        observer = InfectionObserver(log, event.event_id)
        sim.add_observer(observer.on_round)
        sim.run(14)
        reached = observer.rounds_to_reach(int(0.99 * n))
        totals.append(reached if reached is not None else 14)
    return sum(totals) / len(totals)


def main() -> None:
    rows = []
    for n in (125, 250, 500, 1000):
        report = recommend_config(
            n,
            max_rounds=7.0,            # latency budget: 99% within 7 rounds
            lifetime_rounds=1e12,      # intended lifetime
            partition_probability=0.01,
        )
        simulated = validate(n, report.config)
        rows.append([
            n,
            report.fanout,
            report.view_size,
            round(report.expected_rounds_to_target, 2),
            simulated,
            f"{report.partition_horizon_rounds:.1e}",
        ])

    print(format_table(
        ["n", "F", "l", "predicted rounds to 99%", "simulated",
         "partition horizon"],
        rows,
        title="Analysis-driven tuning (budget: 99% in 7 rounds, "
              "1e12-round lifetime at 1% partition risk)",
    ))
    print(
        "\nNote how small l can be: the infection probability (Eq. 1) does "
        "not depend on it, so the view bound is set by the partitioning "
        "analysis (Eqs. 4-5) alone — the paper's central message."
    )


if __name__ == "__main__":
    main()
