#!/usr/bin/env python
"""Crash cleanup with gossip-style failure detection (paper reference [29]).

lpbcast's unsubscriptions (Sec. 3.4) remove processes that leave *politely*;
a crashed process never says goodbye, so its id lingers in partial views and
keeps attracting gossips into the void.  This example pairs lpbcast with the
heartbeat failure detector of van Renesse et al. — counters piggybacked on
the ordinary gossips, no extra messages — and shows:

1. a crashed process being purged from every live view within a bounded
   number of rounds (vs. lingering indefinitely without the detector);
2. the isolation guard: a process cut off from the network does NOT declare
   everyone else dead, so it can rejoin when the cut heals.

Run:  python examples/failure_detection.py
"""

import random

from repro.core import LpbcastConfig
from repro.failuredetector import FdLpbcastNode
from repro.sim import NetworkModel, RoundSimulation
from repro.sim.rng import SeedSequence
from repro.sim.topology import uniform_random_views


def build(n=40, suspect=6.0, seed=11, link_filter=None):
    cfg = LpbcastConfig(fanout=3, view_max=8)
    seeds = SeedSequence(seed)
    pids = list(range(n))
    views = uniform_random_views(pids, 8, seeds.rng("views"))
    nodes = [
        FdLpbcastNode(pid, cfg, seeds.rng("node", pid),
                      initial_view=views[pid],
                      suspect_timeout=suspect, forget_timeout=4 * suspect)
        for pid in pids
    ]
    net = NetworkModel(loss_rate=0.05, rng=random.Random(seed + 2),
                       link_filter=link_filter)
    sim = RoundSimulation(network=net, seed=seed)
    sim.add_nodes(nodes)
    return sim, nodes


def crash_cleanup_demo() -> None:
    print("=== crash cleanup ===")
    sim, nodes = build()
    victim = nodes[7].pid
    sim.run(3)
    knowers = sum(1 for n in nodes if n.pid != victim and victim in n.view)
    print(f"round 3: process {victim} known by {knowers} processes")
    sim.crash(victim)
    for checkpoint in (6, 10, 14, 18):
        sim.run(checkpoint - sim.round)
        knowers = sum(
            1 for n in nodes if n.pid != victim and victim in n.view
        )
        print(f"round {checkpoint}: crashed process still in {knowers} views")
    purges = sum(n.suspected_purged for n in nodes)
    print(f"total suspect purges: {purges} "
          f"(heartbeat silence > 6 rounds => removed)")


def isolation_guard_demo() -> None:
    print("\n=== isolation guard ===")
    blocked = {"active": True}
    sim, nodes = build(
        suspect=4.0,
        link_filter=lambda s, d: not (blocked["active"] and (s == 5 or d == 5)),
    )
    sim.run(10)
    print(f"process 5 isolated for 10 rounds; "
          f"its own view still has {len(nodes[5].view)} entries "
          f"(guard: don't declare the world dead)")
    others_knowing_5 = sum(1 for n in nodes if n.pid != 5 and 5 in n.view)
    print(f"the rest suspected and purged it: known by {others_knowing_5}")
    blocked["active"] = False
    sim.run(15)
    others_knowing_5 = sum(1 for n in nodes if n.pid != 5 and 5 in n.view)
    print(f"15 rounds after the cut heals: process 5 known by "
          f"{others_knowing_5} again (its gossip re-advertised it)")


if __name__ == "__main__":
    crash_cleanup_demo()
    isolation_guard_demo()
