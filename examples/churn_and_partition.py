#!/usr/bin/env python
"""Membership under churn and the prioritary-process safeguard (Sec. 4.4).

Part 1 — churn: processes join through contacts, leave with timestamped
unsubscriptions, and crash silently; the membership absorbs all of it.

Part 2 — partition: we construct the pathological case the paper analyses
(two view-isolated islands), show that gossip alone cannot heal it ("a
priori, it is not possible to recover from such a partition"), then heal it
with prioritary-process view normalization.

Run:  python examples/churn_and_partition.py
"""

import random

from repro.core import LpbcastConfig, LpbcastNode
from repro.membership import PriorityProcessSet, periodic_normalizer
from repro.metrics import DeliveryLog, find_partitions, is_partitioned
from repro.sim import ChurnScript, NetworkModel, RoundSimulation, build_lpbcast_nodes


def churn_demo() -> None:
    print("=== Part 1: churn ===")
    config = LpbcastConfig(fanout=3, view_max=8)
    nodes = build_lpbcast_nodes(40, config, seed=5)
    sim = RoundSimulation(
        network=NetworkModel(loss_rate=0.05, rng=random.Random(9)), seed=5
    )
    sim.add_nodes(nodes)

    script = ChurnScript(
        node_factory=lambda pid: LpbcastNode(pid, config, random.Random(pid))
    )
    script.join(2, pid=100, contact=0)
    script.join(3, pid=101, contact=7)
    script.leave(5, nodes[4].pid)
    script.crash(6, nodes[9].pid)
    sim.add_round_hook(script.on_round)

    sim.run(20)

    joiner = sim.nodes[100]
    print(f"joiner 100 integrated: {joiner.joined}, view={len(joiner.view)}")
    known_by = sum(1 for n in nodes if 100 in n.view)
    print(f"joiner 100 known by {known_by} original members")
    leaver_known = sum(1 for n in nodes if nodes[4].pid in n.view)
    print(f"leaver {nodes[4].pid} still in {leaver_known} views "
          f"(gradual removal, Sec. 3.4)")
    print(f"crashed process {nodes[9].pid} alive: {sim.alive(nodes[9].pid)}")

    # The churned system still broadcasts atomically among live members.
    live = [n for n in sim.nodes.values()
            if sim.alive(n.pid) and not n.unsubscribed]
    log = DeliveryLog().attach(live)
    event = nodes[0].lpb_cast("after churn", now=20.0)
    sim.run(10)
    covered = sum(1 for n in live if log.delivered(n.pid, event.event_id))
    print(f"post-churn broadcast covered {covered}/{len(live)} live processes")


def partition_demo() -> None:
    print("\n=== Part 2: partition and recovery ===")
    config = LpbcastConfig(fanout=3, view_max=5)
    rng = random.Random(13)
    nodes = []
    for pid in range(20):
        island = range(0, 10) if pid < 10 else range(10, 20)
        candidates = [p for p in island if p != pid]
        nodes.append(LpbcastNode(pid, config, random.Random(pid * 7 + 1),
                                 initial_view=rng.sample(candidates, 5)))

    sim = RoundSimulation(seed=13)
    sim.add_nodes(nodes)
    print(f"partitions initially: "
          f"{[sorted(p) for p in find_partitions(nodes)]}")

    sim.run(15)
    print(f"after 15 rounds of plain gossip, partitioned: "
          f"{is_partitioned(nodes)} (gossip cannot invent unknown peers)")

    # Heal: processes 0 and 10 are elected prioritary, "constantly known by
    # each process", and views are periodically normalized against them.
    priority = PriorityProcessSet((0, 10))
    sim.add_round_hook(periodic_normalizer(priority, nodes, period=3))
    sim.run(15)
    print(f"after normalization, partitioned: {is_partitioned(nodes)}")

    log = DeliveryLog().attach(nodes)
    event = nodes[2].lpb_cast("cross-island", now=30.0)
    sim.run(10)
    print(f"cross-island broadcast covered "
          f"{log.delivery_count(event.event_id)}/20 processes")


if __name__ == "__main__":
    churn_demo()
    partition_demo()
