#!/usr/bin/env python
"""lpbcast vs pbcast, with total and partial views (paper Sec. 6.2 / Fig. 7).

Runs the three protocols side by side under identical network conditions
(n = 125, l = 15, F = 5, 5% loss) and prints their infection curves:

* lpbcast — unlimited hops/repetitions, partial views;
* pbcast over the lpbcast partial-view membership layer;
* original pbcast with a complete membership view.

Run:  python examples/compare_pbcast.py
"""

import random

from repro.core import LpbcastConfig
from repro.metrics import DeliveryLog, InfectionObserver, format_series, mean_curves, merge_curves
from repro.pbcast import FIRST_PHASE_NONE, PbcastConfig, build_pbcast_nodes
from repro.sim import NetworkModel, RoundSimulation, build_lpbcast_nodes

ROUNDS = 7
SEEDS = range(8)


def run_lpbcast(seed: int):
    cfg = LpbcastConfig(fanout=5, view_max=15)
    nodes = build_lpbcast_nodes(125, cfg, seed=seed)
    sim = RoundSimulation(
        NetworkModel(loss_rate=0.05, rng=random.Random(seed + 500)), seed=seed
    )
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    event = nodes[0].lpb_cast("x", now=0.0)
    obs = InfectionObserver(log, event.event_id)
    sim.add_observer(obs.on_round)
    sim.run(ROUNDS)
    return obs.curve(ROUNDS)


def run_pbcast(seed: int, membership: str):
    cfg = PbcastConfig(fanout=5, view_max=15, first_phase=FIRST_PHASE_NONE)
    nodes = build_pbcast_nodes(125, cfg, seed=seed, membership=membership)
    sim = RoundSimulation(
        NetworkModel(loss_rate=0.05, rng=random.Random(seed + 500)), seed=seed
    )
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    event, first = nodes[0].publish("x", now=0.0)
    sim.inject(nodes[0].pid, first)
    obs = InfectionObserver(log, event.event_id)
    sim.add_observer(obs.on_round)
    sim.run(ROUNDS)
    return obs.curve(ROUNDS)


def main() -> None:
    curves = merge_curves({
        "lpbcast": mean_curves([run_lpbcast(s) for s in SEEDS]),
        "pbcast partial": mean_curves([run_pbcast(s, "partial") for s in SEEDS]),
        "pbcast total": mean_curves([run_pbcast(s, "total") for s in SEEDS]),
    })
    print(format_series(
        "round", list(range(ROUNDS + 1)), curves,
        title=f"Infected processes per round (n=125, l=15, F=5, "
              f"mean of {len(list(SEEDS))} runs)",
    ))
    print(
        "\nReading: the partial-view pbcast tracks the total-view pbcast — "
        "the membership layer preserves the protocol's behaviour.  lpbcast "
        "spreads at least as fast because its hops and repetitions are "
        "unlimited (each digest keeps re-advertising an event)."
    )


if __name__ == "__main__":
    main()
