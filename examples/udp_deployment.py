#!/usr/bin/env python
"""lpbcast deployed for real: UDP sockets, threads, wall-clock timers.

Everything else in this repository *simulates* time; this example deploys
the identical protocol objects on the loopback interface — one UDP socket
and two threads per process, JSON datagrams on the wire, unsynchronized
gossip timers — the laptop-scale analogue of the paper's 125-workstation
measurements (Sec. 5.2), with Bernoulli loss injected at the send boundary
to recreate ε.

Per-source FIFO delivery (a layer real pub/sub consumers want) is
demonstrated on one subscriber via :class:`FifoDeliveryGate`.

Run:  python examples/udp_deployment.py
"""

import time

from repro.core import FifoDeliveryGate, LpbcastConfig
from repro.metrics import DeliveryLog
from repro.runtime import LocalDeployment
from repro.sim import build_lpbcast_nodes


def main() -> None:
    n, period = 10, 0.04
    config = LpbcastConfig(fanout=3, view_max=6, gossip_period=period)
    nodes = build_lpbcast_nodes(n, config, seed=21)
    log = DeliveryLog().attach(nodes)

    # One subscriber consumes through a per-source FIFO gate.
    fifo_seen = []
    gate = FifoDeliveryGate()
    gate.add_listener(lambda pid, note, now: fifo_seen.append(note.event_id))
    nodes[5].add_delivery_listener(gate.on_delivery)

    cluster = LocalDeployment(nodes, gossip_period=period, loss_rate=0.1,
                              seed=21)
    with cluster:
        print(f"deployed {n} processes on loopback UDP "
              f"(T={period * 1000:.0f} ms, 10% injected loss)")
        started = time.monotonic()
        events = [cluster.host(nodes[0].pid).publish({"seq": i})
                  for i in range(5)]
        complete = cluster.wait_until(
            lambda: all(log.delivery_count(e.event_id) == n for e in events),
            timeout=15.0,
        )
        elapsed = time.monotonic() - started

    print(f"all {len(events)} broadcasts delivered everywhere: {complete} "
          f"(wall time {elapsed:.2f} s ~ {elapsed / period:.0f} gossip periods)")
    print(f"datagrams sent: {cluster.total_datagrams()}, "
          f"dropped by injected loss: "
          f"{sum(h.datagrams_dropped for h in cluster.hosts)}")
    order = [eid.seq for eid in fifo_seen if eid.origin == nodes[0].pid]
    print(f"subscriber 5 FIFO delivery order from publisher 0: {order}")
    assert order == sorted(order)


if __name__ == "__main__":
    main()
