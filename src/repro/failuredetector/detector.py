"""Gossip-style failure detection (van Renesse, Minsky, Hayden — the
paper's reference [29]).

lpbcast removes *voluntarily leaving* processes through timestamped
unsubscriptions (Sec. 3.4), but a *crashed* process never unsubscribes: its
id lingers in views until random truncation happens to evict it, and gossips
sent to it are wasted.  The paper points at gossip-based failure detection
([29], discussed in Sec. 2.3) as the companion mechanism; this module
implements it.

Every process maintains a heartbeat counter for itself and the latest
counters it has heard for others.  Counters piggyback on the ordinary
gossip messages (no dedicated traffic — the lpbcast way).  A process whose
counter has not advanced for ``suspect_timeout`` time units is *suspected*;
after ``forget_timeout`` it is dropped from the table entirely (allowing a
recovered or re-subscribed process to start fresh).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.ids import ProcessId

HeartbeatPayload = Tuple[Tuple[ProcessId, int], ...]
"""Wire form: ((pid, counter), ...)."""


@dataclass
class _Entry:
    __slots__ = ("counter", "last_advance")
    counter: int
    last_advance: float


class HeartbeatFailureDetector:
    """Heartbeat table with gossip-piggybacked dissemination.

    Parameters
    ----------
    owner:
        The local process (its own counter advances every tick).
    suspect_timeout:
        Silence (no counter advance) after which a process is suspected.
    forget_timeout:
        Silence after which the entry is dropped (must exceed the suspect
        timeout).
    sample_size:
        Heartbeat entries piggybacked per gossip; a random sample keeps the
        overhead bounded like every other lpbcast list.
    """

    def __init__(
        self,
        owner: ProcessId,
        suspect_timeout: float = 5.0,
        forget_timeout: float = 20.0,
        sample_size: int = 15,
        rng: Optional[random.Random] = None,
    ) -> None:
        if suspect_timeout <= 0:
            raise ValueError("suspect_timeout must be positive")
        if forget_timeout <= suspect_timeout:
            raise ValueError("forget_timeout must exceed suspect_timeout")
        if sample_size < 1:
            raise ValueError("sample_size must be positive")
        self.owner = owner
        self.suspect_timeout = suspect_timeout
        self.forget_timeout = forget_timeout
        self.sample_size = sample_size
        self.rng = rng if rng is not None else random.Random()
        self._own_counter = 0
        self._table: Dict[ProcessId, _Entry] = {}

    # -- local heartbeat -----------------------------------------------------
    def tick(self, now: float) -> None:
        """Advance the local counter (call once per gossip period)."""
        self._own_counter += 1

    def payload(self) -> HeartbeatPayload:
        """Heartbeat entries to piggyback: always self, plus a random sample
        of the freshest knowledge about others."""
        entries: List[Tuple[ProcessId, int]] = [(self.owner, self._own_counter)]
        others = list(self._table.items())
        if len(others) > self.sample_size - 1:
            others = self.rng.sample(others, self.sample_size - 1)
        entries.extend((pid, entry.counter) for pid, entry in others)
        return tuple(entries)

    # -- merging ----------------------------------------------------------------
    def merge(self, payload: Iterable[Tuple[ProcessId, int]], now: float) -> None:
        """Fold received heartbeat counters in (larger counter wins)."""
        for pid, counter in payload:
            if pid == self.owner:
                continue
            entry = self._table.get(pid)
            if entry is None:
                self._table[pid] = _Entry(counter, now)
            elif counter > entry.counter:
                entry.counter = counter
                entry.last_advance = now

    def ensure_tracked(self, pid: ProcessId, now: float) -> None:
        """Start a silence clock for a process we know *of* (it is in the
        view) but have never heard a heartbeat from — without this, a
        process cut off before its first heartbeat spread would never
        accumulate silence and so never be suspected."""
        if pid != self.owner and pid not in self._table:
            self._table[pid] = _Entry(0, now)

    def observe_alive(self, pid: ProcessId, now: float) -> None:
        """Direct evidence of life (a message from ``pid`` arrived)."""
        if pid == self.owner:
            return
        entry = self._table.get(pid)
        if entry is None:
            self._table[pid] = _Entry(0, now)
        else:
            entry.last_advance = now

    # -- verdicts ------------------------------------------------------------------
    def is_suspected(self, pid: ProcessId, now: float) -> bool:
        entry = self._table.get(pid)
        if entry is None:
            return False  # never heard of it: no verdict
        return now - entry.last_advance >= self.suspect_timeout

    def suspects(self, now: float) -> List[ProcessId]:
        return [pid for pid in self._table if self.is_suspected(pid, now)]

    def expire(self, now: float) -> List[ProcessId]:
        """Drop entries silent beyond ``forget_timeout``; returns them."""
        forgotten = [
            pid for pid, entry in self._table.items()
            if now - entry.last_advance >= self.forget_timeout
        ]
        for pid in forgotten:
            del self._table[pid]
        return forgotten

    def known(self) -> Tuple[ProcessId, ...]:
        return tuple(self._table)

    def counter_of(self, pid: ProcessId) -> int:
        if pid == self.owner:
            return self._own_counter
        entry = self._table.get(pid)
        return entry.counter if entry is not None else 0
