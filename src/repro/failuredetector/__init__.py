"""Gossip-style failure detection (paper reference [29]) and its lpbcast
integration: crashed processes are suspected from heartbeat silence and
purged from views, complementing Sec. 3.4's voluntary unsubscriptions."""

from .detector import HeartbeatFailureDetector, HeartbeatPayload
from .node import FdLpbcastNode

__all__ = ["FdLpbcastNode", "HeartbeatFailureDetector", "HeartbeatPayload"]
