"""lpbcast with piggybacked failure detection.

:class:`FdLpbcastNode` extends the plain protocol node with the [29]-style
heartbeat detector:

* every outgoing gossip piggybacks a bounded heartbeat sample;
* every incoming gossip is (a) direct evidence that its *sender* is alive
  and (b) merged heartbeat knowledge about third parties;
* each tick, suspected processes are purged from the local ``view`` and
  ``subs`` — the crash analogue of Phase 1's unsubscription handling, so a
  crashed process stops attracting gossip instead of lingering until random
  truncation happens to evict it.

Suspicion is purely local (no system-wide agreement), matching both [29]
and lpbcast's decentralized spirit; a falsely suspected process re-enters
views through its own continued gossiping once its heartbeats resume.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional

from ..core.config import LpbcastConfig
from ..core.ids import ProcessId
from ..core.message import GossipMessage, Outgoing
from ..core.node import LpbcastNode
from .detector import HeartbeatFailureDetector


class FdLpbcastNode(LpbcastNode):
    """lpbcast node with a gossip-style heartbeat failure detector."""

    def __init__(
        self,
        pid: ProcessId,
        config: Optional[LpbcastConfig] = None,
        rng: Optional[random.Random] = None,
        initial_view: Iterable[ProcessId] = (),
        suspect_timeout: float = 5.0,
        forget_timeout: float = 20.0,
        heartbeat_sample: int = 15,
    ) -> None:
        super().__init__(pid, config, rng, initial_view)
        self.detector = HeartbeatFailureDetector(
            owner=pid,
            suspect_timeout=suspect_timeout,
            forget_timeout=forget_timeout,
            sample_size=heartbeat_sample,
            rng=self.rng,
        )
        self.suspected_purged = 0
        self._last_gossip_received: Optional[float] = None

    # -- reception ------------------------------------------------------------
    def on_gossip(self, gossip: GossipMessage, now: float) -> List[Outgoing]:
        if gossip.sender != self.pid:
            self._last_gossip_received = now
            self.detector.observe_alive(gossip.sender, now)
            self.detector.merge(gossip.heartbeats, now)
        return super().on_gossip(gossip, now)

    # -- emission ----------------------------------------------------------------
    def on_tick(self, now: float) -> List[Outgoing]:
        self.detector.tick(now)
        self._purge_suspects(now)
        self.detector.expire(now)
        return super().on_tick(now)

    def _purge_suspects(self, now: float) -> None:
        # "Don't declare the whole world dead": when *we* have heard nothing
        # for a suspicion period, the likely failure is our own connectivity
        # (a partition or local outage), not a mass crash — purging the view
        # then would permanently isolate us (Sec. 4.4's unrecoverable state).
        if (
            self._last_gossip_received is None
            or now - self._last_gossip_received >= self.detector.suspect_timeout
        ):
            return
        for pid in self.view:
            self.detector.ensure_tracked(pid, now)
        for pid in self.detector.suspects(now):
            removed = self.view.remove(pid)
            removed |= self.subs.discard(pid)
            if removed:
                self.suspected_purged += 1

    def _build_gossip(
        self, now: float, include_membership: bool, membership_only: bool = False
    ) -> GossipMessage:
        gossip = super()._build_gossip(now, include_membership, membership_only)
        # dataclasses.replace would re-run __init__ checks; GossipMessage is
        # a frozen dataclass so construct the final message directly.
        return GossipMessage(
            sender=gossip.sender,
            subs=gossip.subs,
            unsubs=gossip.unsubs,
            events=gossip.events,
            event_ids=gossip.event_ids,
            heartbeats=self.detector.payload(),
        )
