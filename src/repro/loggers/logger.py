"""The logger process.

A :class:`LoggerNode` is a regular lpbcast participant with two extras:

* it archives, per origin and in sequence order, every notification it
  learns of — through gossip, through direct :class:`LogUpload`s from
  publishers (acknowledged, so publishers can retry), and through its own
  aggressive digest-driven pulls;
* it serves :class:`RecoveryRequest`s with the archived notifications the
  requester's frontier is missing.

"Alternatively, we could use a set of dedicated processes ..." (Sec. 4.4) —
loggers are exactly such dedicated processes, and like the prioritary set
they are expected to be few and well-known.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional

from ..core.config import LpbcastConfig
from ..core.events import Notification
from ..core.ids import EventId, ProcessId
from ..core.message import Outgoing
from ..core.node import LpbcastNode
from .messages import LogUpload, LogUploadAck, RecoveryRequest, RecoveryResponse

#: Buffers generous enough that a logger practically never forgets; the
#: archive is the durability boundary, so it gets the largest bound.
LOGGER_CONFIG = LpbcastConfig(
    fanout=3,
    view_max=25,
    events_max=500,
    event_ids_max=5000,
    subs_max=15,
    unsubs_max=15,
    retransmissions=True,
    digest_implies_delivery=False,
    archive_max=100_000,
    retransmit_request_max=200,
)


class LoggerNode(LpbcastNode):
    """A dedicated archiving process with deterministic recovery service."""

    def __init__(
        self,
        pid: ProcessId,
        config: Optional[LpbcastConfig] = None,
        rng: Optional[random.Random] = None,
        initial_view: Iterable[ProcessId] = (),
        recovery_batch_max: int = 200,
    ) -> None:
        super().__init__(pid, config or LOGGER_CONFIG, rng, initial_view)
        if recovery_batch_max < 1:
            raise ValueError("recovery_batch_max must be positive")
        self.recovery_batch_max = recovery_batch_max
        # Ordered per-origin store: origin -> {seq -> notification}.
        self._log: Dict[ProcessId, Dict[int, Notification]] = {}
        self.uploads_received = 0
        self.recoveries_served = 0

    # -- archiving ------------------------------------------------------------
    def _deliver(self, notification: Notification, now: float) -> None:
        self._archive_ordered(notification)
        super()._deliver(notification, now)

    def _archive_ordered(self, notification: Notification) -> None:
        origin_log = self._log.setdefault(notification.event_id.origin, {})
        origin_log.setdefault(notification.event_id.seq, notification)

    def logged_count(self) -> int:
        return sum(len(per_origin) for per_origin in self._log.values())

    def has_logged(self, event_id: EventId) -> bool:
        return event_id.seq in self._log.get(event_id.origin, ())

    # -- message handling --------------------------------------------------------
    def handle_message(self, sender: ProcessId, message, now: float) -> List[Outgoing]:
        if isinstance(message, LogUpload):
            return self.on_upload(message, now)
        if isinstance(message, RecoveryRequest):
            return self.on_recovery_request(message, now)
        return super().handle_message(sender, message, now)

    def on_upload(self, upload: LogUpload, now: float) -> List[Outgoing]:
        self.uploads_received += 1
        if upload.notification.event_id not in self.event_ids:
            # A fresh notification: deliver normally (which archives it).
            self._deliver(upload.notification, now)
            self._stage_for_forwarding(upload.notification)
        else:
            self._archive_ordered(upload.notification)
        return [Outgoing(upload.sender,
                         LogUploadAck(self.pid, upload.notification.event_id))]

    def on_recovery_request(
        self, request: RecoveryRequest, now: float
    ) -> List[Outgoing]:
        self.recoveries_served += 1
        frontier = {eid.origin: eid.seq for eid in request.frontier}
        missing: List[Notification] = []
        complete = True
        for origin, per_origin in sorted(self._log.items()):
            start = frontier.get(origin, 0)
            for seq in sorted(per_origin):
                if seq <= start:
                    continue
                if len(missing) >= self.recovery_batch_max:
                    complete = False
                    break
                missing.append(per_origin[seq])
            if not complete:
                break
        if not missing and complete:
            return [Outgoing(request.requester,
                             RecoveryResponse(self.pid, (), True))]
        return [
            Outgoing(
                request.requester,
                RecoveryResponse(self.pid, tuple(missing), complete),
            )
        ]
