"""Messages of the deterministic logger phase (rpbcast-style, paper Sec. 7).

The paper's footnote 4 describes rpbcast: "a deterministic third phase to
the pbcast protocol, in which centralized loggers are used if the
second gossip-based phase fails".  The concluding remarks name the same idea
as future work for lpbcast: "using loggers to ensure strong reliability
guarantees whenever this is required".

Four messages realize it:

* :class:`LogUpload` / :class:`LogUploadAck` — a publisher pushes every
  publication to the loggers and retries until acknowledged, so the log is
  complete even under message loss;
* :class:`RecoveryRequest` / :class:`RecoveryResponse` — any process
  periodically reconciles with a logger by sending its per-origin
  in-sequence frontier; the logger answers with archived notifications the
  process is missing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.events import Notification
from ..core.ids import EventId, ProcessId


@dataclass(frozen=True)
class LogUpload:
    """Publisher → logger: archive this notification."""

    sender: ProcessId
    notification: Notification


@dataclass(frozen=True)
class LogUploadAck:
    """Logger → publisher: the notification is durably archived."""

    logger: ProcessId
    event_id: EventId


@dataclass(frozen=True)
class RecoveryRequest:
    """Process → logger: per-origin delivered frontier.

    ``frontier`` holds one ``EventId(origin, seq)`` per origin, meaning
    "I have delivered every notification of ``origin`` up to ``seq``".
    Origins absent from the frontier are requested from the beginning.
    """

    requester: ProcessId
    frontier: Tuple[EventId, ...] = ()


@dataclass(frozen=True)
class RecoveryResponse:
    """Logger → process: archived notifications beyond the frontier."""

    logger: ProcessId
    events: Tuple[Notification, ...] = ()
    complete: bool = True  # False when truncated by the batch limit
