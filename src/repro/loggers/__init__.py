"""Logger-backed strong reliability (rpbcast-style, paper Sec. 7).

"We are indeed currently investigating how to combine our membership
approach with other gossip-based event dissemination algorithms, e.g., using
loggers to ensure strong reliability guarantees whenever this is required
(cf. rpbcast)."

* :class:`~repro.loggers.logger.LoggerNode` — a dedicated archiving process
  serving deterministic recovery.
* :class:`~repro.loggers.client.LoggedLpbcastNode` — lpbcast plus
  acknowledged publisher-side logging and periodic frontier reconciliation.
* :func:`~repro.loggers.client.build_logged_system` — system builder.
"""

from .client import LoggedLpbcastNode, build_logged_system
from .logger import LOGGER_CONFIG, LoggerNode
from .messages import LogUpload, LogUploadAck, RecoveryRequest, RecoveryResponse

__all__ = [
    "build_logged_system",
    "LOGGER_CONFIG",
    "LoggedLpbcastNode",
    "LoggerNode",
    "LogUpload",
    "LogUploadAck",
    "RecoveryRequest",
    "RecoveryResponse",
]
