"""Logged lpbcast: the deterministic third phase on the client side.

A :class:`LoggedLpbcastNode` behaves exactly like a plain lpbcast node, plus:

* every publication is uploaded to all configured loggers and **retried every
  gossip period until acknowledged** — the log is complete despite loss;
* every ``recovery_period`` ticks it reconciles with a (rotating) logger:
  it sends its per-origin in-sequence frontier and delivers whatever
  archived notifications come back.

Together with :class:`~repro.loggers.logger.LoggerNode` this upgrades
lpbcast's probabilistic guarantee to eventual delivery of every logged
notification at every correct, connected process — the rpbcast-style
strengthening sketched in the paper's concluding remarks.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.buffers import CompactEventIdDigest
from ..core.config import LpbcastConfig
from ..core.events import Notification
from ..core.ids import EventId, ProcessId
from ..core.message import Outgoing
from ..core.node import LpbcastNode
from .messages import LogUpload, LogUploadAck, RecoveryRequest, RecoveryResponse


class LoggedLpbcastNode(LpbcastNode):
    """lpbcast node with publisher-side logging and periodic recovery."""

    def __init__(
        self,
        pid: ProcessId,
        config: Optional[LpbcastConfig] = None,
        rng: Optional[random.Random] = None,
        initial_view: Iterable[ProcessId] = (),
        loggers: Sequence[ProcessId] = (),
        recovery_period: int = 3,
    ) -> None:
        super().__init__(pid, config, rng, initial_view)
        if recovery_period < 1:
            raise ValueError("recovery_period must be >= 1")
        self.loggers = tuple(loggers)
        self.recovery_period = recovery_period
        # Unacknowledged uploads, per logger: (logger, event_id) -> payload.
        self._pending_uploads: Dict[Tuple[ProcessId, EventId], Notification] = {}
        # Contiguous delivered frontier per origin (drives recovery).
        self._frontier = CompactEventIdDigest(max_out_of_order=10_000)
        self.recoveries_sent = 0
        self.recovered_events = 0

    # -- publishing with logging ------------------------------------------------
    def publish_logged(
        self, payload=None, now: float = 0.0
    ) -> Tuple[Notification, List[Outgoing]]:
        """LPB-CAST plus the initial upload round to every logger."""
        notification = self.lpb_cast(payload, now)
        uploads = []
        for logger in self.loggers:
            self._pending_uploads[(logger, notification.event_id)] = notification
            uploads.append(Outgoing(logger, LogUpload(self.pid, notification)))
        return notification, uploads

    # -- frontier maintenance ------------------------------------------------------
    def _deliver(self, notification: Notification, now: float) -> None:
        self._frontier.add(notification.event_id)
        super()._deliver(notification, now)

    def frontier(self) -> Tuple[EventId, ...]:
        """One EventId(origin, last_in_sequence) per known origin."""
        entries = []
        for origin in self._frontier.senders():
            last = self._frontier.last_in_sequence(origin)
            if last > 0:
                entries.append(EventId(origin, last))
        return tuple(entries)

    def has_contiguously_delivered(self, event_id: EventId) -> bool:
        """Unbounded ground truth used by the strong-guarantee tests."""
        return event_id in self._frontier

    # -- periodic behaviour -----------------------------------------------------------
    def on_tick(self, now: float) -> List[Outgoing]:
        out = super().on_tick(now)
        # Retry unacknowledged uploads (at-least-once into the log).
        for (logger, _event_id), notification in self._pending_uploads.items():
            out.append(Outgoing(logger, LogUpload(self.pid, notification)))
        # Deterministic third phase: reconcile with a rotating logger.
        if self.loggers and self._tick_count % self.recovery_period == 0:
            logger = self.loggers[
                (self._tick_count // self.recovery_period) % len(self.loggers)
            ]
            self.recoveries_sent += 1
            out.append(Outgoing(logger, RecoveryRequest(self.pid, self.frontier())))
        return out

    # -- message handling ----------------------------------------------------------------
    def handle_message(self, sender: ProcessId, message, now: float) -> List[Outgoing]:
        if isinstance(message, LogUploadAck):
            self._pending_uploads.pop((message.logger, message.event_id), None)
            return []
        if isinstance(message, RecoveryResponse):
            return self.on_recovery_response(message, now)
        return super().handle_message(sender, message, now)

    def on_recovery_response(
        self, response: RecoveryResponse, now: float
    ) -> List[Outgoing]:
        for notification in response.events:
            if notification.event_id in self._frontier:
                continue
            if notification.event_id in self.event_ids:
                # Known to bounded memory but not to the frontier (out-of-
                # order gap): record frontier progress only.
                self._frontier.add(notification.event_id)
                continue
            self.recovered_events += 1
            self._deliver(notification, now)
            self._stage_for_forwarding(notification)
        return []


def build_logged_system(
    count: int,
    logger_count: int = 2,
    config: Optional[LpbcastConfig] = None,
    logger_config: Optional[LpbcastConfig] = None,
    seed: int = 0,
    recovery_period: int = 3,
):
    """Build ``count`` logged clients plus ``logger_count`` loggers.

    Loggers take the highest pids.  All processes (clients and loggers)
    start with uniform random views over the whole population, so loggers
    participate in the gossip like everyone else.  Returns
    ``(clients, loggers)``.
    """
    from ..sim.rng import SeedSequence
    from ..sim.topology import uniform_random_views
    from .logger import LOGGER_CONFIG, LoggerNode

    if count < 1 or logger_count < 1:
        raise ValueError("need at least one client and one logger")
    cfg = config if config is not None else LpbcastConfig(
        digest_implies_delivery=False
    )
    log_cfg = logger_config if logger_config is not None else LOGGER_CONFIG
    seeds = SeedSequence(seed)
    client_pids = list(range(count))
    logger_pids = list(range(count, count + logger_count))
    all_pids = client_pids + logger_pids
    views = uniform_random_views(all_pids, cfg.view_max, seeds.rng("views"))

    clients = [
        LoggedLpbcastNode(
            pid, cfg, seeds.rng("node", pid), initial_view=views[pid],
            loggers=logger_pids, recovery_period=recovery_period,
        )
        for pid in client_pids
    ]
    loggers = [
        LoggerNode(pid, log_cfg, seeds.rng("logger", pid),
                   initial_view=views[pid])
        for pid in logger_pids
    ]
    return clients, loggers
