"""Deployment runtime: the protocols on real sockets, threads and clocks.

The simulators (:mod:`repro.sim`) study the protocols; this package *runs*
them — loopback UDP datagrams, per-process receive and timer threads, the
JSON wire codec — the repository's laptop-scale analogue of the paper's
Sec. 5.2 testbed measurements.
"""

from .udp import LocalDeployment, UdpProcessHost

__all__ = ["LocalDeployment", "UdpProcessHost"]
