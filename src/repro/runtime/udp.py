"""A real deployment runtime: UDP datagrams, threads and wall-clock timers.

The paper's Sec. 5.2 numbers come from an actual deployment (125 Solaris
workstations).  This module is the in-repo equivalent at laptop scale: every
process is hosted by a thread pair (receive loop + gossip timer) bound to a
loopback UDP socket, messages cross a real serialization boundary
(:mod:`repro.core.codec`) and real (unsynchronized) wall-clock timers drive
the periodic gossip — the same protocol objects the simulators run, deployed
for real.

Loopback UDP practically never drops, so the deployment injects loss at the
send boundary to recreate the paper's ε — via the unified fault layer: a
``loss_rate`` is sugar for a one-fault :class:`~repro.faults.plan.FaultPlan`,
and any richer plan (duplication, delay spikes, partitions) can be supplied
through a :class:`~repro.faults.wire.DatagramFaultInjector`.

The datagram format is the versioned frame layer of :mod:`repro.wire`:
messages to the same destination batch into one compact binary frame
(``wire_format="binary"``, the default), with the JSON codec available
behind its own version byte for debugging (``wire_format="json"``) and the
legacy ``pid|json`` text datagrams still accepted on receive.  A gossip
whose single-message frame would exceed the datagram cap is *split* across
several datagrams instead of silently destroyed; whatever still cannot fit
is counted **and** traced with its kind and wire size.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.codec import CodecError, from_json, to_json
from ..core.ids import ProcessId
from ..core.message import Outgoing
from ..telemetry import Telemetry
from ..wire import (
    FRAME_BINARY,
    FRAME_JSON,
    decode_frame,
    pack_datagrams,
    split_oversize,
)

Address = Tuple[str, int]

_MAX_DATAGRAM = 65_000
#: Receive buffer, deliberately one byte *past* the send cap: a legal-size
#: datagram can never be silently truncated by ``recvfrom``, and anything
#: longer than the cap is detected (and counted) instead of being parsed
#: as if it were complete.
_RECV_BUFSIZE = _MAX_DATAGRAM + 1
_RECV_TIMEOUT = 0.05

_WIRE_FORMATS = ("binary", "json", "text")


class UdpProcessHost:
    """Hosts one protocol node on a loopback UDP socket.

    The node is accessed under a lock from two threads: the receive loop
    (``handle_message``) and the gossip timer (``on_tick``); application
    calls (publishing) must go through :meth:`with_node`.
    """

    def __init__(
        self,
        node,
        directory: Dict[ProcessId, Address],
        gossip_period: float = 0.05,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        fault_injector=None,
        telemetry: Optional[Telemetry] = None,
        wire_format: str = "binary",
    ) -> None:
        if gossip_period <= 0:
            raise ValueError("gossip_period must be positive")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if wire_format not in _WIRE_FORMATS:
            raise ValueError(f"wire_format must be one of {_WIRE_FORMATS}")
        self.node = node
        self.wire_format = wire_format
        self.directory = directory
        self.gossip_period = gossip_period
        self.loss_rate = loss_rate
        self.rng = rng if rng is not None else random.Random()
        # All send-side faults go through one injector: an explicit one
        # (possibly shared across hosts, e.g. for partitions), or one built
        # from the plain loss_rate knob.
        if fault_injector is None and loss_rate:
            from ..faults.plan import FaultPlan
            from ..faults.wire import DatagramFaultInjector

            fault_injector = DatagramFaultInjector(
                FaultPlan().drop(loss_rate), rng=self.rng,
                round_duration=gossip_period,
            )
        self.fault_injector = fault_injector

        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.settimeout(_RECV_TIMEOUT)
        self.address: Address = self._sock.getsockname()
        directory[node.pid] = self.address

        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._receiver = threading.Thread(
            target=self._receive_loop, name=f"recv-{node.pid}", daemon=True
        )
        self._timer = threading.Thread(
            target=self._timer_loop, name=f"tick-{node.pid}", daemon=True
        )
        #: Registry the counter properties below read from — shared and
        #: thread-safe across a deployment (receive loop, gossip timer and
        #: delay timers of every host all write into it concurrently).
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry(thread_safe=True))

    def _count(self, name: str, value: int = 1) -> None:
        self.telemetry.inc(name, value, pid=self.node.pid)

    def _counter(self, name: str) -> int:
        return self.telemetry.counter_value(name, pid=self.node.pid)

    # Back-compat counter surface: the old plain-int attributes, now views
    # over the shared telemetry registry (one labelled series per pid).
    @property
    def datagrams_sent(self) -> int:
        return self._counter("udp.datagrams_sent")

    @property
    def datagrams_received(self) -> int:
        return self._counter("udp.datagrams_received")

    @property
    def datagrams_lost_injected(self) -> int:
        """Send-side drops injected by the fault layer — kept distinct from
        oversize and socket-error drops: conflating them (the old single
        counter) made loss-rate experiments misreport whenever oversize or
        socket errors occurred."""
        return self._counter("udp.datagrams_lost_injected")

    @property
    def datagrams_oversize(self) -> int:
        """Messages destroyed because no datagram could carry them even
        after splitting — each one also leaves a ``wire.oversize`` trace
        event naming its kind and wire size."""
        return self._counter("udp.datagrams_oversize")

    @property
    def gossips_split(self) -> int:
        """Oversize gossips split across several datagrams instead of
        dropped (the pre-wire-layer behaviour was to destroy them whole)."""
        return self._counter("udp.gossips_split")

    @property
    def datagrams_truncated(self) -> int:
        """Datagrams longer than the send cap seen by ``recvfrom`` —
        possibly cut short by the receive buffer, so never parsed."""
        return self._counter("udp.datagrams_truncated")

    @property
    def datagrams_send_errors(self) -> int:
        return self._counter("udp.datagrams_send_errors")

    @property
    def bytes_sent(self) -> int:
        return self._counter("udp.bytes_sent")

    @property
    def bytes_received(self) -> int:
        return self._counter("udp.bytes_received")

    @property
    def decode_errors(self) -> int:
        return self._counter("udp.decode_errors")

    @property
    def datagrams_dropped(self) -> int:
        """Total send-side drops (back-compat sum of the split counters)."""
        return (self.datagrams_lost_injected + self.datagrams_oversize
                + self.datagrams_send_errors)

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        self._receiver.start()
        self._timer.start()

    def stop(self) -> None:
        self._stop.set()

    def join(self, timeout: float = 2.0) -> None:
        self._receiver.join(timeout)
        self._timer.join(timeout)
        self._sock.close()

    # -- application access ------------------------------------------------------
    def with_node(self, fn: Callable):
        """Run ``fn(node)`` under the host lock and ship any returned
        :class:`Outgoing` list."""
        with self._lock:
            result = fn(self.node)
        if isinstance(result, list):
            self._send_all(result)
            return None
        return result

    def publish(self, payload=None):
        """Publish on the hosted node (lpbcast interface)."""
        with self._lock:
            return self.node.lpb_cast(payload, now=time.monotonic())

    # -- internals ------------------------------------------------------------------
    def _receive_loop(self) -> None:
        while not self._stop.is_set():
            try:
                data, _addr = self._sock.recvfrom(_RECV_BUFSIZE)
            except socket.timeout:
                continue
            except OSError:
                return
            if len(data) > _MAX_DATAGRAM:
                # Over the cap our senders honour — the tail may already be
                # gone, so never parse it as if it were complete.
                self._count("udp.datagrams_truncated")
                continue
            try:
                if data[:1] and data[0] in (FRAME_JSON, FRAME_BINARY):
                    with self.telemetry.time("time.codec", op="decode"):
                        sender, messages = decode_frame(data)
                else:
                    # Legacy pid|json text datagram (starts with an ASCII
                    # digit, which no frame version byte collides with).
                    payload = data.decode("utf-8")
                    sender_part, message_part = payload.split("|", 1)
                    sender = int(sender_part)
                    with self.telemetry.time("time.codec", op="decode"):
                        messages = [from_json(message_part)]
            except (CodecError, ValueError, UnicodeDecodeError):
                self._count("udp.decode_errors")
                continue
            self._count("udp.datagrams_received")
            self._count("udp.bytes_received", len(data))
            for message in messages:
                with self._lock:
                    replies = self.node.handle_message(
                        sender, message, time.monotonic()
                    )
                self._send_all(replies)

    def _timer_loop(self) -> None:
        # Random initial phase: gossips are not synchronized across hosts.
        if self._stop.wait(self.rng.uniform(0.0, self.gossip_period)):
            return
        while not self._stop.is_set():
            with self._lock:
                out = self.node.on_tick(time.monotonic())
            self._send_all(out)
            if self._stop.wait(self.gossip_period):
                return

    def _send_all(self, outgoings: Sequence[Outgoing]) -> None:
        if not outgoings:
            return
        # Fault verdicts are taken per outgoing message, in iteration order:
        # the injector's seeded stream must consume the same sequence of
        # decisions regardless of how survivors later batch into frames.
        groups: Dict[Tuple[Address, int, float], List[object]] = {}
        for out in outgoings:
            address = self.directory.get(out.destination)
            if address is None:
                continue
            copies, delay_s = 1, 0.0
            if self.fault_injector is not None:
                verdict, delay_s = self.fault_injector.decide(
                    self.node.pid, out.destination, time.monotonic()
                )
                if verdict.action == "drop":
                    self._count("udp.datagrams_lost_injected")
                    continue
                copies = verdict.copies
            groups.setdefault((address, copies, delay_s), []).append(
                out.message
            )
        for (address, copies, delay_s), messages in groups.items():
            for datagram in self._encode_datagrams(messages):
                for _ in range(copies):
                    if delay_s > 0:
                        timer = threading.Timer(
                            delay_s, self._transmit, (datagram, address)
                        )
                        timer.daemon = True
                        timer.start()
                    else:
                        self._transmit(datagram, address)

    def _encode_datagrams(self, messages: List[object]) -> List[bytes]:
        """Encode one destination's messages into capped datagrams,
        counting and tracing splits and undeliverable oversize messages."""
        if self.wire_format == "text":
            return self._encode_text_datagrams(messages)
        with self.telemetry.time("time.codec", op="encode"):
            plan = pack_datagrams(self.node.pid, messages,
                                  fmt=self.wire_format,
                                  max_bytes=_MAX_DATAGRAM)
        for message, size in plan.oversize:
            self._note_oversize(message, size)
        for message, size, parts in plan.splits:
            self._note_split(message, size, parts)
        return plan.datagrams

    def _encode_text_datagrams(self, messages: List[object]) -> List[bytes]:
        """Legacy ``pid|json`` datagrams, one message each — still splits
        oversize gossips rather than destroying them."""
        prefix = f"{self.node.pid}|"

        def encode_text(message: object) -> bytes:
            with self.telemetry.time("time.codec", op="encode"):
                return (prefix + to_json(message)).encode("utf-8")

        def fits(message: object):
            blob = encode_text(message)
            return (0, blob) if len(blob) <= _MAX_DATAGRAM else None

        datagrams: List[bytes] = []
        for message in messages:
            datagram = encode_text(message)
            if len(datagram) <= _MAX_DATAGRAM:
                datagrams.append(datagram)
                continue
            parts = split_oversize(message, fits)
            if parts is None:
                self._note_oversize(message, len(datagram))
                continue
            self._note_split(message, len(datagram), len(parts))
            datagrams.extend(blob for _part, _version, blob in parts)
        return datagrams

    def _note_oversize(self, message: object, size: int) -> None:
        self._count("udp.datagrams_oversize")
        # Forced past the tracing gate: a destroyed message must never be
        # invisible — this event is the only record of what was lost.
        self.telemetry.emit(
            "wire.oversize", time.monotonic(), pid=self.node.pid,
            force=True, message_kind=type(message).__name__, wire_size=size,
        )

    def _note_split(self, message: object, size: int, parts: int) -> None:
        self._count("udp.gossips_split")
        self.telemetry.emit(
            "wire.split", time.monotonic(), pid=self.node.pid,
            message_kind=type(message).__name__, wire_size=size, parts=parts,
        )

    def _transmit(self, datagram: bytes, address: Address) -> None:
        try:
            self._sock.sendto(datagram, address)
            self._count("udp.datagrams_sent")
            self._count("udp.bytes_sent", len(datagram))
        except OSError:
            self._count("udp.datagrams_send_errors")


class LocalDeployment:
    """A cluster of :class:`UdpProcessHost`\\ s on the loopback interface.

    >>> from repro.sim import build_lpbcast_nodes
    >>> nodes = build_lpbcast_nodes(8, seed=1)
    >>> cluster = LocalDeployment(nodes, gossip_period=0.05)
    >>> cluster.start()
    >>> event = cluster.host(nodes[0].pid).publish("hello")
    >>> cluster.run_for(1.0)
    >>> cluster.stop()
    """

    def __init__(
        self,
        nodes: Sequence,
        gossip_period: float = 0.05,
        loss_rate: float = 0.0,
        seed: int = 0,
        fault_plan=None,
        wire_format: str = "binary",
    ) -> None:
        self.directory: Dict[ProcessId, Address] = {}
        #: One thread-safe registry for the whole cluster; every host's
        #: ``udp.*`` series is labelled with its pid.
        self.telemetry = Telemetry(thread_safe=True)
        root = random.Random(seed)
        # One injector shared by every host: partitions and scoped drops
        # must see traffic from all senders against one schedule and one
        # seeded stream.
        self.fault_injector = None
        if fault_plan is not None:
            from ..faults.wire import DatagramFaultInjector

            self.fault_injector = DatagramFaultInjector(
                fault_plan, rng=random.Random(root.getrandbits(64)),
                round_duration=gossip_period,
            )
        self.hosts: List[UdpProcessHost] = [
            UdpProcessHost(
                node,
                self.directory,
                gossip_period=gossip_period,
                loss_rate=loss_rate,
                rng=random.Random(root.getrandbits(64)),
                fault_injector=self.fault_injector,
                telemetry=self.telemetry,
                wire_format=wire_format,
            )
            for node in nodes
        ]
        self._by_pid = {host.node.pid: host for host in self.hosts}
        self._started = False

    def host(self, pid: ProcessId) -> UdpProcessHost:
        return self._by_pid[pid]

    def start(self) -> None:
        for host in self.hosts:
            host.start()
        self._started = True

    def run_for(self, seconds: float) -> None:
        time.sleep(seconds)

    def wait_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 10.0,
        poll: float = 0.05,
    ) -> bool:
        """Poll ``predicate`` until it holds or ``timeout`` elapses."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(poll)
        return predicate()

    def stop(self) -> None:
        for host in self.hosts:
            host.stop()
        for host in self.hosts:
            host.join()
        self._started = False

    def __enter__(self) -> "LocalDeployment":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def total_datagrams(self) -> int:
        return sum(host.datagrams_sent for host in self.hosts)

    def datagram_counters(self) -> Dict[str, int]:
        """Cluster-wide datagram accounting with drop causes kept distinct —
        the numbers a loss-rate experiment should report alongside
        :meth:`total_datagrams`."""
        return {
            "sent": sum(h.datagrams_sent for h in self.hosts),
            "received": sum(h.datagrams_received for h in self.hosts),
            "lost_injected": sum(h.datagrams_lost_injected for h in self.hosts),
            "oversize": sum(h.datagrams_oversize for h in self.hosts),
            "split": sum(h.gossips_split for h in self.hosts),
            "truncated": sum(h.datagrams_truncated for h in self.hosts),
            "send_errors": sum(h.datagrams_send_errors for h in self.hosts),
            "dropped": sum(h.datagrams_dropped for h in self.hosts),
            "decode_errors": sum(h.decode_errors for h in self.hosts),
            "bytes_sent": sum(h.bytes_sent for h in self.hosts),
            "bytes_received": sum(h.bytes_received for h in self.hosts),
        }
