"""A real deployment runtime: UDP datagrams, threads and wall-clock timers.

The paper's Sec. 5.2 numbers come from an actual deployment (125 Solaris
workstations).  This module is the in-repo equivalent at laptop scale: every
process is hosted by a thread pair (receive loop + gossip timer) bound to a
loopback UDP socket, messages cross a real serialization boundary
(:mod:`repro.core.codec`) and real (unsynchronized) wall-clock timers drive
the periodic gossip — the same protocol objects the simulators run, deployed
for real.

Loopback UDP practically never drops, so the deployment injects Bernoulli
loss at the send boundary to recreate the paper's ε.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.codec import CodecError, from_json, to_json
from ..core.ids import ProcessId
from ..core.message import Outgoing

Address = Tuple[str, int]

_MAX_DATAGRAM = 65_000
_RECV_TIMEOUT = 0.05


class UdpProcessHost:
    """Hosts one protocol node on a loopback UDP socket.

    The node is accessed under a lock from two threads: the receive loop
    (``handle_message``) and the gossip timer (``on_tick``); application
    calls (publishing) must go through :meth:`with_node`.
    """

    def __init__(
        self,
        node,
        directory: Dict[ProcessId, Address],
        gossip_period: float = 0.05,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if gossip_period <= 0:
            raise ValueError("gossip_period must be positive")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.node = node
        self.directory = directory
        self.gossip_period = gossip_period
        self.loss_rate = loss_rate
        self.rng = rng if rng is not None else random.Random()

        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.settimeout(_RECV_TIMEOUT)
        self.address: Address = self._sock.getsockname()
        directory[node.pid] = self.address

        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._receiver = threading.Thread(
            target=self._receive_loop, name=f"recv-{node.pid}", daemon=True
        )
        self._timer = threading.Thread(
            target=self._timer_loop, name=f"tick-{node.pid}", daemon=True
        )
        self.datagrams_sent = 0
        self.datagrams_received = 0
        self.datagrams_dropped = 0
        self.decode_errors = 0

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        self._receiver.start()
        self._timer.start()

    def stop(self) -> None:
        self._stop.set()

    def join(self, timeout: float = 2.0) -> None:
        self._receiver.join(timeout)
        self._timer.join(timeout)
        self._sock.close()

    # -- application access ------------------------------------------------------
    def with_node(self, fn: Callable):
        """Run ``fn(node)`` under the host lock and ship any returned
        :class:`Outgoing` list."""
        with self._lock:
            result = fn(self.node)
        if isinstance(result, list):
            self._send_all(result)
            return None
        return result

    def publish(self, payload=None):
        """Publish on the hosted node (lpbcast interface)."""
        with self._lock:
            return self.node.lpb_cast(payload, now=time.monotonic())

    # -- internals ------------------------------------------------------------------
    def _receive_loop(self) -> None:
        while not self._stop.is_set():
            try:
                data, _addr = self._sock.recvfrom(_MAX_DATAGRAM)
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                payload = data.decode("utf-8")
                sender_part, message_part = payload.split("|", 1)
                sender = int(sender_part)
                message = from_json(message_part)
            except (CodecError, ValueError, UnicodeDecodeError):
                self.decode_errors += 1
                continue
            self.datagrams_received += 1
            with self._lock:
                replies = self.node.handle_message(
                    sender, message, time.monotonic()
                )
            self._send_all(replies)

    def _timer_loop(self) -> None:
        # Random initial phase: gossips are not synchronized across hosts.
        if self._stop.wait(self.rng.uniform(0.0, self.gossip_period)):
            return
        while not self._stop.is_set():
            with self._lock:
                out = self.node.on_tick(time.monotonic())
            self._send_all(out)
            if self._stop.wait(self.gossip_period):
                return

    def _send_all(self, outgoings: Sequence[Outgoing]) -> None:
        for out in outgoings:
            address = self.directory.get(out.destination)
            if address is None:
                continue
            if self.loss_rate and self.rng.random() < self.loss_rate:
                self.datagrams_dropped += 1
                continue
            datagram = f"{self.node.pid}|{to_json(out.message)}".encode("utf-8")
            if len(datagram) > _MAX_DATAGRAM:
                self.datagrams_dropped += 1
                continue
            try:
                self._sock.sendto(datagram, address)
                self.datagrams_sent += 1
            except OSError:
                self.datagrams_dropped += 1


class LocalDeployment:
    """A cluster of :class:`UdpProcessHost`\\ s on the loopback interface.

    >>> from repro.sim import build_lpbcast_nodes
    >>> nodes = build_lpbcast_nodes(8, seed=1)
    >>> cluster = LocalDeployment(nodes, gossip_period=0.05)
    >>> cluster.start()
    >>> event = cluster.host(nodes[0].pid).publish("hello")
    >>> cluster.run_for(1.0)
    >>> cluster.stop()
    """

    def __init__(
        self,
        nodes: Sequence,
        gossip_period: float = 0.05,
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.directory: Dict[ProcessId, Address] = {}
        root = random.Random(seed)
        self.hosts: List[UdpProcessHost] = [
            UdpProcessHost(
                node,
                self.directory,
                gossip_period=gossip_period,
                loss_rate=loss_rate,
                rng=random.Random(root.getrandbits(64)),
            )
            for node in nodes
        ]
        self._by_pid = {host.node.pid: host for host in self.hosts}
        self._started = False

    def host(self, pid: ProcessId) -> UdpProcessHost:
        return self._by_pid[pid]

    def start(self) -> None:
        for host in self.hosts:
            host.start()
        self._started = True

    def run_for(self, seconds: float) -> None:
        time.sleep(seconds)

    def wait_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 10.0,
        poll: float = 0.05,
    ) -> bool:
        """Poll ``predicate`` until it holds or ``timeout`` elapses."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(poll)
        return predicate()

    def stop(self) -> None:
        for host in self.hosts:
            host.stop()
        for host in self.hosts:
            host.join()
        self._started = False

    def __enter__(self) -> "LocalDeployment":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def total_datagrams(self) -> int:
        return sum(host.datagrams_sent for host in self.hosts)
