"""Mergeable per-round node aggregates — the recorder's shard-safe feed.

:class:`RunRecorder` needs, after every round, a handful of *system-level*
sums: delivered/duplicate/drop counters, buffer occupancies and in-degree
statistics.  Reading those through full node snapshots is exact but forces
the sharded engine to pickle every node every round.  This module computes
the same numbers as a small, picklable :class:`NodeAggregates` value —
each shard aggregates its own alive nodes locally, and aggregates from
disjoint node sets merge by summation, so the coordinator-side merge equals
the serial engine's direct read exactly (all fields are integer sums, and
the derived float statistics are computed from the merged integers in
sorted order on every engine).

The in-degree statistics replicate :func:`repro.metrics.views.in_degree_stats`
semantics without the networkx dependency (shard workers must not need it):
the *knows-about* graph spans the aggregated processes plus every view
target they reference, edges are deduplicated per (holder, target), and the
degree population covers all graph nodes — including crashed processes that
alive views still reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Set, Tuple

#: NodeStats fields summed into ``stat_sums`` (missing fields count 0, so
#: non-lpbcast protocol nodes aggregate as zeros instead of raising).
STAT_FIELDS = (
    "published", "delivered", "duplicates", "gossips_sent",
    "gossips_received", "events_dropped", "event_ids_evicted",
    "retransmit_requests_sent", "retransmits_delivered",
)

#: Buffer attributes whose ``len`` feeds the occupancy means.
OCCUPANCY_FIELDS = ("events", "event_ids", "subs")


@dataclass
class NodeAggregates:
    """Summed node state over one disjoint set of (alive) processes."""

    count: int = 0
    stat_sums: Dict[str, int] = field(default_factory=dict)
    occupancy_sums: Dict[str, int] = field(default_factory=dict)
    in_degree: Dict[int, int] = field(default_factory=dict)
    graph_nodes: Set[int] = field(default_factory=set)

    def merge(self, other: "NodeAggregates") -> "NodeAggregates":
        """Fold ``other`` (over a disjoint node set) into this aggregate."""
        self.count += other.count
        for name, value in other.stat_sums.items():
            self.stat_sums[name] = self.stat_sums.get(name, 0) + value
        for name, value in other.occupancy_sums.items():
            self.occupancy_sums[name] = \
                self.occupancy_sums.get(name, 0) + value
        for pid, degree in other.in_degree.items():
            self.in_degree[pid] = self.in_degree.get(pid, 0) + degree
        self.graph_nodes |= other.graph_nodes
        return self

    # -- derived quantities --------------------------------------------------
    def stat_total(self, name: str) -> int:
        return self.stat_sums.get(name, 0)

    def occupancy_mean(self, name: str) -> float:
        if self.count == 0:
            return 0.0
        return self.occupancy_sums.get(name, 0) / self.count

    def in_degree_stats(self) -> Optional[Tuple[float, float, int]]:
        """``(mean, std, min)`` over the knows-about graph, or ``None`` when
        no processes were aggregated."""
        if not self.graph_nodes:
            return None
        degrees = [self.in_degree.get(pid, 0)
                   for pid in sorted(self.graph_nodes)]
        mean = sum(degrees) / len(degrees)
        var = sum((d - mean) ** 2 for d in degrees) / len(degrees)
        return (mean, math.sqrt(var), min(degrees))


def aggregate_nodes(nodes: Iterable) -> NodeAggregates:
    """Aggregate real (in-process) node objects.

    Tolerates nodes without ``stats``/buffer attributes (they contribute
    zeros and no view edges), mirroring how the metrics layer treats
    non-lpbcast protocol nodes.
    """
    agg = NodeAggregates()
    for node in nodes:
        agg.count += 1
        stats = getattr(node, "stats", None)
        if stats is not None:
            for name in STAT_FIELDS:
                value = getattr(stats, name, 0)
                if value:
                    agg.stat_sums[name] = agg.stat_sums.get(name, 0) + value
        for name in OCCUPANCY_FIELDS:
            buf = getattr(node, name, None)
            if buf is None:
                continue
            try:
                size = len(buf)
            except TypeError:
                continue  # structurally bounded digests have no len
            agg.occupancy_sums[name] = \
                agg.occupancy_sums.get(name, 0) + size
        view = getattr(node, "view", None)
        if view is not None:
            try:
                targets = set(view)
            except TypeError:
                targets = set()
            agg.graph_nodes.add(node.pid)
            agg.graph_nodes.update(targets)
            for target in targets:
                agg.in_degree[target] = agg.in_degree.get(target, 0) + 1
    return agg


def merge_aggregates(parts: Sequence[NodeAggregates]) -> NodeAggregates:
    """Merge shard-local aggregates over disjoint node sets."""
    merged = NodeAggregates()
    for part in parts:
        merged.merge(part)
    return merged
