"""Deterministic random-stream derivation.

Every stochastic component of a simulation (each node, the network, the
workload, the churn schedule) gets its *own* ``random.Random`` stream derived
from a single root seed.  This gives two properties the experiment harness
relies on:

* **Reproducibility** — the same root seed replays the same run bit-for-bit.
* **Independence under reconfiguration** — adding an observer or reordering
  node construction does not perturb the streams of unrelated components,
  because each stream is keyed by a stable label rather than by draw order.
"""

from __future__ import annotations

import hashlib
import random
from typing import Tuple


def derive_seed(root_seed: int, *labels) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a label path.

    Uses SHA-256 over the canonical string of the label path, so the mapping
    is stable across Python versions and processes (unlike ``hash()``).
    """
    material = repr((root_seed,) + tuple(labels)).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(root_seed: int, *labels) -> random.Random:
    """A fresh, independent ``random.Random`` for the given label path."""
    return random.Random(derive_seed(root_seed, *labels))


class SeedSequence:
    """Hands out labelled child streams of one root seed.

    >>> seq = SeedSequence(42)
    >>> a = seq.rng("node", 3)
    >>> b = seq.rng("node", 4)
    >>> a.random() != b.random()
    True
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = root_seed

    def seed(self, *labels) -> int:
        return derive_seed(self.root_seed, *labels)

    def rng(self, *labels) -> random.Random:
        return derive_rng(self.root_seed, *labels)

    def spawn(self, *labels) -> "SeedSequence":
        """A child sequence rooted under a label (namespacing helper)."""
        return SeedSequence(self.seed(*labels))


def sample_without_replacement(
    rng: random.Random, population: Tuple, k: int
) -> list:
    """``rng.sample`` tolerant of ``k`` exceeding the population size."""
    if k >= len(population):
        return list(population)
    return rng.sample(population, k)
