"""Network and failure models (paper Sec. 4.1 assumptions).

The analysis assumes: stochastically independent failures; message loss
probability bounded by ``ε`` (paper default 0.05); at most ``f < n`` crashes
per run giving a crash probability bound ``τ = f/n`` (paper default 0.01);
and, for the round-based analysis, network latency below the gossip period.

:class:`NetworkModel` realizes exactly those assumptions: i.i.d. Bernoulli
loss per message, an optional link filter (used to force partitions in
fault-injection tests), and a latency distribution used by the discrete-event
runner.  :class:`CrashPlan` pre-draws which processes crash and when, honoring
the ``τ`` bound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.ids import ProcessId

#: Paper defaults (Sec. 4.1): "we will assume τ = 0.01 and ε = 0.05".
PAPER_LOSS_RATE = 0.05
PAPER_CRASH_RATE = 0.01

LinkFilter = Callable[[ProcessId, ProcessId], bool]
"""Returns True when src→dst traffic is allowed (False forces a cut)."""

LatencyModel = Callable[[random.Random], float]
"""Draws one message latency, in simulated time units."""


def constant_latency(value: float) -> LatencyModel:
    """Latency fixed at ``value`` (< T keeps the Sec. 4.1 round abstraction)."""
    if value < 0:
        raise ValueError("latency must be non-negative")
    return lambda rng: value


def uniform_latency(low: float, high: float) -> LatencyModel:
    """Latency uniform in [low, high]."""
    if not 0 <= low <= high:
        raise ValueError("need 0 <= low <= high")
    return lambda rng: rng.uniform(low, high)


def exponential_latency(mean: float, cap: Optional[float] = None) -> LatencyModel:
    """Exponential latency with the given mean, optionally truncated at
    ``cap`` (the paper assumes an upper bound below the gossip period)."""
    if mean <= 0:
        raise ValueError("mean must be positive")

    def draw(rng: random.Random) -> float:
        value = rng.expovariate(1.0 / mean)
        return min(value, cap) if cap is not None else value

    return draw


class NetworkModel:
    """Message-level loss, latency and reachability.

    Parameters
    ----------
    loss_rate:
        ε — i.i.d. probability that any given message is dropped in transit.
    rng:
        The network's private random stream.
    latency:
        Latency model for the discrete-event runner (ignored by the
        round-based runner, where one round is one time step).
    link_filter:
        Optional reachability predicate; messages on disallowed links are
        dropped deterministically.  Tests use this to carve partitions.
    """

    def __init__(
        self,
        loss_rate: float = PAPER_LOSS_RATE,
        rng: Optional[random.Random] = None,
        latency: Optional[LatencyModel] = None,
        link_filter: Optional[LinkFilter] = None,
    ) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss_rate (epsilon) must be in [0, 1]")
        self.loss_rate = loss_rate
        self.rng = rng if rng is not None else random.Random()
        self.latency = latency if latency is not None else constant_latency(0.1)
        self.link_filter = link_filter
        self.messages_offered = 0
        self.messages_dropped = 0
        self.messages_cut = 0

    def deliverable(self, src: ProcessId, dst: ProcessId) -> bool:
        """Decide the fate of one message (count it either way)."""
        self.messages_offered += 1
        if self.link_filter is not None and not self.link_filter(src, dst):
            self.messages_cut += 1
            return False
        if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.messages_dropped += 1
            return False
        return True

    def draw_latency(self) -> float:
        return self.latency(self.rng)

    def observed_loss_rate(self) -> float:
        """Empirical loss fraction (random drops only, not link cuts)."""
        if self.messages_offered == 0:
            return 0.0
        return self.messages_dropped / self.messages_offered


def partition_filter(groups: Sequence[Sequence[ProcessId]]) -> LinkFilter:
    """A link filter allowing traffic only within the given groups.

    Processes not listed in any group may talk to anyone.
    """
    membership: Dict[ProcessId, int] = {}
    for idx, group in enumerate(groups):
        for pid in group:
            membership[pid] = idx

    def allowed(src: ProcessId, dst: ProcessId) -> bool:
        gs, gd = membership.get(src), membership.get(dst)
        return gs is None or gd is None or gs == gd

    return allowed


@dataclass(frozen=True)
class CrashEvent:
    """Process ``pid`` fail-stops at time/round ``at``."""

    pid: ProcessId
    at: float


class CrashPlan:
    """Pre-drawn fail-stop schedule bounded by τ (Sec. 4.1).

    "The number of process crashes in a run does not exceed f < n.  The
    probability of a process crash during a run is thus bounded by τ = f/n."
    We draw ``f = round(τ·n)`` distinct victims and give each a crash time
    uniform over the run horizon.  Crashed processes are silenced (fail-stop,
    no recovery, no byzantine behaviour — exactly the paper's model).
    """

    def __init__(
        self,
        processes: Sequence[ProcessId],
        crash_rate: float = PAPER_CRASH_RATE,
        horizon: float = 10.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 <= crash_rate < 1.0:
            raise ValueError("crash_rate (tau) must be in [0, 1)")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.crash_rate = crash_rate
        rng = rng if rng is not None else random.Random()
        count = int(round(crash_rate * len(processes)))
        victims = rng.sample(list(processes), count) if count else []
        self.events: List[CrashEvent] = sorted(
            (CrashEvent(pid, rng.uniform(0.0, horizon)) for pid in victims),
            key=lambda ev: ev.at,
        )
        #: Consumption cursor over the sorted schedule: events at or before
        #: the last ``crashes_before`` call have already been handed out.
        self._cursor = 0

    def crashes_before(self, now: float) -> List[CrashEvent]:
        """Consume and return the not-yet-applied events with ``at <= now``.

        The schedule is sorted, so a cursor hands each event out exactly
        once; the per-round full rescan (which kept re-offering already
        applied crashes) is gone.  ``victims()``/``len()`` still describe
        the whole plan.  A plan instance therefore serves one simulation —
        build a fresh plan (same seed) to replay.
        """
        events = self.events
        i = self._cursor
        n = len(events)
        due: List[CrashEvent] = []
        while i < n and events[i].at <= now:
            due.append(events[i])
            i += 1
        self._cursor = i
        return due

    def victims(self) -> List[ProcessId]:
        return [ev.pid for ev in self.events]

    def __len__(self) -> int:
        return len(self.events)
