"""Bit-packed boolean columns for the mega-scale columnar engine.

The columnar engine's per-event × per-node state is boolean, and at
n = 1,000,000 a plain ``bool`` column costs one byte per node — 1 MB per
event row, several hundred MB per run.  This module packs those columns
64 nodes per ``uint64`` word (an 8x memory cut) and provides the word-level
primitives the round passes are written in: pack/unpack, population count,
index gather/scatter.

Two symmetric halves share one layout so repro artifacts recorded on a
numpy machine replay on a stdlib-only one:

* **numpy words** — arrays of ``uint64``; node ``i`` lives at bit
  ``i & 63`` of word ``i >> 6``.  The layout is the *little-endian*
  ``packbits`` layout, forced explicitly (``"<u8"`` views) so pack and
  unpack agree on any host byte order.  Population counts use
  ``numpy.bitwise_count`` when the installed numpy has it (>= 2.0) and an
  8-bit lookup table over a byte view otherwise.
* **python ints** — one arbitrary-precision ``int`` per column; node ``i``
  is bit ``i``.  CPython ints are already bitsets with C-speed ``&``/``|``
  and (3.10+) ``bit_count``; the pure-python backend stores each event row
  as one such int.

Both halves are property-tested against naive boolean arrays in
``tests/sim/test_bitset.py``.
"""

from __future__ import annotations

from typing import List, Sequence

try:  # optional fast path, mirroring repro.sim.columnar_runner
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the python backend
    _np = None

#: Nodes per packed word.
WORD_BITS = 64


def words_for(n: int) -> int:
    """Words needed to hold ``n`` bits."""
    return (n + WORD_BITS - 1) >> 6


# ---------------------------------------------------------------------------
# numpy words
# ---------------------------------------------------------------------------

if _np is not None:
    #: Per-byte population counts — the fallback when the installed numpy
    #: predates ``bitwise_count``.
    POPCOUNT8 = _np.array([bin(value).count("1") for value in range(256)],
                          dtype=_np.uint8)

    _HAVE_BITWISE_COUNT = hasattr(_np, "bitwise_count")


def zero_words(n: int):
    """A cleared bitset holding ``n`` bits."""
    return _np.zeros(words_for(n), dtype=_np.uint64)


def pack_bools(flags):
    """Boolean array → ``uint64`` words (little-endian bit layout)."""
    flags = _np.ascontiguousarray(flags, dtype=bool)
    bits = _np.packbits(flags, bitorder="little")
    pad = (-bits.size) % 8
    if pad:
        bits = _np.concatenate([bits, _np.zeros(pad, dtype=_np.uint8)])
    return bits.view("<u8").astype(_np.uint64, copy=False)


def unpack_bools(words, n: int):
    """``uint64`` words → boolean array of length ``n``."""
    if n == 0:
        return _np.zeros(0, dtype=bool)
    raw = _np.ascontiguousarray(words, dtype="<u8").view(_np.uint8)
    return _np.unpackbits(raw, count=n, bitorder="little").view(_np.bool_)


def popcount_words(words) -> int:
    """Total set bits across ``words`` (any shape)."""
    if _HAVE_BITWISE_COUNT:
        return int(_np.bitwise_count(words).sum(dtype=_np.int64))
    return int(POPCOUNT8[words.view(_np.uint8)].sum(dtype=_np.int64))


def popcount_rows(matrix):
    """Per-row set bits of a ``(rows, words)`` matrix → ``int64[rows]``."""
    if _HAVE_BITWISE_COUNT:
        return _np.bitwise_count(matrix).sum(axis=1, dtype=_np.int64)
    per_byte = POPCOUNT8[matrix.view(_np.uint8)]
    return per_byte.reshape(matrix.shape[0], -1).sum(axis=1, dtype=_np.int64)


def bit_indices(words, n: int):
    """Indices of the set bits among the first ``n``."""
    return _np.flatnonzero(unpack_bools(words, n))


def mask_from_indices(indices, n: int):
    """Bitset with exactly the bits in ``indices`` set."""
    flags = _np.zeros(n, dtype=bool)
    flags[indices] = True
    return pack_bools(flags)


def gather_bits(words, indices):
    """Per-index bit reads: ``bool[len(indices)]`` without unpacking.

    ``indices`` may repeat and arrive in any order — this is the inner
    read of "is target already infected" over a flat arrival list.
    """
    indices = _np.asarray(indices)
    shifts = (indices & 63).astype(_np.uint64)
    return ((words[indices >> 6] >> shifts) & _np.uint64(1)).astype(bool)


# ---------------------------------------------------------------------------
# python ints
# ---------------------------------------------------------------------------

if hasattr(int, "bit_count"):  # 3.10+
    def int_popcount(value: int) -> int:
        """Set bits of a python-int bitset."""
        return value.bit_count()
else:  # pragma: no cover - 3.9 fallback
    def int_popcount(value: int) -> int:
        """Set bits of a python-int bitset."""
        return bin(value).count("1")


def int_pack(flags: Sequence[bool]) -> int:
    """Boolean sequence → python-int bitset (bit ``i`` = ``flags[i]``)."""
    value = 0
    for index, flag in enumerate(flags):
        if flag:
            value |= 1 << index
    return value


def int_unpack(value: int, n: int) -> List[bool]:
    """Python-int bitset → list of ``n`` booleans."""
    return [bool((value >> index) & 1) for index in range(n)]


def int_indices(value: int, n: int) -> List[int]:
    """Indices of the set bits among the first ``n``."""
    return [index for index in range(n) if (value >> index) & 1]


def int_full_mask(n: int) -> int:
    """All of the first ``n`` bits set."""
    return (1 << n) - 1
