"""Round-by-round run recording.

A :class:`RunRecorder` snapshots system-level state after every round —
infection progress, buffer occupancies, view statistics, network counters —
into plain dictionaries that can be inspected in-process or exported as
JSON lines for offline analysis.  This is the observability layer a
production operator would want: the reliability loss of Fig. 6 shows up
here as ``event_ids_occupancy`` pinned at its bound while
``events_dropped`` climbs.

Engines that expose ``node_aggregates()`` (all repro engines do) feed the
recorder through :mod:`repro.sim.aggregates`: shards sum their own alive
nodes locally and ship a few integers per round.  The previous
implementation called ``refresh_nodes()`` — a full node pickle of the
whole system — on every round of a sharded run; the aggregate path records
the same numbers without moving node state, and serial vs sharded runs of
the same seed produce identical records.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Optional, Sequence


class RunRecorder:
    """Collects one record per round; register as a round observer."""

    def __init__(
        self,
        nodes: Sequence,
        sample_view_stats: bool = True,
        stream: Optional[IO[str]] = None,
    ) -> None:
        self.nodes = list(nodes)
        self.sample_view_stats = sample_view_stats
        self.stream = stream
        self.records: List[Dict] = []

    # -- wiring ---------------------------------------------------------------
    def on_round(self, round_number: int, sim) -> None:
        record = self.snapshot(sim, round_number)
        self.records.append(record)
        if self.stream is not None:
            self.stream.write(json.dumps(record, separators=(",", ":")) + "\n")

    def snapshot(self, sim, round_number: int) -> Dict:
        aggregates = getattr(sim, "node_aggregates", None)
        if aggregates is not None:
            agg = aggregates([n.pid for n in self.nodes])
        else:
            # Engine without the aggregate feed: read node state directly
            # (out-of-process engines need their replicas synced first).
            refresh = getattr(sim, "refresh_nodes", None)
            if refresh is not None:
                refresh()
            from .aggregates import aggregate_nodes

            agg = aggregate_nodes(
                sim.nodes.get(n.pid, n) for n in self.nodes
                if sim.alive(n.pid)
            )
        record: Dict = {
            "round": round_number,
            "alive": agg.count,
            "delivered_total": agg.stat_total("delivered"),
            "duplicates_total": agg.stat_total("duplicates"),
            "events_dropped_total": agg.stat_total("events_dropped"),
            "event_ids_evicted_total": agg.stat_total("event_ids_evicted"),
            "gossips_sent_total": agg.stat_total("gossips_sent"),
            "events_occupancy": agg.occupancy_mean("events"),
            "event_ids_occupancy": agg.occupancy_mean("event_ids"),
            "subs_occupancy": agg.occupancy_mean("subs"),
            "messages_offered": sim.network.messages_offered,
            "messages_dropped": sim.network.messages_dropped,
        }
        if self.sample_view_stats:
            stats = agg.in_degree_stats()
            if stats is not None:
                mean, std, minimum = stats
                record["in_degree_mean"] = mean
                record["in_degree_std"] = std
                record["in_degree_min"] = minimum
        return record

    # -- queries -----------------------------------------------------------------
    def series(self, field: str) -> List:
        """One field across all recorded rounds."""
        return [record.get(field) for record in self.records]

    def last(self) -> Dict:
        if not self.records:
            raise ValueError("nothing recorded yet")
        return self.records[-1]

    def to_json_lines(self) -> str:
        return "\n".join(
            json.dumps(record, separators=(",", ":")) for record in self.records
        )

    @staticmethod
    def from_json_lines(text: str) -> List[Dict]:
        return [json.loads(line) for line in text.splitlines() if line.strip()]

    def __len__(self) -> int:
        return len(self.records)
