"""Round-by-round run recording.

A :class:`RunRecorder` snapshots system-level state after every round —
infection progress, buffer occupancies, view statistics, network counters —
into plain dictionaries that can be inspected in-process or exported as
JSON lines for offline analysis.  This is the observability layer a
production operator would want: the reliability loss of Fig. 6 shows up
here as ``event_ids_occupancy`` pinned at its bound while
``events_dropped`` climbs.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Optional, Sequence

from ..metrics.views import in_degree_stats


class RunRecorder:
    """Collects one record per round; register as a round observer."""

    def __init__(
        self,
        nodes: Sequence,
        sample_view_stats: bool = True,
        stream: Optional[IO[str]] = None,
    ) -> None:
        self.nodes = list(nodes)
        self.sample_view_stats = sample_view_stats
        self.stream = stream
        self.records: List[Dict] = []

    # -- wiring ---------------------------------------------------------------
    def on_round(self, round_number: int, sim) -> None:
        record = self.snapshot(sim, round_number)
        self.records.append(record)
        if self.stream is not None:
            self.stream.write(json.dumps(record, separators=(",", ":")) + "\n")

    def snapshot(self, sim, round_number: int) -> Dict:
        # Engines that run nodes out-of-process (the sharded engine) expose
        # refresh_nodes(); pull current replicas, then read through the
        # engine's own handles so swapped nodes (proxies) are honored.
        refresh = getattr(sim, "refresh_nodes", None)
        if refresh is not None:
            refresh()
        alive = [
            sim.nodes.get(n.pid, n) for n in self.nodes if sim.alive(n.pid)
        ]
        record: Dict = {
            "round": round_number,
            "alive": len(alive),
            "delivered_total": sum(n.stats.delivered for n in alive),
            "duplicates_total": sum(n.stats.duplicates for n in alive),
            "events_dropped_total": sum(n.stats.events_dropped for n in alive),
            "event_ids_evicted_total": sum(
                n.stats.event_ids_evicted for n in alive
            ),
            "gossips_sent_total": sum(n.stats.gossips_sent for n in alive),
            "events_occupancy": self._mean(len(n.events) for n in alive),
            "event_ids_occupancy": self._mean(
                len(n.event_ids) for n in alive
            ),
            "subs_occupancy": self._mean(len(n.subs) for n in alive),
            "messages_offered": sim.network.messages_offered,
            "messages_dropped": sim.network.messages_dropped,
        }
        if self.sample_view_stats and alive:
            stats = in_degree_stats(alive)
            record["in_degree_mean"] = stats.mean
            record["in_degree_std"] = stats.std
            record["in_degree_min"] = stats.minimum
        return record

    @staticmethod
    def _mean(values) -> float:
        values = list(values)
        return sum(values) / len(values) if values else 0.0

    # -- queries -----------------------------------------------------------------
    def series(self, field: str) -> List:
        """One field across all recorded rounds."""
        return [record.get(field) for record in self.records]

    def last(self) -> Dict:
        if not self.records:
            raise ValueError("nothing recorded yet")
        return self.records[-1]

    def to_json_lines(self) -> str:
        return "\n".join(
            json.dumps(record, separators=(",", ":")) for record in self.records
        )

    @staticmethod
    def from_json_lines(text: str) -> List[Dict]:
        return [json.loads(line) for line in text.splitlines() if line.strip()]

    def __len__(self) -> int:
        return len(self.records)
