"""Array-backed columnar round engine for mega-scale runs (n >= 100k).

The object-per-node engines walk ``n`` Python objects per round and top out
around n=5000 (BENCH_hotpath.json).  :class:`ColumnarRoundSimulation` keeps
the whole system in preallocated dense columns keyed by node *index* —
views, alive flags, per-event delivery/forwarding bitmaps, per-node stat
counters — and executes each gossip round as a handful of batched
vectorized passes (partner selection, loss admission, digest diff /
delivery, buffer truncation) instead of ``n`` per-node ticks.  With numpy
available the passes are true array operations; without it a pure-stdlib
fallback provides the same semantics at reduced speed.

Bit-packed state (n = 1,000,000)
--------------------------------
All boolean per-node columns — the alive flags and the per-event
delivery/forwarding bitmaps — are stored bit-packed, 64 nodes per word
(:mod:`repro.sim.bitset`): ``uint64`` word arrays on the numpy backend,
arbitrary-precision ``int`` bitsets on the pure-python backend.  An event
row costs ``n/8`` bytes instead of ``n``, and the round passes operate on
words (masked OR-propagation for infection spread, popcount for curve
reads) so a million-node system fits comfortably in memory: the dominant
remaining columns are the ``int32`` view matrix (``4 * n * view_cap``
bytes) and the six ``int64`` stat columns.  :meth:`memory_bytes` reports
the resident column footprint for the bench harness.

Multi-core rounds (``workers=N``)
---------------------------------
With ``workers > 1`` (numpy backend only) the node axis is partitioned
across long-lived worker processes over ``multiprocessing.shared_memory``
views — see :mod:`repro.sim.columnar_shm`.  Partition boundaries are fixed
by ``(n, workers)`` alone and the honoured counter series (below) are
computed by the coordinator from schedule-deterministic state, so the
honoured fingerprint is byte-identical for *any* worker count, including
``workers=1`` and the serial engine.  Per-target randomness draws from
per-worker streams (``derive_seed(seed, "columnar-shm", w)``), so the
non-honoured counters vary with the worker count — the same declared
divergence already accepted between serial and columnar.  Call
:meth:`close` (or use the engine as a context manager) to reap workers and
shared-memory segments.

Honoured-metric contract
------------------------
The columnar engine is *not* bit-identical to the serial engine — it trades
per-message fidelity for scale.  It is validated by the DST differential
oracle on the **honoured metric subset**: counter series that depend only
on the fault-plan schedule and the protocol's deterministic emission rule,
never on any random draw.  For the same spec the serial and columnar runs
must produce byte-identical records for:

* ``sim.rounds`` — one increment per round;
* ``sim.sends{kind="GossipMessage", round=r}`` — every alive, non-paused
  process emits ``min(F, |view|) * (1 + membership_boost)`` gossip messages
  per tick, and views never shrink in the plain scenario family (no
  unsubscriptions), so the per-round count is schedule-determined;
* ``faults.crashes_applied`` / ``faults.recoveries_applied`` /
  ``faults.pause_rounds`` — counted by the shared
  :class:`~repro.faults.injector.FaultInjector` purely from the plan.

Declared divergences (everything else; pinned by
``tests/sim/test_columnar_parity.py`` and documented in
``docs/experiments-guide.md``):

* delivery / receive / duplicate counters, ``net.*`` accounting and
  per-sender ledgers — partner selection and loss draw from the columnar
  engine's own (vectorized) stream;
* message-level fault classes: partitions and drop-rate windows are applied
  (vectorized, own stream), duplicate/delay windows are ignored (delivery
  is idempotent and round-granular here), Byzantine plans are rejected;
* recovery re-join: a recovered process resumes gossiping with its retained
  view but sends no Sec. 3.4 re-subscription handshake;
* membership traffic does not reshape views — views are frozen at
  bootstrap (sizes are constant either way in the plain family);
* trace events, reply generations, retransmission traffic and subs/unsubs
  buffer occupancy are not modelled.
"""

from __future__ import annotations

import hashlib
from array import array
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from ..core.config import LpbcastConfig
from ..core.events import Notification, make_notification
from ..core.ids import ProcessId
from ..telemetry import Telemetry
from . import bitset
from .network import NetworkModel
from .rng import SeedSequence, derive_rng, derive_seed

try:  # optional fast path; the stdlib fallback keeps semantics identical
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via backend="python"
    _np = None


# ---------------------------------------------------------------------------
# Honoured-metric helpers (shared with the DST oracle)
# ---------------------------------------------------------------------------

#: Counter names honoured bit-identically regardless of labels.
HONOURED_COUNTERS = frozenset({
    "sim.rounds",
    "faults.crashes_applied",
    "faults.recoveries_applied",
    "faults.pause_rounds",
})

#: ``sim.sends`` is honoured for this message kind only (tick gossips);
#: join/retransmission traffic rides other kinds and is not modelled.
HONOURED_SEND_KIND = "GossipMessage"


def is_honoured_record(record) -> bool:
    """Whether one canonical counter record is part of the serial-vs-columnar
    bit-identity contract (see module docstring)."""
    name, labels, _value = record
    if name in HONOURED_COUNTERS:
        return True
    if name == "sim.sends":
        return ("kind", repr(HONOURED_SEND_KIND)) in labels
    return False


def honoured_records(records: Sequence) -> List:
    """The honoured subset of a canonical counter-record list."""
    return [record for record in records if is_honoured_record(record)]


def honoured_fingerprint(records: Sequence) -> str:
    """SHA-256 over the honoured subset — backend-independent (the honoured
    series consume no randomness), so repro artifacts replay on machines
    with or without numpy."""
    return hashlib.sha256(repr(honoured_records(records)).encode()).hexdigest()


# ---------------------------------------------------------------------------
# Node handles
# ---------------------------------------------------------------------------


class ColumnarNodeHandle:
    """Lightweight ``sim.nodes[pid]`` stand-in over the columns.

    Exposes the entry points harnesses actually use on a node object —
    ``lpb_cast`` and ``add_delivery_listener`` — plus the identity/stat
    reads; full protocol state lives in the owning simulation's arrays.
    """

    __slots__ = ("pid", "_sim", "_index")

    def __init__(self, sim: "ColumnarRoundSimulation", pid: ProcessId,
                 index: int) -> None:
        self.pid = pid
        self._sim = sim
        self._index = index

    def lpb_cast(self, payload=None, now: float = 0.0) -> Notification:
        return self._sim._publish(self._index, payload, now)

    def add_delivery_listener(self, listener) -> None:
        self._sim._add_delivery_listener(self._index, listener)

    @property
    def view(self) -> List[ProcessId]:
        return self._sim._view_of(self._index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnarNodeHandle(pid={self.pid})"


class _HandleMap(Mapping):
    """``sim.nodes``: a pid -> handle mapping that materialises handles
    lazily — a 1M-node run must not allocate 1M wrapper objects up front."""

    __slots__ = ("_sim", "_cache")

    def __init__(self, sim: "ColumnarRoundSimulation") -> None:
        self._sim = sim
        self._cache: Dict[ProcessId, ColumnarNodeHandle] = {}

    def __getitem__(self, pid: ProcessId) -> ColumnarNodeHandle:
        handle = self._cache.get(pid)
        if handle is None:
            index = self._sim._index.get(pid)
            if index is None:
                raise KeyError(pid)
            handle = self._cache[pid] = ColumnarNodeHandle(
                self._sim, pid, index)
        return handle

    def __iter__(self) -> Iterator[ProcessId]:
        return iter(self._sim._pids)

    def __len__(self) -> int:
        return len(self._sim._pids)

    def __contains__(self, pid: object) -> bool:
        return pid in self._sim._index


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class ColumnarRoundSimulation:
    """Vectorized synchronous-round lpbcast over dense bit-packed columns.

    Build either by ingesting prebuilt nodes (``add_nodes`` — the DST
    harness path, bounded n) or directly at scale with :meth:`build`
    (column-native bootstrap, no per-node objects).  The run surface
    mirrors :class:`~repro.sim.round_runner.RoundSimulation`: ``run`` /
    ``run_round`` / ``run_until``, round hooks and observers, ``crash`` /
    ``recover`` / ``use_fault_plan``, ``node_aggregates`` and engine-native
    ``telemetry``.  ``workers > 1`` runs the round passes across that many
    shared-memory worker processes (numpy backend only; see module
    docstring) — call :meth:`close` when done, or use ``with``.
    """

    def __init__(
        self,
        network: Optional[NetworkModel] = None,
        seed: int = 0,
        backend: str = "auto",
        workers: int = 1,
    ) -> None:
        if backend not in ("auto", "numpy", "python"):
            raise ValueError("backend must be 'auto', 'numpy' or 'python'")
        if backend == "numpy" and _np is None:
            raise ValueError("backend='numpy' requested but numpy is not "
                             "importable; use backend='auto' or 'python'")
        self.backend = ("numpy" if (_np is not None and backend != "python")
                        else "python")
        if not isinstance(workers, int) or isinstance(workers, bool):
            raise ValueError(f"workers must be a positive int, got "
                             f"{workers!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers > 1 and self.backend != "python" and _np is None:
            raise ValueError("workers > 1 requires numpy")  # pragma: no cover
        if workers > 1 and self.backend == "python":
            raise ValueError(
                "workers > 1 requires the numpy backend (the multi-core "
                "mode partitions shared-memory array views); use "
                "backend='auto' or 'numpy', or workers=1")
        self.workers = workers
        self.seeds = SeedSequence(seed)
        self.seed = seed
        #: The network model contributes only its ``loss_rate`` — admission
        #: draws come from the columnar engine's own stream (declared
        #: divergence from the serial ``seeds.rng("network")`` stream).
        self.network = network if network is not None else NetworkModel(
            loss_rate=0.0, rng=self.seeds.rng("network"))
        self.loss_rate = float(getattr(self.network, "loss_rate", 0.0))
        self.telemetry = Telemetry()
        self.round = 0
        self.messages_delivered = 0  # gossip arrivals admitted, cumulative
        self.nodes: Mapping[ProcessId, ColumnarNodeHandle] = _HandleMap(self)
        self.config: Optional[LpbcastConfig] = None

        self._pids: List[ProcessId] = []
        self._index: Dict[ProcessId, int] = {}
        self._view_rows: List[List[int]] = []   # node index -> peer indices
        self._started = False
        self._hooks: List[Callable] = []
        self._observers: List[Callable] = []
        self._fault_injector = None
        self._fault_paused: frozenset = frozenset()
        self._tele_baseline: Dict[str, int] = {}
        self._listeners: Dict[int, List[Callable]] = {}
        self._has_listeners = False

        # Event registry: one row per published notification.
        self._notifications: List[Notification] = []
        self._event_seq: Dict[int, int] = {}  # origin index -> last seq

        # Columns are allocated in _start() once membership is final.
        # Boolean per-node state is bit-packed (repro.sim.bitset): numpy
        # backend holds uint64 word arrays, python backend int bitsets.
        self._n = 0
        self._words = 0          # words_for(n), numpy backend
        self._alive = None       # uint64[words] | python int bitset
        self._view_mat = None    # int32 (n, view_cap) | list of index lists
        self._view_len = None
        self._delivered = None   # (E_cap, words) uint64 | list of int bitsets
        self._active = None      # (E_cap, words) events-buffer bitmap
        self._event_cap = 0
        self._stats: Dict[str, object] = {}
        self._shm = None         # ShmRoundExecutor when workers > 1

        if self.backend == "numpy":
            self._rng = _np.random.default_rng(
                derive_seed(seed, "columnar"))
        else:
            self._rng = derive_rng(seed, "columnar")

    # -- construction ------------------------------------------------------
    @classmethod
    def build(
        cls,
        n: int,
        config: Optional[LpbcastConfig] = None,
        seed: int = 0,
        network: Optional[NetworkModel] = None,
        backend: str = "auto",
        workers: int = 1,
    ) -> "ColumnarRoundSimulation":
        """Column-native bootstrap of ``n`` processes with uniform random
        initial views of size ``min(view_max, n - 1)`` — the Sec. 4.1
        assumption, drawn without building per-node objects."""
        if n < 2:
            raise ValueError("need at least two processes")
        sim = cls(network=network, seed=seed, backend=backend,
                  workers=workers)
        sim.config = config if config is not None else LpbcastConfig()
        sim._pids = list(range(n))
        sim._index = {pid: pid for pid in sim._pids}
        sim._bootstrap_views(n, min(sim.config.view_max, n - 1))
        return sim

    def _bootstrap_views(self, n: int, k: int) -> None:
        if self.backend == "numpy":
            rng = _np.random.default_rng(derive_seed(self.seed,
                                                     "columnar-views"))
            # Draw k peers per row from the other n-1 processes: sample in
            # [0, n-2], shift indices >= own row by one to skip self, then
            # redraw rows containing duplicates until none remain (expected
            # duplicate rate ~ k^2/2n per row, so this converges fast).
            mat = rng.integers(0, n - 1, size=(n, k), dtype=_np.int64)
            own = _np.arange(n, dtype=_np.int64)[:, None]
            mat += (mat >= own)
            while True:
                ordered = _np.sort(mat, axis=1)
                bad = (ordered[:, 1:] == ordered[:, :-1]).any(axis=1)
                if not bad.any():
                    break
                rows = _np.nonzero(bad)[0]
                redraw = rng.integers(0, n - 1, size=(len(rows), k),
                                      dtype=_np.int64)
                redraw += (redraw >= rows[:, None])
                mat[rows] = redraw
            # Keep the matrix, not python lists: at n=1M materialising
            # per-row lists would cost more than every packed column
            # combined.  _start() consumes either form.
            self._view_rows = mat.astype(_np.int32)
        else:
            rng = derive_rng(self.seed, "columnar-views")
            rows: List[List[int]] = []
            for i in range(n):
                others = list(range(n))
                others.pop(i)
                rows.append(rng.sample(others, k))
            self._view_rows = rows

    def add_node(self, node) -> None:
        """Ingest one prebuilt protocol node (pid, config, initial view);
        its state columns replace the object, which is discarded."""
        if self._started:
            raise RuntimeError("columnar membership is frozen once the "
                               "first round has run")
        pid = node.pid
        if pid in self._index:
            raise ValueError(f"duplicate process id {pid}")
        cfg = getattr(node, "config", None)
        if self.config is None:
            self.config = cfg if cfg is not None else LpbcastConfig()
        self._index[pid] = len(self._pids)
        self._pids.append(pid)
        view = getattr(node, "view", None)
        self._view_rows.append(list(view) if view is not None else [])

    def add_nodes(self, nodes: Sequence) -> None:
        for node in nodes:
            self.add_node(node)

    def _start(self) -> None:
        """Freeze membership and allocate the dense columns."""
        n = len(self._pids)
        if n == 0:
            self._started = True
            self._n = 0
            return
        if self.config is None:
            self.config = LpbcastConfig()
        if self.config.causal_delivery:
            # Declared divergence (PR 8 contract): the columnar engine keeps
            # no per-notification metadata, so the causal hold-back queue
            # has nothing to hang dependencies on.
            raise ValueError(
                "the columnar engine does not support causal-delivery "
                "configurations (causal_delivery=True); use the serial "
                "or sharded engine")
        index = self._index
        prebuilt = _np is not None and isinstance(self._view_rows, _np.ndarray)
        if prebuilt:
            # build() path: rows are already an index matrix of uniform
            # width with no out-of-system references.
            rows = None
            view_cap = int(self._view_rows.shape[1])
        else:
            # Ingest path: view rows arrive as pids; normalise to indices,
            # dropping references to processes outside the system.
            rows = [[index[p] for p in row if p in index]
                    for row in self._view_rows]
            view_cap = max((len(row) for row in rows), default=0)
        if self.backend == "numpy":
            self._words = bitset.words_for(n)
            self._alive = _np.full(self._words, _np.uint64(0xFFFFFFFFFFFFFFFF),
                                   dtype=_np.uint64)
            tail = n & 63
            if tail:  # clear the pad bits past node n-1
                self._alive[-1] = _np.uint64((1 << tail) - 1)
            if prebuilt:
                self._view_mat = self._view_rows
                self._view_len = _np.full(n, view_cap, dtype=_np.int64)
            else:
                self._view_len = _np.array([len(row) for row in rows],
                                           dtype=_np.int64)
                mat = _np.zeros((n, max(view_cap, 1)), dtype=_np.int32)
                for i, row in enumerate(rows):
                    if row:
                        mat[i, :len(row)] = row
                self._view_mat = mat
            self._stats = {
                name: _np.zeros(n, dtype=_np.int64)
                for name in ("published", "delivered", "duplicates",
                             "gossips_sent", "gossips_received",
                             "events_dropped")
            }
            self._delivered = _np.zeros((0, self._words), dtype=_np.uint64)
            self._active = _np.zeros((0, self._words), dtype=_np.uint64)
        else:
            self._alive = bitset.int_full_mask(n)
            self._view_len = array("q", (len(row) for row in rows))
            self._view_mat = rows
            self._stats = {
                name: array("q", bytes(8 * n))
                for name in ("published", "delivered", "duplicates",
                             "gossips_sent", "gossips_received",
                             "events_dropped")
            }
            self._delivered = []  # list of int bitsets, one per event
            self._active = []
        self._view_rows = []  # consumed
        self._event_cap = 0
        self._n = n
        self._started = True
        if self.workers > 1:
            from .columnar_shm import ShmRoundExecutor
            self._shm = ShmRoundExecutor(self, self.workers)

    def _ensure_started(self) -> None:
        if not self._started:
            self._start()

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Reap worker processes and shared-memory segments (no-op for
        ``workers=1``).  The engine remains readable but cannot run further
        rounds in multi-core mode."""
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def __enter__(self) -> "ColumnarRoundSimulation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- event registry ----------------------------------------------------
    def _grow_events(self) -> None:
        if self.backend == "numpy":
            new_cap = max(8, 2 * self._event_cap)
            if self._shm is not None:
                self._shm.grow_events(new_cap)
            else:
                grown_d = _np.zeros((new_cap, self._words), dtype=_np.uint64)
                grown_a = _np.zeros((new_cap, self._words), dtype=_np.uint64)
                if self._event_cap:
                    used = len(self._notifications) - 1
                    grown_d[:used] = self._delivered[:used]
                    grown_a[:used] = self._active[:used]
                self._delivered = grown_d
                self._active = grown_a
            self._event_cap = new_cap

    def _publish(self, index: int, payload, now: float) -> Notification:
        self._ensure_started()
        origin = self._pids[index]
        seq = self._event_seq.get(index, 0) + 1
        self._event_seq[index] = seq
        note = make_notification(origin, seq, payload, created_at=now)
        self._notifications.append(note)
        event = len(self._notifications) - 1
        if self.backend == "numpy":
            if event >= self._event_cap:
                self._grow_events()
            bit = _np.uint64(1) << _np.uint64(index & 63)
            self._delivered[event, index >> 6] |= bit
            self._active[event, index >> 6] |= bit
        else:
            bit = 1 << index
            self._delivered.append(bit)
            self._active.append(bit)
        self._stats["published"][index] += 1
        self._stats["delivered"][index] += 1
        self._notify_delivery(index, note, now)
        return note

    def _add_delivery_listener(self, index: int, listener) -> None:
        self._listeners.setdefault(index, []).append(listener)
        self._has_listeners = True

    def _notify_delivery(self, index: int, note: Notification,
                         now: float) -> None:
        if not self._has_listeners:
            return
        for listener in self._listeners.get(index, ()):
            listener(self._pids[index], note, now)

    # -- runtime control ---------------------------------------------------
    def use_fault_plan(self, plan):
        """Attach a :class:`~repro.faults.plan.FaultPlan`.

        Crash/recovery/pause schedules apply exactly (the shared injector
        counts them identically to the serial engine — part of the honoured
        contract).  Partition and drop-rate windows shape delivery through
        the columnar engine's own stream; duplicate/delay windows are
        ignored; Byzantine plans are rejected — the vectorized path models
        no payload mutation.
        """
        from ..faults.injector import FaultInjector

        if (plan.equivocations or plan.forges or plan.replays
                or plan.poisons):
            raise ValueError(
                "the columnar engine does not support Byzantine fault "
                "plans (equivocate/forge/replay/poison); use the serial "
                "or sharded engine")
        self._fault_injector = FaultInjector(plan, self.seeds.rng("faults"))
        return self._fault_injector

    def _is_alive(self, index: int) -> bool:
        if self.backend == "numpy":
            word = self._alive[index >> 6]
            return bool((word >> _np.uint64(index & 63)) & _np.uint64(1))
        return bool((self._alive >> index) & 1)

    def _set_alive(self, index: int, flag: bool) -> None:
        if self.backend == "numpy":
            bit = _np.uint64(1) << _np.uint64(index & 63)
            if flag:
                self._alive[index >> 6] |= bit
            else:
                self._alive[index >> 6] &= ~bit
        else:
            if flag:
                self._alive |= 1 << index
            else:
                self._alive &= ~(1 << index)

    def crash(self, pid: ProcessId) -> None:
        """Fail-stop ``pid`` immediately (Sec. 4.1)."""
        self._ensure_started()
        index = self._index.get(pid)
        if index is not None and self._is_alive(index):
            self._set_alive(index, False)
            self.telemetry.emit("crash", float(self.round), pid=pid)

    def recover(self, pid: ProcessId) -> bool:
        """Un-crash ``pid`` with its retained state; no re-join handshake
        (declared divergence from the serial recovery path)."""
        self._ensure_started()
        index = self._index.get(pid)
        if index is None or self._is_alive(index):
            return False
        self._set_alive(index, True)
        return True

    def alive(self, pid: ProcessId) -> bool:
        self._ensure_started()
        index = self._index.get(pid)
        return index is not None and self._is_alive(index)

    def alive_count(self) -> int:
        self._ensure_started()
        if self._n == 0:
            return 0
        if self.backend == "numpy":
            return bitset.popcount_words(self._alive)
        return bitset.int_popcount(self._alive)

    def add_round_hook(self, hook) -> None:
        self._hooks.append(hook)

    def add_observer(self, observer) -> None:
        self._observers.append(observer)

    # -- the round loop ----------------------------------------------------
    def run_round(self) -> None:
        with self.telemetry.time("time.round"):
            self._run_round_body()

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.run_round()

    def run_until(self, predicate, max_rounds: int = 1000) -> int:
        remaining = max_rounds
        while True:
            if predicate(self):
                return self.round
            if remaining <= 0:
                raise RuntimeError(
                    f"predicate not satisfied within {max_rounds} rounds")
            self.run_round()
            remaining -= 1

    def _run_round_body(self) -> None:
        self._ensure_started()
        self.round += 1
        now = float(self.round)
        if self._fault_injector is not None:
            actions = self._fault_injector.round_start(self.round)
            for fault in actions.crashes:
                self.crash(fault.pid)
            for fault in actions.recoveries:
                self.recover(fault.pid)
            self._fault_paused = actions.paused
        for hook in self._hooks:
            hook(self.round, self)
        if self._n:
            with self.telemetry.time("time.tick"):
                sends = self._gossip_round(now)
            if sends:
                # One batched increment; byte-identical to the serial
                # engine's per-message fast-path increments for this series.
                self.telemetry.inc("sim.sends", sends, round=self.round,
                                   kind=HONOURED_SEND_KIND)
        self._sync_engine_counters()
        with self.telemetry.time("time.observers"):
            for observer in self._observers:
                observer(self.round, self)

    # -- vectorized gossip -------------------------------------------------
    def _paused_indices(self) -> List[int]:
        if not self._fault_paused:
            return []
        return [self._index[p] for p in self._fault_paused
                if p in self._index]

    def _active_drop_windows(self):
        if self._fault_injector is None:
            return []
        r = self.round
        return [d for d in self._fault_injector.plan.drops
                if d.start <= r < d.stop]

    def _active_partitions(self):
        if self._fault_injector is None:
            return []
        r = self.round
        return [p for p in self._fault_injector.plan.partitions
                if p.start <= r < p.heal]

    def _gossip_round(self, now: float) -> int:
        if self._shm is not None:
            return self._shm.gossip_round(now)
        if self.backend == "numpy":
            return self._gossip_round_np(now)
        return self._gossip_round_py(now)

    def _honoured_sends_np(self, alive_bool):
        """Senders mask and the schedule-determined send total — shared by
        the single-core and multi-core numpy paths so the honoured
        ``sim.sends`` series cannot depend on the worker count."""
        cfg = self.config
        senders_mask = alive_bool.copy()
        paused = self._paused_indices()
        if paused:
            senders_mask[paused] = False
        senders_mask &= self._view_len > 0
        s_idx = _np.nonzero(senders_mask)[0]
        if s_idx.size == 0:
            return s_idx, 0
        k = _np.minimum(cfg.fanout, self._view_len[s_idx])
        total_sends = int(k.sum()) * (1 + cfg.membership_boost)
        return s_idx, total_sends

    def _gossip_round_np(self, now: float) -> int:
        cfg = self.config
        fanout = cfg.fanout
        alive_words = self._alive
        alive = bitset.unpack_bools(alive_words, self._n)
        s_idx, total_sends = self._honoured_sends_np(alive)
        if s_idx.size == 0:
            return 0
        k = _np.minimum(fanout, self._view_len[s_idx])
        self._stats["gossips_sent"][s_idx] += 1

        # Partner selection: top-min(F, |view|) of a uniform matrix over
        # each sender's valid view slots — distinct targets per sender,
        # matching gossip_targets' sample-without-replacement semantics.
        view_cap = self._view_mat.shape[1]
        scores = self._rng.random((s_idx.size, view_cap))
        scores[_np.arange(view_cap)[None, :] >= self._view_len[s_idx, None]] \
            = -1.0
        take = min(fanout, view_cap)
        order = _np.argsort(scores, axis=1)[:, ::-1][:, :take]
        targets = self._view_mat[s_idx[:, None], order].astype(
            _np.int64, copy=False)
        valid = _np.arange(take)[None, :] < k[:, None]

        # Admission: i.i.d. network loss, drop-rate windows, partitions,
        # crashed receivers.  One vectorized draw per (sender, slot).
        survive = valid.copy()
        if self.loss_rate > 0.0:
            survive &= self._rng.random(targets.shape) >= self.loss_rate
        for window in self._active_drop_windows():
            hit = self._rng.random(targets.shape) < window.rate
            if window.src is not None:
                src_index = self._index.get(window.src, -1)
                hit &= (s_idx == src_index)[:, None]
            if window.dst is not None:
                hit &= targets == self._index.get(window.dst, -1)
            survive &= ~hit
        for part in self._active_partitions():
            side_a = _np.zeros(self._n, dtype=bool)
            side_b = _np.zeros(self._n, dtype=bool)
            for pid in part.side_a:
                index = self._index.get(pid)
                if index is not None:
                    side_a[index] = True
            for pid in part.side_b:
                index = self._index.get(pid)
                if index is not None:
                    side_b[index] = True
            src_a = side_a[s_idx][:, None]
            src_b = side_b[s_idx][:, None]
            direction = getattr(part, "direction", "both")
            blocked = _np.zeros(targets.shape, dtype=bool)
            if direction in ("both", "a-to-b"):
                blocked |= src_a & side_b[targets]
            if direction in ("both", "b-to-a"):
                blocked |= src_b & side_a[targets]
            survive &= ~blocked
        survive &= alive[targets]

        arrivals = targets[survive]
        self.messages_delivered += int(arrivals.size)
        if arrivals.size:
            self._stats["gossips_received"] += _np.bincount(
                arrivals, minlength=self._n)

        # Event spread.  With digest_implies_delivery (the plain-family
        # default), a gossip infects the receiver with everything in the
        # sender's eventIds digest — modelled by the delivered bitmap.
        # Otherwise only the events buffer (forwarded once, then cleared)
        # carries payloads.  All row updates are word-level masked ORs.
        events = len(self._notifications)
        if events:
            spread = (self._delivered if cfg.digest_implies_delivery
                      else self._active)
            sent_words = bitset.mask_from_indices(s_idx, self._n)
            cleared: List[int] = []
            for event in range(events):
                row_d = self._delivered[event]
                carriers = bitset.gather_bits(spread[event], s_idx)
                if not carriers.any():
                    continue
                cleared.append(event)
                hit_mask = survive & carriers[:, None]
                tgt = targets[hit_mask]
                if tgt.size == 0:
                    continue
                already = bitset.gather_bits(row_d, tgt)
                dup = tgt[already]
                if dup.size:
                    self._stats["duplicates"] += _np.bincount(
                        dup, minlength=self._n)
                new = (bitset.mask_from_indices(tgt[~already], self._n)
                       & ~row_d & alive_words)
                if not new.any():
                    continue
                row_d |= new
                self._active[event] |= new
                new_idx = bitset.bit_indices(new, self._n)
                self._stats["delivered"][new_idx] += 1
                if self._has_listeners and self._listeners:
                    note = self._notifications[event]
                    for index in new_idx:
                        self._notify_delivery(int(index), note, now)
            # "events <- empty" after sending (Fig. 1(b)): carriers that
            # gossiped this round forwarded their buffered payloads once.
            for event in cleared:
                self._active[event] &= ~sent_words
            self._truncate_events_np(events)
        return total_sends

    def _truncate_events_np(self, events: int) -> None:
        """Bound per-node events-buffer occupancy by ``events_max``,
        dropping oldest entries first (serial drops uniformly at random —
        a declared divergence that keeps the pass branch-free).

        With ``events <= events_max`` no node can be over budget — the
        mega-scale steady state — so the pass exits before touching any
        column.  The overflow path needs per-node counts *across* event
        rows, which word-packed columns cannot give without a transpose, so
        it unpacks the active window to booleans, reuses the dense
        algorithm, and repacks."""
        events_max = self.config.events_max
        if events <= events_max:
            return
        active = _np.vstack([bitset.unpack_bools(self._active[e], self._n)
                             for e in range(events)])
        counts = active.sum(axis=0)
        over = counts > events_max
        if not over.any():
            return
        newest_rank = _np.cumsum(active[::-1], axis=0)[::-1]
        drop = active & (newest_rank > events_max) & over[None, :]
        dropped_per_node = drop.sum(axis=0, dtype=_np.int64)
        self._stats["events_dropped"] += dropped_per_node
        active &= ~drop
        for event in range(events):
            self._active[event] = bitset.pack_bools(active[event])

    def _gossip_round_py(self, now: float) -> int:
        cfg = self.config
        fanout = cfg.fanout
        rng = self._rng
        alive_bits = self._alive
        paused = set(self._paused_indices())
        drops = self._active_drop_windows()
        partitions = self._active_partitions()
        events = len(self._notifications)
        digest_mode = cfg.digest_implies_delivery
        total_sends = 0
        arrivals_by_sender: List = []
        senders: List[int] = []
        for i in range(self._n):
            if not (alive_bits >> i) & 1 or i in paused:
                continue
            view = self._view_mat[i]
            if not view:
                continue
            senders.append(i)
            self._stats["gossips_sent"][i] += 1
            k = min(fanout, len(view))
            total_sends += k * (1 + cfg.membership_boost)
            targets = rng.sample(view, k)
            landed = []
            for t in targets:
                if self.loss_rate > 0.0 and rng.random() < self.loss_rate:
                    continue
                dropped = False
                for window in drops:
                    if (window.src is not None
                            and self._pids[i] != window.src):
                        continue
                    if (window.dst is not None
                            and self._pids[t] != window.dst):
                        continue
                    if rng.random() < window.rate:
                        dropped = True
                        break
                if dropped:
                    continue
                if any(p.blocks(self._pids[i], self._pids[t])
                       for p in partitions):
                    continue
                if not (alive_bits >> t) & 1:
                    continue
                landed.append(t)
                self._stats["gossips_received"][t] += 1
                self.messages_delivered += 1
            arrivals_by_sender.append((i, landed))
        if events:
            spread = self._delivered if digest_mode else self._active
            newly: Dict[int, List[int]] = {}
            for sender, landed in arrivals_by_sender:
                if not landed:
                    continue
                for event in range(events):
                    if not (spread[event] >> sender) & 1:
                        continue
                    row_d = self._delivered[event]
                    for t in landed:
                        if (row_d >> t) & 1:
                            self._stats["duplicates"][t] += 1
                        elif (alive_bits >> t) & 1:
                            newly.setdefault(event, []).append(t)
            for event, indices in newly.items():
                note = self._notifications[event]
                for t in indices:
                    if (self._delivered[event] >> t) & 1:
                        continue
                    bit = 1 << t
                    self._delivered[event] |= bit
                    self._active[event] |= bit
                    self._stats["delivered"][t] += 1
                    if self._has_listeners:
                        self._notify_delivery(t, note, now)
            if senders:
                sent_mask = 0
                for i in senders:
                    sent_mask |= 1 << i
                keep = ~sent_mask
                for event in range(events):
                    self._active[event] &= keep
            events_max = cfg.events_max
            if events > events_max:
                for i in range(self._n):
                    occupancy = sum((self._active[e] >> i) & 1
                                    for e in range(events))
                    if occupancy <= events_max:
                        continue
                    to_drop = occupancy - events_max
                    for event in range(events):  # oldest first
                        if to_drop == 0:
                            break
                        if (self._active[event] >> i) & 1:
                            self._active[event] &= ~(1 << i)
                            self._stats["events_dropped"][i] += 1
                            to_drop -= 1
        return total_sends

    # -- telemetry ---------------------------------------------------------
    def _sync_engine_counters(self) -> None:
        """Per-round counter deltas, mirroring the serial engine's emission
        shape.  The ``faults.*`` schedule counters and ``sim.rounds`` are
        part of the honoured contract; ``sim.delivered`` is columnar-local
        accounting (declared divergence)."""
        updates = {"sim.delivered": self.messages_delivered}
        if self._fault_injector is not None:
            for name, value in self._fault_injector.stats.as_dict().items():
                updates[f"faults.{name}"] = value
        for name, value in updates.items():
            last = self._tele_baseline.get(name, 0)
            if value != last:
                self.telemetry.inc(name, value - last, round=self.round)
                self._tele_baseline[name] = value
        self.telemetry.set_gauge("sim.alive", float(self.alive_count()))
        self.telemetry.inc("sim.rounds", 1)

    # -- aggregates --------------------------------------------------------
    def _view_of(self, index: int) -> List[ProcessId]:
        self._ensure_started()
        if self.backend == "numpy":
            row = self._view_mat[index, :self._view_len[index]]
            return [self._pids[int(i)] for i in row]
        return [self._pids[i] for i in self._view_mat[index]]

    def memory_bytes(self) -> int:
        """Resident footprint of the dense columns (views, alive words,
        event bitmaps, stat counters) — the bench harness's bytes-per-node
        read.  Shared-memory segments are counted once (the coordinator's
        views; worker mappings alias the same pages)."""
        self._ensure_started()
        if self._n == 0:
            return 0
        if self.backend == "numpy":
            total = (self._alive.nbytes + self._view_mat.nbytes
                     + self._view_len.nbytes
                     + self._delivered.nbytes + self._active.nbytes)
            total += sum(col.nbytes for col in self._stats.values())
            if self._shm is not None:
                total += self._shm.scratch_bytes()
            return int(total)
        import sys
        total = sys.getsizeof(self._alive)
        total += sum(sys.getsizeof(row) + 8 * len(row)
                     for row in self._view_mat)
        total += sum(sys.getsizeof(row)
                     for row in self._delivered + self._active)
        total += sum(sys.getsizeof(col) for col in self._stats.values())
        total += sys.getsizeof(self._view_len)
        return total

    def node_aggregates(self, pids: Optional[Sequence[ProcessId]] = None):
        """Summed stats/occupancy/in-degree over the alive processes,
        computed from the columns — same :class:`NodeAggregates` shape as
        the object engines.  ``published``/``delivered``-family stats come
        from the stat columns; subs occupancy is not modelled (0)."""
        from .aggregates import NodeAggregates

        self._ensure_started()
        agg = NodeAggregates()
        if self._n == 0:
            return agg
        if pids is None:
            wanted = None
        else:
            wanted = [self._index[p] for p in pids
                      if p in self._index and self._is_alive(self._index[p])]
        events = len(self._notifications)
        if self.backend == "numpy":
            mask = bitset.unpack_bools(self._alive, self._n)
            if wanted is not None:
                keep = _np.zeros(self._n, dtype=bool)
                if wanted:
                    keep[wanted] = True
                mask &= keep
            idx = _np.nonzero(mask)[0]
            agg.count = int(idx.size)
            for name, column in self._stats.items():
                total = int(column[idx].sum())
                if total:
                    agg.stat_sums[name] = total
            if events and idx.size:
                mask_words = bitset.pack_bools(mask)
                occupancy = sum(
                    bitset.popcount_words(self._active[e] & mask_words)
                    for e in range(events))
                agg.occupancy_sums["events"] = int(occupancy)
                ids = _np.zeros(self._n, dtype=_np.int64)
                for e in range(events):
                    ids += bitset.unpack_bools(self._delivered[e], self._n)
                agg.occupancy_sums["event_ids"] = int(
                    _np.minimum(ids[idx], self.config.event_ids_max).sum())
            else:
                agg.occupancy_sums["events"] = 0
                agg.occupancy_sums["event_ids"] = 0
            agg.occupancy_sums["subs"] = 0
            for i in idx:
                i = int(i)
                agg.graph_nodes.add(self._pids[i])
                row = self._view_mat[i, :self._view_len[i]]
                for t in row:
                    pid = self._pids[int(t)]
                    agg.graph_nodes.add(pid)
                    agg.in_degree[pid] = agg.in_degree.get(pid, 0) + 1
        else:
            indices = (range(self._n) if wanted is None else wanted)
            for i in indices:
                if wanted is None and not (self._alive >> i) & 1:
                    continue
                agg.count += 1
                for name, column in self._stats.items():
                    if column[i]:
                        agg.stat_sums[name] = \
                            agg.stat_sums.get(name, 0) + column[i]
                occupancy = sum((self._active[e] >> i) & 1
                                for e in range(events))
                ids = sum((self._delivered[e] >> i) & 1
                          for e in range(events))
                agg.occupancy_sums["events"] = \
                    agg.occupancy_sums.get("events", 0) + occupancy
                agg.occupancy_sums["event_ids"] = \
                    agg.occupancy_sums.get("event_ids", 0) + min(
                        ids, self.config.event_ids_max)
                agg.occupancy_sums.setdefault("subs", 0)
                agg.graph_nodes.add(self._pids[i])
                for t in self._view_mat[i]:
                    pid = self._pids[t]
                    agg.graph_nodes.add(pid)
                    agg.in_degree[pid] = agg.in_degree.get(pid, 0) + 1
        # Drop zero-valued stat sums to match aggregate_nodes' shape.
        agg.stat_sums = {k: v for k, v in agg.stat_sums.items() if v}
        return agg

    # -- reliability reads -------------------------------------------------
    def delivery_ratio(self, event: int = 0) -> float:
        """Fraction of currently-alive processes that delivered event row
        ``event`` — the infection-curve read at scale."""
        self._ensure_started()
        if event >= len(self._notifications) or self._n == 0:
            return 0.0
        if self.backend == "numpy":
            total = bitset.popcount_words(self._alive)
            if not total:
                return 0.0
            got = bitset.popcount_words(self._delivered[event] & self._alive)
            return got / total
        total = bitset.int_popcount(self._alive)
        if not total:
            return 0.0
        got = bitset.int_popcount(self._delivered[event] & self._alive)
        return got / total
