"""Asynchronous gossip runtime — the testbed substitute for Sec. 5.2.

The paper's measurements ran 125 processes on two LANs with *non-synchronized*
periodic gossips.  This runtime reproduces those conditions on the
discrete-event kernel:

* each process owns a timer with period ``T`` (its config's
  ``gossip_period``), started at a uniformly random phase so ticks are not
  synchronized across processes;
* every message experiences a latency drawn from the network model (the
  paper assumes an upper bound on latency smaller than ``T``);
* messages are dropped i.i.d. with probability ε and crashed processes are
  silenced fail-stop.

Substitution note (DESIGN.md §4): the measured quantities — delivery
reliability as a function of the view bound ``l`` and the digest bound
``|eventIds|m`` — depend only on protocol and buffer dynamics under these
timing assumptions, not on the 2001 Solaris/Fast-Ethernet hardware.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..core.ids import ProcessId
from ..core.message import Outgoing
from ..telemetry import Telemetry
from .aggregates import NodeAggregates, aggregate_nodes
from .engine import Simulator
from .network import NetworkModel
from .round_runner import GossipProcess
from .rng import SeedSequence


class AsyncGossipRuntime:
    """Runs gossip processes with independent periodic timers."""

    def __init__(
        self,
        network: Optional[NetworkModel] = None,
        seed: int = 0,
        default_period: float = 1.0,
    ) -> None:
        self.seeds = SeedSequence(seed)
        self.sim = Simulator()
        self.network = network if network is not None else NetworkModel(
            loss_rate=0.0, rng=self.seeds.rng("network")
        )
        self.default_period = default_period
        self.nodes: Dict[ProcessId, GossipProcess] = {}
        self.crashed: set = set()
        self.messages_delivered = 0
        #: Engine-native observability (repro.telemetry); the ``round``
        #: label on this runtime is the integer part of simulated time,
        #: i.e. one bucket per default gossip period.
        self.telemetry = Telemetry()
        self._tele_baseline: Dict[str, int] = {}
        self._tick_listeners: List[Callable[[ProcessId, float], None]] = []
        self._fault_injector = None
        self._fault_round_duration = default_period
        self._mutate_message = None

    # -- construction ------------------------------------------------------
    def add_node(self, node: GossipProcess, period: Optional[float] = None) -> None:
        """Register ``node`` and start its gossip timer at a random phase."""
        if node.pid in self.nodes:
            raise ValueError(f"duplicate process id {node.pid}")
        self.nodes[node.pid] = node
        node_period = period if period is not None else self._period_of(node)
        phase = self.seeds.rng("phase", node.pid).uniform(0.0, node_period)
        self.sim.schedule(phase, lambda: self._tick(node.pid, node_period))

    def add_nodes(self, nodes: Sequence[GossipProcess]) -> None:
        for node in nodes:
            self.add_node(node)

    def _period_of(self, node: GossipProcess) -> float:
        config = getattr(node, "config", None)
        period = getattr(config, "gossip_period", None)
        return period if period is not None else self.default_period

    def on_tick_complete(self, listener: Callable[[ProcessId, float], None]) -> None:
        """Register a callback fired after every node tick (workloads use
        this to publish at the node's own cadence)."""
        self._tick_listeners.append(listener)

    # -- runtime control ---------------------------------------------------
    def crash(self, pid: ProcessId) -> None:
        if pid not in self.crashed:
            self.crashed.add(pid)
            self.telemetry.emit("crash", self.sim.now, pid=pid)

    def crash_at(self, pid: ProcessId, at: float) -> None:
        self.sim.schedule_at(at, lambda: self.crash(pid))

    def alive(self, pid: ProcessId) -> bool:
        return pid in self.nodes and pid not in self.crashed

    def call_at(self, at: float, action: Callable[[], None]) -> None:
        """Schedule an arbitrary action (publish, join, partition heal...)."""
        self.sim.schedule_at(at, action)

    def join_at(self, node: GossipProcess, contact: ProcessId, at: float) -> None:
        """Add ``node`` to the running system at time ``at`` and start its
        Sec. 3.4 subscription handshake through ``contact``.  The node's
        gossip timer starts with a random phase after the join, and retries
        are driven by its own ``on_tick`` as usual."""

        def do_join() -> None:
            self.add_node(node)
            self.send(node.pid, node.start_join(contact, self.sim.now))

        self.sim.schedule_at(at, do_join)

    def leave_at(self, pid: ProcessId, at: float) -> None:
        """Schedule a voluntary unsubscription (retrying on Sec. 3.4
        refusal at the next gossip period)."""

        def try_leave() -> None:
            node = self.nodes.get(pid)
            if node is None or pid in self.crashed:
                return
            if not node.try_unsubscribe(self.sim.now):
                self.sim.schedule(self._period_of(node), try_leave)

        self.sim.schedule_at(at, try_leave)

    def use_fault_plan(self, plan, round_duration: Optional[float] = None):
        """Attach a :class:`~repro.faults.plan.FaultPlan`.

        Plans express windows in *rounds*; here one round spans
        ``round_duration`` of simulated time (default: the runtime's default
        gossip period), so round ``r`` covers ``[(r-1)*T, r*T)``.  Crashes
        and recoveries are scheduled on the event kernel; per-message faults
        apply at each send; paused processes skip gossips but keep their
        timers.  Returns the installed injector.
        """
        from ..faults.byzantine import mutate_message
        from ..faults.injector import FaultInjector

        self._fault_injector = FaultInjector(plan, self.seeds.rng("faults"))
        self._mutate_message = mutate_message
        if round_duration is not None:
            if round_duration <= 0:
                raise ValueError("round_duration must be positive")
            self._fault_round_duration = round_duration
        period = self._fault_round_duration
        for fault in plan.crashes:
            self.sim.schedule_at((fault.at - 1) * period,
                                 lambda p=fault.pid: self._fault_crash(p))
            if fault.recover_at is not None:
                self.sim.schedule_at((fault.recover_at - 1) * period,
                                     lambda f=fault: self._fault_revive(f))
        return self._fault_injector

    def _fault_crash(self, pid: ProcessId) -> None:
        if pid in self.nodes and pid not in self.crashed:
            self.crash(pid)
            self._fault_injector.stats.crashes_applied += 1

    def _fault_round(self, at: float) -> int:
        return int(at / self._fault_round_duration) + 1

    def _fault_revive(self, fault) -> None:
        """Crash-with-recovery: un-silence the process and re-subscribe it
        through a contact (Sec. 3.4), restarting its gossip timer at a fresh
        random phase."""
        pid = fault.pid
        if pid not in self.crashed or pid not in self.nodes:
            return
        self.crashed.discard(pid)
        self._fault_injector.stats.recoveries_applied += 1
        contact = fault.contact
        if contact is None or not self.alive(contact):
            candidates = [p for p in self.nodes
                          if p != pid and p not in self.crashed]
            contact = self._fault_injector.pick_contact(candidates)
        if contact is None:
            return
        node = self.nodes[pid]
        self.send(pid, node.start_join(contact, self.sim.now))
        period = self._period_of(node)
        phase = self.seeds.rng("fault-revive-phase", pid,
                               fault.recover_at).uniform(0.0, period)
        self.sim.schedule(phase, lambda: self._tick(pid, period))

    def send(self, src: ProcessId, outgoings: Sequence[Outgoing]) -> None:
        """Put messages on the wire with loss and latency applied."""
        for out in outgoings:
            copies, extra_delay, replay_delay = 1, 0.0, None
            delivery = out
            if self._fault_injector is not None:
                verdict = self._fault_injector.decide(
                    src, out.destination, self._fault_round(self.sim.now)
                )
                self._trace_verdict(verdict, src, out.destination)
                if verdict.action == "drop":
                    continue
                if verdict.action == "delay":
                    extra_delay = verdict.delay * self._fault_round_duration
                copies = verdict.copies
                if verdict.mutation is not None:
                    delivery = Outgoing(
                        out.destination,
                        self._mutate_message(out.message, verdict.mutation,
                                             out.destination),
                    )
                if verdict.replay:
                    replay_delay = verdict.replay * self._fault_round_duration
            if not self.network.deliverable(src, out.destination):
                continue
            for _ in range(copies):
                latency = self.network.draw_latency() + extra_delay
                self.sim.schedule(
                    latency,
                    lambda s=src, o=delivery: self._deliver(s, o),
                )
            if replay_delay is not None:
                # replay_stale: one extra, *unmutated* copy arrives lag
                # rounds later — the async analogue of the round engines'
                # delayed-fault replay.
                latency = self.network.draw_latency() + replay_delay
                self.sim.schedule(
                    latency,
                    lambda s=src, o=out: self._deliver(s, o),
                )

    def run_until(self, deadline: float) -> None:
        with self.telemetry.time("time.round"):
            self.sim.run_until(deadline)
        self._sync_engine_counters()

    def run_rounds(self, rounds: int,
                   round_duration: Optional[float] = None) -> None:
        """Advance simulated time by ``rounds`` gossip periods.

        The uniform scenario-application entry point shared with the round
        engines: one "round" spans ``round_duration`` of simulated time
        (default: the fault layer's round duration, i.e. the default gossip
        period), so driving every engine by a round count runs comparable
        workloads.  Resumable — each call continues from ``self.now``.
        """
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        period = (round_duration if round_duration is not None
                  else self._fault_round_duration)
        if period <= 0:
            raise ValueError("round_duration must be positive")
        self.run_until(self.sim.now + rounds * period)

    @property
    def now(self) -> float:
        return self.sim.now

    # -- internals ---------------------------------------------------------
    def _tick(self, pid: ProcessId, period: float) -> None:
        if pid in self.crashed:
            return  # fail-stop: the timer dies with the process
        if (self._fault_injector is not None
                and self._fault_injector.is_paused(
                    pid, self._fault_round(self.sim.now))):
            # Slow-node fault (GC/CPU stall): the process emits nothing and
            # runs no application work, but its timer survives the pause.
            self.sim.schedule(period, lambda: self._tick(pid, period))
            return
        node = self.nodes[pid]
        with self.telemetry.time("time.tick"):
            ticked = node.on_tick(self.sim.now)
        self.telemetry.record_sends(int(self.sim.now), pid, ticked)
        self.send(pid, ticked)
        for listener in self._tick_listeners:
            listener(pid, self.sim.now)
        self.sim.schedule(period, lambda: self._tick(pid, period))

    def _deliver(self, src: ProcessId, out: Outgoing) -> None:
        dst = out.destination
        if dst in self.crashed or dst not in self.nodes:
            return
        self.messages_delivered += 1
        if self.telemetry.tracing:
            self.telemetry.emit("receive", self.sim.now, pid=dst, peer=src,
                                message=type(out.message).__name__)
        with self.telemetry.time("time.delivery"):
            replies = self.nodes[dst].handle_message(src, out.message,
                                                     self.sim.now)
        self.telemetry.record_sends(int(self.sim.now), dst, replies)
        if replies:
            self.send(dst, replies)

    # -- telemetry ---------------------------------------------------------
    def _trace_verdict(self, verdict, src: ProcessId,
                       dst: ProcessId) -> None:
        if not self.telemetry.tracing:
            return
        at = self.sim.now
        if verdict.action == "drop":
            self.telemetry.emit("fault.drop", at, pid=src, peer=dst)
        elif verdict.action == "delay":
            self.telemetry.emit("fault.delay", at, pid=src, peer=dst,
                                delay=verdict.delay)
        elif verdict.copies > 1:
            self.telemetry.emit("fault.duplicate", at, pid=src, peer=dst,
                                copies=verdict.copies)

    def _sync_engine_counters(self) -> None:
        """Fold the runtime's accounting attributes into the telemetry
        registry as deltas labelled with the current time bucket."""
        updates = {
            "sim.delivered": self.messages_delivered,
            "net.offered": self.network.messages_offered,
            "net.dropped": self.network.messages_dropped,
            "net.cut": getattr(self.network, "messages_cut", 0),
        }
        if self._fault_injector is not None:
            for name, value in self._fault_injector.stats.as_dict().items():
                updates[f"faults.{name}"] = value
        bucket = int(self.sim.now)
        for name, value in updates.items():
            last = self._tele_baseline.get(name, 0)
            if value != last:
                self.telemetry.inc(name, value - last, round=bucket)
                self._tele_baseline[name] = value
        alive = sum(1 for pid in self.nodes if pid not in self.crashed)
        self.telemetry.set_gauge("sim.alive", float(alive))

    def node_aggregates(self, pids: Optional[Sequence[ProcessId]] = None
                        ) -> NodeAggregates:
        """Summed node stats over alive processes — the same recorder feed
        the round engines expose (see :mod:`repro.sim.aggregates`)."""
        if pids is None:
            targets = [n for pid, n in self.nodes.items()
                       if pid not in self.crashed]
        else:
            targets = [self.nodes[p] for p in pids if self.alive(p)]
        return aggregate_nodes(targets)
