"""Canned experiment scenarios.

Ready-made system builders for the situations the paper motivates — a flash
crowd of subscribers, mass departures, correlated crashes, a flaky WAN —
each returning a fully wired :class:`Scenario` (simulation, nodes, delivery
log, and any scenario-specific handles).  Tests and examples use these
instead of re-assembling the same plumbing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.config import LpbcastConfig
from ..core.node import LpbcastNode
from ..metrics.delivery import DeliveryLog
from .churn import ChurnScript
from .network import CrashPlan, NetworkModel
from .round_runner import RoundSimulation
from .rng import SeedSequence
from .topology import build_lpbcast_nodes


@dataclass
class Scenario:
    """A wired-up experiment: run it, then interrogate the pieces."""

    sim: RoundSimulation
    nodes: List[LpbcastNode]
    log: DeliveryLog
    extras: Dict[str, object] = field(default_factory=dict)

    def run(self, rounds: int) -> "Scenario":
        self.sim.run(rounds)
        return self

    def alive_nodes(self) -> List[LpbcastNode]:
        return [n for n in self.nodes if self.sim.alive(n.pid)]


def _base(
    n: int,
    config: Optional[LpbcastConfig],
    seed: int,
    loss_rate: float,
) -> Scenario:
    cfg = config if config is not None else LpbcastConfig(fanout=3, view_max=10)
    nodes = build_lpbcast_nodes(n, cfg, seed=seed)
    seeds = SeedSequence(seed)
    sim = RoundSimulation(
        NetworkModel(loss_rate=loss_rate, rng=seeds.rng("scenario-network")),
        seed=seed,
    )
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    return Scenario(sim=sim, nodes=nodes, log=log)


def steady_state(
    n: int = 125,
    config: Optional[LpbcastConfig] = None,
    seed: int = 0,
    loss_rate: float = 0.05,
) -> Scenario:
    """A stable system under the paper's default network assumptions."""
    return _base(n, config, seed, loss_rate)


def flash_crowd(
    n: int = 60,
    joiners: int = 20,
    join_round: int = 2,
    config: Optional[LpbcastConfig] = None,
    seed: int = 0,
    loss_rate: float = 0.05,
) -> Scenario:
    """A burst of new subscribers joining within one round.

    All joiners contact existing members simultaneously — the stress case
    for the Sec. 3.4 handshake.  ``extras['joiner_pids']`` lists them;
    ``extras['churn']`` is the driving script.
    """
    scenario = _base(n, config, seed, loss_rate)
    cfg = scenario.nodes[0].config
    seeds = SeedSequence(seed).spawn("joiners")

    def factory(pid: int) -> LpbcastNode:
        node = LpbcastNode(pid, cfg, seeds.rng("node", pid))
        scenario.log.attach([node])
        return node

    script = ChurnScript(node_factory=factory)
    contact_rng = seeds.rng("contacts")
    joiner_pids = list(range(n, n + joiners))
    for pid in joiner_pids:
        script.join(join_round, pid, contact=contact_rng.randrange(n))
    scenario.sim.add_round_hook(script.on_round)
    scenario.extras["joiner_pids"] = joiner_pids
    scenario.extras["churn"] = script
    return scenario


def mass_departure(
    n: int = 60,
    leavers: int = 20,
    leave_round: int = 2,
    config: Optional[LpbcastConfig] = None,
    seed: int = 0,
    loss_rate: float = 0.05,
) -> Scenario:
    """A third of the system unsubscribes at once (Sec. 3.4 at scale).

    ``extras['leaver_pids']`` lists the departing processes.
    """
    if leavers >= n:
        raise ValueError("leavers must be fewer than n")
    scenario = _base(n, config, seed, loss_rate)
    script = ChurnScript()
    leaver_pids = [node.pid for node in scenario.nodes[:leavers]]
    for pid in leaver_pids:
        script.leave(leave_round, pid)
    scenario.sim.add_round_hook(script.on_round)
    scenario.extras["leaver_pids"] = leaver_pids
    scenario.extras["churn"] = script
    return scenario


def correlated_crashes(
    n: int = 60,
    crash_fraction: float = 0.2,
    crash_round: int = 3,
    config: Optional[LpbcastConfig] = None,
    seed: int = 0,
    loss_rate: float = 0.05,
) -> Scenario:
    """A rack failure: a random fraction fail-stops in the same round —
    far beyond the τ = 0.01 the analysis assumes.  ``extras['victims']``
    lists the crashed processes."""
    if not 0.0 < crash_fraction < 1.0:
        raise ValueError("crash_fraction must be in (0, 1)")
    scenario = _base(n, config, seed, loss_rate)
    rng = SeedSequence(seed).rng("victims")
    victims = rng.sample([node.pid for node in scenario.nodes],
                         int(crash_fraction * n))

    def crash_hook(round_number: int, sim) -> None:
        if round_number == crash_round:
            for pid in victims:
                sim.crash(pid)

    scenario.sim.add_round_hook(crash_hook)
    scenario.extras["victims"] = victims
    return scenario


def flaky_wan(
    n: int = 60,
    loss_rate: float = 0.3,
    config: Optional[LpbcastConfig] = None,
    seed: int = 0,
    crash_rate: float = 0.05,
    horizon: float = 15.0,
) -> Scenario:
    """A hostile wide-area network: heavy loss plus background crashes.

    ``extras['crash_plan']`` exposes the pre-drawn failure schedule.
    """
    scenario = _base(n, config, seed, loss_rate)
    plan = CrashPlan(
        [node.pid for node in scenario.nodes],
        crash_rate=crash_rate,
        horizon=horizon,
        rng=SeedSequence(seed).rng("crash-plan"),
    )
    scenario.sim.use_crash_plan(plan)
    scenario.extras["crash_plan"] = plan
    return scenario
