"""A minimal discrete-event simulation kernel.

A binary-heap agenda of ``(time, sequence, action)`` entries.  The sequence
number makes scheduling stable: events at equal times fire in scheduling
order, so runs are deterministic given deterministic actions.  This kernel
underlies the asynchronous runtime that stands in for the paper's
125-workstation testbed (Sec. 5.2); see ``repro/sim/async_runner.py``.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

Action = Callable[[], None]


class EventHandle:
    """Cancellation token returned by :meth:`Simulator.schedule`."""

    __slots__ = ("time", "cancelled")

    def __init__(self, time: float) -> None:
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """Single-threaded discrete-event loop with a virtual clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = start_time
        self._seq = 0
        self._queue: List[tuple] = []
        self.events_executed = 0

    # -- scheduling --------------------------------------------------------
    def schedule(self, delay: float, action: Action) -> EventHandle:
        """Run ``action`` after ``delay`` time units."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        return self.schedule_at(self.now + delay, action)

    def schedule_at(self, time: float, action: Action) -> EventHandle:
        """Run ``action`` at absolute virtual time ``time``."""
        if time < self.now:
            raise ValueError("cannot schedule into the past")
        handle = EventHandle(time)
        heapq.heappush(self._queue, (time, self._seq, handle, action))
        self._seq += 1
        return handle

    # -- execution ---------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event; returns False when idle."""
        while self._queue:
            time, _, handle, action = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self.now = time
            self.events_executed += 1
            action()
            return True
        return False

    def run_until(self, deadline: float) -> None:
        """Execute every event with time <= deadline, then advance the clock
        to ``deadline``."""
        if deadline < self.now:
            raise ValueError("deadline is in the past")
        while self._queue:
            time, _, handle, _ = self._queue[0]
            if time > deadline:
                break
            if handle.cancelled:
                heapq.heappop(self._queue)
                continue
            self.step()
        self.now = deadline

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the agenda (optionally at most ``max_events`` events);
        returns the number executed."""
        executed = 0
        while self._queue and (max_events is None or executed < max_events):
            if self.step():
                executed += 1
        return executed

    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) entries."""
        return len(self._queue)

    def idle(self) -> bool:
        return not self._queue
