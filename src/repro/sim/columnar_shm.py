"""Shared-memory multi-core round execution for the columnar engine.

``ColumnarRoundSimulation(workers=N)`` partitions the *sender* axis across
``N`` long-lived worker processes.  The packed columns (alive words, view
matrix/lengths, per-event delivered/active bitmaps) live in
``multiprocessing.shared_memory`` segments mapped by every process; each
round the coordinator broadcasts one command over a pipe, every worker
runs the partner-selection/admission/spread passes for its contiguous
sender slab ``[w*n//workers, (w+1)*n//workers)``, and the coordinator
merges the results behind a deterministic barrier.

Determinism contract
--------------------
* **Honoured counters are worker-count-independent.**  The coordinator —
  never a worker — computes the senders mask and the schedule-determined
  ``sim.sends`` total (via the engine's ``_honoured_sends_np``), applies
  the fault schedule, and owns ``sim.rounds``/``faults.*``.  The honoured
  fingerprint is therefore byte-identical for any ``workers`` value and
  matches the serial engine.
* **Non-honoured output is deterministic per worker count.**  Worker ``w``
  draws from its own ``derive_seed(seed, "columnar-shm", w)`` stream and
  slab boundaries depend only on ``(n, workers)``, so two runs with the
  same seed and worker count are identical; runs with different worker
  counts diverge on exactly the counters already declared divergent
  between the serial and columnar engines.
* **The merge barrier is ordered.**  Per-worker results land in disjoint
  scratch rows (arrival/duplicate counts, per-event new-infection word
  masks); the coordinator folds them in fixed ``(event, worker)`` order,
  fires delivery listeners in ascending node order, and applies
  buffer-clearing and truncation exactly as the single-core pass does.

Workers hold no protocol state of their own: everything they read is a
shared view, everything they write is their private scratch row, so the
only per-round traffic on the pipe is the command dict and a one-word
acknowledgement.  Event-capacity growth allocates fresh segments (names
are broadcast with the next command; workers re-attach lazily), keeping
round-time allocation out of the steady state.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from . import bitset
from .rng import derive_seed

#: Roles whose segments are replaced when event capacity grows.
_DYNAMIC_ROLES = ("delivered", "active", "newmask")


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment.  The coordinator created it (and owns
    the resource-tracker registration plus unlinking); attaching does not
    re-register, so workers add no tracker state of their own."""
    return shared_memory.SharedMemory(name=name)


def _view(seg: shared_memory.SharedMemory, shape, dtype) -> np.ndarray:
    return np.ndarray(shape, dtype=dtype, buffer=seg.buf)


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _refresh_segments(cache: Dict, segs: Dict) -> Dict[str, np.ndarray]:
    """(Re-)attach any segment whose name changed since the last round;
    returns role -> ndarray view (absent roles map to None)."""
    views = cache.setdefault("views", {})
    held = cache.setdefault("segs", {})
    for role, descriptor in segs.items():
        if descriptor is None:
            views[role] = None
            continue
        name, shape, dtype = descriptor
        old = held.get(role)
        if old is not None and old[0] == name:
            continue
        if old is not None:
            old[1].close()
        seg = _attach(name)
        held[role] = (name, seg)
        views[role] = _view(seg, shape, dtype)
    return views


def _slab_round(views: Dict[str, np.ndarray], cmd: Dict, static: Dict,
                rng) -> None:
    """One worker's share of a gossip round: partner selection, admission
    and event spread for senders in ``[lo, hi)``.  Mirrors the engine's
    single-core pass; writes land only in this worker's scratch rows."""
    n = static["n"]
    lo, hi = static["lo"], static["hi"]
    wid = static["worker"]
    fanout = static["fanout"]
    view_len = views["viewlen"]
    view_mat = views["viewmat"]
    alive = bitset.unpack_bools(views["alive"], n)

    senders_mask = alive[lo:hi].copy()
    paused_local = [i - lo for i in cmd["paused"] if lo <= i < hi]
    if paused_local:
        senders_mask[paused_local] = False
    senders_mask &= view_len[lo:hi] > 0
    s_idx = np.nonzero(senders_mask)[0] + lo
    if s_idx.size == 0:
        return
    k = np.minimum(fanout, view_len[s_idx])

    view_cap = view_mat.shape[1]
    scores = rng.random((s_idx.size, view_cap))
    scores[np.arange(view_cap)[None, :] >= view_len[s_idx, None]] = -1.0
    take = min(fanout, view_cap)
    order = np.argsort(scores, axis=1)[:, ::-1][:, :take]
    targets = view_mat[s_idx[:, None], order].astype(np.int64, copy=False)
    valid = np.arange(take)[None, :] < k[:, None]

    survive = valid.copy()
    loss = static["loss"]
    if loss > 0.0:
        survive &= rng.random(targets.shape) >= loss
    for rate, src_index, dst_index in cmd["drops"]:
        hit = rng.random(targets.shape) < rate
        if src_index is not None:
            hit &= (s_idx == src_index)[:, None]
        if dst_index is not None:
            hit &= targets == dst_index
        survive &= ~hit
    for a_indices, b_indices, direction in cmd["partitions"]:
        side_a = np.zeros(n, dtype=bool)
        side_b = np.zeros(n, dtype=bool)
        side_a[a_indices] = True
        side_b[b_indices] = True
        src_a = side_a[s_idx][:, None]
        src_b = side_b[s_idx][:, None]
        blocked = np.zeros(targets.shape, dtype=bool)
        if direction in ("both", "a-to-b"):
            blocked |= src_a & side_b[targets]
        if direction in ("both", "b-to-a"):
            blocked |= src_b & side_a[targets]
        survive &= ~blocked
    survive &= alive[targets]

    arrivals = targets[survive]
    if arrivals.size:
        views["arrivals"][wid] += np.bincount(arrivals, minlength=n)

    events = cmd["events"]
    if not events:
        return
    delivered = views["delivered"]
    spread = delivered if static["digest"] else views["active"]
    dups_row = views["dups"][wid]
    newmask = views["newmask"]
    for event in range(events):
        carriers = bitset.gather_bits(spread[event], s_idx)
        if not carriers.any():
            continue
        hit_mask = survive & carriers[:, None]
        tgt = targets[hit_mask]
        if tgt.size == 0:
            continue
        already = bitset.gather_bits(delivered[event], tgt)
        dup = tgt[already]
        if dup.size:
            dups_row += np.bincount(dup, minlength=n)
        fresh = tgt[~already]
        if fresh.size:
            newmask[wid, event] |= bitset.mask_from_indices(fresh, n)


def _worker_main(conn, static: Dict) -> None:
    """Worker loop: receive a round command, run the slab pass, ack."""
    rng = np.random.default_rng(
        derive_seed(static["seed"], "columnar-shm", static["worker"]))
    cache: Dict = {}
    try:
        while True:
            try:
                cmd = conn.recv()
            except EOFError:
                break
            if cmd is None or cmd.get("op") == "stop":
                break
            try:
                views = _refresh_segments(cache, cmd["segs"])
                _slab_round(views, cmd, static, rng)
                conn.send("ok")
            except Exception as exc:  # pragma: no cover - crash relay
                try:
                    conn.send(("err", repr(exc)))
                except Exception:
                    pass
                break
    finally:
        views = cache.get("views", {})
        views.clear()
        for _name, seg in cache.get("segs", {}).values():
            try:
                seg.close()
            except Exception:  # pragma: no cover
                pass
        conn.close()


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


class ShmRoundExecutor:
    """Owns the shared segments and the worker pool for one engine.

    Created by ``ColumnarRoundSimulation._start()`` when ``workers > 1``;
    the engine's column attributes are re-pointed at shared views so the
    coordinator-side code (publish, crash/recover, truncation, aggregates)
    is unchanged.  ``close()`` copies the columns back into private arrays,
    reaps the workers and unlinks every segment.
    """

    def __init__(self, sim, workers: int) -> None:
        self._sim = sim
        self.workers = workers
        self._n = sim._n
        self._words = sim._words
        self._closed = False
        self._blocks: Dict[str, Tuple[shared_memory.SharedMemory,
                                      np.ndarray]] = {}

        sim._alive = self._adopt("alive", sim._alive)
        sim._view_len = self._adopt("viewlen", sim._view_len)
        sim._view_mat = self._adopt("viewmat", sim._view_mat)
        # delivered/active stay engine-local until the first publish grows
        # event capacity (grow_events allocates their first segments).
        self._arrivals = self._alloc_block(
            "arrivals", (workers, self._n), np.int64)
        self._dups = self._alloc_block("dups", (workers, self._n), np.int64)
        self._newmask: Optional[np.ndarray] = None

        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        cfg = sim.config
        self._conns: List = []
        self._procs: List = []
        try:
            for w in range(workers):
                parent_conn, child_conn = ctx.Pipe()
                static = {
                    "worker": w,
                    "workers": workers,
                    "lo": w * self._n // workers,
                    "hi": (w + 1) * self._n // workers,
                    "n": self._n,
                    "seed": sim.seed,
                    "fanout": cfg.fanout,
                    "loss": sim.loss_rate,
                    "digest": cfg.digest_implies_delivery,
                }
                proc = ctx.Process(target=_worker_main,
                                   args=(child_conn, static), daemon=True)
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
        except Exception:
            self.close()
            raise

    # -- segment management --------------------------------------------------
    def _alloc(self, shape, dtype):
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        seg = shared_memory.SharedMemory(create=True, size=max(nbytes, 8))
        arr = _view(seg, shape, dtype)
        arr.fill(0)
        return seg, arr

    def _alloc_block(self, role: str, shape, dtype) -> np.ndarray:
        seg, arr = self._alloc(shape, dtype)
        self._blocks[role] = (seg, arr)
        return arr

    def _adopt(self, role: str, source: np.ndarray) -> np.ndarray:
        """Copy an engine column into a fresh segment; the shared view
        replaces the engine's attribute."""
        seg, arr = self._alloc(source.shape, source.dtype)
        arr[...] = source
        self._blocks[role] = (seg, arr)
        return arr

    def _descriptor(self) -> Dict[str, Optional[tuple]]:
        segs: Dict[str, Optional[tuple]] = {}
        for role in ("alive", "viewlen", "viewmat", "arrivals", "dups",
                     "delivered", "active", "newmask"):
            block = self._blocks.get(role)
            if block is None:
                segs[role] = None
            else:
                seg, arr = block
                segs[role] = (seg.name, arr.shape, arr.dtype.str)
        return segs

    def grow_events(self, new_cap: int) -> None:
        """Replace the event-bitmap segments with larger ones (called from
        the engine's ``_grow_events`` under the doubling policy)."""
        sim = self._sim
        seg_d, new_d = self._alloc((new_cap, self._words), np.uint64)
        seg_a, new_a = self._alloc((new_cap, self._words), np.uint64)
        seg_m, new_m = self._alloc((self.workers, new_cap, self._words),
                                   np.uint64)
        if sim._event_cap:
            used = len(sim._notifications) - 1
            new_d[:used] = sim._delivered[:used]
            new_a[:used] = sim._active[:used]
        sim._delivered = new_d
        sim._active = new_a
        self._newmask = new_m
        old = [self._blocks.pop(role) for role in _DYNAMIC_ROLES
               if role in self._blocks]
        self._blocks["delivered"] = (seg_d, new_d)
        self._blocks["active"] = (seg_a, new_a)
        self._blocks["newmask"] = (seg_m, new_m)
        for seg, _arr in old:
            seg.close()
            seg.unlink()

    def scratch_bytes(self) -> int:
        """Scratch-segment footprint (for ``memory_bytes``): the per-worker
        arrival/duplicate counters and new-infection masks."""
        total = self._arrivals.nbytes + self._dups.nbytes
        if self._newmask is not None:
            total += self._newmask.nbytes
        return int(total)

    # -- the round -----------------------------------------------------------
    def gossip_round(self, now: float) -> int:
        if self._closed:
            raise RuntimeError("columnar multi-core engine is closed")
        sim = self._sim
        n = self._n
        alive_bool = bitset.unpack_bools(sim._alive, n)
        s_idx, total_sends = sim._honoured_sends_np(alive_bool)
        if s_idx.size == 0:
            return 0
        sim._stats["gossips_sent"][s_idx] += 1
        events = len(sim._notifications)

        self._arrivals[:] = 0
        self._dups[:] = 0
        if events:
            self._newmask[:, :events, :] = 0
        index = sim._index
        drops = [
            (window.rate,
             index.get(window.src, -1) if window.src is not None else None,
             index.get(window.dst, -1) if window.dst is not None else None)
            for window in sim._active_drop_windows()
        ]
        partitions = [
            ([index[p] for p in part.side_a if p in index],
             [index[p] for p in part.side_b if p in index],
             getattr(part, "direction", "both"))
            for part in sim._active_partitions()
        ]
        cmd = {
            "op": "round",
            "events": events,
            "paused": sim._paused_indices(),
            "drops": drops,
            "partitions": partitions,
            "segs": self._descriptor(),
        }
        for conn in self._conns:
            conn.send(cmd)
        for w, conn in enumerate(self._conns):
            reply = conn.recv()
            if reply != "ok":
                detail = reply[1] if isinstance(reply, tuple) else reply
                raise RuntimeError(
                    f"columnar shm worker {w} failed: {detail}")

        arrivals = self._arrivals.sum(axis=0)
        total_arrivals = int(arrivals.sum())
        if total_arrivals:
            sim.messages_delivered += total_arrivals
            sim._stats["gossips_received"] += arrivals
        dups = self._dups.sum(axis=0)
        if dups.any():
            sim._stats["duplicates"] += dups

        if events:
            sent_words = bitset.mask_from_indices(s_idx, n)
            spread = (sim._delivered if sim.config.digest_implies_delivery
                      else sim._active)
            cleared: List[int] = []
            for event in range(events):
                if not (spread[event] & sent_words).any():
                    continue
                cleared.append(event)
                new = np.bitwise_or.reduce(self._newmask[:, event, :],
                                           axis=0)
                new &= ~sim._delivered[event]
                new &= sim._alive
                if not new.any():
                    continue
                sim._delivered[event] |= new
                sim._active[event] |= new
                new_idx = bitset.bit_indices(new, n)
                sim._stats["delivered"][new_idx] += 1
                if sim._has_listeners and sim._listeners:
                    note = sim._notifications[event]
                    for node_index in new_idx:
                        sim._notify_delivery(int(node_index), note, now)
            for event in cleared:
                sim._active[event] &= ~sent_words
            sim._truncate_events_np(events)
        return total_sends

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in getattr(self, "_conns", []):
            try:
                conn.send({"op": "stop"})
            except Exception:
                pass
        for proc in getattr(self, "_procs", []):
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=10)
        for conn in getattr(self, "_conns", []):
            try:
                conn.close()
            except Exception:  # pragma: no cover
                pass
        self._conns = []
        self._procs = []
        # Re-point the engine at private copies, then drop every shared
        # view before closing the segments (close() refuses while buffer
        # exports exist).
        sim = self._sim
        for role, attr in (("alive", "_alive"), ("viewlen", "_view_len"),
                           ("viewmat", "_view_mat"),
                           ("delivered", "_delivered"),
                           ("active", "_active")):
            if role in self._blocks:
                setattr(sim, attr, np.array(getattr(sim, attr), copy=True))
        self._arrivals = None
        self._dups = None
        self._newmask = None
        blocks, self._blocks = self._blocks, {}
        segs = [seg for seg, _arr in blocks.values()]
        blocks.clear()  # the tuples hold the last array references
        for seg in segs:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
