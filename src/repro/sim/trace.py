"""Structured event tracing for simulations.

A :class:`Tracer` records protocol-level events — publish, deliver, drop,
eviction, membership change — as typed records with timestamps, queryable
after the run.  It plugs into the existing hook surfaces (delivery
listeners, round observers, the network model) without touching protocol
code, and is the debugging substrate the integration tests and examples use
to answer "why didn't process X get event Y?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from ..core.events import Notification
from ..core.ids import EventId, ProcessId

# Event kinds
PUBLISH = "publish"
DELIVER = "deliver"
DROP = "drop"           # network loss
CUT = "cut"             # link-filter cut
TO_CRASHED = "to-crashed"
ROUND = "round"


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    kind: str
    at: float
    pid: Optional[ProcessId] = None
    peer: Optional[ProcessId] = None
    event_id: Optional[EventId] = None
    detail: str = ""


class Tracer:
    """Collects :class:`TraceRecord` entries from a simulation run."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.records: List[TraceRecord] = []
        self.truncated = 0

    # -- recording ----------------------------------------------------------
    def record(self, record: TraceRecord) -> None:
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.truncated += 1
            return
        self.records.append(record)

    def emit(self, kind: str, at: float, **fields) -> None:
        self.record(TraceRecord(kind=kind, at=at, **fields))

    # -- wiring --------------------------------------------------------------
    def attach_deliveries(self, nodes: Iterable) -> "Tracer":
        """Trace every delivery on the given nodes."""
        def listener(pid: ProcessId, notification: Notification, now: float) -> None:
            self.emit(DELIVER, now, pid=pid, event_id=notification.event_id)

        for node in nodes:
            node.add_delivery_listener(listener)
        return self

    def attach_network(self, network) -> "Tracer":
        """Trace drops and cuts by wrapping the network's ``deliverable``."""
        original = network.deliverable

        def traced(src: ProcessId, dst: ProcessId) -> bool:
            cut_before = network.messages_cut
            drop_before = network.messages_dropped
            ok = original(src, dst)
            if not ok:
                kind = CUT if network.messages_cut > cut_before else DROP
                self.emit(kind, 0.0, pid=src, peer=dst)
            return ok

        network.deliverable = traced
        return self

    def on_round(self, round_number: int, sim) -> None:
        """Round observer: marks round boundaries."""
        self.emit(ROUND, float(round_number),
                  detail=f"alive={sim.alive_count()}")

    def trace_publish(self, pid: ProcessId, notification: Notification,
                      now: float) -> None:
        self.emit(PUBLISH, now, pid=pid, event_id=notification.event_id)

    # -- queries -----------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def for_event(self, event_id: EventId) -> List[TraceRecord]:
        return [r for r in self.records if r.event_id == event_id]

    def for_process(self, pid: ProcessId) -> List[TraceRecord]:
        return [r for r in self.records if r.pid == pid or r.peer == pid]

    def counts(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for record in self.records:
            totals[record.kind] = totals.get(record.kind, 0) + 1
        return totals

    def delivery_order(self, event_id: EventId) -> List[ProcessId]:
        """Processes in the order they delivered ``event_id``."""
        return [r.pid for r in self.records
                if r.kind == DELIVER and r.event_id == event_id]

    def __len__(self) -> int:
        return len(self.records)
