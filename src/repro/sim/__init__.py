"""Simulation substrates: round-based and discrete-event gossip runners.

* :class:`~repro.sim.round_runner.RoundSimulation` — synchronous gossip
  rounds, the setting of the paper's simulations (Sec. 5.1).
* :class:`~repro.sim.parallel_runner.ShardedRoundSimulation` — the same
  round semantics executed across multiple worker processes, bit-identical
  to the serial engine for the same root seed; pick engines with
  :func:`~repro.sim.parallel_runner.create_simulation`.
* :class:`~repro.sim.async_runner.AsyncGossipRuntime` — non-synchronized
  periodic gossips over a discrete-event kernel, standing in for the
  paper's 125-workstation testbed (Sec. 5.2).
* :class:`~repro.sim.columnar_runner.ColumnarRoundSimulation` — the same
  round vocabulary over dense arrays for mega-scale runs (n >= 100k),
  honouring a schedule-deterministic counter subset bit-identically.
* :class:`~repro.sim.network.NetworkModel` — i.i.d. loss ε, latency models,
  link filters; :class:`~repro.sim.network.CrashPlan` — fail-stop schedule
  bounded by τ.
* Workloads, churn scripts, topology bootstrap and seeded random streams.
"""

from .async_runner import AsyncGossipRuntime
from .churn import ChurnScript
from .columnar_runner import ColumnarRoundSimulation
from .engine import EventHandle, Simulator
from .network import (
    CrashEvent,
    CrashPlan,
    NetworkModel,
    PAPER_CRASH_RATE,
    PAPER_LOSS_RATE,
    constant_latency,
    exponential_latency,
    partition_filter,
    uniform_latency,
)
from .parallel_runner import (
    DEFAULT_SHARDS,
    ENGINES,
    NodeProxy,
    ShardedRoundSimulation,
    create_simulation,
)
from .round_runner import GossipProcess, RoundSimulation
from .rng import SeedSequence, derive_rng, derive_seed
from .scenarios import (
    Scenario,
    correlated_crashes,
    flaky_wan,
    flash_crowd,
    mass_departure,
    steady_state,
)
from .topology import build_lpbcast_nodes, uniform_random_views
from .workload import BroadcastWorkload, PoissonWorkload, PublicationRecord

__all__ = [
    "AsyncGossipRuntime",
    "BroadcastWorkload",
    "build_lpbcast_nodes",
    "ChurnScript",
    "ColumnarRoundSimulation",
    "constant_latency",
    "correlated_crashes",
    "CrashEvent",
    "CrashPlan",
    "create_simulation",
    "DEFAULT_SHARDS",
    "ENGINES",
    "flaky_wan",
    "flash_crowd",
    "mass_departure",
    "Scenario",
    "steady_state",
    "derive_rng",
    "derive_seed",
    "EventHandle",
    "exponential_latency",
    "GossipProcess",
    "NetworkModel",
    "NodeProxy",
    "PAPER_CRASH_RATE",
    "PAPER_LOSS_RATE",
    "partition_filter",
    "PoissonWorkload",
    "PublicationRecord",
    "RoundSimulation",
    "SeedSequence",
    "ShardedRoundSimulation",
    "Simulator",
    "uniform_latency",
    "uniform_random_views",
]
