"""Publication workloads.

The paper's measurement runs had "all 125 processes; each publishing 40
events per gossip round" (Sec. 5.2).  :class:`BroadcastWorkload` generalizes
that: a chosen subset of processes publishes a configurable number of events
per round (round runner) or per own tick (async runtime), and every published
notification is recorded so the reliability metric can later ask, for each
(notification, process) pair, whether it was delivered.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.events import Notification
from ..core.ids import EventId, ProcessId

PublishFn = Callable[[object, float], Notification]
"""Publishes one event on a node at a given time; returns the notification.

Defaults to lpbcast's ``node.lpb_cast(None, now)``; the pbcast harness passes
its own multicast-initiating function.
"""


def _lpbcast_publish(node, now: float) -> Notification:
    return node.lpb_cast(None, now)


@dataclass(frozen=True)
class PublicationRecord:
    """One published notification and its provenance."""

    event_id: EventId
    publisher: ProcessId
    published_at: float


class BroadcastWorkload:
    """Publishes events at a fixed rate and records what was published.

    Parameters
    ----------
    publishers:
        The nodes that publish (any object accepted by ``publish_fn``).
    events_per_round:
        Events each publisher emits per round/tick (paper: 40).
    start, stop:
        Active window in rounds (inclusive start, exclusive stop).  ``stop``
        of ``None`` means "never stops"; benches use a finite window so the
        tail of the run can flush in-flight notifications before reliability
        is measured.
    publish_fn:
        Protocol-specific publication hook.
    """

    def __init__(
        self,
        publishers: Sequence[object],
        events_per_round: int = 1,
        start: int = 1,
        stop: Optional[int] = None,
        publish_fn: PublishFn = _lpbcast_publish,
    ) -> None:
        if events_per_round < 0:
            raise ValueError("events_per_round must be non-negative")
        self.publishers = list(publishers)
        self.events_per_round = events_per_round
        self.start = start
        self.stop = stop
        self.publish_fn = publish_fn
        self.records: List[PublicationRecord] = []

    # -- round-runner integration ------------------------------------------
    def on_round(self, round_number: int, sim) -> None:
        """RoundHook: publish on every alive publisher in the window.

        Publishers may be node objects or bare process ids; either way the
        publish target is re-resolved through ``sim.nodes`` at hook time, so
        the workload stays valid when an engine replaces its node handles
        (the sharded engine swaps real nodes for proxies at start).
        """
        if not self._active(round_number):
            return
        now = float(round_number)
        for publisher in self.publishers:
            pid = publisher if isinstance(publisher, int) else publisher.pid
            if not sim.alive(pid):
                continue
            node = sim.nodes.get(pid, publisher)
            self._publish_batch(node, pid, now)

    # -- async-runtime integration ------------------------------------------
    def on_tick(self, pid: ProcessId, now: float) -> None:
        """Tick listener for :class:`~repro.sim.async_runner.AsyncGossipRuntime`:
        publish when one of our publishers ticks (per-tick == per-round)."""
        if not self._active(now):
            return
        for node in self.publishers:
            if node.pid == pid:
                self._publish_batch(node, pid, now)
                return

    def _active(self, at: float) -> bool:
        if at < self.start:
            return False
        return self.stop is None or at < self.stop

    def _publish_batch(self, node, pid: ProcessId, now: float) -> None:
        for _ in range(self.events_per_round):
            notification = self.publish_fn(node, now)
            self.records.append(
                PublicationRecord(notification.event_id, pid, now)
            )

    # -- queries -------------------------------------------------------------
    def published_ids(self) -> List[EventId]:
        return [record.event_id for record in self.records]

    def __len__(self) -> int:
        return len(self.records)


class PoissonWorkload:
    """Poisson publication process for the async runtime.

    Each publisher emits events as an independent Poisson process of the
    given rate; used by examples to exercise the runtime under bursty,
    non-round-aligned load (closer to a real pub/sub deployment than the
    paper's fixed per-round rate).
    """

    def __init__(
        self,
        runtime,
        publishers: Sequence[object],
        rate: float,
        until: float,
        rng: Optional[random.Random] = None,
        publish_fn: PublishFn = _lpbcast_publish,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.runtime = runtime
        self.rate = rate
        self.until = until
        self.publish_fn = publish_fn
        self.records: List[PublicationRecord] = []
        rng = rng if rng is not None else random.Random()
        for node in publishers:
            at = rng.expovariate(rate)
            while at < until:
                self.runtime.call_at(at, self._make_publish(node, at))
                at += rng.expovariate(rate)

    def _make_publish(self, node, at: float) -> Callable[[], None]:
        def publish() -> None:
            if not self.runtime.alive(node.pid):
                return
            notification = self.publish_fn(node, self.runtime.now)
            self.records.append(
                PublicationRecord(notification.event_id, node.pid, self.runtime.now)
            )

        return publish

    def published_ids(self) -> List[EventId]:
        return [record.event_id for record in self.records]

    def __len__(self) -> int:
        return len(self.records)
