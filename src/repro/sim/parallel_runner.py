"""Sharded, multi-process synchronous-round engine for large-n runs.

The paper's scalability story (Fig. 3, Sec. 5.1) is exactly where the
single-process :class:`~repro.sim.round_runner.RoundSimulation` tops out:
every round ticks all *n* nodes and shuffles the full message queue in one
interpreter.  :class:`ShardedRoundSimulation` partitions the nodes across
worker processes (*shards*), ticks each shard in parallel within a round,
and exchanges cross-shard messages through batched per-round mailboxes —
while staying **bit-for-bit identical** to the serial engine for the same
root seed.

Determinism by construction
---------------------------
All stochastic decisions consume exactly the streams the serial engine
consumes, in exactly the same order:

* each node's private stream lives inside the node object and travels with
  it to its shard — per-node draws are independent of where the node runs;
* the delivery shuffle uses the coordinator's ``seeds.rng("delivery-order")``
  stream over the *merged* queue: message metadata from every shard is
  re-assembled in the serial engine's canonical order (carryover first, then
  tick output in global node-insertion order) before the seeded shuffle;
* loss/crash admission runs in the coordinator with the single
  ``seeds.rng("network")`` stream, message by message, in shuffled order.

Message payloads never pass through the coordinator: workers keep produced
messages in a per-round outbox keyed by handle, the coordinator routes only
``(src, dst, handle)`` metadata, and surviving cross-shard payloads move as
pre-encoded blobs the coordinator forwards untouched.  Within a sync the
source shard dedups payloads by object identity and groups the unique
messages by their destination-shard signature, encoding each group exactly
once — so a gossip fanned out to targets on every other shard crosses the
serialization layer once total, not once per destination mailbox (the win
shows up in the ``time.shard.sync`` timer).  Batches travel in the compact
binary wire format of :mod:`repro.wire.shard` by default
(``wire_format="binary"``), with an automatic whole-batch pickle fallback
for messages the binary codec cannot carry faithfully and a
``wire_format="pickle"`` knob forcing the legacy path.

Surface
-------
The engine exposes the same ``run_round`` / ``run`` / ``run_until`` / hook /
observer / ``inject`` / ``crash`` surface as :class:`RoundSimulation` (it is
a subclass), so workloads, churn scripts and benchmarks switch engines via
the single ``engine=`` knob of :func:`create_simulation`.  After ``start()``
(implicit on the first round), ``sim.nodes[pid]`` holds a
:class:`NodeProxy`: mutating entry points (``lpb_cast``, ``start_join``,
``try_unsubscribe``, ``add_delivery_listener``, generic ``call``) are
forwarded to the owning shard; plain attribute reads serve the last synced
replica (see :meth:`ShardedRoundSimulation.refresh_nodes` and
:meth:`ShardedRoundSimulation.collect`).

Known divergence: with ``on_node_error="crash"``, a node failing *mid-batch*
cannot retroactively un-consume network draws the coordinator already made
for later messages of the same generation, so crash-converted runs may
diverge from serial within that round.  The default ``"raise"`` mode is
exact.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.ids import ProcessId
from ..core.message import Outgoing
from ..telemetry import Telemetry
from .aggregates import NodeAggregates, aggregate_nodes, merge_aggregates
from .network import NetworkModel
from .round_runner import GossipProcess, RoundSimulation

#: Default shard count: one worker per core, capped — beyond a handful of
#: shards the per-round mailbox exchange dominates over tick parallelism.
DEFAULT_SHARDS = max(1, min(4, os.cpu_count() or 1))

_MAIN = -1  # pseudo-shard owning coordinator-held payloads (inject/churn)

# Record phase ranks: replay order is (phase, index, worker append order).
_PHASE_OPS = 0
_PHASE_TICK = 1
_PHASE_GEN0 = 2


def _dumps(obj) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def _wire_codecs():
    """Late import of the cross-shard blob codec: :mod:`repro.wire` pulls in
    the whole message-type surface (``core.codec`` → ``pbcast`` → this
    package), so a top-level import here would close an import cycle."""
    from ..wire import pack_messages, unpack_messages
    return pack_messages, unpack_messages


def _byzantine_codec():
    """Late import of the Byzantine mutation applier (the ``repro.faults``
    package init pulls in chaos → sim, the same cycle as above)."""
    from ..faults.byzantine import mutate_message
    return mutate_message


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Valid cross-shard batch encodings (see :mod:`repro.wire.shard`).
SHARD_WIRE_FORMATS = ("binary", "pickle")


class _ShardState:
    """Node storage and command execution inside one shard process."""

    def __init__(self, shard: int, wire_format: str = "binary") -> None:
        self.shard = shard
        self.wire_format = wire_format
        self.nodes: Dict[ProcessId, object] = {}
        self.gidx: Dict[ProcessId, int] = {}     # global insertion index
        self.recording: set = set()              # pids with main-side listeners
        self.outbox: Dict[int, Tuple[ProcessId, ProcessId, object]] = {}
        self.next_handle = 0
        self.records: List[tuple] = []           # (phase, index, pid, notif, now)
        self._ctx: Tuple[int, int] = (0, 0)
        #: Shard-local registry; drained into the coordinator after every
        #: recording command, so counters merge by summation and trace
        #: events carry their (phase, index) replay tags.
        self.telemetry = Telemetry()

    # -- node management ----------------------------------------------------
    def install(self, pid: ProcessId, node: object, record: bool,
                gidx: int) -> None:
        self.nodes[pid] = node
        self.gidx[pid] = gidx
        if record:
            self.listen(pid)

    def listen(self, pid: ProcessId) -> None:
        if pid in self.recording:
            return
        node = self.nodes[pid]
        if hasattr(node, "add_delivery_listener"):
            node.add_delivery_listener(self._record_delivery)
            self.recording.add(pid)

    def _record_delivery(self, pid, notification, now) -> None:
        phase, index = self._ctx
        self.records.append((phase, index, pid, notification, now))

    def _stash(self, src: ProcessId, out: Outgoing) -> int:
        handle = self.next_handle
        self.next_handle += 1
        self.outbox[handle] = (src, out.destination, out.message)
        return handle

    # -- command handlers ---------------------------------------------------
    def do_add(self, blob: bytes) -> None:
        for pid, node, record, gidx in pickle.loads(blob):
            self.install(pid, node, record, gidx)

    def apply_ops(self, ops: Sequence[tuple]) -> List[tuple]:
        """Apply queued coordinator ops in order; returns node errors."""
        errors: List[tuple] = []
        for op in ops:
            kind, op_index = op[0], op[1]
            self._ctx = (_PHASE_OPS, op_index)
            try:
                if kind == "publish":
                    _, _, pid, payload, now = op
                    self.nodes[pid].lpb_cast(payload, now)
                elif kind == "addnode":
                    self.do_add(op[2])
                elif kind == "listen":
                    self.listen(op[2])
                else:  # pragma: no cover - coordinator bug
                    raise ValueError(f"unknown op {kind!r}")
            except Exception as exc:  # noqa: BLE001 - forwarded to main
                pid = op[2] if kind in ("publish", "listen") else None
                errors.append((pid, f"op:{kind}", _picklable(exc)))
        return errors

    def do_ops(self, ops: Sequence[tuple]):
        """Standalone op flush (outside a tick): ops plus their records."""
        self.records = []
        errors = self.apply_ops(ops)
        return errors, self.records

    def do_tick(self, now: float, crashed: frozenset, retain: Sequence[int],
                ops: Sequence[tuple], tracing: bool,
                count_bytes: bool = False):
        self.records = []
        self.telemetry.tracing = tracing
        self.telemetry.count_wire_bytes = count_bytes
        keep = set(retain)
        self.outbox = {h: m for h, m in self.outbox.items() if h in keep}
        errors = self.apply_ops(ops)
        meta: List[tuple] = []
        round_no = int(now)
        for pid, node in self.nodes.items():
            if pid in crashed:
                continue
            self._ctx = (_PHASE_TICK, self.gidx[pid])
            try:
                ticked = node.on_tick(now)
            except Exception as exc:  # noqa: BLE001
                errors.append((pid, "on_tick", _picklable(exc)))
                continue
            self.telemetry.trace_tag = self._ctx
            self.telemetry.record_sends(round_no, pid, ticked)
            for emission, out in enumerate(ticked):
                handle = self._stash(pid, out)
                meta.append((handle, pid, out.destination, emission))
        return meta, self.records, errors, self.telemetry.drain_delta()

    def do_fetch(
        self, wants: Dict[int, Sequence[int]]
    ) -> Dict[int, Tuple[List[tuple], Dict[int, bytes]]]:
        """Serve cross-shard payload requests for one delivery sync.

        Payloads are deduplicated by object identity (a gossip fanned out to
        F targets is one message object behind F handles) and the unique
        messages are grouped by their destination-shard signature; each
        group is pickled exactly once and the same blob bytes ship to every
        shard in the signature.  Each destination receives
        ``(entries, blobs)`` where ``entries`` is ``[(handle, group, idx)]``
        and ``blobs`` maps group id to the encoded message list
        (:func:`~repro.wire.pack_messages` — compact binary with a pickle
        fallback, or forced pickle via ``wire_format="pickle"``).
        """
        outbox = self.outbox
        msg_obj: Dict[int, object] = {}
        msg_refs: Dict[int, List[Tuple[int, int]]] = {}
        for dst_shard, handles in wants.items():
            for handle in dict.fromkeys(handles):
                message = outbox[handle][2]
                mid = id(message)
                refs = msg_refs.get(mid)
                if refs is None:
                    msg_obj[mid] = message
                    refs = msg_refs[mid] = []
                refs.append((dst_shard, handle))
        groups: Dict[frozenset, List[int]] = {}
        for mid, refs in msg_refs.items():
            signature = frozenset(dst for dst, _h in refs)
            groups.setdefault(signature, []).append(mid)
        entries: Dict[int, List[tuple]] = {d: [] for d in wants}
        blobs: Dict[int, Dict[int, bytes]] = {d: {} for d in wants}
        pack_messages, _ = _wire_codecs()
        for group, (signature, mids) in enumerate(groups.items()):
            blob = pack_messages([msg_obj[mid] for mid in mids],
                                 self.wire_format)
            for dst_shard in signature:
                blobs[dst_shard][group] = blob
            for idx, mid in enumerate(mids):
                for dst_shard, handle in msg_refs[mid]:
                    entries[dst_shard].append((handle, group, idx))
        return {d: (entries[d], blobs[d]) for d in wants}

    def do_deliver(self, now: float, generation: int, sequence: Sequence[tuple],
                   imports: Dict, inline: Dict[int, object],
                   tracing: bool, count_bytes: bool = False):
        self.records = []
        self.telemetry.tracing = tracing
        self.telemetry.count_wire_bytes = count_bytes
        imported: Dict[Tuple[int, int], object] = {}
        _, unpack_messages = _wire_codecs()
        for src_shard, (entries, blobs) in imports.items():
            loaded = {group: unpack_messages(blob)
                      for group, blob in blobs.items()}
            for handle, group, idx in entries:
                imported[(src_shard, handle)] = loaded[group][idx]
        replies_meta: List[tuple] = []
        errors: List[tuple] = []
        failed: set = set()
        skipped: List[int] = []
        phase = _PHASE_GEN0 + generation
        round_no = int(now)
        mutate = None
        for pos, src, dst, tag, mut in sequence:
            if dst in failed:
                skipped.append(pos)
                continue
            if tag[0] == "L":
                message = self.outbox[tag[1]][2]
            elif tag[0] == "I":
                message = imported[(tag[1], tag[2])]
            else:  # "M": coordinator-held payload
                message = inline[pos]
            if mut is not None:
                if mutate is None:
                    mutate = _byzantine_codec()
                message = mutate(message, mut, dst)
            self._ctx = (phase, pos)
            self.telemetry.trace_tag = self._ctx
            if tracing:
                self.telemetry.emit("receive", now, pid=dst, peer=src,
                                    message=type(message).__name__)
            try:
                replies = self.nodes[dst].handle_message(src, message, now)
            except Exception as exc:  # noqa: BLE001
                errors.append((dst, "handle_message", _picklable(exc)))
                failed.add(dst)
                continue
            self.telemetry.record_sends(round_no, dst, replies)
            for emission, reply in enumerate(replies):
                handle = self._stash(dst, reply)
                replies_meta.append(
                    (pos, emission, handle, dst, reply.destination)
                )
        return (replies_meta, self.records, errors, skipped,
                self.telemetry.drain_delta())

    def do_call(self, pid: ProcessId, method: str, args: tuple,
                kwargs: dict, op_index: int):
        self.records = []
        self._ctx = (_PHASE_OPS, op_index)
        result = getattr(self.nodes[pid], method)(*args, **kwargs)
        return result, self.records

    def do_pull(self, pids: Optional[Sequence[ProcessId]]) -> bytes:
        targets = self.nodes if pids is None else {
            pid: self.nodes[pid] for pid in pids if pid in self.nodes
        }
        stripped = []
        for node in targets.values():
            listeners = getattr(node, "_listeners", None)
            if listeners:
                stripped.append((node, listeners))
                node._listeners = []
        try:
            return _dumps(dict(targets))
        finally:
            for node, listeners in stripped:
                node._listeners = listeners

    def do_stats(self, pids: Optional[Sequence[ProcessId]],
                 crashed: frozenset) -> NodeAggregates:
        """Aggregate this shard's alive nodes locally — the cheap
        alternative to ``pull`` for per-round recorders (no node pickling;
        the returned aggregate is a few integers)."""
        if pids is None:
            targets = [node for pid, node in self.nodes.items()
                       if pid not in crashed]
        else:
            wanted = set(pids)
            targets = [node for pid, node in self.nodes.items()
                       if pid in wanted and pid not in crashed]
        return aggregate_nodes(targets)


def _picklable(exc: Exception) -> Exception:
    """The original exception when it pickles, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - exotic exception state
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _shard_main(conn, shard: int, wire_format: str = "binary") -> None:
    """Command loop of one shard process (top-level for spawn support)."""
    state = _ShardState(shard, wire_format=wire_format)
    dispatch = {
        "add": lambda cmd: state.do_add(cmd[1]),
        "ops": lambda cmd: state.do_ops(cmd[1]),
        "tick": lambda cmd: state.do_tick(cmd[1], cmd[2], cmd[3], cmd[4],
                                          cmd[5], cmd[6]),
        "fetch": lambda cmd: state.do_fetch(cmd[1]),
        "deliver": lambda cmd: state.do_deliver(cmd[1], cmd[2], cmd[3],
                                                cmd[4], cmd[5], cmd[6],
                                                cmd[7]),
        "call": lambda cmd: state.do_call(cmd[1], cmd[2], cmd[3], cmd[4],
                                          cmd[5]),
        "pull": lambda cmd: state.do_pull(cmd[1]),
        "stats": lambda cmd: state.do_stats(cmd[1], cmd[2]),
    }
    while True:
        try:
            cmd = conn.recv()
        except (EOFError, KeyboardInterrupt):
            return
        if cmd[0] == "close":
            conn.send(("ok", None))
            conn.close()
            return
        try:
            conn.send(("ok", dispatch[cmd[0]](cmd)))
        except Exception:  # noqa: BLE001 - report, keep serving
            conn.send(("err", traceback.format_exc()))


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------

class NodeProxy:
    """Main-process stand-in for a node living inside a shard worker.

    Mutating entry points are forwarded to the owning shard (queued until
    the next round for asynchronous ones, synchronously for calls needing a
    result); any other attribute read serves the most recently synced
    replica — a *snapshot*, refreshed by
    :meth:`ShardedRoundSimulation.refresh_nodes` or final
    :meth:`ShardedRoundSimulation.collect`.
    """

    __slots__ = ("pid", "_engine", "_shard")

    def __init__(self, pid: ProcessId, engine: "ShardedRoundSimulation",
                 shard: int) -> None:
        object.__setattr__(self, "pid", pid)
        object.__setattr__(self, "_engine", engine)
        object.__setattr__(self, "_shard", shard)

    # -- forwarded mutators -------------------------------------------------
    def lpb_cast(self, payload=None, now: float = 0.0):
        return self._engine._proxy_publish(self.pid, payload, now)

    def add_delivery_listener(self, listener) -> None:
        self._engine._proxy_listen(self.pid, listener)

    def try_unsubscribe(self, now: float) -> bool:
        return self.call("try_unsubscribe", now)

    def start_join(self, contact: ProcessId, now: float):
        return self.call("start_join", contact, now)

    def call(self, method: str, *args, **kwargs):
        """Synchronously invoke ``method`` on the live node in its shard."""
        return self._engine._proxy_call(self.pid, method, args, kwargs)

    # -- engine-driven entry points must not be invoked from outside --------
    def on_tick(self, now: float):
        raise RuntimeError("the sharded engine ticks nodes inside their "
                           "shard; do not call on_tick through a proxy")

    def handle_message(self, sender, message, now):
        raise RuntimeError("the sharded engine delivers messages inside "
                           "their shard; use sim.inject to enqueue traffic")

    # -- replica reads ------------------------------------------------------
    def __getattr__(self, name: str):
        replica = self._engine._replicas.get(self.pid)
        if replica is None:
            raise AttributeError(
                f"no replica for process {self.pid}; call "
                f"refresh_nodes()/collect() before reading node state"
            )
        return getattr(replica, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeProxy(pid={self.pid}, shard={self._shard})"


class _Ref:
    """Coordinator-side reference to a message payload held elsewhere.

    ``mut`` carries a Byzantine mutation spec drawn by the coordinator's
    fault injector; the owning shard applies it to its copy of the message
    at delivery time (the coordinator never sees the payload).
    """

    __slots__ = ("owner", "handle", "src", "dst", "mut")

    def __init__(self, owner: int, handle: int, src: ProcessId,
                 dst: ProcessId, mut: Optional[tuple] = None) -> None:
        self.owner = owner
        self.handle = handle
        self.src = src
        self.dst = dst
        self.mut = mut


class ShardedRoundSimulation(RoundSimulation):
    """Drop-in :class:`RoundSimulation` that executes each round across
    ``shards`` worker processes (see module docstring for the protocol)."""

    def __init__(
        self,
        network: Optional[NetworkModel] = None,
        seed: int = 0,
        max_reply_generations: int = 4,
        on_node_error: str = "raise",
        shards: Optional[int] = None,
        start_method: Optional[str] = None,
        wire_format: str = "binary",
    ) -> None:
        super().__init__(network=network, seed=seed,
                         max_reply_generations=max_reply_generations,
                         on_node_error=on_node_error)
        shards = DEFAULT_SHARDS if shards is None else shards
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if wire_format not in SHARD_WIRE_FORMATS:
            raise ValueError(
                f"wire_format must be one of {SHARD_WIRE_FORMATS}"
            )
        self.shards = shards
        self.wire_format = wire_format
        self._start_method = start_method
        self._started = False
        self._closed = False
        self._procs: List = []
        self._conns: List = []
        self._shard_of: Dict[ProcessId, int] = {}
        self._insertion: Dict[ProcessId, int] = {}
        self._insert_counter = 0
        self._listeners_by_pid: Dict[ProcessId, List[Callable]] = {}
        self._replicas: Dict[ProcessId, object] = {}
        self._next_seq_mirror: Dict[ProcessId, int] = {}
        self._staged: Dict[ProcessId, object] = {}
        self._pending_ops: Dict[int, List[tuple]] = {}
        self._op_counter = 0
        self._carryover_refs: List[_Ref] = []
        self._main_messages: Dict[int, object] = {}
        self._main_counter = 0
        self._record_buffer: List[tuple] = []
        #: Worker-recorded trace events of the current round, still carrying
        #: their (phase, index) tags; flushed in canonical order with the
        #: delivery records at round end.
        self._staged_trace: List[tuple] = []

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Spawn the shard workers and distribute the current node set."""
        if self._started:
            return
        if self._closed:
            raise RuntimeError("engine already closed/collected")
        method = self._start_method
        if method is None:
            method = ("fork" if "fork" in
                      multiprocessing.get_all_start_methods() else None)
        ctx = multiprocessing.get_context(method)
        for shard in range(self.shards):
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_shard_main,
                               args=(child, shard, self.wire_format),
                               daemon=True,
                               name=f"repro-shard-{shard}")
            proc.start()
            child.close()
            self._procs.append(proc)
            self._conns.append(parent)
        batches: Dict[int, List[tuple]] = {s: [] for s in range(self.shards)}
        for pid, node in self.nodes.items():
            shard = self._register(pid)
            batches[shard].append(self._detach(pid, node))
        for shard, batch in batches.items():
            if batch:
                self._conns[shard].send(("add", _dumps(batch)))
        for shard, batch in batches.items():
            if batch:
                self._await(shard)
        for pid, node in list(self.nodes.items()):
            self._adopt(pid, node)
        self._started = True

    def close(self) -> None:
        """Terminate the shard workers (without pulling node state back)."""
        if not self._conns:
            self._closed = True
            return
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (OSError, ValueError):
                pass
        for conn in self._conns:
            try:
                if conn.poll(1.0):
                    conn.recv()
            except (OSError, EOFError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        self._conns = []
        self._procs = []
        self._closed = True

    def __enter__(self) -> "ShardedRoundSimulation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            if self._conns and not self._closed:
                self.close()
        except Exception:  # noqa: BLE001
            pass

    # -- distribution helpers ----------------------------------------------
    def _register(self, pid: ProcessId) -> int:
        idx = self._insert_counter
        self._insert_counter += 1
        self._insertion[pid] = idx
        shard = idx % self.shards
        self._shard_of[pid] = shard
        return shard

    def _detach(self, pid: ProcessId, node: object) -> tuple:
        """Strip main-side listeners off ``node`` and describe it for its
        shard; returns an ``("add", ...)`` batch entry."""
        listeners = getattr(node, "_listeners", None)
        saved = list(listeners) if listeners else []
        if listeners:
            node._listeners = []
        self._listeners_by_pid[pid] = saved
        self._next_seq_mirror[pid] = getattr(node, "_next_seq", 0)
        return (pid, node, bool(saved), self._insertion[pid])

    def _adopt(self, pid: ProcessId, node: object) -> None:
        """Swap the (now shipped) main copy for a proxy + tripwire."""
        self._replicas[pid] = node
        self.nodes[pid] = NodeProxy(pid, self, self._shard_of[pid])
        self._alive_cache = None  # cached list would hold the shipped copy
        self._tether(node, pid)

    def _tether(self, node: object, pid: ProcessId) -> None:
        """Externally held references to the shipped main copy must fail
        loudly, not silently mutate a stale object."""
        def _tethered(*_args, **_kwargs):
            raise RuntimeError(
                f"process {pid} now lives in a shard worker; go through "
                f"sim.nodes[{pid}] (its proxy) instead of the original "
                f"node object"
            )
        for name in ("lpb_cast", "on_tick", "handle_message", "start_join",
                     "try_unsubscribe", "publish"):
            if hasattr(node, name):
                try:
                    setattr(node, name, _tethered)
                except (AttributeError, TypeError):  # pragma: no cover
                    pass

    # -- RoundSimulation surface overrides ----------------------------------
    def add_node(self, node: GossipProcess) -> None:
        if not self._started:
            super().add_node(node)
            return
        pid = node.pid
        if pid in self.nodes:
            raise ValueError(f"duplicate process id {pid}")
        shard = self._register(pid)
        self.nodes[pid] = node       # real until shipped at the next flush
        self._alive_cache = None
        self._staged[pid] = node
        self._queue_op(shard, ("addnode", None, pid))

    def inject(self, src: ProcessId, outgoings: Sequence[Outgoing]) -> None:
        for out in outgoings:
            handle = self._main_counter
            self._main_counter += 1
            self._main_messages[handle] = out.message
            self._carryover_refs.append(
                _Ref(_MAIN, handle, src, out.destination)
            )

    # -- fault injection (ref-queue overrides) -------------------------------
    def _release_delayed(self, entries: List) -> None:
        self._carryover_refs.extend(entries)

    def _fault_expand(self, queue: List[_Ref]) -> List[_Ref]:
        """Ref-queue twin of the serial expansion: one verdict per entry in
        shuffled order, so the fault stream is consumed identically and the
        expanded queues line up position-for-position across engines."""
        expanded: List[_Ref] = []
        for ref in queue:
            verdict = self._fault_injector.decide(ref.src, ref.dst)
            self._trace_verdict(verdict, ref.src, ref.dst)
            if verdict.action == "drop":
                if ref.owner == _MAIN:
                    self._main_messages.pop(ref.handle, None)
                continue
            if verdict.action == "delay":
                self._delayed_faults.append(
                    (self.round + verdict.delay, ref)
                )
                continue
            if verdict.replay:
                # Byzantine replay: an unmutated stale ref re-enters with
                # the carryover ``replay`` rounds later (fresh handle for
                # coordinator-held payloads — the inline path pops them).
                if ref.owner == _MAIN:
                    handle = self._main_counter
                    self._main_counter += 1
                    self._main_messages[handle] = \
                        self._main_messages[ref.handle]
                    stale = _Ref(_MAIN, handle, ref.src, ref.dst)
                else:
                    stale = _Ref(ref.owner, ref.handle, ref.src, ref.dst)
                self._delayed_faults.append(
                    (self.round + verdict.replay, stale)
                )
            if verdict.mutation is not None:
                ref.mut = verdict.mutation
            expanded.append(ref)
            for _ in range(verdict.copies - 1):
                if ref.owner == _MAIN:
                    # The inline delivery path pops coordinator-held
                    # payloads, so each extra copy needs its own handle.
                    handle = self._main_counter
                    self._main_counter += 1
                    self._main_messages[handle] = \
                        self._main_messages[ref.handle]
                    expanded.append(_Ref(_MAIN, handle, ref.src, ref.dst,
                                         verdict.mutation))
                else:
                    expanded.append(
                        _Ref(ref.owner, ref.handle, ref.src, ref.dst,
                             verdict.mutation)
                    )
        return expanded

    # -- proxy services -----------------------------------------------------
    def _queue_op(self, shard: int, op: tuple) -> None:
        op = (op[0], self._op_counter) + op[2:]
        self._op_counter += 1
        self._pending_ops.setdefault(shard, []).append(op)

    def _proxy_publish(self, pid: ProcessId, payload, now: float):
        from ..core.events import Notification
        from ..core.ids import EventId

        self._next_seq_mirror[pid] += 1
        self._queue_op(self._shard_of[pid], ("publish", None, pid, payload, now))
        return Notification(EventId(pid, self._next_seq_mirror[pid]),
                            payload, now)

    def _proxy_listen(self, pid: ProcessId, listener) -> None:
        had = bool(self._listeners_by_pid.get(pid))
        self._listeners_by_pid.setdefault(pid, []).append(listener)
        if not had:
            self._queue_op(self._shard_of[pid], ("listen", None, pid))

    def _proxy_call(self, pid: ProcessId, method: str, args: tuple,
                    kwargs: dict):
        shard = self._shard_of[pid]
        self._flush_ops(shard)
        op_index = self._op_counter
        self._op_counter += 1
        self._conns[shard].send(("call", pid, method, args, kwargs, op_index))
        result, records = self._await(shard)
        # A sync call may run between rounds or mid-hook, when the round's
        # record buffer is not live — dispatch its records immediately (they
        # arrive in invocation order, matching the serial listener timing).
        self._dispatch_records(records)
        return result

    def _flush_ops(self, shard: int) -> None:
        """Materialize staged nodes and push this shard's queued ops now."""
        ops = [self._materialize(op)
               for op in self._pending_ops.pop(shard, [])]
        if ops:
            self._conns[shard].send(("ops", ops))
            errors, records = self._await(shard)
            self._raise_op_errors(errors)
            self._dispatch_records(records)

    def _materialize(self, op: tuple) -> tuple:
        """Late-pickle staged nodes so hook-time mutations (e.g. a
        ``start_join`` issued after ``add_node``) ship with the node."""
        if op[0] != "addnode":
            return op
        pid = op[2]
        node = self._staged.pop(pid)
        blob = _dumps([self._detach(pid, node)])
        self._adopt(pid, node)  # after pickling: adoption tethers the node
        return ("addnode", op[1], blob)

    def _raise_op_errors(self, errors: Sequence[tuple]) -> None:
        for pid, where, exc in errors or ():
            raise RuntimeError(
                f"queued operation {where} on process {pid} failed"
            ) from exc

    # -- worker I/O ----------------------------------------------------------
    def _await(self, shard: int):
        try:
            status, payload = self._conns[shard].recv()
        except EOFError:
            raise RuntimeError(f"shard worker {shard} died unexpectedly")
        if status == "err":
            raise RuntimeError(f"shard worker {shard} failed:\n{payload}")
        return payload

    # -- the round loop ------------------------------------------------------
    def run_round(self) -> None:
        if not self._started:
            self.start()
        if self._closed:
            raise RuntimeError("engine already closed/collected")
        super().run_round()  # wraps _run_round_body in the time.round timer

    def _run_round_body(self) -> None:
        self.round += 1
        now = float(self.round)
        self._record_buffer = []
        self._staged_trace = []
        if self.telemetry.tracing:
            self.telemetry.emit("round.start", now, alive=self.alive_count())

        if self._crash_plan is not None:
            for event in self._crash_plan.crashes_before(now):
                self.crash(event.pid)

        if self._fault_injector is not None:
            self._fault_round_start(now)

        for hook in self._hooks:
            hook(self.round, self)

        with self.telemetry.time("time.tick"):
            queue = self._tick_phase(now)
        generation = 0
        with self.telemetry.time("time.delivery"):
            while queue and generation <= self.max_reply_generations:
                self._shuffle_rng.shuffle(queue)
                if self._fault_injector is not None:
                    queue = self._fault_expand(queue)
                queue = self._delivery_phase(now, generation, queue)
                generation += 1
        self._carryover_refs.extend(queue)

        self._replay_records()
        self.telemetry.append_trace_ordered(self._staged_trace)
        self._staged_trace = []
        self._sync_engine_counters()
        if self.telemetry.tracing:
            self.telemetry.emit("round.end", now, alive=self.alive_count(),
                                delivered=self.messages_delivered)
        with self.telemetry.time("time.observers"):
            for observer in self._observers:
                observer(self.round, self)

    def _tick_phase(self, now: float) -> List[_Ref]:
        retain: Dict[int, List[int]] = {s: [] for s in range(self.shards)}
        for ref in self._carryover_refs:
            if ref.owner != _MAIN:
                retain[ref.owner].append(ref.handle)
        # Messages held back by delay faults still live in shard outboxes;
        # keep their handles alive until they come due.
        for _due, ref in self._delayed_faults:
            if ref.owner != _MAIN:
                retain[ref.owner].append(ref.handle)
        # Workers use this set only to decide who ticks, so folding the
        # fault-paused pids in silences their gossip without blocking
        # reception — exactly the serial engine's pause semantics.
        crashed = frozenset(self.crashed | self._fault_paused)
        pending = {s: [self._materialize(op) for op in
                       self._pending_ops.pop(s, [])]
                   for s in range(self.shards)}
        tracing = self.telemetry.tracing
        count_bytes = self.telemetry.count_wire_bytes
        for shard, conn in enumerate(self._conns):
            conn.send(("tick", now, crashed, retain[shard], pending[shard],
                       tracing, count_bytes))
        tick_meta: List[tuple] = []
        errors: List[tuple] = []
        for shard in range(self.shards):
            meta, records, errs, delta = self._await(shard)
            self._record_buffer.extend(records)
            self._staged_trace.extend(self.telemetry.absorb_counters(delta))
            for handle, src, dst, emission in meta:
                tick_meta.append((self._insertion[src], emission,
                                  shard, handle, src, dst))
            errors.extend(errs)
        self._handle_worker_errors(errors, op_phase=True)
        tick_meta.sort(key=lambda t: (t[0], t[1]))
        queue = list(self._carryover_refs)
        self._carryover_refs = []
        queue.extend(_Ref(shard, handle, src, dst)
                     for _, _, shard, handle, src, dst in tick_meta)
        self._op_counter = 0
        return queue

    def _delivery_phase(self, now: float, generation: int,
                        queue: List[_Ref]) -> List[_Ref]:
        deliveries: Dict[int, List[tuple]] = {s: [] for s in range(self.shards)}
        exports: Dict[int, Dict[int, List[int]]] = {
            s: {} for s in range(self.shards)
        }
        inline: Dict[int, Dict[int, object]] = {s: {} for s in range(self.shards)}
        for pos, ref in enumerate(queue):
            if not self._admit(ref.src, ref.dst):
                if ref.owner == _MAIN:
                    self._main_messages.pop(ref.handle, None)
                continue
            dst_shard = self._shard_of[ref.dst]
            if ref.owner == dst_shard:
                tag = ("L", ref.handle)
            elif ref.owner != _MAIN:
                exports[ref.owner].setdefault(dst_shard, []).append(ref.handle)
                tag = ("I", ref.owner, ref.handle)
            else:
                inline[dst_shard][pos] = self._main_messages.pop(ref.handle)
                tag = ("M",)
            deliveries[dst_shard].append((pos, ref.src, ref.dst, tag,
                                          ref.mut))

        # Cross-shard mailboxes: each source shard dedups its wanted
        # payloads by identity, pickles each unique group once (see
        # ``_ShardState.do_fetch``) and the coordinator forwards the
        # resulting ``(entries, blobs)`` pairs untouched.
        with self.telemetry.time("time.shard.sync"):
            fetching = [s for s in range(self.shards) if exports[s]]
            for shard in fetching:
                self._conns[shard].send(("fetch", exports[shard]))
            mailboxes: Dict[int, Dict[int, tuple]] = {
                s: {} for s in range(self.shards)
            }
            for shard in fetching:
                for dst_shard, mailbox in self._await(shard).items():
                    mailboxes[dst_shard][shard] = mailbox

        active = [s for s in range(self.shards) if deliveries[s]]
        tracing = self.telemetry.tracing
        count_bytes = self.telemetry.count_wire_bytes
        for shard in active:
            self._conns[shard].send(("deliver", now, generation,
                                     deliveries[shard], mailboxes[shard],
                                     inline[shard], tracing, count_bytes))
        replies_meta: List[tuple] = []
        errors: List[tuple] = []
        for shard in active:
            rmeta, records, errs, skipped, delta = self._await(shard)
            self._record_buffer.extend(records)
            self._staged_trace.extend(self.telemetry.absorb_counters(delta))
            for pos, emission, handle, src, dst in rmeta:
                replies_meta.append((pos, emission, shard, handle, src, dst))
            errors.extend(errs)
            # Messages the worker skipped because their destination failed
            # mid-batch were admitted (and counted) optimistically; restate
            # them as deliveries to a crashed process.
            self.messages_delivered -= len(skipped)
            self.messages_to_crashed += len(skipped)
        self._handle_worker_errors(errors, op_phase=False)
        replies_meta.sort(key=lambda t: (t[0], t[1]))
        return [_Ref(shard, handle, src, dst)
                for _, _, shard, handle, src, dst in replies_meta]

    def _handle_worker_errors(self, errors: Sequence[tuple],
                              op_phase: bool) -> None:
        for pid, where, exc in errors:
            if where.startswith("op:"):
                self._raise_op_errors([(pid, where, exc)])
            if self.on_node_error == "raise":
                raise exc
            self.node_errors.append((pid, where, exc))
            self.crash(pid)

    def _dispatch_records(self, records: Sequence[tuple]) -> None:
        for _phase, _index, pid, notification, at in records:
            for listener in self._listeners_by_pid.get(pid, ()):
                listener(pid, notification, at)

    def _replay_records(self) -> None:
        """Replay worker-side delivery records through the saved main-side
        listeners, in the canonical (phase, position) order the serial
        engine would have invoked them."""
        if not self._record_buffer:
            return
        self._record_buffer.sort(key=lambda r: (r[0], r[1]))
        self._dispatch_records(self._record_buffer)
        self._record_buffer = []

    # -- state access --------------------------------------------------------
    def node_aggregates(self, pids: Optional[Sequence[ProcessId]] = None
                        ) -> NodeAggregates:
        """Shard-local aggregation of alive-node stats (see
        :mod:`repro.sim.aggregates`): each worker sums its own nodes and
        ships a few integers, so per-round recorders never trigger the full
        node pickle that :meth:`refresh_nodes` costs.  Totals equal the
        serial engine's for the same seed."""
        if not self._started or self._closed:
            return super().node_aggregates(pids)
        for shard in range(self.shards):
            self._flush_ops(shard)
        wanted = None if pids is None else list(pids)
        crashed = frozenset(self.crashed)
        for conn in self._conns:
            conn.send(("stats", wanted, crashed))
        return merge_aggregates(
            [self._await(shard) for shard in range(self.shards)]
        )

    def refresh_nodes(self, pids: Optional[Sequence[ProcessId]] = None) -> None:
        """Pull fresh node snapshots from the workers into the replica set.

        Expensive (full node pickle); intended for per-round observers on
        modest system sizes — see docs/api.md for guidance.
        """
        if not self._started or self._closed:
            return
        for conn in self._conns:
            conn.send(("pull", list(pids) if pids is not None else None))
        for shard in range(self.shards):
            for pid, node in pickle.loads(self._await(shard)).items():
                self._replicas[pid] = node

    def collect(self) -> Dict[ProcessId, object]:
        """Pull every node back to the main process, reattach the original
        delivery listeners, restore ``sim.nodes`` to real objects and shut
        the workers down.  Call once, after the run, before reading node
        state with the metrics layer."""
        if self._started and not self._closed:
            for conn in self._conns:
                conn.send(("pull", None))
            merged: Dict[ProcessId, object] = {}
            for shard in range(self.shards):
                merged.update(pickle.loads(self._await(shard)))
            for pid, node in merged.items():
                if hasattr(node, "_listeners"):
                    node._listeners = list(self._listeners_by_pid.get(pid, []))
                self._replicas[pid] = node
                self.nodes[pid] = node
            self._alive_cache = None  # proxies swapped back for real nodes
            self.close()
        return dict(self.nodes)


# ---------------------------------------------------------------------------
# Engine selection
# ---------------------------------------------------------------------------

def _build_serial(**kw):
    return RoundSimulation(**kw)


def _build_sharded(**kw):
    return ShardedRoundSimulation(**kw)


def _build_async(**kw):
    from .async_runner import AsyncGossipRuntime

    return AsyncGossipRuntime(**kw)


def _build_columnar(**kw):
    from .columnar_runner import ColumnarRoundSimulation

    return ColumnarRoundSimulation(**kw)


@dataclass(frozen=True)
class EngineSpec:
    """One registered engine: how to build it, and which factory kwargs it
    honours.  ``create_simulation`` validates every call against this table,
    so a kwarg an engine would silently ignore is rejected instead."""

    name: str
    summary: str
    factory: Callable[..., object]
    accepts: frozenset


#: Factory-kwarg defaults.  A kwarg explicitly set to a *non-default* value
#: for an engine that does not accept it is an error; passing the default is
#: always legal (it cannot change behaviour).
FACTORY_DEFAULTS = {
    "network": None,
    "seed": 0,
    "max_reply_generations": 4,
    "on_node_error": "raise",
    "shards": None,
    "start_method": None,
    "wire_format": "binary",
    "workers": 1,
    "backend": "auto",
}

_ROUND_KWARGS = frozenset(
    {"network", "seed", "max_reply_generations", "on_node_error"})

ENGINE_REGISTRY: Dict[str, EngineSpec] = {
    spec.name: spec
    for spec in (
        EngineSpec(
            name="serial",
            summary="single-process synchronous rounds (paper Sec. 5.1)",
            factory=_build_serial,
            accepts=_ROUND_KWARGS,
        ),
        EngineSpec(
            name="sharded",
            summary="multi-process rounds, bit-identical to serial",
            factory=_build_sharded,
            accepts=_ROUND_KWARGS
            | frozenset({"shards", "start_method", "wire_format"}),
        ),
        EngineSpec(
            name="async",
            summary="non-synchronized periodic gossip (testbed substitute)",
            factory=_build_async,
            accepts=frozenset({"network", "seed"}),
        ),
        EngineSpec(
            name="columnar",
            summary="array-backed vectorized rounds for mega-scale n",
            factory=_build_columnar,
            accepts=frozenset({"network", "seed", "workers", "backend"}),
        ),
    )
}

ENGINES = tuple(ENGINE_REGISTRY)


def create_simulation(engine: str = "serial", **kwargs):
    """Build an engine by name — the single ``engine=`` knob.

    ``"serial"`` is the paper's single-process Sec. 5.1 runner;
    ``"sharded"`` partitions the nodes over ``shards`` worker processes and
    produces bit-identical runs for the same root seed (see
    :mod:`repro.sim.parallel_runner`); ``"async"`` is the
    non-synchronized-timer testbed substitute
    (:class:`~repro.sim.async_runner.AsyncGossipRuntime`), driven by
    ``run_rounds`` instead of ``run`` and *not* part of the bit-identity
    contract; ``"columnar"`` is the array-backed vectorized engine for
    n >= 100k (:class:`~repro.sim.columnar_runner.ColumnarRoundSimulation`),
    validated against serial on the honoured-metric subset only.

    Accepted kwargs are validated against the :data:`ENGINE_REGISTRY` entry
    of the chosen engine: ``shards``/``start_method``/``wire_format`` apply
    to the sharded engine only, ``workers``/``backend`` to the columnar
    engine only (``workers=N`` runs the round passes across N shared-memory
    worker processes; the honoured fingerprint is identical for every
    worker count), ``max_reply_generations``/``on_node_error`` to the round
    engines only, ``network``/``seed`` everywhere.  A kwarg set to a
    non-default value for an engine that cannot honour it raises
    ``ValueError`` naming the engines that can — a ``shards=8`` or
    ``workers=4`` request must not silently run single-process.
    """
    spec = ENGINE_REGISTRY.get(engine)
    if spec is None:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}")
    unknown = sorted(set(kwargs) - set(FACTORY_DEFAULTS))
    if unknown:
        raise ValueError(
            f"unknown create_simulation kwarg(s) {unknown}; "
            f"accepted: {sorted(FACTORY_DEFAULTS)}")
    rejected = sorted(
        name for name, value in kwargs.items()
        if name not in spec.accepts and value != FACTORY_DEFAULTS[name]
    )
    if rejected:
        honouring = {
            name: sorted(s.name for s in ENGINE_REGISTRY.values()
                         if name in s.accepts)
            for name in rejected
        }
        detail = "; ".join(f"{name!r} applies to {engines}"
                           for name, engines in honouring.items())
        raise ValueError(
            f"engine {engine!r} does not accept {rejected}: {detail}")
    final = {name: kwargs.get(name, FACTORY_DEFAULTS[name])
             for name in spec.accepts}
    return spec.factory(**final)
