"""Synchronous-round simulation (paper Sec. 5.1).

"In a first attempt we have simulated the entire system in a single process.
More precisely, we have simulated synchronous gossip rounds in which each
process gossips once."

The runner is protocol-agnostic: any object exposing ``pid``,
``on_tick(now) -> [Outgoing]`` and ``handle_message(sender, message, now) ->
[Outgoing]`` can participate, which lets the same harness drive lpbcast,
pbcast with a total view, and pbcast with the partial-view membership — the
exact comparison of Fig. 7(a).

Round semantics
---------------
At round ``r`` (``now = r``):

1. crash events due at or before ``r`` silence their victims;
2. round hooks fire (workloads publish, churn scripts join/leave processes);
3. every alive node ticks once; the produced gossips are shuffled and
   delivered subject to the network model;
4. *reply* messages produced during delivery (retransmission solicitations
   and answers, subscription handshakes) are delivered within the same round
   up to ``max_reply_generations`` generations — mirroring the paper's
   assumption that network latency is below the gossip period — and carried
   over to the next round beyond that;
5. observers run.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from ..core.ids import ProcessId
from ..core.message import Outgoing
from ..telemetry import Telemetry
from .aggregates import NodeAggregates, aggregate_nodes
from .network import CrashPlan, NetworkModel
from .rng import SeedSequence


class GossipProcess(Protocol):
    """Structural interface every simulated protocol node satisfies."""

    pid: ProcessId

    def on_tick(self, now: float) -> List[Outgoing]: ...

    def handle_message(
        self, sender: ProcessId, message: object, now: float
    ) -> List[Outgoing]: ...


RoundHook = Callable[[int, "RoundSimulation"], None]
"""Invoked at the start of a round: ``hook(round_number, sim)``."""

RoundObserver = Callable[[int, "RoundSimulation"], None]
"""Invoked at the end of a round: ``observer(round_number, sim)``."""


class _CrashedSet(set):
    """``sim.crashed`` with alive-cache invalidation on every mutation.

    ``sim.crashed`` is a documented public attribute, and hooks and tests
    mutate it directly (historically the only way to revive a process was
    ``sim.crashed.discard(pid)``).  A direct mutation used to leave
    ``_alive_cache`` stale — ``alive_count()`` and ``alive_nodes()`` then
    disagreed for the rest of the run and a revived node silently skipped
    its ticks.  Tying invalidation to the set itself closes every such
    path, including ones no engine method mediates.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner: "RoundSimulation") -> None:
        super().__init__()
        self._owner = owner

    def _invalidate(self) -> None:
        self._owner._alive_cache = None

    def add(self, pid) -> None:
        set.add(self, pid)
        self._invalidate()

    def discard(self, pid) -> None:
        set.discard(self, pid)
        self._invalidate()

    def remove(self, pid) -> None:
        set.remove(self, pid)
        self._invalidate()

    def pop(self):
        value = set.pop(self)
        self._invalidate()
        return value

    def clear(self) -> None:
        set.clear(self)
        self._invalidate()

    def update(self, *others) -> None:
        set.update(self, *others)
        self._invalidate()

    def difference_update(self, *others) -> None:
        set.difference_update(self, *others)
        self._invalidate()

    def intersection_update(self, *others) -> None:
        set.intersection_update(self, *others)
        self._invalidate()

    def symmetric_difference_update(self, other) -> None:
        set.symmetric_difference_update(self, other)
        self._invalidate()

    def __ior__(self, other):
        set.__ior__(self, other)
        self._invalidate()
        return self

    def __isub__(self, other):
        set.__isub__(self, other)
        self._invalidate()
        return self

    def __iand__(self, other):
        set.__iand__(self, other)
        self._invalidate()
        return self

    def __ixor__(self, other):
        set.__ixor__(self, other)
        self._invalidate()
        return self


class RoundSimulation:
    """Drives a set of gossip processes through synchronous rounds."""

    def __init__(
        self,
        network: Optional[NetworkModel] = None,
        seed: int = 0,
        max_reply_generations: int = 4,
        on_node_error: str = "raise",
    ) -> None:
        if on_node_error not in ("raise", "crash"):
            raise ValueError("on_node_error must be 'raise' or 'crash'")
        self.seeds = SeedSequence(seed)
        self.network = network if network is not None else NetworkModel(
            loss_rate=0.0, rng=self.seeds.rng("network")
        )
        self.max_reply_generations = max_reply_generations
        #: "raise" propagates a node's exception (deterministic test runs);
        #: "crash" converts it into a fail-stop of that node — what a real
        #: deployment's process supervisor would observe.
        self.on_node_error = on_node_error
        self.node_errors: List[tuple] = []
        #: Engine-native observability (see repro.telemetry): the engine
        #: counts every emitted message itself, so instruments never wrap
        #: node methods and sharded workers count exactly like serial runs.
        self.telemetry = Telemetry()
        self._tele_baseline: Dict[str, int] = {}
        self._shuffle_rng: random.Random = self.seeds.rng("delivery-order")
        self.nodes: Dict[ProcessId, GossipProcess] = {}
        self.crashed: set = _CrashedSet(self)
        #: Incrementally maintained alive-node list: rebuilt lazily after a
        #: membership change (``add_node``/``crash``/fault recovery) instead
        #: of once per use — the round loop used to rescan all nodes several
        #: times per round.
        self._alive_cache: Optional[List[GossipProcess]] = None
        self.round = 0
        self.messages_delivered = 0
        #: Messages addressed to a process that fail-stopped (Sec. 4.1).
        self.messages_to_crashed = 0
        #: Messages addressed to a process this simulation never knew about
        #: (e.g. a stale view entry for a process that was never added) —
        #: distinct from crashes, which are fail-stops of known processes.
        self.messages_to_unknown = 0
        self._carryover: List[Tuple[ProcessId, Outgoing]] = []
        self._hooks: List[RoundHook] = []
        self._observers: List[RoundObserver] = []
        self._crash_plan: Optional[CrashPlan] = None
        #: Fault-injection state (see repro.faults): the attached injector,
        #: the pids whose ticks are suppressed this round, and messages held
        #: back by delay faults as (due_round, entry) pairs.
        self._fault_injector = None
        self._fault_paused: frozenset = frozenset()
        self._delayed_faults: List[tuple] = []
        self._mutate_message = None

    # -- construction ------------------------------------------------------
    def add_node(self, node: GossipProcess) -> None:
        if node.pid in self.nodes:
            raise ValueError(f"duplicate process id {node.pid}")
        self.nodes[node.pid] = node
        self._alive_cache = None

    def add_nodes(self, nodes: Sequence[GossipProcess]) -> None:
        for node in nodes:
            self.add_node(node)

    def add_round_hook(self, hook: RoundHook) -> None:
        self._hooks.append(hook)

    def add_observer(self, observer: RoundObserver) -> None:
        self._observers.append(observer)

    def use_crash_plan(self, plan: CrashPlan) -> None:
        """Attach a pre-drawn fail-stop schedule (applied as rounds pass)."""
        self._crash_plan = plan

    def use_fault_plan(self, plan) -> "object":
        """Attach a :class:`~repro.faults.plan.FaultPlan`; its faults draw
        from the dedicated ``"faults"`` stream, so runs with the same root
        seed and plan replay bit-for-bit (on this and the sharded engine).
        Returns the installed :class:`~repro.faults.injector.FaultInjector`
        (its ``stats`` count the faults that actually struck)."""
        from ..faults.byzantine import mutate_message
        from ..faults.injector import FaultInjector

        self._fault_injector = FaultInjector(plan, self.seeds.rng("faults"))
        self._mutate_message = mutate_message
        return self._fault_injector

    # -- runtime control ---------------------------------------------------
    def crash(self, pid: ProcessId) -> None:
        """Fail-stop ``pid`` immediately (no recovery, Sec. 4.1)."""
        if pid in self.nodes and pid not in self.crashed:
            self.crashed.add(pid)
            self._alive_cache = None
            self.telemetry.emit("crash", float(self.round), pid=pid)

    def recover(self, pid: ProcessId) -> bool:
        """Un-crash ``pid``; returns whether a revival happened.

        The symmetric counterpart of :meth:`crash` — revival keeps the
        node's retained state but performs no membership re-join (the fault
        injector's recovery path layers the Sec. 3.4 re-subscription on
        top).  Safe to call from round hooks: the alive list is invalidated
        immediately, so the revived node ticks in the same round.
        """
        if pid not in self.crashed or pid not in self.nodes:
            return False
        self.crashed.discard(pid)
        return True

    def alive(self, pid: ProcessId) -> bool:
        return pid in self.nodes and pid not in self.crashed

    def alive_count(self) -> int:
        """Number of alive processes — O(1), ``crashed`` ⊆ ``nodes``."""
        return len(self.nodes) - len(self.crashed)

    def _alive_list(self) -> List[GossipProcess]:
        """The maintained alive-node list, in node-insertion order.  Shared
        internal object: callers must not mutate it (a membership change
        invalidates and rebuilds it)."""
        cache = self._alive_cache
        if cache is None:
            crashed = self.crashed
            if crashed:
                cache = [n for pid, n in self.nodes.items()
                         if pid not in crashed]
            else:
                cache = list(self.nodes.values())
            self._alive_cache = cache
        return cache

    def alive_nodes(self) -> List[GossipProcess]:
        return list(self._alive_list())

    def inject(self, src: ProcessId, outgoings: Sequence[Outgoing]) -> None:
        """Queue externally produced messages (e.g. a join request from a
        process created mid-run) for delivery in the next round."""
        self._carryover.extend((src, out) for out in outgoings)

    # -- the round loop ----------------------------------------------------
    def run_round(self) -> None:
        with self.telemetry.time("time.round"):
            self._run_round_body()

    def _run_round_body(self) -> None:
        self.round += 1
        now = float(self.round)
        telemetry = self.telemetry
        # Checked-once telemetry fast path: with tracing off, per-message
        # ``emit`` calls are skipped at the call site (one attribute test
        # per round instead of a function call per message); counters are
        # always recorded — they are part of the bit-identity contract.
        if telemetry.tracing:
            telemetry.emit("round.start", now, alive=self.alive_count())

        if self._crash_plan is not None:
            for event in self._crash_plan.crashes_before(now):
                self.crash(event.pid)

        if self._fault_injector is not None:
            self._fault_round_start(now)

        for hook in self._hooks:
            hook(self.round, self)

        queue: List[Tuple[ProcessId, Outgoing]] = list(self._carryover)
        self._carryover = []
        round_no = self.round
        paused = self._fault_paused
        with telemetry.time("time.tick"):
            append = queue.append
            for node in self._alive_list():
                pid = node.pid
                if pid in paused:
                    continue  # slow-node fault: no tick, still receives
                try:
                    ticked = node.on_tick(now)
                except Exception as exc:
                    self._handle_node_error(pid, "on_tick", exc)
                    continue
                if ticked:
                    telemetry.record_sends(round_no, pid, ticked)
                    for out in ticked:
                        append((pid, out))

        generation = 0
        with telemetry.time("time.delivery"):
            shuffle = self._shuffle_rng.shuffle
            deliver = self._deliver
            while queue and generation <= self.max_reply_generations:
                shuffle(queue)
                if self._fault_injector is not None:
                    queue = self._fault_expand(queue)
                # One shared replies list per generation; _deliver appends
                # into it instead of allocating a fresh list per message.
                replies: List[Tuple[ProcessId, Outgoing]] = []
                for src, out in queue:
                    deliver(src, out, now, replies)
                queue = replies
                generation += 1
        # Anything still queued (deep reply chains) is delayed one round.
        self._carryover.extend(queue)

        self._sync_engine_counters()
        if telemetry.tracing:
            telemetry.emit("round.end", now, alive=self.alive_count(),
                           delivered=self.messages_delivered)
        with telemetry.time("time.observers"):
            for observer in self._observers:
                observer(self.round, self)

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.run_round()

    def run_until(self, predicate: Callable[["RoundSimulation"], bool],
                  max_rounds: int = 1000) -> int:
        """Run rounds until ``predicate(sim)`` holds; returns the round count.

        Raises ``RuntimeError`` if the predicate is still false after
        ``max_rounds`` — simulations must not hang silently.
        """
        remaining = max_rounds
        while True:
            if predicate(self):
                return self.round
            if remaining <= 0:
                raise RuntimeError(
                    f"predicate not satisfied within {max_rounds} rounds")
            self.run_round()
            remaining -= 1

    # -- fault injection ---------------------------------------------------
    def _fault_round_start(self, now: float) -> None:
        """Apply the plan's round-start actions: crashes, recoveries (with
        the Sec. 3.4 re-subscription), the paused-pid set, and the release
        of delay-fault messages that come due this round.

        The ordering (recovery joins before released delays, both ahead of
        tick output) is part of the serial/sharded determinism contract —
        the sharded override replays exactly this sequence over refs.
        """
        actions = self._fault_injector.round_start(self.round)
        for fault in actions.crashes:
            self.crash(fault.pid)
        for fault in actions.recoveries:
            self._fault_recover(fault, now)
        self._fault_paused = actions.paused
        due: List = []
        later: List[tuple] = []
        for due_round, entry in self._delayed_faults:
            (due if due_round <= self.round else later).append(
                (due_round, entry)
            )
        self._delayed_faults = later
        self._release_delayed([entry for _, entry in due])

    def _release_delayed(self, entries: List) -> None:
        self._carryover.extend(entries)

    def _fault_recover(self, fault, now: float) -> None:
        """Un-crash ``fault.pid`` and re-subscribe it through a contact —
        crash-with-recovery exercises the Sec. 3.3/3.4 membership path."""
        pid = fault.pid
        if not self.recover(pid):
            return
        contact = fault.contact
        if contact is None or not self.alive(contact):
            candidates = [p for p in self.nodes
                          if p != pid and p not in self.crashed]
            contact = self._fault_injector.pick_contact(candidates)
        if contact is None:
            return  # nobody left alive to rejoin through
        self.telemetry.emit("recovery", now, pid=pid, peer=contact)
        node = self.nodes[pid]
        self.inject(pid, node.start_join(contact, now))

    def _fault_expand(self, queue: List[Tuple[ProcessId, Outgoing]]
                      ) -> List[Tuple[ProcessId, Outgoing]]:
        """One injector verdict per queued message, in shuffled order:
        drops vanish, delays move to the hold-back list, duplicates appear
        immediately after their original, Byzantine mutations rewrite the
        delivered copy, and replays schedule an extra stale copy."""
        expanded: List[Tuple[ProcessId, Outgoing]] = []
        for src, out in queue:
            verdict = self._fault_injector.decide(src, out.destination)
            self._trace_verdict(verdict, src, out.destination)
            if verdict.action == "drop":
                continue
            if verdict.action == "delay":
                self._delayed_faults.append(
                    (self.round + verdict.delay, (src, out))
                )
                continue
            if verdict.replay:
                # Byzantine replay: a stale, unmutated copy re-enters with
                # the carryover ``replay`` rounds later and receives its own
                # verdict then (matching the sharded engine exactly).
                self._delayed_faults.append(
                    (self.round + verdict.replay, (src, out))
                )
            if verdict.mutation is not None:
                mutated = self._mutate_message(out.message, verdict.mutation,
                                               out.destination)
                if mutated is not out.message:
                    out = Outgoing(out.destination, mutated)
            for _ in range(verdict.copies):
                expanded.append((src, out))
        return expanded

    def _trace_verdict(self, verdict, src: ProcessId,
                       dst: ProcessId) -> None:
        """Trace a fault verdict that struck (no event for plain delivery)."""
        if not self.telemetry.tracing:
            return
        at = float(self.round)
        if verdict.action == "drop":
            self.telemetry.emit("fault.drop", at, pid=src, peer=dst)
        elif verdict.action == "delay":
            self.telemetry.emit("fault.delay", at, pid=src, peer=dst,
                                delay=verdict.delay)
        else:
            if verdict.copies > 1:
                self.telemetry.emit("fault.duplicate", at, pid=src, peer=dst,
                                    copies=verdict.copies)
            if verdict.mutation is not None:
                self.telemetry.emit("fault.byzantine", at, pid=src, peer=dst,
                                    kind=verdict.mutation[0])
            if verdict.replay:
                self.telemetry.emit("fault.replay", at, pid=src, peer=dst,
                                    lag=verdict.replay)

    # -- delivery ----------------------------------------------------------
    def _admit(self, src: ProcessId, dst: ProcessId) -> bool:
        """Decide whether one message survives to delivery, updating the
        accounting counters and consuming the network stream.

        The sender check comes first: a message from a process that crashed
        earlier in the round was never sent, so it must not count against
        the destination (or consume a network-loss draw).  Unknown and
        crashed destinations are counted separately — conflating them hides
        stale-view traffic behind the crash counter.
        """
        if src in self.crashed:
            return False  # the sender crashed earlier this round
        if dst not in self.nodes:
            self.messages_to_unknown += 1
            return False
        if dst in self.crashed:
            self.messages_to_crashed += 1
            return False
        if not self.network.deliverable(src, dst):
            return False
        self.messages_delivered += 1
        return True

    def _deliver(self, src: ProcessId, out: Outgoing, now: float,
                 replies: List[Tuple[ProcessId, Outgoing]]) -> None:
        """Deliver one admitted message, appending any protocol replies to
        the caller's shared ``replies`` list (one list per generation — the
        per-message list allocation used to dominate the delivery loop)."""
        dst = out.destination
        if not self._admit(src, dst):
            return
        telemetry = self.telemetry
        if telemetry.tracing:
            telemetry.emit("receive", now, pid=dst, peer=src,
                           message=type(out.message).__name__)
        try:
            produced = self.nodes[dst].handle_message(src, out.message, now)
        except Exception as exc:
            self._handle_node_error(dst, "handle_message", exc)
            return
        if produced:
            telemetry.record_sends(self.round, dst, produced)
            for reply in produced:
                replies.append((dst, reply))

    def _handle_node_error(self, pid: ProcessId, where: str,
                           exc: Exception) -> None:
        if self.on_node_error == "raise":
            raise exc
        self.node_errors.append((pid, where, exc))
        self.crash(pid)

    # -- telemetry ---------------------------------------------------------
    def _sync_engine_counters(self) -> None:
        """Fold the engine's plain accounting attributes (and the fault
        injector's strike counters) into the telemetry registry as per-round
        deltas.  Runs at the end of every round, before observers, so
        observers always read current totals.  Consumes no randomness —
        bit-identity of the run is unaffected."""
        updates = {
            "sim.delivered": self.messages_delivered,
            "sim.to_crashed": self.messages_to_crashed,
            "sim.to_unknown": self.messages_to_unknown,
            "net.offered": self.network.messages_offered,
            "net.dropped": self.network.messages_dropped,
            "net.cut": getattr(self.network, "messages_cut", 0),
        }
        if self._fault_injector is not None:
            for name, value in self._fault_injector.stats.as_dict().items():
                updates[f"faults.{name}"] = value
        for name, value in updates.items():
            last = self._tele_baseline.get(name, 0)
            if value != last:
                self.telemetry.inc(name, value - last, round=self.round)
                self._tele_baseline[name] = value
        self.telemetry.set_gauge("sim.alive", float(self.alive_count()))
        self.telemetry.inc("sim.rounds", 1)

    def node_aggregates(self, pids: Optional[Sequence[ProcessId]] = None
                        ) -> NodeAggregates:
        """Summed stats/occupancy/in-degree over the alive nodes (optionally
        restricted to ``pids``) — the :class:`~repro.sim.recorder.RunRecorder`
        feed.  The sharded engine overrides this with a shard-local
        aggregation, so for the same seed both engines return equal values
        without shipping node state."""
        if pids is None:
            targets = self._alive_list()
        else:
            targets = [self.nodes[p] for p in pids if self.alive(p)]
        return aggregate_nodes(targets)
