"""Churn scripting: joins, voluntary leaves and crashes over a run.

The paper assumes subscriptions/unsubscriptions "are rare compared to the
large flow of events" (Sec. 3.1) and describes the join handshake and the
gradual, timestamped unsubscription of Sec. 3.4.  :class:`ChurnScript`
schedules those transitions against a :class:`~repro.sim.round_runner.RoundSimulation`
so integration tests and examples can exercise the full membership
lifecycle: a joiner contacts a member, is gossiped on its behalf, starts
receiving gossip; a leaver's unsubscription spreads and its id drains from
views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..core.ids import ProcessId

NodeFactory = Callable[[ProcessId], object]
"""Builds a protocol node for a joining process id."""


@dataclass(frozen=True)
class JoinAction:
    round: int
    pid: ProcessId
    contact: ProcessId


@dataclass(frozen=True)
class LeaveAction:
    round: int
    pid: ProcessId


@dataclass(frozen=True)
class CrashAction:
    round: int
    pid: ProcessId


class ChurnScript:
    """A declarative schedule of membership transitions.

    Register with ``sim.add_round_hook(script.on_round)``.  Joins create the
    node through ``node_factory``, add it to the simulation and emit its
    subscription request through the simulation's injection queue; leaves
    call ``try_unsubscribe`` (retrying on refusal, Sec. 3.4); crashes
    fail-stop the victim.
    """

    def __init__(self, node_factory: Optional[NodeFactory] = None) -> None:
        self.node_factory = node_factory
        self._joins: List[JoinAction] = []
        self._leaves: List[LeaveAction] = []
        self._crashes: List[CrashAction] = []
        self._pending_leaves: List[ProcessId] = []
        self.joined: List[ProcessId] = []
        self.left: List[ProcessId] = []
        self.crashed: List[ProcessId] = []

    # -- schedule construction ----------------------------------------------
    def join(self, round_number: int, pid: ProcessId, contact: ProcessId) -> "ChurnScript":
        self._joins.append(JoinAction(round_number, pid, contact))
        return self

    def leave(self, round_number: int, pid: ProcessId) -> "ChurnScript":
        self._leaves.append(LeaveAction(round_number, pid))
        return self

    def crash(self, round_number: int, pid: ProcessId) -> "ChurnScript":
        self._crashes.append(CrashAction(round_number, pid))
        return self

    # -- execution ------------------------------------------------------------
    def on_round(self, round_number: int, sim) -> None:
        now = float(round_number)

        for action in self._crashes:
            if action.round == round_number:
                sim.crash(action.pid)
                self.crashed.append(action.pid)

        for action in self._joins:
            if action.round == round_number:
                self._apply_join(action, sim, now)

        # Leaves may be refused while the local unSubs buffer is saturated
        # (Sec. 3.4); retry refused leaves every subsequent round.
        due = [a.pid for a in self._leaves if a.round == round_number]
        retries, self._pending_leaves = self._pending_leaves, []
        for pid in due + retries:
            self._apply_leave(pid, sim, now)

    def _apply_join(self, action: JoinAction, sim, now: float) -> None:
        if self.node_factory is None:
            raise RuntimeError("joins scheduled but no node_factory given")
        node = self.node_factory(action.pid)
        sim.add_node(node)
        sim.inject(action.pid, node.start_join(action.contact, now))
        self.joined.append(action.pid)

    def _apply_leave(self, pid: ProcessId, sim, now: float) -> None:
        node = sim.nodes.get(pid)
        if node is None or not sim.alive(pid):
            return
        if node.try_unsubscribe(now):
            self.left.append(pid)
        else:
            self._pending_leaves.append(pid)
