"""Initial-membership construction.

The analysis (Sec. 4.1) assumes that "at each round, each process has a
uniformly distributed random view of size l of known subscribers".  Every
experiment therefore starts from views drawn uniformly at random — each
combination of ``l`` out of the other ``n-1`` processes equally probable —
and lets the protocol's own membership traffic keep them evolving.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from ..core.config import LpbcastConfig
from ..core.ids import ProcessId
from ..core.node import LpbcastNode
from .rng import SeedSequence


def uniform_random_views(
    pids: Sequence[ProcessId],
    view_size: int,
    rng: random.Random,
) -> Dict[ProcessId, List[ProcessId]]:
    """Draw an independent uniform view of ``view_size`` for every process.

    Each view is a uniform sample (without replacement) of the *other*
    processes, exactly the Sec. 4.1 assumption.
    """
    views: Dict[ProcessId, List[ProcessId]] = {}
    pid_list = list(pids)
    for pid in pid_list:
        others = [p for p in pid_list if p != pid]
        k = min(view_size, len(others))
        views[pid] = rng.sample(others, k)
    return views


def build_lpbcast_nodes(
    count: int,
    config: Optional[LpbcastConfig] = None,
    seed: int = 0,
    first_pid: ProcessId = 0,
    node_factory: Optional[Callable[..., LpbcastNode]] = None,
) -> List[LpbcastNode]:
    """Create ``count`` lpbcast nodes with uniform random initial views.

    Each node receives an independent random stream derived from ``seed``;
    the initial views are drawn from a separate ``views`` stream so node
    construction order cannot perturb them.
    """
    if count < 1:
        raise ValueError("need at least one process")
    cfg = config if config is not None else LpbcastConfig()
    seeds = SeedSequence(seed)
    pids = list(range(first_pid, first_pid + count))
    views = uniform_random_views(pids, cfg.view_max, seeds.rng("views"))
    factory = node_factory if node_factory is not None else LpbcastNode
    return [
        factory(pid, cfg, seeds.rng("node", pid), initial_view=views[pid])
        for pid in pids
    ]
