"""Automatic scenario minimisation.

When the oracle flags a generated scenario, the raw spec is rarely a good
bug report: dozens of processes, tens of rounds, a fault plan with five
overlapping windows.  :func:`shrink_spec` greedily minimises it — fewer
processes, fewer rounds, fewer fault-plan entries, smaller workload, no
background loss — re-running the oracle after every candidate edit and
keeping only edits under which the *same* failure (matched by signature)
still reproduces.  Greedy first-improvement restarts give the classic
delta-debugging shape: big halving steps first, then single-entry removals,
then decrements, until a full pass yields no accepted edit.

Determinism note: shrinking edits the spec but never the seed, so every
candidate (and the final minimum) is itself a replayable scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

from ..faults.plan import FaultPlan
from .oracle import check_scenario
from .spec import MIN_N, MIN_ROUNDS, ScenarioSpec


@dataclass
class ShrinkResult:
    """Outcome of one shrink session."""

    spec: ScenarioSpec          # the minimised scenario
    original: ScenarioSpec      # what the fuzzer originally generated
    signature: str              # the failure that was preserved throughout
    attempts: int               # oracle executions spent
    accepted: int               # edits that kept the failure alive

    def reduction(self) -> str:
        return (f"n {self.original.n}->{self.spec.n}, "
                f"rounds {self.original.rounds}->{self.spec.rounds}, "
                f"faults {self.original.plan.fault_count()}"
                f"->{self.spec.plan.fault_count()}, "
                f"publishes {self.original.publishes}->{self.spec.publishes} "
                f"({self.attempts} attempts, {self.accepted} accepted)")


def _without_entry(plan: FaultPlan, index: int) -> FaultPlan:
    """The plan minus its ``index``-th entry (entries enumerated in the
    fixed drops/duplicates/delays/partitions/crashes/pauses/equivocations/
    forges/replays/poisons order)."""
    groups = [list(plan.drops), list(plan.duplicates), list(plan.delays),
              list(plan.partitions), list(plan.crashes), list(plan.pauses),
              list(plan.equivocations), list(plan.forges),
              list(plan.replays), list(plan.poisons)]
    for group in groups:
        if index < len(group):
            del group[index]
            break
        index -= len(group)
    smaller = FaultPlan()
    smaller.drops, smaller.duplicates, smaller.delays = groups[0:3]
    smaller.partitions, smaller.crashes, smaller.pauses = groups[3:6]
    smaller.equivocations, smaller.forges = groups[6:8]
    smaller.replays, smaller.poisons = groups[8:10]
    return smaller


def _candidates(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Candidate edits, most aggressive first.

    Each candidate is one edit of ``spec``; the caller accepts the first
    that still fails and restarts, so ordering encodes the search strategy:
    wipe the whole fault plan before picking at entries, halve before
    decrementing.
    """
    # 1. Drop all faults at once — failures that survive this shrink fast.
    if not spec.plan.is_empty():
        yield spec.with_overrides(plan=FaultPlan())
    # 2. Halve the big axes.
    if spec.n > MIN_N:
        yield spec.with_overrides(n=max(MIN_N, spec.n // 2))
    if spec.rounds > MIN_ROUNDS:
        yield spec.with_overrides(
            rounds=max(MIN_ROUNDS, spec.rounds // 2),
            publishes=min(spec.publishes, max(MIN_ROUNDS, spec.rounds // 2)),
        )
    # 3. Remove fault-plan entries one at a time.
    for index in range(spec.plan.fault_count()):
        yield spec.with_overrides(plan=_without_entry(spec.plan, index))
    # 4. Simplify the environment and workload.
    if spec.loss_rate > 0.0:
        yield spec.with_overrides(loss_rate=0.0)
    if spec.publishes > 1:
        yield spec.with_overrides(publishes=1)
    if spec.retransmissions:
        yield spec.with_overrides(retransmissions=False)
    # 5. Fine steps on the big axes.
    if spec.n > MIN_N:
        yield spec.with_overrides(n=spec.n - 1)
    if spec.rounds > MIN_ROUNDS:
        yield spec.with_overrides(
            rounds=spec.rounds - 1,
            publishes=min(spec.publishes, spec.rounds - 1),
        )


def default_is_failing(signature: str) -> Callable[[ScenarioSpec], bool]:
    """A predicate running the real oracle, short-circuiting the sharded
    run for invariant signatures (see ``check_scenario``)."""

    def is_failing(candidate: ScenarioSpec) -> bool:
        report = check_scenario(candidate, require_signature=signature)
        return signature in report.signatures()

    return is_failing


def shrink_spec(
    spec: ScenarioSpec,
    signature: str,
    *,
    is_failing: Optional[Callable[[ScenarioSpec], bool]] = None,
    max_attempts: int = 150,
) -> ShrinkResult:
    """Minimise ``spec`` while ``signature`` keeps reproducing.

    ``is_failing`` defaults to running the oracle for real; tests inject a
    cheap predicate.  ``max_attempts`` bounds total oracle executions, so
    shrinking always terminates even on a pathological candidate stream —
    the partially shrunk spec is still a valid, smaller repro.
    """
    if is_failing is None:
        is_failing = default_is_failing(signature)
    current = spec
    attempts = 0
    accepted = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _candidates(current):
            if candidate.size() >= current.size():
                continue  # an edit must strictly shrink, or we could cycle
            attempts += 1
            if is_failing(candidate):
                current = candidate
                accepted += 1
                improved = True
                break  # greedy restart from the new, smaller spec
            if attempts >= max_attempts:
                break
    return ShrinkResult(spec=current, original=spec, signature=signature,
                        attempts=attempts, accepted=accepted)
