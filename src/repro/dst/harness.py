"""Uniform scenario execution across the four engines.

:func:`apply_scenario` turns a :class:`~repro.dst.spec.ScenarioSpec` into a
fully wired run on any engine (``serial``, ``sharded``, ``async``,
``columnar``) and returns the deterministic evidence the oracle judges: the
canonical counter fingerprint, the counter records, and every invariant
violation the monitor observed.  The wiring is identical for the two
object round engines — same node construction, same network stream, same
seeded publish draws — which is what makes the differential comparison
meaningful: any divergence is an engine bug, not harness noise.

The columnar engine gets the same node construction and publish draws but
is judged only on its honoured counter subset (see
:mod:`repro.sim.columnar_runner`): its fingerprint is the honoured-subset
fingerprint, which is backend-independent, and no invariant monitor is
attached (the monitor reads per-node object state the columnar engine does
not materialise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..faults.invariants import InvariantMonitor, Violation
from ..metrics.delivery import DeliveryLog
from ..sim import NetworkModel, build_lpbcast_nodes, create_simulation
from ..sim.rng import derive_rng
from ..telemetry import counter_fingerprint, counter_records
from .mutations import get_mutation
from .spec import ScenarioSpec


@dataclass
class RunOutcome:
    """Everything one engine run yields for judging."""

    engine: str
    spec: ScenarioSpec
    fingerprint: str
    records: list
    violations: List[Violation] = field(default_factory=list)
    #: Ground-truth first deliveries (the experiment log, not node memory).
    deliveries: int = 0
    alive: int = 0


def _publish_hook(spec: ScenarioSpec, pids):
    """The seeded workload: one publish per round for the first
    ``spec.publishes`` rounds — two from *distinct* publishers on causal
    specs, where concurrent publications are what give the hold-back queue
    dependencies to order.

    The publisher draw depends only on coordinator-maintained state (the
    alive set and the paused set), which both round engines evolve
    identically for the same seed — node-replica reads here would make the
    sharded run diverge spuriously.
    """
    pub_rng = derive_rng(spec.seed, "dst-publish")

    def hook(round_no: int, sim) -> None:
        if round_no > spec.publishes:
            return
        paused = getattr(sim, "_fault_paused", frozenset())
        ready = [p for p in pids if sim.alive(p) and p not in paused]
        if not ready:
            return
        if not spec.causal:
            pid = ready[pub_rng.randrange(len(ready))]
            sim.nodes[pid].lpb_cast(f"dst-{round_no}", float(round_no))
            return
        for k in range(2):
            if not ready:
                return
            pid = ready.pop(pub_rng.randrange(len(ready)))
            sim.nodes[pid].lpb_cast(f"dst-{round_no}-{k}", float(round_no))

    return hook


def _run_round_engine(spec: ScenarioSpec, engine: str) -> RunOutcome:
    cfg = spec.config()
    nodes = build_lpbcast_nodes(spec.n, cfg, seed=spec.seed)
    network = NetworkModel(loss_rate=spec.loss_rate,
                           rng=derive_rng(spec.seed, "dst-network"))
    # Explicit binary cross-shard format: the differential oracle runs with
    # the compact wire codec on the sharded side, so serial-vs-sharded
    # bit-identity also certifies the codec round trip under fuzzing.
    extra = ({"shards": spec.shards, "wire_format": "binary"}
             if engine == "sharded" else {})
    sim = create_simulation(engine, network=network, seed=spec.seed, **extra)
    sim.add_nodes(nodes)
    log = DeliveryLog().attach(sim.nodes.values())
    monitor = InvariantMonitor(mode="collect", seed=spec.seed).attach(sim)
    if not spec.plan.is_empty():
        sim.use_fault_plan(spec.plan)
    sim.add_round_hook(_publish_hook(spec, [node.pid for node in nodes]))
    mutation = get_mutation(spec.mutation)
    if mutation is not None:
        mutation.apply_post_build(sim, spec, engine)
    try:
        sim.run(spec.rounds)
        if mutation is not None:
            mutation.apply_post_run(sim, spec, engine)
        return RunOutcome(
            engine=engine,
            spec=spec,
            fingerprint=counter_fingerprint(sim.telemetry),
            records=counter_records(sim.telemetry),
            violations=list(monitor.violations),
            deliveries=log.total_deliveries,
            alive=sim.alive_count(),
        )
    finally:
        close = getattr(sim, "close", None)
        if close is not None:
            close()


def _run_columnar_engine(spec: ScenarioSpec, workers: int = 1) -> RunOutcome:
    """The columnar run: same nodes, same publish draws, honoured-subset
    fingerprint (the full columnar counter set legitimately diverges — see
    the declared-divergence contract in :mod:`repro.sim.columnar_runner`).

    ``workers > 1`` exercises the shared-memory multi-core path — the
    honoured fingerprint is worker-count-independent, so the oracle's
    ``parity:columnar`` verdicts cover every worker count with the same
    expected value.
    """
    from ..sim.columnar_runner import honoured_fingerprint

    cfg = spec.config()
    nodes = build_lpbcast_nodes(spec.n, cfg, seed=spec.seed)
    network = NetworkModel(loss_rate=spec.loss_rate,
                           rng=derive_rng(spec.seed, "dst-network"))
    sim = create_simulation("columnar", network=network, seed=spec.seed,
                            workers=workers)
    try:
        sim.add_nodes(nodes)
        log = DeliveryLog().attach(sim.nodes.values())
        if not spec.plan.is_empty():
            sim.use_fault_plan(spec.plan)
        sim.add_round_hook(_publish_hook(spec, [node.pid for node in nodes]))
        mutation = get_mutation(spec.mutation)
        if mutation is not None:
            mutation.apply_post_build(sim, spec, "columnar")
        sim.run(spec.rounds)
        if mutation is not None:
            mutation.apply_post_run(sim, spec, "columnar")
        records = counter_records(sim.telemetry)
        return RunOutcome(
            engine="columnar",
            spec=spec,
            fingerprint=honoured_fingerprint(records),
            records=records,
            violations=[],
            deliveries=log.total_deliveries,
            alive=sim.alive_count(),
        )
    finally:
        sim.close()


def _run_async_engine(spec: ScenarioSpec) -> RunOutcome:
    """The async runtime run: same spec vocabulary, different clock.

    Async runs are *not* bit-comparable with the round engines (independent
    timer phases consume different randomness), so the oracle uses them for
    invariant checking only; publishes are scheduled mid-period so every
    node has ticked at least once by the last publish round.
    """
    cfg = spec.config()
    nodes = build_lpbcast_nodes(spec.n, cfg, seed=spec.seed)
    network = NetworkModel(loss_rate=spec.loss_rate,
                           rng=derive_rng(spec.seed, "dst-network"))
    runtime = create_simulation("async", network=network, seed=spec.seed)
    runtime.add_nodes(nodes)
    log = DeliveryLog().attach(nodes)
    monitor = InvariantMonitor(mode="collect", seed=spec.seed).attach(runtime)
    if not spec.plan.is_empty():
        runtime.use_fault_plan(spec.plan)
    pub_rng = derive_rng(spec.seed, "dst-publish")
    pids = [node.pid for node in nodes]

    def publish(round_no: int):
        def fire() -> None:
            injector = runtime._fault_injector
            ready = [
                p for p in pids
                if runtime.alive(p)
                and not (injector is not None
                         and injector.is_paused(p, round_no))
            ]
            if not ready:
                return
            pid = ready[pub_rng.randrange(len(ready))]
            runtime.nodes[pid].lpb_cast(f"dst-{round_no}", runtime.now)

        return fire

    period = cfg.gossip_period
    for round_no in range(1, spec.publishes + 1):
        runtime.call_at((round_no - 0.5) * period, publish(round_no))
    mutation = get_mutation(spec.mutation)
    if mutation is not None:
        mutation.apply_post_build(runtime, spec, "async")
    runtime.run_rounds(spec.rounds, round_duration=period)
    if mutation is not None:
        mutation.apply_post_run(runtime, spec, "async")
    alive = sum(1 for p in pids if runtime.alive(p))
    return RunOutcome(
        engine="async",
        spec=spec,
        fingerprint=counter_fingerprint(runtime.telemetry),
        records=counter_records(runtime.telemetry),
        violations=list(monitor.violations),
        deliveries=log.total_deliveries,
        alive=alive,
    )


def apply_scenario(spec: ScenarioSpec, engine: str = "serial",
                   workers: int = 1) -> RunOutcome:
    """Execute ``spec`` on ``engine`` and return the run's evidence.

    The single entry point every DST layer goes through — oracle, shrinker,
    replay and self-test — so there is exactly one way a spec maps to a
    run.  ``workers`` selects the columnar engine's multi-core mode
    (explicitly: it is never inferred from the host's core count) and is
    rejected for every other engine, matching the ``create_simulation``
    kwargs contract.
    """
    spec.validate()
    if workers != 1 and engine != "columnar":
        raise ValueError(
            f"workers={workers} applies to the 'columnar' engine only "
            f"(got engine {engine!r}); the object engines take no "
            f"worker-count knob — use shards= for 'sharded'")
    if engine in ("serial", "sharded"):
        return _run_round_engine(spec, engine)
    if engine == "columnar":
        return _run_columnar_engine(spec, workers=workers)
    if engine == "async":
        return _run_async_engine(spec)
    raise ValueError(f"unknown engine {engine!r}")
