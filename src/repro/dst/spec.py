"""Scenario specifications: everything one DST run needs, as pure data.

A :class:`ScenarioSpec` fully determines a simulation run — protocol
configuration, system size, workload, fault plan and the root seed every
random stream derives from.  The spec is the fuzzer's unit of work: the
generator samples one from a single seed, the oracle executes it on several
engines, the shrinker transforms it, and the JSON repro artifact embeds it
so a failure replays bit-for-bit on a fresh process.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import List, Optional

from ..core.config import LpbcastConfig
from ..faults.plan import FaultPlan
from ..sim.rng import derive_rng

#: Bump when the spec's JSON shape changes; artifacts carry it.
SPEC_FORMAT = "repro-dst-spec/1"

#: The smallest system the harness runs (shrinking stops here: with fewer
#: than four processes a fanout-3 gossip mesh degenerates).
MIN_N = 4

#: The shortest run: one round to publish, one to gossip.
MIN_ROUNDS = 2


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-determined simulation scenario.

    ``seed`` roots every stream (node RNGs, network loss, fault injector,
    publisher choice), so two executions of the same spec — in the same or
    different processes — replay bit-for-bit on the round engines.
    """

    seed: int
    n: int
    rounds: int
    fanout: int = 3
    view_max: int = 10
    events_max: int = 30
    event_ids_max: int = 60
    subs_max: int = 15
    unsubs_max: int = 15
    retransmissions: bool = False
    loss_rate: float = 0.0
    publishes: int = 1
    shards: int = 2
    #: Run the Byzantine-tolerant double-echo delivery variant (majority
    #: echo/ready thresholds derived from ``n``; implies the payload-only
    #: delivery mode and no retransmissions).
    double_echo: bool = False
    #: Run the causal-delivery variant (vector-interval dependency metadata
    #: plus a hold-back queue; implies payload-only delivery mode —
    #: ``digest_implies_delivery=False``).  Mutually exclusive with
    #: ``double_echo``.
    causal: bool = False
    #: Hold-back queue bound for the causal variant.
    causal_holdback_max: int = 64
    plan: FaultPlan = field(default_factory=FaultPlan)
    #: Name of a planted bug from :mod:`repro.dst.mutations` (self-test
    #: campaigns only); ``None`` runs the real code.
    mutation: Optional[str] = None

    # -- validation ----------------------------------------------------------
    def validate(self) -> "ScenarioSpec":
        """Raise ``ValueError`` on any inconsistency; returns ``self``.

        Config bounds are re-checked by building the config; the fault plan
        re-validated its windows when constructed.  What remains is the
        coupling between the parts: plan targets must exist, the workload
        must fit the horizon.
        """
        if self.n < MIN_N:
            raise ValueError(f"n must be >= {MIN_N}, got {self.n}")
        if self.rounds < MIN_ROUNDS:
            raise ValueError(
                f"rounds must be >= {MIN_ROUNDS}, got {self.rounds}")
        if not 0 <= self.publishes <= self.rounds:
            raise ValueError("publishes must be within [0, rounds]")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.double_echo and self.retransmissions:
            raise ValueError("double_echo is incompatible with "
                             "retransmissions (delivery is quorum-gated)")
        if self.causal and self.double_echo:
            raise ValueError("causal and double_echo are mutually exclusive "
                             "(each gates delivery its own way)")
        if self.causal_holdback_max < 1:
            raise ValueError("causal_holdback_max must be >= 1")
        self.config()  # LpbcastConfig.__post_init__ re-checks its bounds
        pids = set(range(self.n))
        for fault in self.plan.crashes:
            if fault.pid not in pids:
                raise ValueError(f"crash fault targets unknown pid {fault.pid}")
        for fault in self.plan.pauses:
            if fault.pid not in pids:
                raise ValueError(f"pause fault targets unknown pid {fault.pid}")
        for fault in self.plan.partitions:
            strays = (set(fault.side_a) | set(fault.side_b)) - pids
            if strays:
                raise ValueError(f"partition references unknown pids {strays}")
        for label, faults in (("equivocate", self.plan.equivocations),
                              ("replay", self.plan.replays),
                              ("poison", self.plan.poisons)):
            for fault in faults:
                if fault.pid not in pids:
                    raise ValueError(
                        f"{label} fault targets unknown pid {fault.pid}")
        for fault in self.plan.forges:
            if fault.pid not in pids:
                raise ValueError(f"forge fault targets unknown pid {fault.pid}")
            if fault.victim not in pids:
                raise ValueError(
                    f"forge fault names unknown victim {fault.victim}")
        return self

    # -- derived -------------------------------------------------------------
    def config(self) -> LpbcastConfig:
        """The protocol configuration this spec describes."""
        if self.double_echo:
            # Majority thresholds over n: each correct node echoes at most
            # once per event id, so no two digests can both muster
            # ``n // 2 + 1`` echo senders — agreement holds under
            # equivocation by counting, independent of sampling luck.
            return LpbcastConfig(
                fanout=self.fanout,
                view_max=self.view_max,
                events_max=self.events_max,
                event_ids_max=self.event_ids_max,
                subs_max=self.subs_max,
                unsubs_max=self.unsubs_max,
                retransmissions=False,
                digest_implies_delivery=False,
                double_echo=True,
                echo_fanout=max(1, self.view_max),
                echo_threshold=self.n // 2 + 1,
                ready_threshold=self.n // 2 + 1,
            )
        if self.causal:
            # Causal delivery needs real payload transfer: a digest-implied
            # delivery carries no dependency metadata to order by.
            return LpbcastConfig(
                fanout=self.fanout,
                view_max=self.view_max,
                events_max=self.events_max,
                event_ids_max=self.event_ids_max,
                subs_max=self.subs_max,
                unsubs_max=self.unsubs_max,
                retransmissions=self.retransmissions,
                digest_implies_delivery=False,
                causal_delivery=True,
                causal_holdback_max=self.causal_holdback_max,
            )
        return LpbcastConfig(
            fanout=self.fanout,
            view_max=self.view_max,
            events_max=self.events_max,
            event_ids_max=self.event_ids_max,
            subs_max=self.subs_max,
            unsubs_max=self.unsubs_max,
            retransmissions=self.retransmissions,
            digest_implies_delivery=not self.retransmissions,
        )

    def describe(self) -> str:
        """One-line summary for reports and progress lines."""
        return (f"seed={self.seed} n={self.n} rounds={self.rounds} "
                f"F={self.fanout} l={self.view_max} loss={self.loss_rate} "
                f"publishes={self.publishes} shards={self.shards} "
                f"plan=[{self.plan.describe()}]"
                + (" double-echo" if self.double_echo else "")
                + (f" causal(holdback={self.causal_holdback_max})"
                   if self.causal else "")
                + (f" mutation={self.mutation}" if self.mutation else ""))

    def size(self) -> int:
        """Rough scenario magnitude — the shrinker's progress metric."""
        return (self.n + self.rounds + self.publishes
                + self.plan.fault_count()
                + (1 if self.loss_rate > 0 else 0)
                + (1 if self.retransmissions else 0))

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": SPEC_FORMAT,
            "seed": self.seed,
            "n": self.n,
            "rounds": self.rounds,
            "fanout": self.fanout,
            "view_max": self.view_max,
            "events_max": self.events_max,
            "event_ids_max": self.event_ids_max,
            "subs_max": self.subs_max,
            "unsubs_max": self.unsubs_max,
            "retransmissions": self.retransmissions,
            "loss_rate": self.loss_rate,
            "publishes": self.publishes,
            "shards": self.shards,
            "double_echo": self.double_echo,
            "causal": self.causal,
            "causal_holdback_max": self.causal_holdback_max,
            "plan": self.plan.to_dict(),
            "mutation": self.mutation,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        fmt = data.get("format", SPEC_FORMAT)
        if fmt != SPEC_FORMAT:
            raise ValueError(f"unsupported spec format {fmt!r} "
                             f"(this build reads {SPEC_FORMAT})")
        spec = cls(
            seed=data["seed"],
            n=data["n"],
            rounds=data["rounds"],
            fanout=data["fanout"],
            view_max=data["view_max"],
            events_max=data["events_max"],
            event_ids_max=data["event_ids_max"],
            subs_max=data["subs_max"],
            unsubs_max=data["unsubs_max"],
            retransmissions=data["retransmissions"],
            loss_rate=data["loss_rate"],
            publishes=data["publishes"],
            shards=data["shards"],
            double_echo=data.get("double_echo", False),
            causal=data.get("causal", False),
            causal_holdback_max=data.get("causal_holdback_max", 64),
            plan=FaultPlan.from_dict(data.get("plan", {})),
            mutation=data.get("mutation"),
        )
        return spec.validate()

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # -- transformation ------------------------------------------------------
    def with_overrides(self, **changes) -> "ScenarioSpec":
        """Copy with fields replaced — the shrinker's edit primitive.

        Shrinking ``n`` silently drops plan entries that now target removed
        processes (a crash of pid 50 is meaningless at n=10); everything
        else must stay valid, enforced by :meth:`validate`.
        """
        spec = replace(self, **changes)
        if spec.n < self.n:
            spec = replace(spec, plan=restrict_plan(spec.plan, spec.n))
        return spec.validate()


def restrict_plan(plan: FaultPlan, n: int) -> FaultPlan:
    """A copy of ``plan`` valid for a system of ``n`` processes.

    Crash/pause faults aimed at pids >= ``n`` are dropped; partition sides
    are intersected with the surviving pids and the partition is dropped
    when either side empties.  Rate faults (drop/duplicate/delay) are kept
    unless they were scoped to a removed endpoint.
    """
    pids = set(range(n))
    restricted = FaultPlan()
    for d in plan.drops:
        if d.src is not None and d.src not in pids:
            continue
        if d.dst is not None and d.dst not in pids:
            continue
        restricted.drops.append(d)
    restricted.duplicates.extend(plan.duplicates)
    restricted.delays.extend(plan.delays)
    for p in plan.partitions:
        side_a = tuple(pid for pid in p.side_a if pid in pids)
        side_b = tuple(pid for pid in p.side_b if pid in pids)
        if side_a and side_b:
            restricted.partition(side_a, side_b, start=p.start, heal=p.heal,
                                 direction=p.direction)
    for c in plan.crashes:
        if c.pid in pids:
            contact = c.contact if c.contact in pids else None
            restricted.crash(c.pid, at=c.at, recover_at=c.recover_at,
                             contact=contact)
    for p in plan.pauses:
        if p.pid in pids:
            restricted.pause(p.pid, at=p.at, duration=p.duration)
    for e in plan.equivocations:
        if e.pid in pids:
            restricted.equivocate(e.pid, rate=e.rate, start=e.start,
                                  stop=e.stop, variants=e.variants)
    for f in plan.forges:
        if f.pid in pids and f.victim in pids:
            restricted.forge_digest(f.pid, victim=f.victim, rate=f.rate,
                                    start=f.start, stop=f.stop)
    for r in plan.replays:
        if r.pid in pids:
            restricted.replay_stale(r.pid, rate=r.rate, lag=r.lag,
                                    start=r.start, stop=r.stop)
    for p in plan.poisons:
        if p.pid in pids:
            restricted.poison_view(p.pid, rate=p.rate, count=p.count,
                                   start=p.start, stop=p.stop)
    return restricted


def generate_spec(
    seed: int,
    max_n: int = 60,
    max_rounds: int = 40,
    mutation: Optional[str] = None,
    byzantine: bool = False,
    causal: bool = False,
) -> ScenarioSpec:
    """Sample one scenario from a single seed — the fuzzer's generator.

    Every choice (sizes, protocol parameters, workload, whether and which
    faults) draws from one stream derived from ``seed``, so the same seed
    always yields the same spec, independent of interpreter hash seeds or
    platform.  Ranges stay modest on purpose: DST wants many small hostile
    scenarios, not few big ones.

    ``byzantine=True`` samples from the adversarial family instead (its own
    derivation stream, so the plain family's seeds are untouched): small
    double-echo systems with liars in the fault plan.  The family pairs
    active liars with the double-echo variant on purpose — the campaign
    asserts the *defended* protocol holds its invariants; the undefended
    plain-vs-double-echo separation is pinned by a dedicated regression
    test, not fuzzed.

    ``causal=True`` samples from the ordering family (again its own
    streams): causal-delivery systems biased toward the conditions that
    reorder traffic — loss, delay-heavy fault plans, several concurrent
    publishers, and small hold-back bounds that put the eviction path and
    the ``holdback-bound`` invariant in play.
    """
    if max_n < 8:
        raise ValueError("max_n must be >= 8")
    if max_rounds < 10:
        raise ValueError("max_rounds must be >= 10")
    if byzantine and causal:
        raise ValueError("byzantine and causal select disjoint scenario "
                         "families; pick one")
    if byzantine:
        return _generate_byzantine_spec(seed, max_n, max_rounds, mutation)
    if causal:
        return _generate_causal_spec(seed, max_n, max_rounds, mutation)
    rng = derive_rng(seed, "dst-spec")
    n = rng.randrange(8, max_n + 1)
    rounds = rng.randrange(10, max_rounds + 1)
    fanout = rng.randrange(1, 5)
    view_max = rng.randrange(max(fanout, 3), 16)
    events_max = rng.randrange(5, 41)
    event_ids_max = rng.randrange(10, 81)
    subs_max = rng.randrange(3, 21)
    unsubs_max = rng.randrange(3, 21)
    retransmissions = rng.random() < 0.25
    loss_rate = round(rng.uniform(0.01, 0.3), 3) if rng.random() < 0.7 else 0.0
    publishes = rng.randrange(1, min(rounds, 8) + 1)
    shards = rng.choice((2, 3))
    if rng.random() < 0.85:
        plan = FaultPlan.random(
            list(range(n)), horizon=rounds,
            rng=derive_rng(seed, "dst-plan"),
            intensity=round(rng.uniform(0.3, 1.5), 3),
        )
    else:
        plan = FaultPlan()
    return ScenarioSpec(
        seed=seed, n=n, rounds=rounds, fanout=fanout, view_max=view_max,
        events_max=events_max, event_ids_max=event_ids_max,
        subs_max=subs_max, unsubs_max=unsubs_max,
        retransmissions=retransmissions, loss_rate=loss_rate,
        publishes=publishes, shards=shards, plan=plan, mutation=mutation,
    ).validate()


def _generate_byzantine_spec(
    seed: int,
    max_n: int,
    max_rounds: int,
    mutation: Optional[str],
) -> ScenarioSpec:
    """The adversarial scenario family: small double-echo systems, wide
    views (echo quorums need to form), and one or two liars layered on top
    of the usual crash-stop chaos."""
    rng = derive_rng(seed, "dst-byz-spec")
    n = rng.randrange(8, min(max_n, 16) + 1)
    rounds = rng.randrange(12, min(max_rounds, 24) + 1)
    fanout = rng.randrange(3, 5)
    view_max = n - 1  # everyone can know everyone: quorum counting is exact
    events_max = rng.randrange(15, 41)
    event_ids_max = rng.randrange(30, 81)
    subs_max = rng.randrange(5, 21)
    unsubs_max = rng.randrange(5, 21)
    loss_rate = round(rng.uniform(0.01, 0.1), 3) if rng.random() < 0.5 else 0.0
    publishes = rng.randrange(1, 5)
    shards = rng.choice((2, 3))
    plan = FaultPlan.random(
        list(range(n)), horizon=rounds,
        rng=derive_rng(seed, "dst-byz-plan"),
        intensity=round(rng.uniform(0.2, 0.8), 3),
        byzantine_rate=round(rng.uniform(0.3, 0.9), 3),
        byzantine_nodes=rng.randrange(1, 3),
    )
    return ScenarioSpec(
        seed=seed, n=n, rounds=rounds, fanout=fanout, view_max=view_max,
        events_max=events_max, event_ids_max=event_ids_max,
        subs_max=subs_max, unsubs_max=unsubs_max,
        retransmissions=False, loss_rate=loss_rate,
        publishes=publishes, shards=shards, double_echo=True,
        plan=plan, mutation=mutation,
    ).validate()


def _generate_causal_spec(
    seed: int,
    max_n: int,
    max_rounds: int,
    mutation: Optional[str],
) -> ScenarioSpec:
    """The ordering scenario family: causal-delivery systems under the
    conditions that actually reorder traffic.  Loss is the norm, plans are
    sampled at full intensity (delays shuffle arrival order across rounds),
    several processes publish concurrently, and the hold-back bound is
    often small enough for the eviction path to fire."""
    rng = derive_rng(seed, "dst-causal-spec")
    n = rng.randrange(8, min(max_n, 24) + 1)
    rounds = rng.randrange(12, min(max_rounds, 30) + 1)
    fanout = rng.randrange(2, 5)
    view_max = rng.randrange(max(fanout, 4), 16)
    events_max = rng.randrange(10, 41)
    event_ids_max = rng.randrange(20, 81)
    subs_max = rng.randrange(3, 21)
    unsubs_max = rng.randrange(3, 21)
    # Retransmissions are the dependency-recovery path; keep them on for
    # most of the family but leave a no-recovery slice where held events
    # must wait for the epidemic to re-deliver their dependencies.
    retransmissions = rng.random() < 0.75
    loss_rate = round(rng.uniform(0.02, 0.35), 3) if rng.random() < 0.8 else 0.0
    publishes = rng.randrange(2, min(rounds, 8) + 1)
    shards = rng.choice((2, 3))
    causal_holdback_max = rng.choice((4, 8, 16, 32, 64))
    if rng.random() < 0.85:
        plan = FaultPlan.random(
            list(range(n)), horizon=rounds,
            rng=derive_rng(seed, "dst-causal-plan"),
            intensity=round(rng.uniform(0.5, 1.5), 3),
        )
    else:
        plan = FaultPlan()
    return ScenarioSpec(
        seed=seed, n=n, rounds=rounds, fanout=fanout, view_max=view_max,
        events_max=events_max, event_ids_max=event_ids_max,
        subs_max=subs_max, unsubs_max=unsubs_max,
        retransmissions=retransmissions, loss_rate=loss_rate,
        publishes=publishes, shards=shards, causal=True,
        causal_holdback_max=causal_holdback_max,
        plan=plan, mutation=mutation,
    ).validate()


def spec_seeds(root_seed: int, count: int) -> List[int]:
    """The derived per-case seeds of a ``count``-scenario campaign."""
    from ..sim.rng import derive_seed

    return [derive_seed(root_seed, "dst-case", i) for i in range(count)]
