"""Fuzz campaigns, repro artifacts, replay, and the fuzzer's self-test.

One campaign derives ``count`` scenario seeds from a root seed, runs the
oracle on each generated scenario, and — on failure — shrinks the scenario
and writes a JSON **repro artifact**.  The artifact embeds the minimised
spec, the failure signature, and the per-engine counter fingerprints of the
failing run, so ``repro fuzz --replay case.json`` on a fresh process can
assert the *same* failure reproduces *bit-identically* (fingerprints and
signature both match), not merely "something still fails".

``--self-test`` closes the loop on the fuzzer itself: for every registered
mutation (:mod:`repro.dst.mutations`) it plants the bug, asserts the
campaign finds it with the expected failure kind, shrinks it, and replays
the artifact in-process.  A fuzzer that cannot find a planted bug is
reported as the failure it is.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..sim.rng import derive_seed
from .mutations import MUTATIONS
from .oracle import OracleReport, check_scenario
from .shrink import ShrinkResult, shrink_spec
from .spec import ScenarioSpec, generate_spec

#: Artifact schema tag; replay refuses artifacts from a different format.
ARTIFACT_FORMAT = "repro-dst-case/1"


@dataclass
class FuzzCase:
    """One failing scenario, shrunk and packaged."""

    case_seed: int
    original: ScenarioSpec
    shrunk: ShrinkResult
    report: OracleReport           # oracle verdict on the *shrunk* spec
    artifact_path: Optional[str] = None

    @property
    def signature(self) -> str:
        return self.shrunk.signature


@dataclass
class CampaignResult:
    """Outcome of one ``repro fuzz`` campaign."""

    root_seed: int
    count: int
    checked: int = 0
    cases: List[FuzzCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.cases

    def summary(self) -> str:
        verdict = ("all scenarios passed" if self.ok
                   else f"{len(self.cases)} failing scenario(s)")
        return (f"fuzz campaign: seed={self.root_seed}, "
                f"{self.checked}/{self.count} scenario(s) checked, {verdict}")


def build_artifact(case: FuzzCase) -> dict:
    """The JSON document a failing case persists."""
    return {
        "format": ARTIFACT_FORMAT,
        "case_seed": case.case_seed,
        "spec": case.shrunk.spec.to_dict(),
        "original_spec": case.original.to_dict(),
        "failure": {
            "signature": case.signature,
            "details": [f.detail for f in case.report.failures
                        if f.signature == case.signature],
        },
        "fingerprints": dict(case.report.fingerprints),
        "shrink": {
            "attempts": case.shrunk.attempts,
            "accepted": case.shrunk.accepted,
            "reduction": case.shrunk.reduction(),
        },
    }


def write_artifact(case: FuzzCase, directory: str) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"dst-case-{case.case_seed}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(build_artifact(case), fh, indent=2, sort_keys=True)
        fh.write("\n")
    case.artifact_path = path
    return path


def load_artifact(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    fmt = data.get("format")
    if fmt != ARTIFACT_FORMAT:
        raise ValueError(f"unsupported artifact format {fmt!r} "
                         f"(this build reads {ARTIFACT_FORMAT})")
    return data


@dataclass
class ReplayResult:
    """Verdict of re-executing a repro artifact."""

    spec: ScenarioSpec
    expected_signature: str
    report: OracleReport
    signature_reproduced: bool
    fingerprints_match: bool
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """The artifact replayed bit-identically: same failure, same
        per-engine counter fingerprints."""
        return self.signature_reproduced and self.fingerprints_match


def replay_artifact(data: dict) -> ReplayResult:
    """Re-run an artifact's spec and hold it to the recorded outcome.

    The engines to re-run are read off the artifact's recorded
    fingerprints, so a columnar-differential case replays the columnar
    engine (and a plain serial/sharded case never pays for it).
    """
    spec = ScenarioSpec.from_dict(data["spec"])
    expected_signature = data["failure"]["signature"]
    expected_fingerprints = data.get("fingerprints", {})
    engines = tuple(e for e in ("serial", "sharded", "columnar")
                    if e in expected_fingerprints) or ("serial", "sharded")
    report = check_scenario(spec, full=True, engines=engines)
    mismatches: List[str] = []
    reproduced = expected_signature in report.signatures()
    if not reproduced:
        mismatches.append(
            f"expected failure {expected_signature!r}, observed "
            f"{report.signatures() or 'no failures'}")
    fingerprints_match = True
    for engine, expected in sorted(expected_fingerprints.items()):
        observed = report.fingerprints.get(engine)
        if observed != expected:
            fingerprints_match = False
            mismatches.append(
                f"{engine} fingerprint {observed} != recorded {expected}")
    return ReplayResult(
        spec=spec,
        expected_signature=expected_signature,
        report=report,
        signature_reproduced=reproduced,
        fingerprints_match=fingerprints_match,
        mismatches=mismatches,
    )


def run_campaign(
    root_seed: int,
    count: int,
    *,
    max_n: int = 60,
    max_rounds: int = 40,
    mutation: Optional[str] = None,
    byzantine: bool = False,
    causal: bool = False,
    shrink: bool = True,
    max_shrink_attempts: int = 150,
    artifact_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    stop_after: Optional[int] = None,
    engines: tuple = ("serial", "sharded"),
    workers: int = 1,
) -> CampaignResult:
    """Run one fuzz campaign.

    Scenario ``i`` uses seed ``derive_seed(root_seed, "dst-case", i)``, so
    any failing case replays in isolation from its own seed.  ``stop_after``
    ends the campaign early once that many failures were found (the
    self-test uses 1 — it only needs proof of detection).  ``byzantine``
    draws every scenario from the adversarial family (double-echo systems
    with liars in the plan) instead of the plain one; ``causal`` draws from
    the ordering family (causal-delivery systems under reordering
    conditions).  ``engines`` picks
    the oracle's differential pairs (e.g. ``("serial", "columnar")`` for
    the honoured-subset campaign); the columnar engine rejects Byzantine
    plans, so the two options are mutually exclusive.  ``workers`` runs the
    columnar side of the differential over that many shared-memory
    processes — an explicit choice, never derived from the host's cores, so
    campaigns are machine-independent; it requires ``"columnar"`` in
    ``engines`` (the oracle rejects it otherwise).
    """
    if byzantine and "columnar" in engines:
        raise ValueError(
            "the columnar engine does not support Byzantine fault plans; "
            "run the byzantine family on the serial/sharded pair")
    if causal and "columnar" in engines:
        raise ValueError(
            "the columnar engine does not support causal-delivery "
            "configurations; run the causal family on the serial/sharded "
            "pair")
    say = progress if progress is not None else (lambda line: None)
    result = CampaignResult(root_seed=root_seed, count=count)
    for index in range(count):
        case_seed = derive_seed(root_seed, "dst-case", index)
        spec = generate_spec(case_seed, max_n=max_n, max_rounds=max_rounds,
                             mutation=mutation, byzantine=byzantine,
                             causal=causal)
        report = check_scenario(spec, engines=engines, workers=workers)
        result.checked += 1
        if report.ok:
            say(f"[{index + 1}/{count}] OK    {spec.describe()}")
            continue
        signature = report.signatures()[0]
        say(f"[{index + 1}/{count}] FAIL  {spec.describe()}")
        say(f"    {report.failures[0]}")
        if shrink:
            shrunk = shrink_spec(spec, signature,
                                 max_attempts=max_shrink_attempts)
            say(f"    shrunk: {shrunk.reduction()}")
        else:
            shrunk = ShrinkResult(spec=spec, original=spec,
                                  signature=signature, attempts=0, accepted=0)
        # Re-run the oracle on the minimum with every engine and no fast
        # path, so the artifact records complete fingerprints and *all*
        # co-occurring failure signatures even when shrinking
        # short-circuited on the first one.
        final_report = check_scenario(shrunk.spec, full=True, engines=engines,
                                      workers=workers)
        case = FuzzCase(case_seed=case_seed, original=spec, shrunk=shrunk,
                        report=final_report)
        if artifact_dir is not None:
            path = write_artifact(case, artifact_dir)
            say(f"    artifact: {path}")
        result.cases.append(case)
        if stop_after is not None and len(result.cases) >= stop_after:
            break
    return result


# -- self-test ---------------------------------------------------------------

@dataclass
class SelfTestOutcome:
    """The fuzzer's verdict on its own ability to catch one planted bug."""

    mutation: str
    expected_kind: str
    detected: bool
    kind_matched: bool
    shrunk_ok: bool
    replay_ok: bool
    detail: str

    @property
    def ok(self) -> bool:
        return (self.detected and self.kind_matched
                and self.shrunk_ok and self.replay_ok)


def run_self_test(
    root_seed: int = 0,
    *,
    artifact_dir: Optional[str] = None,
    scenarios_per_mutation: int = 4,
    progress: Optional[Callable[[str], None]] = None,
) -> List[SelfTestOutcome]:
    """Plant every registered bug; assert the pipeline catches each.

    For each mutation: run a small campaign with the bug planted, require a
    failure of the expected kind, require the shrinker to have produced a
    (weakly) smaller spec, write the artifact, and replay it in-process
    requiring bit-identical reproduction.  The CLI exposes this as
    ``repro fuzz --self-test``; CI runs it on every push.
    """
    say = progress if progress is not None else (lambda line: None)
    outcomes: List[SelfTestOutcome] = []
    for name, mutation in sorted(MUTATIONS.items()):
        say(f"-- planting {name!r}: {mutation.description}")
        campaign = run_campaign(
            derive_seed(root_seed, "dst-self-test", name),
            scenarios_per_mutation,
            max_n=24,
            max_rounds=16,
            mutation=name,
            shrink=True,
            max_shrink_attempts=60,
            artifact_dir=artifact_dir,
            progress=progress,
            stop_after=1,
            engines=mutation.engines,
            byzantine=mutation.family == "byzantine",
            causal=mutation.family == "causal",
        )
        if not campaign.cases:
            outcomes.append(SelfTestOutcome(
                mutation=name, expected_kind=mutation.expected_kind,
                detected=False, kind_matched=False, shrunk_ok=False,
                replay_ok=False,
                detail=f"planted bug survived {campaign.checked} scenario(s) "
                       f"undetected",
            ))
            continue
        case = campaign.cases[0]
        kind = case.signature.split(":", 1)[0]
        kind_matched = kind == mutation.expected_kind
        shrunk_ok = case.shrunk.spec.size() <= case.original.size()
        replay = replay_artifact(build_artifact(case))
        detail = (f"signature={case.signature} "
                  f"shrink=({case.shrunk.reduction()}) "
                  f"replay={'ok' if replay.ok else replay.mismatches}")
        outcomes.append(SelfTestOutcome(
            mutation=name, expected_kind=mutation.expected_kind,
            detected=True, kind_matched=kind_matched, shrunk_ok=shrunk_ok,
            replay_ok=replay.ok, detail=detail,
        ))
        say(f"   {detail}")
    return outcomes


def format_self_test_report(outcomes: List[SelfTestOutcome]) -> str:
    lines = []
    for outcome in outcomes:
        verdict = "CAUGHT" if outcome.ok else "MISSED"
        lines.append(f"{verdict}  {outcome.mutation:<22} "
                     f"(expected {outcome.expected_kind}) {outcome.detail}")
    caught = sum(1 for o in outcomes if o.ok)
    lines.append(f"-- self-test: {caught}/{len(outcomes)} planted bug(s) "
                 f"caught, shrunk and replayed bit-identically")
    return "\n".join(lines)
