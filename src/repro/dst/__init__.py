"""Deterministic simulation testing (DST) for the lpbcast reproduction.

A FoundationDB/VOPR-style fuzzing harness: a seeded generator samples whole
simulation scenarios (protocol config, workload, churn, fault plan), an
oracle judges each run with protocol invariants plus a serial/sharded
differential engine check, and a greedy shrinker minimises failures into
small JSON repro artifacts that replay bit-identically in a fresh process.

Entry points:

- :func:`generate_spec` / :class:`ScenarioSpec` — seeds to scenarios.
- :func:`apply_scenario` — one spec, one engine, one judged run.
- :func:`check_scenario` — the oracle verdict across engines.
- :func:`shrink_spec` — failure minimisation by signature.
- :func:`run_campaign` / :func:`run_self_test` — what ``repro fuzz`` does.
"""

from .fuzz import (
    ARTIFACT_FORMAT,
    CampaignResult,
    FuzzCase,
    ReplayResult,
    SelfTestOutcome,
    build_artifact,
    format_self_test_report,
    load_artifact,
    replay_artifact,
    run_campaign,
    run_self_test,
    write_artifact,
)
from .harness import RunOutcome, apply_scenario
from .mutations import MUTATIONS, Mutation, get_mutation
from .oracle import FuzzFailure, OracleReport, check_scenario
from .shrink import ShrinkResult, shrink_spec
from .spec import (
    MIN_N,
    MIN_ROUNDS,
    SPEC_FORMAT,
    ScenarioSpec,
    generate_spec,
    restrict_plan,
    spec_seeds,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "MIN_N",
    "MIN_ROUNDS",
    "MUTATIONS",
    "SPEC_FORMAT",
    "CampaignResult",
    "FuzzCase",
    "FuzzFailure",
    "Mutation",
    "OracleReport",
    "ReplayResult",
    "RunOutcome",
    "ScenarioSpec",
    "SelfTestOutcome",
    "ShrinkResult",
    "apply_scenario",
    "build_artifact",
    "check_scenario",
    "format_self_test_report",
    "generate_spec",
    "get_mutation",
    "load_artifact",
    "replay_artifact",
    "restrict_plan",
    "run_campaign",
    "run_self_test",
    "shrink_spec",
    "spec_seeds",
    "write_artifact",
]
